"""Serve telemetry smoke test (CI gate): scrape every observability surface.

Boots the real serving CLI (``python -m repro.serve``) as a subprocess
with tracing, metrics and the flight recorder enabled, drives a small
mixed workload through :class:`repro.serve.ServeClient` (single-point
lookups, a multi-point sweep under a client-minted trace id, and one
rejected request so the error path is exercised), then captures the
four artifacts CI validates and archives:

* ``--openmetrics FILE`` — a live ``GET /metrics`` scrape,
* ``--flight FILE`` — the ``GET /v1/debug/flight`` ring snapshot,
* ``--trace FILE`` — the Chrome trace written at shutdown,
* ``--manifest FILE`` — the serve manifest written at shutdown.

The script checks the responses inline (trace ids echoed, values
positive and bit-identical across repeats); the structural validation
belongs to ``validate_obs.py``::

    python scripts/serve_telemetry_smoke.py \
        --openmetrics metrics.txt --flight flight.json \
        --trace serve-trace.json --manifest serve-manifest.json
    python scripts/validate_obs.py --openmetrics metrics.txt \
        --flight flight.json --trace serve-trace.json \
        --manifest serve-manifest.json
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.trace import Tracer                           # noqa: E402
from repro.serve import ServeClient, ServeRequestError       # noqa: E402

ARCH = dict(width=4, paths_per_lane=5, chain_length=10)
TRACE_ID = "telemetry-smoke"


def drive_traffic(port: int) -> list:
    """A small mixed workload; returns a list of error strings."""
    errors = []
    tracer = Tracer(trace_id=TRACE_ID)
    with ServeClient("127.0.0.1", port, tracer=tracer) as client:
        first = client.chip_quantile("22nm", vdd=0.55, **ARCH)
        again = client.chip_quantile("22nm", vdd=0.55, **ARCH)
        if not first > 0:
            errors.append(f"non-positive quantile {first}")
        if first != again:
            errors.append(f"repeat lookup not bit-identical: "
                          f"{first} != {again}")
        sweep = client.query(
            "22nm", vdd=[0.5, 0.6, 0.7, 0.8], **ARCH)
        if sweep.get("trace_id") != TRACE_ID:
            errors.append(f"client trace id not echoed: "
                          f"{sweep.get('trace_id')!r}")
        if len(sweep.get("values", [])) != 4:
            errors.append(f"sweep returned {sweep.get('values')!r}")
        try:
            client.query("no-such-node", vdd=0.5, **ARCH)
            errors.append("bad node was accepted")
        except ServeRequestError:
            pass
    if not errors:
        print(f"ok: workload served, trace id {TRACE_ID!r} echoed, "
              f"repeat lookups bit-identical")
    return errors


def scrape(port: int, openmetrics_path: Path, flight_path: Path) -> list:
    errors = []
    with ServeClient("127.0.0.1", port) as client:
        text = client.openmetrics()
        flight = client.flight()
    openmetrics_path.write_text(text, encoding="utf-8")
    flight_path.write_text(json.dumps(flight, indent=2, sort_keys=True)
                           + "\n", encoding="utf-8")
    if "serve_requests_total" not in text:
        errors.append("/metrics scrape lacks serve_requests_total")
    if not flight.get("events"):
        errors.append("/v1/debug/flight returned no events")
    if not errors:
        print(f"ok: scraped {openmetrics_path} "
              f"({len(text.splitlines())} lines) and {flight_path} "
              f"({len(flight['events'])} flight events)")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--openmetrics", type=Path,
                        default=Path("serve-metrics.txt"))
    parser.add_argument("--flight", type=Path,
                        default=Path("serve-flight.json"))
    parser.add_argument("--trace", type=Path,
                        default=Path("serve-trace.json"))
    parser.add_argument("--manifest", type=Path,
                        default=Path("serve-manifest.json"))
    args = parser.parse_args(argv)
    for path in (args.openmetrics, args.flight, args.trace, args.manifest):
        path.parent.mkdir(parents=True, exist_ok=True)

    errors = []
    with tempfile.TemporaryDirectory() as cache_dir:
        env = dict(os.environ,
                   PYTHONPATH=str(REPO_ROOT / "src"),
                   REPRO_CACHE_DIR=cache_dir)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", "--port", "0",
             "--trace", str(args.trace), "--metrics", str(args.manifest),
             "--window-s", "30", "--flight-capacity", "256"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env, cwd=str(REPO_ROOT))
        try:
            line = proc.stdout.readline()
            if "listening on" not in line:
                proc.kill()
                _, stderr = proc.communicate()
                print(f"error: server failed to start: {line!r}\n{stderr}",
                      file=sys.stderr)
                return 1
            port = int(line.rsplit(":", 1)[1])
            print(f"ok: serve CLI up on port {port}")
            errors += drive_traffic(port)
            errors += scrape(port, args.openmetrics, args.flight)
            proc.send_signal(signal.SIGTERM)
            _, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        if proc.returncode != 0:
            errors.append(f"server exited {proc.returncode}:\n{stderr}")

    for path, label in ((args.trace, "trace"), (args.manifest, "manifest")):
        if not path.exists():
            errors.append(f"shutdown did not write the {label} ({path})")
    if not errors:
        print(f"ok: clean shutdown wrote {args.trace} and {args.manifest}")
    for err in errors:
        print(f"error: {err}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
