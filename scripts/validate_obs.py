"""Validate observability artifacts (CI gate).

Checks a Chrome trace-event file and a run manifest against the schemas
in :mod:`repro.obs.manifest`, plus structural invariants the schemas
cannot express: the trace must contain at least one complete span, the
manifest's cache ledger must reconcile, with ``--expect-workers`` the
trace must contain spans recorded in at least two distinct processes
(proof that pool workers handed their span batches back), and with
``--expect-fault-events KIND`` (repeatable) the manifest's resilience
ledger must contain at least one event of each named kind (proof that a
chaos run actually exercised its recovery path).

Usage::

    python scripts/validate_obs.py --trace trace.json --manifest m.json
    python scripts/validate_obs.py --trace t2.json --expect-workers
    python scripts/validate_obs.py --manifest chaos.json \
        --expect-fault-events pool_respawn
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.manifest import (                             # noqa: E402
    MANIFEST_SCHEMA,
    TRACE_SCHEMA,
    validate_schema,
)


def check_trace(path: Path, expect_workers: bool) -> list:
    doc = json.loads(path.read_text(encoding="utf-8"))
    errors = validate_schema(doc, TRACE_SCHEMA)
    spans = [e for e in doc.get("traceEvents", []) if e.get("ph") == "X"]
    if not spans:
        errors.append(f"{path}: no complete ('X') span events")
    for e in spans:
        if "ts" not in e or "dur" not in e:
            errors.append(f"{path}: span {e.get('name')!r} lacks ts/dur")
            break
    pids = {e.get("pid") for e in spans}
    if expect_workers and len(pids) < 2:
        errors.append(f"{path}: expected spans from >=2 processes "
                      f"(pool workers), saw pids {sorted(pids)}")
    if not errors:
        print(f"ok: {path} — {len(spans)} spans across "
              f"{len(pids)} process(es)")
    return errors


def check_manifest(path: Path, expect_fault_events=()) -> list:
    doc = json.loads(path.read_text(encoding="utf-8"))
    errors = validate_schema(doc, MANIFEST_SCHEMA)
    cache = doc.get("cache", {})
    lookups = cache.get("hits", 0) + cache.get("misses", 0)
    if lookups == 0:
        errors.append(f"{path}: cache ledger is empty "
                      f"(no quantile lookups recorded)")
    if not doc.get("cards"):
        errors.append(f"{path}: no technology-card fingerprints")
    stages = doc.get("stages", {})
    if not any(name.startswith("experiment.") for name in stages):
        errors.append(f"{path}: no experiment.* stage recorded")
    resilience = doc.get("resilience", {})
    counts = resilience.get("counts", {})
    events = resilience.get("events", [])
    if sorted(counts) != sorted({e.get("event") for e in events
                                 if isinstance(e, dict)}):
        errors.append(f"{path}: resilience counts do not reconcile with "
                      f"the event list")
    for kind in expect_fault_events or ():
        if counts.get(kind, 0) < 1:
            errors.append(f"{path}: expected >=1 {kind!r} resilience "
                          f"event, ledger has {sorted(counts) or 'none'}")
    if not errors:
        print(f"ok: {path} — targets {doc['run']['targets']}, "
              f"cache {cache.get('hits')}h/{cache.get('misses')}m, "
              f"{len(stages)} stages, {len(events)} resilience event(s)")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", type=Path, default=None,
                        help="Chrome trace-event JSON to validate")
    parser.add_argument("--manifest", type=Path, default=None,
                        help="run manifest JSON to validate")
    parser.add_argument("--expect-workers", action="store_true",
                        help="require spans from >=2 distinct pids")
    parser.add_argument("--expect-fault-events", action="append",
                        metavar="KIND", default=[],
                        help="require >=1 resilience ledger event of KIND "
                             "in the manifest (repeatable)")
    args = parser.parse_args(argv)
    if args.trace is None and args.manifest is None:
        parser.error("nothing to validate: pass --trace and/or --manifest")

    errors = []
    if args.trace is not None:
        errors += check_trace(args.trace, args.expect_workers)
    if args.manifest is not None:
        errors += check_manifest(args.manifest, args.expect_fault_events)
    for err in errors:
        print(f"error: {err}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
