"""Validate observability artifacts (CI gate).

Checks a Chrome trace-event file and a run manifest against the schemas
in :mod:`repro.obs.manifest`, plus structural invariants the schemas
cannot express: the trace must contain at least one complete span, the
manifest's cache ledger must reconcile, with ``--expect-workers`` the
trace must contain spans recorded in at least two distinct processes
(proof that pool workers handed their span batches back), and with
``--expect-fault-events KIND`` (repeatable) the manifest's resilience
ledger must contain at least one event of each named kind (proof that a
chaos run actually exercised its recovery path).

Serving telemetry artifacts are covered too: ``--openmetrics FILE``
checks a ``GET /metrics`` scrape against the OpenMetrics structural
rules (``# EOF``, cumulative buckets, ``+Inf`` == count), and
``--flight FILE`` checks a flight-recorder dump (schema, monotonic
``seq``, drop-counter arithmetic).  Serve manifests (``targets ==
["serve"]``) are recognised automatically: they must record served
requests and skip the experiment-stage requirement.

Usage::

    python scripts/validate_obs.py --trace trace.json --manifest m.json
    python scripts/validate_obs.py --trace t2.json --expect-workers
    python scripts/validate_obs.py --manifest chaos.json \
        --expect-fault-events pool_respawn
    python scripts/validate_obs.py --openmetrics metrics.txt \
        --flight flight.json --manifest serve.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.flight import FLIGHT_SCHEMA                   # noqa: E402
from repro.obs.manifest import (                             # noqa: E402
    MANIFEST_SCHEMA,
    TRACE_SCHEMA,
    validate_schema,
)
from repro.obs.openmetrics import check_openmetrics          # noqa: E402


def check_trace(path: Path, expect_workers: bool) -> list:
    doc = json.loads(path.read_text(encoding="utf-8"))
    errors = validate_schema(doc, TRACE_SCHEMA)
    spans = [e for e in doc.get("traceEvents", []) if e.get("ph") == "X"]
    if not spans:
        errors.append(f"{path}: no complete ('X') span events")
    for e in spans:
        if "ts" not in e or "dur" not in e:
            errors.append(f"{path}: span {e.get('name')!r} lacks ts/dur")
            break
    pids = {e.get("pid") for e in spans}
    if expect_workers and len(pids) < 2:
        errors.append(f"{path}: expected spans from >=2 processes "
                      f"(pool workers), saw pids {sorted(pids)}")
    if not errors:
        print(f"ok: {path} — {len(spans)} spans across "
              f"{len(pids)} process(es)")
    return errors


def check_manifest(path: Path, expect_fault_events=()) -> list:
    doc = json.loads(path.read_text(encoding="utf-8"))
    errors = validate_schema(doc, MANIFEST_SCHEMA)
    serving = doc.get("run", {}).get("targets") == ["serve"]
    cache = doc.get("cache", {})
    lookups = cache.get("hits", 0) + cache.get("misses", 0)
    if lookups == 0 and not serving:
        errors.append(f"{path}: cache ledger is empty "
                      f"(no quantile lookups recorded)")
    if not doc.get("cards"):
        errors.append(f"{path}: no technology-card fingerprints")
    stages = doc.get("stages", {})
    if serving:
        # A serve run has no experiment stages; it must instead show
        # actual served traffic (and its flight section, if present,
        # must itself validate).
        counters = doc.get("metrics", {}).get("counters", {})
        if counters.get("serve.requests", 0) < 1:
            errors.append(f"{path}: serve manifest records no requests")
        if "flight" in doc:
            errors += [f"{path} (flight): {e}"
                       for e in _flight_errors(doc["flight"])]
    elif not any(name.startswith("experiment.") for name in stages):
        errors.append(f"{path}: no experiment.* stage recorded")
    resilience = doc.get("resilience", {})
    counts = resilience.get("counts", {})
    events = resilience.get("events", [])
    if sorted(counts) != sorted({e.get("event") for e in events
                                 if isinstance(e, dict)}):
        errors.append(f"{path}: resilience counts do not reconcile with "
                      f"the event list")
    for kind in expect_fault_events or ():
        if counts.get(kind, 0) < 1:
            errors.append(f"{path}: expected >=1 {kind!r} resilience "
                          f"event, ledger has {sorted(counts) or 'none'}")
    if not errors:
        print(f"ok: {path} — targets {doc['run']['targets']}, "
              f"cache {cache.get('hits')}h/{cache.get('misses')}m, "
              f"{len(stages)} stages, {len(events)} resilience event(s)")
    return errors


def _flight_errors(doc: dict) -> list:
    """Structural checks on one flight-recorder snapshot dict."""
    errors = validate_schema(doc, FLIGHT_SCHEMA)
    if errors:
        return errors
    if doc.get("kind") != "repro-flight-recorder":
        errors.append(f"kind is {doc.get('kind')!r}, expected "
                      "'repro-flight-recorder'")
    events = doc.get("events", [])
    seqs = [e.get("seq") for e in events]
    if any(b <= a for a, b in zip(seqs, seqs[1:])):
        errors.append("event seq numbers are not strictly increasing")
    if doc.get("dropped") != doc.get("total") - len(events):
        errors.append(
            f"drop counter does not reconcile: total {doc.get('total')} "
            f"- retained {len(events)} != dropped {doc.get('dropped')}")
    if len(events) > doc.get("capacity", 0) > 0:
        errors.append(f"{len(events)} events exceed capacity "
                      f"{doc.get('capacity')}")
    return errors


def check_flight(path: Path) -> list:
    doc = json.loads(path.read_text(encoding="utf-8"))
    errors = [f"{path}: {e}" for e in _flight_errors(doc)]
    if not errors:
        print(f"ok: {path} — {len(doc['events'])} events retained, "
              f"{doc['dropped']} dropped of {doc['total']}")
    return errors


def check_openmetrics_file(path: Path) -> list:
    text = path.read_text(encoding="utf-8")
    errors = [f"{path}: {p}" for p in check_openmetrics(text)]
    if not errors:
        families = sum(1 for ln in text.splitlines()
                       if ln.startswith("# TYPE "))
        print(f"ok: {path} — {families} metric families")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", type=Path, default=None,
                        help="Chrome trace-event JSON to validate")
    parser.add_argument("--manifest", type=Path, default=None,
                        help="run manifest JSON to validate")
    parser.add_argument("--openmetrics", type=Path, default=None,
                        help="OpenMetrics text scrape to validate")
    parser.add_argument("--flight", type=Path, default=None,
                        help="flight-recorder snapshot JSON to validate")
    parser.add_argument("--expect-workers", action="store_true",
                        help="require spans from >=2 distinct pids")
    parser.add_argument("--expect-fault-events", action="append",
                        metavar="KIND", default=[],
                        help="require >=1 resilience ledger event of KIND "
                             "in the manifest (repeatable)")
    args = parser.parse_args(argv)
    if all(a is None for a in (args.trace, args.manifest,
                               args.openmetrics, args.flight)):
        parser.error("nothing to validate: pass --trace, --manifest, "
                     "--openmetrics and/or --flight")

    errors = []
    if args.trace is not None:
        errors += check_trace(args.trace, args.expect_workers)
    if args.manifest is not None:
        errors += check_manifest(args.manifest, args.expect_fault_events)
    if args.openmetrics is not None:
        errors += check_openmetrics_file(args.openmetrics)
    if args.flight is not None:
        errors += check_flight(args.flight)
    for err in errors:
        print(f"error: {err}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
