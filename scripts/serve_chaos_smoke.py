"""Serve network-chaos smoke test (CI gate): bit parity under fire.

Boots the real serving CLI (``python -m repro.serve``) as a subprocess
with a deterministic fault plan that destroys or delays responses at
the transport (``conn_reset`` / ``slow_read`` / ``partial_write`` /
``garbled_response``) *and* poisons the first solver point
(``solver_nan``), then drives a serial sweep through
:class:`repro.serve.ResilientServeClient` — the retrying,
circuit-breaking client.  The gates:

* **bit parity** — every value the retrying client assembles must be
  byte-identical (``values_hex``) to a clean in-process reference: the
  scalar rescue bits for the poisoned point, invariant batch bits for
  every other point;
* **every fault fired** — the flight-recorder snapshot (archived as a
  CI artifact via ``--flight``) must carry one ``net_fault`` event per
  injected kind, and the client must have retried at least once;
* **nothing wedged** — ``/healthz`` reports an empty queue afterwards,
  and SIGTERM shutdown exits 0 with ``drained clean=True``.

Run directly::

    python scripts/serve_chaos_smoke.py --flight chaos-flight.json
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.chip_delay import ChipDelayEngine            # noqa: E402
from repro.devices.technology import get_technology          # noqa: E402
from repro.resilience import RetryPolicy                     # noqa: E402
from repro.serve import ResilientServeClient, ServeClient    # noqa: E402

import numpy as np                                           # noqa: E402

ARCH = dict(width=4, paths_per_lane=5, chain_length=10)
VDDS = [0.5, 0.52, 0.54, 0.56]

#: Request ordinals are assigned server-side in arrival order; the
#: serial client below makes them predictable: q0 is reset (retry hits
#: the memo at ordinal 1), q1 is ordinal 2, q2's response crawls out at
#: ordinal 3, q3's is truncated at ordinal 4 and garbled on the first
#: retry at ordinal 5 before succeeding at ordinal 6.
FAULT_SPEC = ("conn_reset:0,slow_read:3,partial_write:4,"
              "garbled_response:5,solver_nan:0")


def reference_hexes() -> list:
    """Clean in-process bits: scalar rescue for the poisoned first
    point, invariant batch for the rest."""
    engine = ChipDelayEngine(get_technology("22nm"), **ARCH)
    expected = [float(engine.chip_quantile(VDDS[0], 0.99, 0.0)).hex()]
    batch = engine.chip_quantile_batch(
        np.asarray(VDDS[1:], dtype=float), 0.99, 0.0, cluster=False)
    return expected + [float(v).hex() for v in np.atleast_1d(batch)]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--flight", type=Path,
                        default=Path("serve-chaos-flight.json"))
    args = parser.parse_args(argv)
    args.flight.parent.mkdir(parents=True, exist_ok=True)

    errors = []
    with tempfile.TemporaryDirectory() as cache_dir:
        env = dict(os.environ,
                   PYTHONPATH=str(REPO_ROOT / "src"),
                   REPRO_CACHE_DIR=cache_dir,
                   REPRO_FAULT_SLOW_S="0.05")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", "--port", "0",
             "--batch-window-ms", "1", "--flight-capacity", "256",
             "--inject-faults", FAULT_SPEC],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env, cwd=str(REPO_ROOT))
        try:
            line = proc.stdout.readline()
            if "listening on" not in line:
                proc.kill()
                _, stderr = proc.communicate()
                print(f"error: server failed to start: {line!r}\n{stderr}",
                      file=sys.stderr)
                return 1
            port = int(line.rsplit(":", 1)[1])
            print(f"ok: serve CLI up on port {port} with faults "
                  f"{FAULT_SPEC!r}")

            with ResilientServeClient(
                    "127.0.0.1", port, timeout=30,
                    policy=RetryPolicy(max_retries=3,
                                       backoff_base_s=0.01,
                                       backoff_cap_s=0.1)) as client:
                hexes = [client.query("22nm", vdd=v, **ARCH)
                         ["values_hex"][0] for v in VDDS]
                retries = client.retries
                health = client.health()
                snap = client.metrics()
                flight = client.flight()
            args.flight.write_text(
                json.dumps(flight, indent=2, sort_keys=True) + "\n",
                encoding="utf-8")

            expected = reference_hexes()
            if hexes != expected:
                errors.append(f"parity FAILED under chaos: served "
                              f"{hexes} != direct {expected}")
            else:
                print(f"ok: all {len(VDDS)} values bit-identical to the "
                      f"clean reference through {retries} client "
                      f"retries")
            if retries < 1:
                errors.append("client never retried: the fault plan "
                              "did not bite")
            counters = snap["counters"]
            for kind in ("conn_reset", "slow_read", "partial_write",
                         "garbled_response"):
                if counters.get(f"serve.net_fault.{kind}") != 1:
                    errors.append(f"fault {kind} did not fire exactly "
                                  f"once: {counters}")
            if counters.get("resilience.solver.fallback_scalar") != 1:
                errors.append("poisoned solve was not rescued by the "
                              "scalar fallback")
            net_events = [e for e in flight.get("events", [])
                          if e.get("kind") == "net_fault"]
            if len(net_events) != 4:
                errors.append(f"flight recorder saw {len(net_events)} "
                              f"net_fault events, expected 4")
            if health.get("queued"):
                errors.append(f"queue wedged: {health['queued']} points "
                              f"still pending after the sweep")
            if not errors:
                print(f"ok: {len(net_events)} net_fault flight events "
                      f"archived to {args.flight}, queue empty")

            proc.send_signal(signal.SIGTERM)
            stdout, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        if proc.returncode != 0:
            errors.append(f"server exited {proc.returncode}:\n{stderr}")
        elif "drained clean=True" not in stdout:
            errors.append(f"shutdown did not drain clean:\n{stdout}")
        else:
            print("ok: SIGTERM shutdown drained clean")

    for err in errors:
        print(f"error: {err}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
