"""Chaos smoke test (CI gate): crash recovery must not change a single bit.

Runs the paper's fig4 sweep twice — a fault-free serial baseline, then a
two-worker run with an injected worker crash — and requires the recovered
run's full result arrays to be *exactly* equal to the baseline (the
runtime's bit-reproducibility contract extends through the recovery
ladder).  Also round-trips the persistent quantile cache through a
bit-flip: the corrupt entry must be quarantined, counted and recomputed,
never crash the run.

Writes the chaos run's manifest (``--manifest FILE``, default
``chaos-manifest.json``) so CI can validate and archive it::

    python scripts/chaos_smoke.py --manifest chaos-manifest.json
    python scripts/validate_obs.py --manifest chaos-manifest.json \
        --expect-fault-events pool_respawn
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.registry import get_analyzer, run_experiment  # noqa: E402
from repro.obs.manifest import (                                     # noqa: E402
    build_manifest,
    cache_file_state,
    validate_schema,
    MANIFEST_SCHEMA,
)
from repro.resilience import parse_faults                            # noqa: E402
from repro.runtime import QuantileCache, build_runtime               # noqa: E402

FAULT_SPEC = "worker_crash:1"


def _fig4(jobs: int, faults: str | None, cache_dir: str):
    """One isolated fig4 run: fresh cache dir, fresh analyzer memos."""
    os.environ["REPRO_CACHE_DIR"] = cache_dir
    get_analyzer.cache_clear()
    runtime = build_runtime(jobs=jobs, metrics=True,
                            faults=parse_faults(faults))
    try:
        result = run_experiment("fig4", fast=True, runtime=runtime)
    finally:
        runtime.close()
    return result, runtime


def check_crash_recovery(manifest_path: str) -> list:
    errors = []
    with tempfile.TemporaryDirectory() as base_dir:
        baseline, _ = _fig4(1, None, os.path.join(base_dir, "baseline"))
        cache_before = cache_file_state()
        start = time.perf_counter()
        chaos, runtime = _fig4(2, FAULT_SPEC, os.path.join(base_dir, "chaos"))
        elapsed = time.perf_counter() - start
        cache_after = cache_file_state()
        get_analyzer.cache_clear()

    if baseline.data != chaos.data:
        for node in baseline.data:
            if baseline.data[node] != chaos.data.get(node):
                errors.append(f"fig4 {node}: recovered run diverged from "
                              f"the fault-free baseline")
    else:
        points = sum(len(col) for col in baseline.data.values())
        print(f"ok: fig4 under {FAULT_SPEC!r} bit-identical to the serial "
              f"baseline ({points} points)")

    counts = runtime.ledger.counts()
    if counts.get("pool_respawn", 0) < 1:
        errors.append(f"chaos run recorded no pool_respawn event "
                      f"(ledger: {counts or 'empty'}) — the injected crash "
                      f"did not exercise the recovery path")
    else:
        print(f"ok: recovery ledger {counts}")

    manifest = build_manifest(
        targets=["fig4"], fast=True, jobs=2, root_seed=0,
        profiler=runtime.profiler, metrics=runtime.obs.metrics,
        cache_before=cache_before, cache_after=cache_after,
        elapsed_wall_s=elapsed, resilience=runtime.ledger.as_dict(),
        faults=FAULT_SPEC)
    errors += validate_schema(manifest, MANIFEST_SCHEMA)
    with open(manifest_path, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"ok: chaos manifest written to {manifest_path}")
    return errors


def check_cache_roundtrip() -> list:
    errors = []
    with tempfile.TemporaryDirectory() as cache_dir:
        path = os.path.join(cache_dir, "quantiles.json")
        cache = QuantileCache(path=path, enabled=True)
        cache.put_many([("point:a", 1.5e-9), ("point:b", 2.5e-9)])

        doc = json.loads(Path(path).read_text(encoding="utf-8"))
        key = sorted(doc["entries"])[0]
        doc["entries"][key][0] = "0x1.badp-30"          # bit-flip the value
        Path(path).write_text(json.dumps(doc), encoding="utf-8")

        reread = QuantileCache(path=path, enabled=True)
        values = reread.get_many(["point:a", "point:b"])
        if values[0] is not None:
            errors.append("corrupted cache entry was served instead of "
                          "quarantined")
        if values[1] != 2.5e-9:
            errors.append("intact cache entry lost after quarantine")
        if reread.quarantined != 1:
            errors.append(f"expected 1 quarantined entry, "
                          f"counted {reread.quarantined}")

        reread.put_many([("point:a", 1.5e-9)])          # recompute + rewrite
        final = QuantileCache(path=path, enabled=True)
        if final.get_many(["point:a", "point:b"]) != [1.5e-9, 2.5e-9]:
            errors.append("cache did not recover after recomputing the "
                          "quarantined entry")
        if final.quarantined:
            errors.append("rewritten cache still contains corrupt entries")

        Path(path).write_text('{"version": 2, "entr', encoding="utf-8")
        truncated = QuantileCache(path=path, enabled=True)
        if truncated.get_many(["point:a"]) != [None]:
            errors.append("truncated cache file did not read as empty")
        if not os.path.exists(path + ".quarantined"):
            errors.append("truncated cache file was not moved aside")
    if not errors:
        print("ok: corrupt cache entries quarantined and recomputed; "
              "truncated file quarantined whole")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--manifest", default="chaos-manifest.json",
                        help="where to write the chaos run's manifest")
    args = parser.parse_args(argv)

    previous = os.environ.get("REPRO_CACHE_DIR")
    try:
        errors = check_crash_recovery(args.manifest)
        errors += check_cache_roundtrip()
    finally:
        if previous is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = previous
        get_analyzer.cache_clear()
    for err in errors:
        print(f"error: {err}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
