"""Setup shim: allows editable installs on environments whose setuptools
predates PEP 660 support (all real configuration lives in pyproject.toml)."""

from setuptools import setup

setup()
