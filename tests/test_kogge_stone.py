"""Kogge-Stone adder generator + statistical timing over it."""

import numpy as np
import pytest

from repro.circuits.kogge_stone import kogge_stone_adder
from repro.circuits.timing import StatisticalTimingEngine
from repro.errors import ConfigurationError


def test_rejects_non_power_of_two():
    with pytest.raises(ConfigurationError):
        kogge_stone_adder(48)
    with pytest.raises(ConfigurationError):
        kogge_stone_adder(1)


@pytest.mark.parametrize("width", [4, 8, 16])
def test_structure(width):
    nl = kogge_stone_adder(width)
    assert len(nl.primary_inputs) == 2 * width
    outs = set(nl.primary_outputs)
    assert {"cout"} | {f"s{i}" for i in range(width)} <= outs
    # Acyclic by construction.
    assert len(nl.topological_order()) == nl.n_cells


def test_depth_grows_logarithmically():
    d8 = kogge_stone_adder(8).logic_depth()
    d64 = kogge_stone_adder(64).logic_depth()
    # Prefix tree adds ~2 cells per doubling (AOI + INV).
    assert d64 - d8 == pytest.approx(2 * 3, abs=2)


def test_nominal_timing_scales_with_voltage(tech90):
    nl = kogge_stone_adder(16)
    eng = StatisticalTimingEngine(tech90)
    assert eng.nominal_delay(nl, 0.5) > 2 * eng.nominal_delay(nl, 1.0)


def test_statistical_timing_result(tech90):
    nl = kogge_stone_adder(16)
    eng = StatisticalTimingEngine(tech90, seed=0)
    res = eng.run(nl, 0.5, n_samples=400)
    assert res.delays.shape == (400,)
    assert np.all(res.delays > 0)
    assert res.mean > eng.nominal_delay(nl, 0.5) * 0.9
    assert 0.01 < res.three_sigma_over_mu < 0.5
    assert res.critical_output in nl.primary_outputs


def test_variation_grows_at_low_voltage(tech90):
    nl = kogge_stone_adder(8)
    eng1 = StatisticalTimingEngine(tech90, seed=1)
    hi = eng1.run(nl, 1.0, n_samples=600)
    eng2 = StatisticalTimingEngine(tech90, seed=1)
    lo = eng2.run(nl, 0.5, n_samples=600)
    assert lo.three_sigma_over_mu > hi.three_sigma_over_mu


def test_adder_variation_comparable_to_chain(analyzer90):
    """The paper's proxy claim: a 64-bit Kogge-Stone behaves like a
    50-FO4 chain in variation terms (Drego et al.: 8.4 % @ 0.5 V)."""
    nl = kogge_stone_adder(64)
    eng = StatisticalTimingEngine(analyzer90.tech, seed=2)
    res = eng.run(nl, 0.5, n_samples=500)
    chain = analyzer90.chain_variation(0.5, 50)
    assert res.three_sigma_over_mu == pytest.approx(chain, rel=0.5)
