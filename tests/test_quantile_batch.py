"""Batched quantile solver: parity with the scalar path, kernel caching,
and the analyzer/disk-cache threading."""

import numpy as np
import pytest

from repro.core.analyzer import VariationAnalyzer
from repro.core.chip_delay import ChipDelayEngine
from repro.devices.technology import available_technologies, get_technology
from repro.errors import ConfigurationError
from repro.runtime.cache import QuantileCache


@pytest.fixture(scope="module")
def engine(tech90):
    return ChipDelayEngine(tech90, width=16, paths_per_lane=10,
                           chain_length=20)


# -- batch vs scalar parity ----------------------------------------------------


@pytest.mark.parametrize("node", available_technologies())
def test_batch_matches_scalar_across_nodes(node):
    engine = ChipDelayEngine(get_technology(node), width=16,
                             paths_per_lane=10, chain_length=20)
    tech = engine.tech
    vdds = np.linspace(tech.min_vdd, tech.nominal_vdd, 12)
    batch = engine.chip_quantile_batch(vdds, 0.99, 0.0)
    scalar = np.array([engine.chip_quantile(v, 0.99) for v in vdds])
    np.testing.assert_allclose(batch, scalar, rtol=1e-10)


@pytest.mark.parametrize("q", [0.5, 0.99, 0.999])
@pytest.mark.parametrize("spares", [0.0, 1.5, 4.0])
def test_batch_matches_scalar_quantiles_and_fractional_spares(engine, q,
                                                              spares):
    vdds = np.linspace(0.5, 0.8, 9)
    batch = engine.chip_quantile_batch(vdds, q, spares)
    scalar = np.array([engine.chip_quantile(v, q, spares=spares)
                       for v in vdds])
    np.testing.assert_allclose(batch, scalar, rtol=1e-10)


def test_batch_broadcasts_and_scalar_returns_float(engine):
    grid = engine.chip_quantile_batch(
        np.array([[0.55], [0.65]]), 0.99, np.array([0.0, 2.0]))
    assert grid.shape == (2, 2)
    # More spares -> faster; higher vdd -> faster.
    assert grid[0, 1] < grid[0, 0]
    assert grid[1, 0] < grid[0, 0]
    scalar = engine.chip_quantile_batch(0.6, 0.99, 0.0)
    assert np.ndim(scalar) == 0
    assert scalar == pytest.approx(engine.chip_quantile(0.6), rel=1e-10)


def test_batch_dedupes_repeated_points(engine):
    vdds = np.array([0.6, 0.55, 0.6, 0.55, 0.6])
    out = engine.chip_quantile_batch(vdds, 0.99, 0.0)
    assert out[0] == out[2] == out[4]
    assert out[1] == out[3]
    assert out[0] != out[1]


def test_batch_validates_inputs(engine):
    with pytest.raises(ConfigurationError):
        engine.chip_quantile_batch(np.array([0.6]), 1.5, 0.0)
    with pytest.raises(ConfigurationError):
        engine.chip_quantile_batch(np.array([0.6]), 0.99, -1.0)


# -- cached CDF kernels --------------------------------------------------------


def test_chip_cdf_monotone_under_cached_kernel(engine):
    med = engine.chip_quantile(0.6, 0.5)
    xs = np.linspace(0.75 * med, 1.35 * med, 60)
    first = engine.chip_cdf(0.6, xs)
    again = engine.chip_cdf(0.6, xs)      # second call hits the kernel cache
    np.testing.assert_array_equal(first, again)
    assert np.all(np.diff(first) >= -1e-12)
    assert first[0] < 0.1 and first[-1] > 0.9


def test_kernel_cache_keyed_by_vdd(engine):
    engine._kernel_cache.clear()
    engine.chip_cdf(0.6, 1e-9)
    assert list(engine._kernel_cache) == [0.6]
    engine.chip_cdf(0.65, 1e-9)
    assert set(engine._kernel_cache) == {0.6, 0.65}
    # A kernel is conditioned on its own vdd: the two entries must differ.
    k60 = engine._kernel_cache[0.6]
    k65 = engine._kernel_cache[0.65]
    assert k60.vdd != k65.vdd
    assert not np.allclose(k60.mean, k65.mean, rtol=1e-3, atol=0.0)
    # Sub-rounding jitter maps onto the same kernel entry (no rebuild).
    engine.chip_cdf(0.6 + 1e-12, 1e-9)
    assert set(engine._kernel_cache) == {0.6, 0.65}


def test_kernel_cache_is_bounded_lru(engine):
    from repro.core import chip_delay

    engine._kernel_cache.clear()
    vdds = np.linspace(0.5, 0.9, chip_delay._KERNEL_CACHE_SIZE + 8)
    engine.chip_quantile_batch(vdds, 0.5, 0.0)
    assert len(engine._kernel_cache) <= max(chip_delay._KERNEL_CACHE_SIZE,
                                            vdds.size)
    # The most recent voltages survive; refreshing one keeps it alive.
    key = round(float(vdds[-1]), 9)
    assert key in engine._kernel_cache


# -- analyzer threading --------------------------------------------------------


def test_analyzer_chip_quantiles_matches_scalar(small_analyzer):
    vdds = np.array([0.58, 0.62, 0.66])
    batch = small_analyzer.chip_quantiles(vdds)
    for v, b in zip(vdds, batch):
        assert small_analyzer.chip_quantile(float(v)) == b


def test_analyzer_partial_disk_hit_fill_in(tmp_path, tech90):
    path = str(tmp_path / "q.json")
    first = VariationAnalyzer(tech90, width=8, paths_per_lane=4,
                              chain_length=10,
                              quantile_cache=QuantileCache(path=path,
                                                           enabled=True))
    warm = first.chip_quantiles(np.array([0.60, 0.64]))

    second = VariationAnalyzer(tech90, width=8, paths_per_lane=4,
                               chain_length=10,
                               quantile_cache=QuantileCache(path=path,
                                                            enabled=True))
    out = second.chip_quantiles(np.array([0.60, 0.62, 0.64, 0.66]))
    # The two warm points are exact disk hits; only the others solved.
    assert out[0] == warm[0] and out[2] == warm[1]
    assert second.quantile_cache.hits == 2
    assert second.quantile_cache.misses == 2
    # Everything is now memoised in-process: no further disk traffic.
    again = second.chip_quantiles(np.array([0.62, 0.66]))
    assert again[0] == out[1] and again[1] == out[3]
    assert second.quantile_cache.hits == 2


def test_analyzer_fractional_spares_do_not_collide(small_analyzer):
    """Regression: int(spares) memo keys collided 1.5 with 1."""
    q1 = small_analyzer.chip_quantile(0.6, spares=1)
    q15 = small_analyzer.chip_quantile(0.6, spares=1.5)
    q2 = small_analyzer.chip_quantile(0.6, spares=2)
    assert q2 < q15 < q1
    # And the batched path shares the same (non-colliding) memo entries.
    batch = small_analyzer.chip_quantiles(0.6, spares=np.array([1.0, 1.5, 2.0]))
    assert batch[0] == q1 and batch[1] == q15 and batch[2] == q2


def test_cache_get_many_put_many_roundtrip(tmp_path):
    cache = QuantileCache(path=str(tmp_path / "q.json"), enabled=True)
    cache.put_many([("a", 1.25), ("b", 2.5)])
    fresh = QuantileCache(path=str(tmp_path / "q.json"), enabled=True)
    assert fresh.get_many(["a", "missing", "b"]) == [1.25, None, 2.5]
    assert fresh.hits == 2 and fresh.misses == 1


def test_cache_get_many_disabled(tmp_path):
    cache = QuantileCache(path=str(tmp_path / "q.json"), enabled=False)
    cache.put_many([("a", 1.0)])
    assert cache.get_many(["a", "b"]) == [None, None]
    assert cache.misses == 2


# -- batch-composition invariance (cluster=False) ------------------------------


def _fresh_engine(tech90):
    return ChipDelayEngine(tech90, width=16, paths_per_lane=10,
                           chain_length=20)


def test_invariant_mode_bit_identical_across_groupings(tech90):
    """cluster=False roots depend only on their own point, never the batch.

    This is the serving dispatcher's contract: coalescing queries from
    unrelated clients must return exactly the bits a direct per-point
    call produces, so any grouping, permutation or chunking of the same
    points is bit-identical.
    """
    vdds = np.array([0.5, 0.55, 0.6, 0.7, 0.45])
    batch = _fresh_engine(tech90).chip_quantile_batch(vdds, 0.99, 0.0,
                                                      cluster=False)
    singles = np.array([
        _fresh_engine(tech90).chip_quantile_batch(v, 0.99, 0.0,
                                                  cluster=False)
        for v in vdds])
    np.testing.assert_array_equal(singles, batch)
    permuted = _fresh_engine(tech90).chip_quantile_batch(
        vdds[::-1], 0.99, 0.0, cluster=False)[::-1]
    np.testing.assert_array_equal(permuted, batch)
    chunked = _fresh_engine(tech90).chip_quantile_batch(
        vdds, 0.99, 0.0, cluster=False, chunk_size=2)
    np.testing.assert_array_equal(chunked, batch)


def test_invariant_mode_close_to_clustered(tech90):
    """Both modes solve the same equation to ~1e-12 relative."""
    vdds = np.linspace(0.5, 0.8, 10)
    a = _fresh_engine(tech90).chip_quantile_batch(vdds, 0.99, 0.0)
    b = _fresh_engine(tech90).chip_quantile_batch(vdds, 0.99, 0.0,
                                                  cluster=False)
    np.testing.assert_allclose(a, b, rtol=1e-11)


def test_analyzer_invariant_solves_match_engine(tmp_path, tech90):
    """analyzer.chip_quantiles(invariant=True) returns the engine's bits."""
    analyzer = VariationAnalyzer(
        tech90, width=16, paths_per_lane=10, chain_length=20,
        quantile_cache=QuantileCache(path=str(tmp_path / "q.json"),
                                     enabled=True))
    vdds = np.array([0.5, 0.6, 0.7])
    got = analyzer.chip_quantiles(vdds, 0, 0.99, invariant=True)
    expected = _fresh_engine(tech90).chip_quantile_batch(
        vdds, 0.99, 0.0, cluster=False)
    np.testing.assert_array_equal(got, expected)
