"""Technology cards and registry."""

import numpy as np
import pytest

from repro.devices.technology import (
    TechnologyNode,
    available_technologies,
    get_technology,
)
from repro.errors import TechnologyError, VoltageRangeError


def test_four_nodes_registered():
    assert available_technologies() == ("90nm", "45nm", "32nm", "22nm")


def test_lookup_variants():
    assert get_technology("90nm").name == "90nm"
    assert get_technology("90").name == "90nm"
    assert get_technology(" 22NM ").name == "22nm"


def test_unknown_node_raises():
    with pytest.raises(TechnologyError):
        get_technology("65nm")


def test_nominal_voltages_follow_paper():
    expected = {"90nm": 1.0, "45nm": 1.0, "32nm": 0.9, "22nm": 0.8}
    for name, vnom in expected.items():
        assert get_technology(name).nominal_vdd == pytest.approx(vnom)


def test_fo4_delay_decreases_with_voltage(any_tech):
    voltages = np.linspace(any_tech.min_vdd, any_tech.nominal_vdd, 30)
    delays = any_tech.fo4_delay(voltages)
    assert np.all(np.diff(delays) < 0)


def test_fo4_delay_increases_with_vth_shift(any_tech):
    slow = any_tech.fo4_delay(0.5, dvth=0.02)
    fast = any_tech.fo4_delay(0.5, dvth=-0.02)
    assert slow > any_tech.fo4_delay(0.5) > fast


def test_fo4_mult_factor(any_tech):
    base = any_tech.fo4_delay(0.6)
    assert any_tech.fo4_delay(0.6, mult=0.1) == pytest.approx(1.1 * base)


def test_log_fo4_delay_consistent(any_tech):
    v = np.linspace(any_tech.min_vdd, any_tech.nominal_vdd, 10)
    np.testing.assert_allclose(np.exp(any_tech.log_fo4_delay(v)),
                               any_tech.fo4_delay(v), rtol=1e-10)


def test_delay_voltage_slope_positive_and_steeper_at_ntv(any_tech):
    s_low = any_tech.delay_voltage_slope(0.5)
    s_high = any_tech.delay_voltage_slope(any_tech.nominal_vdd - 0.01)
    assert s_low > s_high > 0


def test_validate_vdd(any_tech):
    any_tech.validate_vdd(0.6)
    with pytest.raises(VoltageRangeError):
        any_tech.validate_vdd(any_tech.nominal_vdd + 0.2)
    with pytest.raises(VoltageRangeError):
        any_tech.validate_vdd(0.2)


def test_with_variation_swaps_model(tech90):
    quiet = tech90.with_variation(tech90.variation.scaled(0.0))
    assert quiet.variation.sigma_vth_wid == 0
    assert quiet.mosfet is tech90.mosfet


def test_card_construction_validation(tech90):
    with pytest.raises(TechnologyError):
        TechnologyNode(name="x", process="x", nominal_vdd=0.5, min_vdd=0.6,
                       mosfet=tech90.mosfet, variation=tech90.variation,
                       fo4_scale=1e-11)
    with pytest.raises(TechnologyError):
        TechnologyNode(name="x", process="x", nominal_vdd=1.0, min_vdd=0.5,
                       mosfet=tech90.mosfet, variation=tech90.variation,
                       fo4_scale=-1.0)


def test_scaling_order_faster_fo4(tech90, tech22):
    """Newer nodes are faster at their own nominal voltage."""
    assert (tech22.fo4_unit(tech22.nominal_vdd)
            < tech90.fo4_unit(tech90.nominal_vdd))
