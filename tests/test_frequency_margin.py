"""Frequency-margining solver and memory-clock alignment."""

import pytest

from repro.errors import ConfigurationError
from repro.mitigation.frequency_margin import (
    memory_aligned_period,
    solve_frequency_margin,
)


def test_drop_equals_fig4_drop(analyzer90):
    sol = solve_frequency_margin(analyzer90, 0.55)
    assert sol.performance_drop == pytest.approx(
        analyzer90.performance_drop(0.55), rel=1e-9)


def test_variation_aware_period_slower(analyzer90):
    sol = solve_frequency_margin(analyzer90, 0.6)
    assert sol.t_va_clk > sol.t_clk


def test_memory_alignment_rounds_up():
    assert memory_aligned_period(10.4, 2.0) == pytest.approx(12.0)
    assert memory_aligned_period(10.0, 2.0) == pytest.approx(10.0)
    with pytest.raises(ConfigurationError):
        memory_aligned_period(-1.0, 2.0)
    with pytest.raises(ConfigurationError):
        memory_aligned_period(1.0, 0.0)


def test_aligned_solution(analyzer90):
    mem = analyzer90.chip_quantile(analyzer90.nominal_vdd)
    sol = solve_frequency_margin(analyzer90, 0.6, memory_period=mem)
    assert sol.t_va_clk_aligned >= sol.t_va_clk
    assert sol.aligned_performance_drop >= sol.performance_drop
    # Aligned period is an exact multiple of the memory clock.
    ratio = sol.t_va_clk_aligned / mem
    assert ratio == pytest.approx(round(ratio), abs=1e-9)


def test_unaligned_solution_has_no_aligned_fields(analyzer90):
    sol = solve_frequency_margin(analyzer90, 0.6)
    assert sol.t_va_clk_aligned is None
    assert sol.aligned_performance_drop is None


def test_advanced_node_drop_larger(analyzer90, analyzer45):
    d90 = solve_frequency_margin(analyzer90, 0.55).performance_drop
    d45 = solve_frequency_margin(analyzer45, 0.55).performance_drop
    assert d45 > 2 * d90


def test_summary_contains_periods(analyzer90):
    sol = solve_frequency_margin(analyzer90, 0.6)
    text = sol.summary()
    assert "Tclk" in text and "Tva-clk" in text
