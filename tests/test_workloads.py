"""DLP workload models and the SIMD machine cycle model."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.simd.workloads import (
    KERNELS,
    Phase,
    SIMDMachine,
    Workload,
    color_space_conversion,
    conv2d,
    execute,
    fft,
    fir_filter,
)


@pytest.fixture(scope="module")
def machine(analyzer90):
    return SIMDMachine(analyzer=analyzer90, vdd=0.6, width=128)


def test_kernel_registry():
    assert set(KERNELS) == {"fir", "fft", "conv2d", "csc"}
    for factory in KERNELS.values():
        assert isinstance(factory(), Workload)


def test_fir_op_counts():
    wl = fir_filter(n_samples=256, n_taps=8)
    assert wl.total_vector_ops == 256 * 8
    assert wl.scalar_fraction < 0.01


def test_fft_structure():
    wl = fft(256)
    assert len(wl.phases) == 8                 # log2(256) stages
    assert wl.total_vector_ops == 8 * 10 * 128
    with pytest.raises(ConfigurationError):
        fft(100)


def test_conv2d_op_counts():
    wl = conv2d(8, 8, 3)
    assert wl.total_vector_ops == 64 * 9


def test_phase_validation():
    with pytest.raises(ConfigurationError):
        Phase("bad", vector_ops=-1, parallelism=4)
    with pytest.raises(ConfigurationError):
        Phase("bad", vector_ops=10, parallelism=0)
    with pytest.raises(ConfigurationError):
        Workload("empty", ())


def test_execute_cycle_accounting(machine):
    wl = color_space_conversion(n_pixels=128)
    report = execute(wl, machine)
    # 12*128 ops over 128 lanes (parallelism 128) -> 12 vector cycles.
    assert report.vector_cycles == 12
    assert report.scalar_cycles == 2
    assert report.cycles == 14
    assert report.runtime == pytest.approx(14 * machine.clock_period)


def test_wider_machine_fewer_cycles(analyzer90):
    wl = fir_filter(1024, 16)
    narrow = execute(wl, SIMDMachine(analyzer=analyzer90, vdd=0.6, width=32))
    wide = execute(wl, SIMDMachine(analyzer=analyzer90, vdd=0.6, width=128))
    assert wide.cycles < narrow.cycles
    # Vector part scales ~4x; scalar/shuffle parts do not (Amdahl).
    assert narrow.vector_cycles == pytest.approx(4 * wide.vector_cycles,
                                                 rel=0.01)


def test_width_cannot_exceed_parallelism(analyzer90):
    wl = Workload("tiny", (Phase("p", vector_ops=64, parallelism=8),))
    wide = execute(wl, SIMDMachine(analyzer=analyzer90, vdd=0.6, width=128))
    assert wide.vector_cycles == 8             # only 8 lanes usable
    assert wide.lane_utilization < 0.1


def test_ntv_slower_but_cheaper(analyzer90):
    wl = fft(1024)
    nominal = execute(wl, SIMDMachine(analyzer=analyzer90, vdd=1.0))
    ntv = execute(wl, SIMDMachine(analyzer=analyzer90, vdd=0.55))
    assert ntv.runtime > 3 * nominal.runtime
    assert ntv.energy < nominal.energy


def test_width_recovers_ntv_throughput(analyzer90):
    """The paper's premise: widening the SIMD array at NTV recovers the
    throughput of a narrow nominal-voltage design for DLP kernels."""
    wl = conv2d(64, 64, 3)
    narrow_nominal = execute(wl, SIMDMachine(analyzer=analyzer90, vdd=1.0,
                                             width=8))
    wide_ntv = execute(wl, SIMDMachine(analyzer=analyzer90, vdd=0.55,
                                       width=128))
    assert wide_ntv.runtime < narrow_nominal.runtime
    assert wide_ntv.energy < 1.2 * narrow_nominal.energy


def test_variation_aware_clock_slower(analyzer90):
    aware = SIMDMachine(analyzer=analyzer90, vdd=0.55, width=128,
                        variation_aware=True)
    ideal = SIMDMachine(analyzer=analyzer90, vdd=0.55, width=128,
                        variation_aware=False)
    assert aware.clock_period > ideal.clock_period
    assert aware.frequency < ideal.frequency


def test_report_summary_readable(machine):
    report = execute(fft(256), machine)
    assert "fft-256" in report.summary()
