"""Result containers."""

import numpy as np
import pytest

from repro.core.results import DelayDistribution, VariationSweep
from repro.errors import ConfigurationError


def _dist(samples=None, fo4=1e-10):
    if samples is None:
        samples = np.linspace(1e-9, 2e-9, 101)
    return DelayDistribution(samples=samples, vdd=0.6, label="test",
                             fo4_unit=fo4)


def test_distribution_statistics():
    d = _dist()
    assert d.mean == pytest.approx(1.5e-9)
    assert d.percentile(0) == pytest.approx(1e-9)
    assert d.percentile(100) == pytest.approx(2e-9)
    assert d.signoff_delay == pytest.approx(d.percentile(99))


def test_distribution_fo4_units():
    d = _dist(fo4=1e-10)
    np.testing.assert_allclose(d.in_fo4_units(), d.samples / 1e-10)
    assert d.signoff_fo4 == pytest.approx(d.signoff_delay / 1e-10)


def test_distribution_without_fo4_unit_raises():
    d = DelayDistribution(samples=np.ones(10) * 1e-9, vdd=0.6)
    with pytest.raises(ConfigurationError):
        d.in_fo4_units()


def test_distribution_rejects_empty():
    with pytest.raises(ConfigurationError):
        DelayDistribution(samples=np.array([]), vdd=0.6)
    with pytest.raises(ConfigurationError):
        DelayDistribution(samples=np.ones((3, 3)), vdd=0.6)


def test_distribution_histogram_in_ns():
    d = _dist()
    counts, edges = d.histogram(bins=10)
    assert counts.sum() == 101
    assert edges[0] == pytest.approx(1.0)   # ns
    assert edges[-1] == pytest.approx(2.0)


def test_distribution_summary_mentions_label():
    assert "test" in _dist().summary()


def test_sweep_interpolation():
    sweep = VariationSweep(x=np.array([0.5, 0.6, 0.7]),
                           values=np.array([10.0, 6.0, 5.0]))
    assert sweep.value_at(0.55) == pytest.approx(8.0)
    assert sweep.value_at(0.6) == pytest.approx(6.0)


def test_sweep_rows_sorted():
    sweep = VariationSweep(x=np.array([0.7, 0.5, 0.6]),
                           values=np.array([5.0, 10.0, 6.0]))
    xs = [x for x, _ in sweep.rows()]
    assert xs == sorted(xs)


def test_sweep_shape_mismatch():
    with pytest.raises(ConfigurationError):
        VariationSweep(x=np.array([1.0, 2.0]), values=np.array([1.0]))
