"""Fault-tolerant runtime: chaos recovery, crash-safe cache, fault lab."""

import json
import os

import numpy as np
import pytest

from repro.core.chip_delay import ChipDelayEngine
from repro.devices.technology import get_technology
from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    FaultSpecError,
    InjectedFaultError,
    ShardExecutionError,
    SolverNumericalError,
)
from repro.obs.api import activate_obs, build_obs
from repro.obs.manifest import MANIFEST_SCHEMA, build_manifest, validate_schema
from repro.resilience import (
    FaultLedger,
    FaultPlan,
    RetryPolicy,
    activate_ledger,
    install_faults,
    parse_faults,
)
from repro.runtime import ParallelSampler, QuantileCache, build_runtime

SMALL_ARCH = dict(width=4, paths_per_lane=3, chain_length=5)


# -- fault spec grammar --------------------------------------------------------


def test_parse_faults_grammar():
    plan = parse_faults("worker_crash:1,shard_error:0:3,solver_nan:2:inf")
    assert isinstance(plan, FaultPlan)
    assert plan.spec == "worker_crash:1,shard_error:0:3,solver_nan:2:inf"
    assert plan.pending("worker_crash") == [1]
    assert plan.pending("shard_error") == [0]
    assert plan.pending("solver_nan") == [2]
    assert parse_faults(None) is None
    assert parse_faults("   ") is None


def test_parse_faults_rejects_malformed():
    for bad in ("worker_crash", "bogus:1", "worker_crash:x",
                "worker_crash:-1", "worker_crash:1:0",
                "worker_crash:1:nope", "worker_crash:1:2:3"):
        with pytest.raises(FaultSpecError):
            parse_faults(bad)
    # FaultSpecError is a ConfigurationError: the CLI maps it to exit 2.
    assert issubclass(FaultSpecError, ConfigurationError)


def test_fault_plan_consumption_is_one_shot():
    plan = parse_faults("shard_error:3:2")
    assert plan.consume("shard_error", 3)
    assert plan.consume("shard_error", 3)
    assert not plan.consume("shard_error", 3)     # budget exhausted
    assert not plan.consume("shard_error", 4)     # never configured
    assert parse_faults("worker_hang:0").shard_faults(0) == ["worker_hang"]
    assert parse_faults("worker_hang:0").shard_faults(1) is None


def test_fault_plan_never_fires_from_other_processes():
    plan = parse_faults("solver_nan:0")
    plan._pid = os.getpid() + 1           # simulate a forked pool child
    assert not plan.is_local()
    assert plan.pending("solver_nan") == []
    assert not plan.consume("solver_nan", 0)


def test_cli_rejects_unknown_fault_spec(capsys):
    from repro.experiments.__main__ import main
    assert main(["fig4", "--fast", "--inject-faults", "bogus:1"]) == 2
    assert "unknown fault kind" in capsys.readouterr().err


# -- retry policy --------------------------------------------------------------


def test_retry_policy_validates():
    for bad in (dict(max_retries=-1), dict(shard_timeout_s=0.0),
                dict(backoff_base_s=-1.0), dict(max_pool_respawns=-1)):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**bad)


def test_backoff_is_deterministic_bounded_and_growing():
    policy = RetryPolicy(backoff_base_s=0.05, backoff_cap_s=2.0)
    assert policy.backoff_s(3, 1) == policy.backoff_s(3, 1)
    assert policy.backoff_s(3, 1) != policy.backoff_s(4, 1)   # jittered
    for attempt in range(1, 12):
        delay = policy.backoff_s(0, attempt)
        assert 0.0 < delay <= policy.backoff_cap_s
    # Exponential envelope before the cap bites.
    assert policy.backoff_s(0, 3) > policy.backoff_s(0, 1)


# -- chaos recovery: bit-identical results -------------------------------------


def _chaos_sample(tech, spec, retry=None, jobs=2):
    """Sampled chip delays under an injected fault plan + metrics + ledger."""
    ledger = FaultLedger()
    obs = build_obs(metrics=True)
    with activate_obs(obs), activate_ledger(ledger), \
            install_faults(parse_faults(spec)):
        sampler = ParallelSampler(jobs, shard_size=16, retry=retry)
        try:
            out = sampler.sample_chips(tech, 0.5, n_samples=64,
                                       spares=0, root_seed=11, **SMALL_ARCH)
        finally:
            sampler.close()
    return out, ledger, obs.metrics


@pytest.fixture(scope="module")
def serial_baseline():
    tech = get_technology("90nm")
    with ParallelSampler(1, shard_size=16) as sampler:
        return sampler.sample_chips(tech, 0.5, n_samples=64, spares=0,
                                    root_seed=11, **SMALL_ARCH)


def test_worker_crash_recovers_bit_identical(tech90, serial_baseline):
    out, ledger, metrics = _chaos_sample(tech90, "worker_crash:1")
    np.testing.assert_array_equal(out, serial_baseline)
    counts = ledger.counts()
    assert counts["worker_crash_detected"] == 1
    assert counts["pool_respawn"] == 1
    assert metrics.counter("resilience.pool_respawns").value == 1
    assert metrics.counter("resilience.reassignments").value >= 1


def test_hung_worker_recovers_bit_identical(tech90, serial_baseline,
                                            monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_HANG_S", "60")
    out, ledger, metrics = _chaos_sample(
        tech90, "worker_hang:0", retry=RetryPolicy(shard_timeout_s=1.0))
    np.testing.assert_array_equal(out, serial_baseline)
    counts = ledger.counts()
    assert counts["hung_worker_timeout"] == 1
    assert counts["pool_respawn"] == 1
    assert metrics.counter("resilience.shard_timeouts").value >= 1


def test_shard_error_retries_bit_identical(tech90, serial_baseline):
    out, ledger, metrics = _chaos_sample(tech90, "shard_error:2")
    np.testing.assert_array_equal(out, serial_baseline)
    assert ledger.counts() == {"shard_retry": 1}
    assert metrics.counter("resilience.retries").value == 1


def test_retry_exhaustion_raises_structured_error(tech90):
    with pytest.raises(ShardExecutionError) as excinfo:
        _chaos_sample(tech90, "shard_error:1:inf",
                      retry=RetryPolicy(max_retries=1))
    err = excinfo.value
    assert err.shards == (1,)                  # names the failed shard
    assert "shard" in str(err) and "1" in str(err)
    assert any("InjectedFaultError" in c for c in err.causes)


def test_serial_fallback_after_respawn_exhaustion(tech90, serial_baseline):
    # A shard that crashes its worker on *every* attempt: the dispatcher
    # must exhaust its respawn budget, degrade to in-process serial
    # execution (which never attaches fault payloads) and still match
    # the baseline bit for bit.
    out, ledger, metrics = _chaos_sample(
        tech90, "worker_crash:0:inf",
        retry=RetryPolicy(max_pool_respawns=1))
    np.testing.assert_array_equal(out, serial_baseline)
    assert ledger.counts()["serial_fallback"] == 1
    assert metrics.counter("resilience.serial_fallbacks").value == 1


def test_injected_worker_faults_do_not_fire_in_process(tech90,
                                                       serial_baseline):
    # jobs=1 never attaches fault payloads: a crash injection must not
    # take down the driver process.
    out, ledger, _ = _chaos_sample(tech90, "worker_crash:0", jobs=1)
    np.testing.assert_array_equal(out, serial_baseline)
    assert len(ledger) == 0


# -- fig4 end-to-end determinism under chaos -----------------------------------


def test_fig4_bit_identical_under_injected_crash(monkeypatch, tmp_path):
    from repro.experiments.registry import get_analyzer, run_experiment

    monkeypatch.setenv("REPRO_CACHE_DISABLE", "1")

    def run(jobs, faults):
        get_analyzer.cache_clear()      # force a genuine re-solve
        runtime = build_runtime(jobs=jobs, faults=parse_faults(faults))
        try:
            return run_experiment("fig4", fast=True, runtime=runtime), runtime
        finally:
            runtime.close()
            get_analyzer.cache_clear()

    baseline, _ = run(1, None)
    chaos, runtime = run(2, "worker_crash:0")
    assert chaos.data == baseline.data     # full arrays, exact equality
    assert runtime.ledger.counts()["pool_respawn"] >= 1


# -- crash-safe cache ----------------------------------------------------------


def test_cache_corrupt_entry_quarantined_and_recomputed(tmp_path):
    path = str(tmp_path / "quantiles.json")
    cache = QuantileCache(path=path, enabled=True)
    cache.put_many([("a", 1.5e-9), ("b", 2.5e-9)])

    doc = json.loads(open(path).read())
    doc["entries"]["a"][0] = "0x1.badp-30"         # bit-flip the value
    open(path, "w").write(json.dumps(doc))

    ledger = FaultLedger()
    obs = build_obs(metrics=True)
    with activate_obs(obs), activate_ledger(ledger):
        reread = QuantileCache(path=path, enabled=True)
        assert reread.get_many(["a", "b"]) == [None, 2.5e-9]
    assert reread.quarantined == 1
    assert obs.metrics.counter("resilience.cache.quarantined").value == 1
    assert ledger.counts() == {"cache_entry_quarantined": 1}

    reread.put_many([("a", 1.5e-9)])               # recompute + rewrite
    assert QuantileCache(path=path, enabled=True).get_many(
        ["a", "b"]) == [1.5e-9, 2.5e-9]


def test_cache_checksum_detects_swapped_entries(tmp_path):
    path = str(tmp_path / "quantiles.json")
    cache = QuantileCache(path=path, enabled=True)
    cache.put_many([("a", 1.5e-9), ("b", 2.5e-9)])
    doc = json.loads(open(path).read())
    doc["entries"]["a"], doc["entries"]["b"] = (doc["entries"]["b"],
                                                doc["entries"]["a"])
    open(path, "w").write(json.dumps(doc))
    # Checksums are keyed: swapping two valid records invalidates both.
    assert QuantileCache(path=path, enabled=True).get_many(
        ["a", "b"]) == [None, None]


def test_cache_truncated_file_quarantined_whole(tmp_path):
    path = str(tmp_path / "quantiles.json")
    QuantileCache(path=path, enabled=True).put_many([("a", 1.0e-9)])
    open(path, "w").write('{"version": 2, "entr')

    ledger = FaultLedger()
    obs = build_obs(metrics=True)
    with activate_obs(obs), activate_ledger(ledger):
        cache = QuantileCache(path=path, enabled=True)
        assert cache.get_many(["a"]) == [None]     # empty, not fatal
    assert os.path.exists(path + ".quarantined")
    assert ledger.counts() == {"cache_file_quarantined": 1}
    assert obs.metrics.counter(
        "resilience.cache.file_quarantined").value == 1
    # And the slot is immediately writable again.
    cache.put_many([("a", 1.0e-9)])
    assert QuantileCache(path=path, enabled=True).get("a") == 1.0e-9


def test_cache_old_format_version_reads_empty(tmp_path):
    path = str(tmp_path / "quantiles.json")
    open(path, "w").write(json.dumps(
        {"version": 1, "entries": {"a": "0x1.8p-30"}}))
    cache = QuantileCache(path=path, enabled=True)
    assert cache.get("a") is None
    assert cache.quarantined == 0      # stale format, not corruption


def test_cache_faultlab_corruption_injection(tmp_path):
    path = str(tmp_path / "quantiles.json")
    QuantileCache(path=path, enabled=True).put_many(
        [("a", 1.0e-9), ("b", 2.0e-9)])
    with install_faults(parse_faults("cache_corrupt:0")):
        cache = QuantileCache(path=path, enabled=True)
        values = cache.get_many(["a", "b"])
    assert values == [None, 2.0e-9]    # first sorted key poisoned
    assert cache.quarantined == 1
    # The injection was one-shot: a fresh read sees the intact file.
    assert QuantileCache(path=path, enabled=True).get_many(
        ["a", "b"]) == [1.0e-9, 2.0e-9]


def test_cache_writes_are_atomic_no_tmp_left(tmp_path):
    path = str(tmp_path / "quantiles.json")
    cache = QuantileCache(path=path, enabled=True)
    for i in range(4):
        cache.put_many([(f"k{i}", float(i + 1))])
    leftovers = [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]
    assert leftovers == []
    assert len(QuantileCache(path=path, enabled=True)) == 4


# -- solver guardrails ---------------------------------------------------------


@pytest.fixture(scope="module")
def small_engine():
    return ChipDelayEngine(get_technology("90nm"), **SMALL_ARCH)


def test_solver_nan_injection_falls_back_to_scalar(small_engine):
    vdds = np.linspace(0.35, 0.6, 6)
    baseline = small_engine.chip_quantile_batch(vdds, 0.99, 0.0)
    ledger = FaultLedger()
    obs = build_obs(metrics=True)
    with activate_obs(obs), activate_ledger(ledger), \
            install_faults(parse_faults("solver_nan:2")):
        out = small_engine.chip_quantile_batch(vdds, 0.99, 0.0)
    # The scalar Brent fallback re-derives the root to solver tolerance.
    np.testing.assert_allclose(out, baseline, rtol=1e-9)
    assert ledger.counts() == {"solver_fallback_scalar": 1}
    assert obs.metrics.counter(
        "resilience.solver.fallback_scalar").value == 1


def test_solver_montecarlo_last_resort(small_engine, monkeypatch):
    vdds = np.linspace(0.35, 0.6, 6)
    baseline = small_engine.chip_quantile_batch(vdds, 0.99, 0.0)

    def broken_scalar(self, *args, **kwargs):
        raise ConvergenceError("scalar solver down for this test")

    monkeypatch.setattr(ChipDelayEngine, "chip_quantile", broken_scalar)
    obs = build_obs(metrics=True)
    with activate_obs(obs), install_faults(parse_faults("solver_nan:1")):
        out = small_engine.chip_quantile_batch(vdds, 0.99, 0.0)
    # Monte-Carlo is noisy (~1/sqrt(n) in the tail) but unbiased.
    np.testing.assert_allclose(out, baseline, rtol=0.05)
    assert obs.metrics.counter(
        "resilience.solver.fallback_montecarlo").value == 1


def test_solver_unrecoverable_raises_with_coordinates(small_engine,
                                                      monkeypatch):
    def broken_scalar(self, *args, **kwargs):
        raise ConvergenceError("down")

    monkeypatch.setattr(ChipDelayEngine, "chip_quantile", broken_scalar)
    monkeypatch.setattr(ChipDelayEngine, "_montecarlo_quantile",
                        lambda self, *a, **k: float("nan"))
    with install_faults(parse_faults("solver_nan:0")):
        with pytest.raises(SolverNumericalError) as excinfo:
            small_engine.chip_quantile_batch([0.5], 0.99, 0.0)
    (point,) = excinfo.value.points
    assert point == (0.5, 0.99, 0.0)           # (vdd, q, spares)


def test_injected_fault_error_is_structured():
    err = InjectedFaultError("injected shard_error on shard 3")
    assert "shard 3" in str(err)


# -- manifest integration ------------------------------------------------------


def test_manifest_embeds_resilience_ledger():
    ledger = FaultLedger()
    ledger.record("pool_respawn", stage="s", reason="worker_crash",
                  respawn=1, reassigned=[0, 1])
    manifest = build_manifest(
        targets=["fig4"], fast=True, jobs=2, root_seed=0, profiler=None,
        metrics=None, cache_before={"path": "p", "entries": 0, "bytes": 0},
        cache_after={"path": "p", "entries": 0, "bytes": 0},
        elapsed_wall_s=1.0, resilience=ledger.as_dict(),
        faults="worker_crash:1")
    assert validate_schema(manifest, MANIFEST_SCHEMA) == []
    assert manifest["run"]["faults"] == "worker_crash:1"
    assert manifest["resilience"]["counts"] == {"pool_respawn": 1}
    # A fault-free manifest still carries an (empty) resilience section.
    clean = build_manifest(
        targets=["fig4"], fast=True, jobs=1, root_seed=0, profiler=None,
        metrics=None, cache_before={"path": "p", "entries": 0, "bytes": 0},
        cache_after={"path": "p", "entries": 0, "bytes": 0},
        elapsed_wall_s=1.0)
    assert validate_schema(clean, MANIFEST_SCHEMA) == []
    assert clean["resilience"] == {"events": [], "counts": {}}


def test_ledger_render_and_counts():
    ledger = FaultLedger()
    assert "no faults" in ledger.render()
    ledger.record("shard_retry", shard=1)
    ledger.record("shard_retry", shard=2)
    ledger.record("pool_respawn", respawn=1)
    assert ledger.counts() == {"pool_respawn": 1, "shard_retry": 2}
    assert len(ledger) == 3
    text = ledger.render()
    assert "shard_retry" in text and "2" in text
