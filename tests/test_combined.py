"""Combined duplication + margining optimisation."""

import pytest

from repro.errors import ConfigurationError
from repro.mitigation.combined import (
    enumerate_combinations,
    evaluate_point,
    optimize_combination,
    required_margin_for_spares,
)


def test_margin_decreases_with_spares(analyzer45):
    margins = [required_margin_for_spares(analyzer45, 0.6, s)
               for s in (0, 2, 8, 26)]
    assert all(m is not None for m in margins)
    assert all(a >= b for a, b in zip(margins, margins[1:]))


def test_pure_margining_matches_margin_solver(analyzer45):
    from repro.mitigation.voltage_margin import solve_voltage_margin
    combo = required_margin_for_spares(analyzer45, 0.6, 0)
    pure = solve_voltage_margin(analyzer45, 0.6).margin
    assert combo == pytest.approx(pure, abs=2e-5)


def test_enumerate_combinations_rows(analyzer45):
    points = enumerate_combinations(analyzer45, 0.6, (0, 2, 8))
    assert [p.spares for p in points] == [0, 2, 8]
    assert all(p.feasible for p in points)
    # Margin power falls, spare power rises.
    assert points[0].margin_power_overhead > points[-1].margin_power_overhead
    assert points[0].spare_power_overhead < points[-1].spare_power_overhead


def test_optimum_beats_pure_techniques(analyzer45):
    best = optimize_combination(analyzer45, 0.6)
    pure_margin = evaluate_point(analyzer45, 0.6, 0)
    assert best.power_overhead <= pure_margin.power_overhead + 1e-12
    assert best.feasible
    # Paper's headline: the optimum is an interior point at 45nm/600mV.
    assert best.spares > 0
    assert best.margin > 0


def test_point_accounting_consistent(analyzer45):
    from repro.simd.diet_soda import DIET_SODA
    p = evaluate_point(analyzer45, 0.6, 4)
    assert p.power_overhead == pytest.approx(
        DIET_SODA.spare_power_overhead(4)
        + DIET_SODA.margin_power_overhead(0.6, p.margin))
    assert p.area_overhead == pytest.approx(DIET_SODA.spare_area_overhead(4))
    assert "spares" in p.summary()


def test_negative_spares_rejected(analyzer45):
    with pytest.raises(ConfigurationError):
        required_margin_for_spares(analyzer45, 0.6, -1)


def test_infeasible_budget_returns_none(analyzer45):
    assert required_margin_for_spares(analyzer45, 0.5, 0,
                                      max_margin=1e-4) is None
