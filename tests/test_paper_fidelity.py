"""Fidelity contract: the calibrated cards must reproduce the paper's
anchors within stated tolerances.

These tests pin the *shape* claims of the paper (who wins, orderings,
growth patterns) tightly and the absolute values loosely; EXPERIMENTS.md
records the exact residuals.  If a card constant is retuned, these tests
define what "still reproduces the paper" means.
"""

import math

import pytest

from repro.devices.paper_anchors import (
    CHAIN50_ABS_DELAY_NS,
    FIG1_CHAIN50_3SIGMA,
    FIG1_SINGLE_3SIGMA,
    FIG2_POINTS,
    FIG4_PERF_DROP,
    TABLE1,
    TABLE2,
)
from repro.experiments.registry import get_analyzer
from repro.mitigation.voltage_margin import solve_voltage_margin
from repro.sparing.duplication import solve_spares

NODES = ("90nm", "45nm", "32nm", "22nm")


# -- Figure 1 -----------------------------------------------------------------


@pytest.mark.parametrize("vdd,paper", list(FIG1_CHAIN50_3SIGMA.items()))
def test_fig1_chain_variation(vdd, paper):
    model = 100 * get_analyzer("90nm").chain_variation(vdd, 50)
    assert model == pytest.approx(paper, rel=0.08)


@pytest.mark.parametrize("vdd,paper", list(FIG1_SINGLE_3SIGMA.items()))
def test_fig1_single_inverter_variation(vdd, paper):
    model = 100 * get_analyzer("90nm").chain_variation(vdd, 1)
    assert model == pytest.approx(paper, rel=0.10)


def test_fig1_chain_averaging_effect():
    """Single-gate variation far exceeds chain variation at every Vdd."""
    analyzer = get_analyzer("90nm")
    for vdd in FIG1_SINGLE_3SIGMA:
        assert (analyzer.chain_variation(vdd, 1)
                > 2 * analyzer.chain_variation(vdd, 50))


@pytest.mark.parametrize("vdd,paper_ns", list(CHAIN50_ABS_DELAY_NS.items()))
def test_section32_absolute_chain_delays(vdd, paper_ns):
    model_ns = 1e9 * get_analyzer("90nm").chain_mean_delay(vdd, 50)
    assert model_ns == pytest.approx(paper_ns, rel=0.10)


# -- Figure 2 -----------------------------------------------------------------


def test_fig2_22nm_endpoints():
    analyzer = get_analyzer("22nm")
    assert 100 * analyzer.chain_variation(0.8) == pytest.approx(
        FIG2_POINTS["22nm"][0.8], rel=0.10)
    assert 100 * analyzer.chain_variation(0.5) == pytest.approx(
        FIG2_POINTS["22nm"][0.5], rel=0.10)


def test_fig2_scaling_ratio_at_055():
    ratio = (get_analyzer("22nm").chain_variation(0.55)
             / get_analyzer("90nm").chain_variation(0.55))
    assert ratio == pytest.approx(FIG2_POINTS["ratio_22_over_90_at_055"],
                                  rel=0.15)


def test_fig2_variation_grows_as_vdd_falls():
    for node in NODES:
        analyzer = get_analyzer(node)
        values = [analyzer.chain_variation(v)
                  for v in (0.5, 0.6, 0.7, analyzer.nominal_vdd)]
        assert all(a > b for a, b in zip(values, values[1:]))


def test_fig2_90nm_is_least_variable():
    for node in ("45nm", "32nm", "22nm"):
        assert (get_analyzer(node).chain_variation(0.55)
                > get_analyzer("90nm").chain_variation(0.55))


# -- Figure 4 -----------------------------------------------------------------


def test_fig4_90nm_drop_small():
    """Headline claim: 90nm performance drop at 0.5 V is only ~5 %."""
    drop = 100 * get_analyzer("90nm").performance_drop(0.5)
    assert drop == pytest.approx(FIG4_PERF_DROP["90nm"][0.5], abs=2.5)
    assert drop < 10


def test_fig4_22nm_drop_large():
    drop = 100 * get_analyzer("22nm").performance_drop(0.5)
    assert drop == pytest.approx(FIG4_PERF_DROP["22nm"][0.5], rel=0.25)


def test_fig4_drop_ordering_90_vs_22():
    for vdd in (0.5, 0.6, 0.7):
        assert (get_analyzer("22nm").performance_drop(vdd)
                > get_analyzer("90nm").performance_drop(vdd))


# -- Table 1 ------------------------------------------------------------------


def test_table1_saturation_cells():
    """Every paper ">128" cell must saturate (or nearly so) in the model."""
    for node, rows in TABLE1.items():
        for vdd, entry in rows.items():
            if not entry.saturated:
                continue
            sol = solve_spares(get_analyzer(node), vdd)
            assert (not sol.feasible) or sol.spares > 96, f"{node}@{vdd}"


def test_table1_feasible_cells_within_2x():
    for node, rows in TABLE1.items():
        for vdd, entry in rows.items():
            if entry.saturated:
                continue
            sol = solve_spares(get_analyzer(node), vdd)
            assert sol.feasible, f"{node}@{vdd} unexpectedly saturated"
            ratio = (sol.spares + 1) / (entry.spares + 1)
            assert 1 / 3 < ratio < 3, \
                f"{node}@{vdd}: {sol.spares} vs paper {entry.spares}"


def test_table1_exponential_growth_90nm():
    counts = [solve_spares(get_analyzer("90nm"), v).spares
              for v in (0.5, 0.55, 0.6, 0.65, 0.7)]
    assert counts[0] > 4 * counts[2] >= counts[2] > counts[4]


# -- Table 2 ------------------------------------------------------------------


def test_table2_margins_within_50pct():
    for node, rows in TABLE2.items():
        for vdd, entry in rows.items():
            sol = solve_voltage_margin(get_analyzer(node), vdd)
            assert sol.feasible, f"{node}@{vdd}"
            assert sol.margin_mv == pytest.approx(entry.margin_mv, rel=0.5), \
                f"{node}@{vdd}: {sol.margin_mv:.1f} vs {entry.margin_mv}"


def test_table2_90nm_margins_are_smallest():
    for vdd in (0.5, 0.6, 0.7):
        m90 = solve_voltage_margin(get_analyzer("90nm"), vdd).margin_mv
        for node in ("45nm", "32nm", "22nm"):
            assert solve_voltage_margin(get_analyzer(node), vdd).margin_mv > m90


# -- Section 4.4 headline -----------------------------------------------------


def test_combined_beats_pure_at_45nm_600mv():
    """Paper Table 3: a few spares + a few mV beats either pure scheme."""
    from repro.mitigation.combined import evaluate_point, optimize_combination
    analyzer = get_analyzer("45nm")
    best = optimize_combination(analyzer, 0.6)
    pure_margin = evaluate_point(analyzer, 0.6, 0)
    pure_dup = solve_spares(analyzer, 0.6)
    assert best.power_overhead < pure_margin.power_overhead
    assert best.power_overhead < pure_dup.power_overhead
    assert 0 < best.spares < pure_dup.spares


def test_conclusion_90nm_duplication_alone_suffices():
    """Paper conclusion: at 90nm structural duplication alone handles the
    variation with small overhead at sensible NTV points."""
    sol = solve_spares(get_analyzer("90nm"), 0.6)
    assert sol.feasible
    assert sol.power_overhead < 0.03
