"""VariationAnalyzer: the high-level API."""

import numpy as np
import pytest

from repro.core.analyzer import VariationAnalyzer
from repro.core.results import DelayDistribution
from repro.errors import ConfigurationError


def test_accepts_name_or_card(tech90):
    by_name = VariationAnalyzer("90nm", width=4, paths_per_lane=2,
                                chain_length=5)
    by_card = VariationAnalyzer(tech90, width=4, paths_per_lane=2,
                                chain_length=5)
    assert by_name.tech.name == by_card.tech.name == "90nm"


def test_rejects_bad_inputs(tech90):
    with pytest.raises(ConfigurationError):
        VariationAnalyzer(123)
    with pytest.raises(ConfigurationError):
        VariationAnalyzer(tech90, signoff_quantile=1.5)


def test_performance_drop_zero_at_nominal(small_analyzer):
    assert small_analyzer.performance_drop(
        small_analyzer.nominal_vdd) == pytest.approx(0.0, abs=1e-12)


def test_performance_drop_positive_at_ntv(small_analyzer):
    assert small_analyzer.performance_drop(0.55) > 0


def test_performance_drop_monotone(small_analyzer):
    drops = [small_analyzer.performance_drop(v)
             for v in (0.5, 0.6, 0.7, 0.8)]
    assert all(a > b for a, b in zip(drops, drops[1:]))


def test_target_delay_definition(small_analyzer):
    v = 0.55
    expected = (small_analyzer.fo4_unit(v)
                * small_analyzer.nominal_signoff_fo4())
    assert small_analyzer.target_delay(v) == pytest.approx(expected)


def test_target_below_achieved_at_ntv(small_analyzer):
    """The unmitigated chip misses the target at NTV (that's the problem
    the paper mitigates)."""
    assert small_analyzer.chip_quantile(0.55) > small_analyzer.target_delay(0.55)


def test_chip_quantile_cached(small_analyzer):
    a = small_analyzer.chip_quantile(0.61)
    b = small_analyzer.chip_quantile(0.61)
    assert a is b or a == b


def test_distributions_have_fo4_units(small_analyzer):
    dist = small_analyzer.chip_distribution(0.6, n_samples=500, seed=1)
    assert isinstance(dist, DelayDistribution)
    fo4 = dist.in_fo4_units()
    # A 20-gate path must sit near 20 FO4 units and above.
    assert 15 < float(np.median(fo4)) < 40


def test_distribution_labels(small_analyzer):
    assert small_analyzer.chip_distribution(
        0.6, n_samples=10, seed=0).label == "16-wide@0.6V"
    assert small_analyzer.chip_distribution(
        0.6, spares=2, n_samples=10, seed=0).label == "16-wide+2-spares@0.6V"
    assert small_analyzer.lane_distribution(
        0.6, n_samples=10, seed=0).label == "1-wide@0.6V"
    assert small_analyzer.path_distribution(
        0.6, n_samples=10, seed=0).label == "critical-path@0.6V"


def test_chain_variation_fraction(analyzer90):
    v = analyzer90.chain_variation(0.5)
    assert 0.03 < v < 0.25  # a fraction, not percent


def test_monte_carlo_factory_shares_card(small_analyzer):
    mc = small_analyzer.monte_carlo(seed=0)
    assert mc.tech is small_analyzer.tech


def test_architecture_parameters_exposed(small_analyzer):
    assert small_analyzer.width == 16
    assert small_analyzer.paths_per_lane == 10
    assert small_analyzer.chain_length == 20
