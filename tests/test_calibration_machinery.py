"""Calibration machinery (anchor decomposition, guesses, residuals).

These test the *fitting tools*, not the fit itself (the baked constants
are pinned by tests/test_paper_fidelity.py).  Full least-squares runs
are too slow for the suite; residual evaluation and guess construction
are cheap and catch regressions in the machinery.
"""

import numpy as np
import pytest

from repro.devices.calibration import (
    CardParameters,
    card_parameters_of,
    decompose_fig1_anchors,
    initial_guess_90nm,
    make_card,
    primary_residuals,
    secondary_residuals,
)
from repro.devices.paper_anchors import (
    FIG1_CHAIN50_3SIGMA,
    FIG1_SINGLE_3SIGMA,
)


def test_anchor_decomposition_consistency():
    """r/c must recombine to the original single/chain anchors."""
    anchors = decompose_fig1_anchors()
    for vdd, (r, c) in anchors.items():
        single = 300 * np.hypot(r, c)
        chain = 300 * np.hypot(r / np.sqrt(50), c)
        assert single == pytest.approx(FIG1_SINGLE_3SIGMA[vdd], rel=1e-6)
        assert chain == pytest.approx(FIG1_CHAIN50_3SIGMA[vdd], rel=1e-6)


def test_anchor_decomposition_random_dominates():
    anchors = decompose_fig1_anchors()
    for vdd, (r, c) in anchors.items():
        assert r > c > 0


def test_initial_guess_shape_and_bounds():
    x0 = initial_guess_90nm(0.30, 0.17, 1.25, 1.8, 0.3)
    assert x0.shape == (12,)
    # Sigmas non-negative, scale is a log.
    assert np.all(x0[5:11] >= 0)
    assert -30 < x0[11] < -18


def test_initial_guess_hits_fig1_endpoints():
    """The delta-method start must land near the 1.0/0.5 V anchors."""
    from repro.core.analyzer import VariationAnalyzer
    x0 = initial_guess_90nm(0.30, 0.17, 1.25, 1.8, 0.3)
    p = CardParameters(
        vth0=x0[0], vth_split=x0[1], n_slope=x0[2], alpha=x0[3],
        strength_p=x0[4], sigma_vth_wid=x0[5], sigma_vth_lane=x0[6],
        sigma_vth_d2d=x0[7], sigma_mult_rand=x0[8], sigma_mult_lane=x0[9],
        sigma_mult_corr=x0[10], fo4_scale=float(np.exp(x0[11])))
    analyzer = VariationAnalyzer(make_card("90nm", p))
    assert 100 * analyzer.chain_variation(1.0, 1) == pytest.approx(
        FIG1_SINGLE_3SIGMA[1.0], rel=0.1)
    assert 100 * analyzer.chain_variation(0.5, 50) == pytest.approx(
        FIG1_CHAIN50_3SIGMA[0.5], rel=0.1)


def test_card_parameters_roundtrip():
    p = card_parameters_of("90nm")
    card = make_card("90nm", p)
    baked = card_parameters_of("90nm")
    assert card.mosfet.vth0 == pytest.approx(baked.vth0)
    assert card.variation.sigma_mult_lane == pytest.approx(
        baked.sigma_mult_lane)


def test_primary_residuals_small_at_baked_constants():
    """The shipped card must sit near the fit optimum."""
    p = card_parameters_of("90nm")
    theta = np.array([p.vth0, p.vth_split, p.n_slope, p.alpha, p.strength_p,
                      p.sigma_vth_wid, p.sigma_vth_lane, p.sigma_vth_d2d,
                      p.sigma_mult_rand, p.sigma_mult_lane,
                      p.sigma_mult_corr, np.log(p.fo4_scale)])
    residuals = primary_residuals(theta)
    cost = 0.5 * float(np.sum(residuals ** 2))
    assert cost < 30.0


def test_secondary_residuals_small_at_baked_constants():
    inherited = card_parameters_of("90nm")
    for node in ("45nm", "32nm", "22nm"):
        p = card_parameters_of(node)
        theta = np.array([p.vth0, p.vth_split, p.sigma_vth_wid,
                          p.sigma_vth_lane, p.sigma_vth_d2d])
        residuals = secondary_residuals(theta, node, inherited)
        cost = 0.5 * float(np.sum(residuals ** 2))
        assert cost < 30.0, node


def test_format_card_is_valid_python():
    p = card_parameters_of("90nm")
    snippet = p.format_card("90nm")
    from repro.devices.mosfet import TransregionalModel
    from repro.devices.technology import TechnologyNode
    from repro.devices.variation import VariationModel
    card = eval(snippet.replace('process="..."', 'process="x"'),
                {"TechnologyNode": TechnologyNode,
                 "TransregionalModel": TransregionalModel,
                 "VariationModel": VariationModel})
    assert card.mosfet.vth0 == pytest.approx(p.vth0, abs=1e-4)
