"""Adder topologies: functional correctness and the depth-variation study."""

import numpy as np
import pytest

from repro.circuits.adders import (
    adder_comparison,
    brent_kung_adder,
    ripple_carry_adder,
)
from repro.circuits.kogge_stone import kogge_stone_adder
from repro.errors import ConfigurationError


def _run_adder(netlist, width, a, b):
    """Feed integers a, b and read back the sum from the netlist."""
    inputs = {}
    for i in range(width):
        inputs[f"a{i}"] = bool((a >> i) & 1)
        inputs[f"b{i}"] = bool((b >> i) & 1)
    values = netlist.evaluate(inputs)
    total = sum(int(values[f"s{i}"]) << i for i in range(width))
    total += int(values["cout"]) << width
    return total


@pytest.mark.parametrize("generator", [ripple_carry_adder, brent_kung_adder,
                                       kogge_stone_adder])
def test_adders_add_exhaustive_4bit(generator):
    nl = generator(4)
    for a in range(16):
        for b in range(16):
            assert _run_adder(nl, 4, a, b) == a + b, \
                f"{nl.name}: {a}+{b}"


@pytest.mark.parametrize("generator", [ripple_carry_adder, brent_kung_adder,
                                       kogge_stone_adder])
def test_adders_add_random_16bit(generator):
    nl = generator(16)
    rng = np.random.default_rng(0)
    for _ in range(50):
        a, b = int(rng.integers(0, 2 ** 16)), int(rng.integers(0, 2 ** 16))
        assert _run_adder(nl, 16, a, b) == a + b


def test_depth_ordering():
    """Ripple is deep, prefix trees shallow; Brent-Kung between chain
    and Kogge-Stone in cell count."""
    rc = ripple_carry_adder(64)
    bk = brent_kung_adder(64)
    ks = kogge_stone_adder(64)
    assert rc.logic_depth() > 3 * bk.logic_depth()
    assert bk.n_cells < ks.n_cells
    assert bk.logic_depth() >= ks.logic_depth()


def test_generator_validation():
    with pytest.raises(ConfigurationError):
        ripple_carry_adder(0)
    with pytest.raises(ConfigurationError):
        brent_kung_adder(48)


def test_variation_tracks_depth(tech90):
    """The Fig. 11 argument across topologies: deeper logic averages more
    within-die randomness, so the deep ripple adder varies *less* than
    the shallow prefix trees at the same voltage."""
    results = adder_comparison(tech90, vdd=0.5, width=16, n_samples=300,
                               seed=1)
    assert set(results) == {"ripple-carry", "brent-kung", "kogge-stone"}
    rc = results["ripple-carry"]
    ks = results["kogge-stone"]
    assert rc["depth"] > ks["depth"]
    assert rc["three_sigma_over_mu"] < ks["three_sigma_over_mu"]
    # Deep chain is slower in absolute terms.
    assert rc["mean"] > ks["mean"]
