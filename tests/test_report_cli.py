"""Report rendering and the experiments CLI."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.__main__ import main as cli_main
from repro.experiments.report import TextTable, format_value


# -- format_value -------------------------------------------------------------


def test_format_value_basics():
    assert format_value(None) == "-"
    assert format_value(True) == "yes"
    assert format_value(False) == "no"
    assert format_value(3) == "3"
    assert format_value(3.14159) == "3.14"
    assert format_value("abc") == "abc"


def test_format_value_extremes():
    assert "e" in format_value(1.5e9)
    assert "e" in format_value(1.5e-7)
    assert format_value(float("nan")) == "-"
    assert format_value(0.0) == "0.00"


def test_format_value_precision():
    assert format_value(3.14159, precision=4) == "3.1416"


# -- TextTable ----------------------------------------------------------------


def test_table_alignment():
    table = TextTable("My Table", ["col", "value"])
    table.add_row("a", 1.0)
    table.add_row("bbbb", 22.5)
    text = table.render()
    lines = text.splitlines()
    assert lines[0] == "My Table"
    # All data rows share the same width.
    widths = {len(l) for l in lines[2:]}
    assert len(widths) == 1


def test_table_rejects_ragged_rows():
    table = TextTable("t", ["a", "b"])
    with pytest.raises(ConfigurationError):
        table.add_row(1)


# -- CLI ------------------------------------------------------------------------


def test_cli_list(capsys):
    assert cli_main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig1" in out and "table4" in out and "ablation1" in out


def test_cli_runs_single_experiment(capsys):
    assert cli_main(["fig9", "--fast"]) == 0
    out = capsys.readouterr().out
    assert "fig9" in out and "completed in" in out


def test_cli_unknown_experiment_exits_2(capsys):
    """A bogus id must print a clean error to stderr, not a traceback."""
    assert cli_main(["fig99"]) == 2
    captured = capsys.readouterr()
    assert "unknown experiment" in captured.err
    assert "Traceback" not in captured.err


def test_cli_rejects_bad_jobs(capsys):
    assert cli_main(["fig9", "--jobs", "0"]) == 2
    assert "--jobs" in capsys.readouterr().err


def test_cli_profile_flag(capsys):
    assert cli_main(["fig9", "--fast", "--profile"]) == 0
    out = capsys.readouterr().out
    assert "runtime profile" in out
    assert "experiment.fig9" in out


def test_cli_parallel_jobs_smoke(capsys):
    """--jobs 2 shards ensemble sampling through a worker pool."""
    assert cli_main(["fig3", "--fast", "--jobs", "2", "--profile"]) == 0
    out = capsys.readouterr().out
    assert "fig3" in out and "completed in" in out
    assert "sampler.sample_chips" in out


def test_cli_rejects_negative_jobs(capsys):
    assert cli_main(["fig9", "--jobs", "-3"]) == 2
    assert "--jobs" in capsys.readouterr().err


def test_cli_tail_q_invalid_exits_2(capsys):
    assert cli_main(["tail", "--fast", "--tail-q", "1.5"]) == 2
    err = capsys.readouterr().err
    assert "--tail-q must be in (0, 1)" in err


def test_cli_tail_samples_invalid_exits_2(capsys):
    assert cli_main(["tail", "--fast", "--tail-samples", "1"]) == 2
    err = capsys.readouterr().err
    assert "--tail-samples must be >= 2" in err
