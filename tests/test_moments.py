"""Gauss-Hermite moments and Cornish-Fisher quantiles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.moments import (
    DelayMoments,
    chain_moments,
    cornish_fisher_cdf,
    cornish_fisher_quantile,
    gate_delay_moments,
    hermite_nodes,
)
from repro.errors import ConfigurationError


def test_hermite_nodes_integrate_gaussian_moments():
    z, w = hermite_nodes(24)
    assert np.sum(w) == pytest.approx(1.0)
    assert np.sum(w * z) == pytest.approx(0.0, abs=1e-12)
    assert np.sum(w * z ** 2) == pytest.approx(1.0)
    assert np.sum(w * z ** 4) == pytest.approx(3.0)


def test_hermite_rejects_tiny_order():
    with pytest.raises(ConfigurationError):
        hermite_nodes(1)


def test_hermite_nodes_are_read_only():
    """The lru_cached arrays are shared; mutation must be rejected."""
    z, w = hermite_nodes(16)
    with pytest.raises(ValueError):
        z[0] = 0.0
    with pytest.raises(ValueError):
        w[0] = 0.0
    # A failed write above must not have corrupted the cached copy.
    z2, w2 = hermite_nodes(16)
    assert np.sum(w2) == pytest.approx(1.0)
    assert np.sum(w2 * z2 ** 2) == pytest.approx(1.0)


def test_gate_moments_broadcast_vdd_axis(tech90):
    """A (vdd x offsets) grid must equal the per-voltage scalar calls."""
    vdds = np.array([0.55, 0.6, 0.7])
    offsets = np.array([-0.02, 0.0, 0.015])
    grid = gate_delay_moments(tech90, vdds[:, None], offsets[None, :],
                              n_points=24)
    for i, vdd in enumerate(vdds):
        row = gate_delay_moments(tech90, float(vdd), offsets, n_points=24)
        np.testing.assert_allclose(grid.mean[i], row.mean, rtol=1e-14)
        np.testing.assert_allclose(grid.var[i], row.var, rtol=1e-14)
        np.testing.assert_allclose(grid.third[i], row.third, rtol=1e-13)


def test_gate_moments_match_monte_carlo(tech90):
    """Quadrature moments must agree with brute-force sampling."""
    rng = np.random.default_rng(42)
    n = 400_000
    var = tech90.variation
    eps = rng.normal(0, var.sigma_vth_wid, n)
    mult = rng.normal(0, var.sigma_mult_rand, n)
    samples = tech90.fo4_delay(0.5, eps, mult)
    m = gate_delay_moments(tech90, 0.5)
    assert float(m.mean) == pytest.approx(samples.mean(), rel=2e-3)
    assert float(m.var) == pytest.approx(samples.var(), rel=2e-2)
    skew_mc = ((samples - samples.mean()) ** 3).mean()
    assert float(m.third) == pytest.approx(skew_mc, rel=0.15)


def test_gate_moments_vectorised_over_die(tech90):
    offsets = np.array([-0.01, 0.0, 0.01])
    m = gate_delay_moments(tech90, 0.5, offsets)
    assert m.mean.shape == (3,)
    # Higher threshold offset -> slower gate.
    assert m.mean[2] > m.mean[1] > m.mean[0]


def test_chain_moments_additivity(tech90):
    g = gate_delay_moments(tech90, 0.6)
    c = chain_moments(g, 50)
    assert float(c.mean) == pytest.approx(50 * float(g.mean))
    assert float(c.var) == pytest.approx(50 * float(g.var))
    assert float(c.third) == pytest.approx(50 * float(g.third))
    with pytest.raises(ConfigurationError):
        chain_moments(g, 0)


def test_chain_averaging_reduces_relative_spread(tech90):
    g = gate_delay_moments(tech90, 0.5)
    c = chain_moments(g, 50)
    assert float(c.three_sigma_over_mu) == pytest.approx(
        float(g.three_sigma_over_mu) / np.sqrt(50), rel=1e-6)


def _moments(mean=1.0, std=0.1, skew=0.2):
    var = std ** 2
    return DelayMoments(mean=np.float64(mean), var=np.float64(var),
                        third=np.float64(skew * std ** 3))


def test_cf_quantile_median_and_symmetry():
    m = _moments(skew=0.0)
    assert float(cornish_fisher_quantile(m, 0.5)) == pytest.approx(1.0)
    hi = float(cornish_fisher_quantile(m, 0.9))
    lo = float(cornish_fisher_quantile(m, 0.1))
    assert hi - 1.0 == pytest.approx(1.0 - lo)


def test_cf_cdf_inverts_quantile():
    m = _moments(skew=0.3)
    u = np.linspace(0.001, 0.999, 101)
    x = cornish_fisher_quantile(m, u)
    back = cornish_fisher_cdf(m, x)
    np.testing.assert_allclose(back, u, atol=1e-10)


def test_cf_cdf_inverts_quantile_negative_skew():
    m = _moments(skew=-0.3)
    u = np.linspace(0.001, 0.999, 101)
    back = cornish_fisher_cdf(m, cornish_fisher_quantile(m, u))
    np.testing.assert_allclose(back, u, atol=1e-10)


def test_cf_quantile_monotone_in_u():
    m = _moments(skew=0.4)
    u = np.linspace(1e-6, 1 - 1e-6, 1000)
    x = cornish_fisher_quantile(m, u)
    assert np.all(np.diff(x) > 0)


def test_cf_quantile_rejects_bad_u():
    m = _moments()
    with pytest.raises(ConfigurationError):
        cornish_fisher_quantile(m, 0.0)
    with pytest.raises(ConfigurationError):
        cornish_fisher_quantile(m, 1.0)


def test_cf_matches_gaussian_when_skewless():
    from scipy.stats import norm
    m = _moments(mean=2.0, std=0.5, skew=0.0)
    u = np.array([0.01, 0.25, 0.75, 0.99])
    np.testing.assert_allclose(cornish_fisher_quantile(m, u),
                               norm.ppf(u, 2.0, 0.5), rtol=1e-10)


def test_cf_approximates_lognormal_tail():
    """CF with matched cumulants should track a mildly-skewed lognormal."""
    sigma = 0.05
    mean = np.exp(sigma ** 2 / 2)
    var = (np.exp(sigma ** 2) - 1) * np.exp(sigma ** 2)
    skew = (np.exp(sigma ** 2) + 2) * np.sqrt(np.exp(sigma ** 2) - 1)
    m = DelayMoments(mean=np.float64(mean), var=np.float64(var),
                     third=np.float64(skew * var ** 1.5))
    from scipy.stats import lognorm
    for q in (0.9, 0.99, 0.999):
        exact = lognorm.ppf(q, sigma)
        approx = float(cornish_fisher_quantile(m, q))
        assert approx == pytest.approx(exact, rel=2e-3)


def test_moments_scaled():
    m = _moments(mean=1.0, std=0.1, skew=0.2)
    s = m.scaled(2.0)
    assert float(s.mean) == pytest.approx(2.0)
    assert float(s.std) == pytest.approx(0.2)
    # Skewness is scale-invariant.
    assert float(s.skewness) == pytest.approx(float(m.skewness))


@settings(max_examples=40, deadline=None)
@given(skew=st.floats(-0.8, 0.8), u=st.floats(0.001, 0.999))
def test_cf_roundtrip_property(skew, u):
    m = _moments(skew=skew)
    x = cornish_fisher_quantile(m, u)
    assert float(cornish_fisher_cdf(m, x)) == pytest.approx(u, abs=1e-8)
