"""Statistical static timing engine."""

import numpy as np
import pytest

from repro.circuits.netlist import Netlist
from repro.circuits.timing import StatisticalTimingEngine
from repro.errors import ConfigurationError


def _chain_netlist(n):
    nl = Netlist("chain")
    prev = "a"
    for i in range(n):
        nl.add_cell(f"g{i}", "inv", [prev], f"n{i}")
        prev = f"n{i}"
    nl.mark_output(prev)
    return nl


def test_nominal_delay_of_chain_matches_gate_sum(tech90):
    nl = _chain_netlist(10)
    eng = StatisticalTimingEngine(tech90)
    # Internal stages have fanout 1; the FO4 unit has fanout 4, so the
    # chain is faster per stage than 10x FO4.
    d = eng.nominal_delay(nl, 0.7)
    inv_fo1 = float(2.0 / 5.0 * tech90.fo4_unit(0.7))  # p + g*1 = 2 units
    assert d == pytest.approx(10 * inv_fo1, rel=1e-9)


def test_reconvergent_paths_take_max(tech90):
    nl = Netlist("reconv")
    nl.add_cell("s1", "inv", ["a"], "n1")       # short path
    nl.add_cell("l1", "inv", ["a"], "m1")       # long path
    nl.add_cell("l2", "inv", ["m1"], "m2")
    nl.add_cell("l3", "inv", ["m2"], "m3")
    nl.add_cell("j", "nand2", ["n1", "m3"], "y")
    nl.mark_output("y")
    eng = StatisticalTimingEngine(tech90)
    d = eng.nominal_delay(nl, 0.8)
    long_only = Netlist("long")
    long_only.add_cell("l1", "inv", ["a"], "m1")
    long_only.add_cell("l2", "inv", ["m1"], "m2")
    long_only.add_cell("l3", "inv", ["m2"], "m3")
    long_only.add_cell("j", "nand2", ["m3", "m3x"], "y")
    long_only.mark_output("y")
    assert d == pytest.approx(eng.nominal_delay(long_only, 0.8), rel=1e-9)


def test_mc_mean_tracks_nominal(tech90):
    nl = _chain_netlist(20)
    eng = StatisticalTimingEngine(tech90, seed=1)
    res = eng.run(nl, 0.6, n_samples=2000)
    assert res.mean == pytest.approx(eng.nominal_delay(nl, 0.6), rel=0.05)


def test_run_rejects_zero_samples(tech90):
    eng = StatisticalTimingEngine(tech90)
    with pytest.raises(ConfigurationError):
        eng.run(_chain_netlist(3), 0.6, n_samples=0)


def test_run_without_outputs_raises(tech90):
    nl = Netlist("empty-outputs")
    nl.add_cell("g", "inv", ["a"], "y")
    nl.mark_output("z")  # never driven
    eng = StatisticalTimingEngine(tech90)
    with pytest.raises(ConfigurationError):
        eng.run(nl, 0.6, n_samples=10)


def test_include_die_false_reduces_spread(tech90):
    nl = _chain_netlist(30)
    with_die = StatisticalTimingEngine(tech90, seed=2).run(
        nl, 0.6, n_samples=1500, include_die=True)
    without = StatisticalTimingEngine(tech90, seed=2).run(
        nl, 0.6, n_samples=1500, include_die=False)
    assert without.three_sigma_over_mu < with_die.three_sigma_over_mu
