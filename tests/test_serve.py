"""Sign-off server: protocol, coalescing dispatcher, chaos, bit-identity."""

from __future__ import annotations

import asyncio
import contextlib
import http.client
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.chip_delay import ChipDelayEngine
from repro.devices.technology import get_technology
from repro.errors import ConfigurationError
from repro.obs.flight import FlightRecorder
from repro.obs.manifest import strip_timing
from repro.obs.metrics import MetricsRegistry
from repro.obs.openmetrics import check_openmetrics, parse_openmetrics
from repro.obs.trace import Tracer
from repro.resilience import RetryPolicy, parse_faults
from repro.runtime import build_runtime
from repro.serve import (
    BadRequestError,
    CircuitOpenError,
    DegradedError,
    DrainingError,
    EngineKey,
    MicroBatchDispatcher,
    OverloadedError,
    ResilientServeClient,
    ServeClient,
    ServeConfig,
    ServeRequestError,
    ShedError,
    SignoffServer,
)
from repro.serve.protocol import parse_query

#: Tiny architecture so every solve stays fast.
ARCH = dict(width=4, paths_per_lane=5, chain_length=10)
KEY = EngineKey("22nm", 4, 5, 10)
NODES = frozenset({"90nm", "45nm", "32nm", "22nm"})


def direct_values(vdds, qs=0.99, spares=0.0):
    """The reference bits: a fresh engine's invariant batch solve."""
    engine = ChipDelayEngine(get_technology("22nm"), **ARCH)
    out = engine.chip_quantile_batch(
        np.asarray(vdds, dtype=float), qs, spares, cluster=False)
    return [float(v) for v in np.atleast_1d(out)]


class ServerHarness:
    """Run a SignoffServer on a private event loop in a thread."""

    def __init__(self, config: ServeConfig, runtime=None) -> None:
        self.server = SignoffServer(config, runtime)
        self._loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self._serve())
        self._loop.close()

    async def _serve(self) -> None:
        self._stop = asyncio.Event()
        await self.server.start()
        self._ready.set()
        await self._stop.wait()
        await self.server.stop()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(20), "server failed to start"
        return self

    def __exit__(self, *exc) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(20)

    @property
    def port(self) -> int:
        return self.server.port

    def client(self, **kwargs) -> ServeClient:
        return ServeClient("127.0.0.1", self.port, **kwargs)


@pytest.fixture
def fresh_cache(tmp_path, monkeypatch):
    """Per-test cache dir: serve memo entries never leak across tests."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serve-cache"))


# -- protocol validation -------------------------------------------------------


def test_parse_query_broadcasts_and_rounds():
    key, points = parse_query(
        {"node": "22nm", "vdd": [0.5, 0.6], "q": 0.9, "spares": 1.0,
         **ARCH}, available_nodes=NODES)
    assert key == KEY
    assert points == [(0.5, 1.0, 0.9), (0.6, 1.0, 0.9)]
    # scalar-only query broadcasts to one point with defaults
    _, pts = parse_query({"node": "22nm", "vdd": 0.55},
                         available_nodes=NODES)
    assert pts == [(0.55, 0.0, 0.99)]
    # a length-1 list broadcasts against a longer one
    _, pts = parse_query({"node": "22nm", "vdd": [0.5], "q": [0.9, 0.99]},
                         available_nodes=NODES)
    assert pts == [(0.5, 0.0, 0.9), (0.5, 0.0, 0.99)]


@pytest.mark.parametrize("body", [
    "not an object",
    {},                                           # missing node
    {"node": "3nm", "vdd": 0.5},                  # unknown node
    {"node": "22nm"},                             # missing vdd
    {"node": "22nm", "vdd": []},                  # empty list
    {"node": "22nm", "vdd": "0.5"},               # non-numeric
    {"node": "22nm", "vdd": True},                # bool is not a number
    {"node": "22nm", "vdd": [0.5, "x"]},          # mixed list
    {"node": "22nm", "vdd": [0.5, 0.6], "q": [0.9, 0.95, 0.99]},  # length clash
    {"node": "22nm", "vdd": 0.0},                 # vdd out of range
    {"node": "22nm", "vdd": float("nan")},        # non-finite vdd
    {"node": "22nm", "vdd": 0.5, "q": 1.0},       # q out of range
    {"node": "22nm", "vdd": 0.5, "spares": -1},   # negative spares
    {"node": "22nm", "vdd": 0.5, "width": 0},     # bad architecture
])
def test_parse_query_rejects(body):
    with pytest.raises(BadRequestError):
        parse_query(body, available_nodes=NODES)


def test_serve_config_validates():
    with pytest.raises(ConfigurationError):
        ServeConfig(port=-5)
    with pytest.raises(ConfigurationError):
        ServeConfig(max_batch=0)
    with pytest.raises(ConfigurationError):
        ServeConfig(batch_window_ms=-1.0)
    with pytest.raises(ConfigurationError):
        ServeConfig(max_queue=0)
    with pytest.raises(ConfigurationError):
        ServeConfig(deadline_ms=0.0)
    with pytest.raises(ConfigurationError):
        ServeConfig(window_s=0.0)
    with pytest.raises(ConfigurationError):
        ServeConfig(slo_availability=1.0)
    with pytest.raises(ConfigurationError):
        ServeConfig(slo_latency_ms=0.0)
    with pytest.raises(ConfigurationError):
        ServeConfig(flight_capacity=-1)
    with pytest.raises(ConfigurationError):
        ServeConfig(degraded_ratio=0.0)
    with pytest.raises(ConfigurationError):
        ServeConfig(degraded_ratio=1.5)
    with pytest.raises(ConfigurationError):
        ServeConfig(drain_timeout_s=0.0)


# -- dispatcher unit tests (fake solver) ---------------------------------------


def _run_async(coro):
    return asyncio.run(coro)


def test_dispatcher_coalesces_and_single_flights():
    calls = []

    def solve(key, points):
        calls.append(list(points))
        return [p[0] * 2.0 for p in points]

    async def scenario():
        metrics = MetricsRegistry()
        d = MicroBatchDispatcher(solve, metrics, max_batch=8,
                                 window_s=0.05, max_queue=64)
        p1, p2 = (0.5, 0.0, 0.99), (0.6, 0.0, 0.99)
        # 3 clients race on p1, one brings p2: one batch, one solve call
        results = await asyncio.gather(
            d.resolve(KEY, [p1], timeout=10),
            d.resolve(KEY, [p1], timeout=10),
            d.resolve(KEY, [p1, p2], timeout=10),
        )
        # memo hit afterwards: no new solve
        again = await d.resolve(KEY, [p1, p2], timeout=10)
        await d.aclose()
        return results, again, metrics

    results, again, metrics = _run_async(scenario())
    assert results == [[1.0], [1.0], [1.0, 1.2]]
    assert again == [1.0, 1.2]
    assert len(calls) == 1 and sorted(calls[0]) == sorted(
        [(0.5, 0.0, 0.99), (0.6, 0.0, 0.99)])
    snap = metrics.as_dict()
    assert snap["counters"]["serve.singleflight_joins"] == 2
    assert snap["counters"]["serve.memo_hits"] == 2
    assert snap["counters"]["serve.batches"] == 1
    assert max(i for i, c in enumerate(
        snap["histograms"]["serve.batch_size"]["counts"]) if c) >= 1


def test_dispatcher_backpressure_rejects_and_recovers():
    def solve(key, points):
        return [1.0 for _ in points]

    async def scenario():
        metrics = MetricsRegistry()
        d = MicroBatchDispatcher(solve, metrics, max_batch=8,
                                 window_s=0.01, max_queue=2)
        points = [(0.5 + 0.01 * i, 0.0, 0.99) for i in range(4)]
        with pytest.raises(OverloadedError):
            await d.resolve(KEY, points, timeout=10)
        # the queue drains and the dispatcher keeps serving
        ok = await d.resolve(KEY, [points[0]], timeout=10)
        await d.aclose()
        return ok, metrics

    ok, metrics = _run_async(scenario())
    assert ok == [1.0]
    assert metrics.as_dict()["counters"]["serve.rejected"] == 1


def test_dispatcher_on_idle_fires_when_queue_drains():
    idles = []

    def solve(key, points):
        return [p[0] for p in points]

    async def scenario():
        metrics = MetricsRegistry()
        d = MicroBatchDispatcher(solve, metrics, max_batch=8,
                                 window_s=0.005, max_queue=64,
                                 on_idle=lambda: idles.append(d.queued))
        await d.resolve(KEY, [(0.5, 0.0, 0.99)], timeout=10)
        await d.resolve(KEY, [(0.6, 0.0, 0.99)], timeout=10)
        await d.aclose()

    _run_async(scenario())
    # Fired once per drained batch, always with an empty queue.
    assert len(idles) == 2
    assert all(q == 0 for q in idles)


def test_dispatcher_on_idle_exception_does_not_fail_requests():
    def solve(key, points):
        return [p[0] for p in points]

    def bad_idle():
        raise RuntimeError("housekeeping blew up")

    async def scenario():
        d = MicroBatchDispatcher(solve, MetricsRegistry(), max_batch=8,
                                 window_s=0.005, max_queue=64,
                                 on_idle=bad_idle)
        value = await d.resolve(KEY, [(0.5, 0.0, 0.99)], timeout=10)
        await d.aclose()
        return value

    assert _run_async(scenario()) == [0.5]


def test_dispatcher_deadline_does_not_wedge_the_queue():
    import time as _time

    def solve(key, points):
        _time.sleep(0.2)
        return [p[0] for p in points]

    async def scenario():
        metrics = MetricsRegistry()
        d = MicroBatchDispatcher(solve, metrics, max_batch=4,
                                 window_s=0.001, max_queue=64)
        from repro.serve import DeadlineError
        p = (0.5, 0.0, 0.99)
        with pytest.raises(DeadlineError):
            await d.resolve(KEY, [p], timeout=0.02)
        # the shielded solve still completes; a later caller gets the memo
        value = await d.resolve(KEY, [p], timeout=10)
        assert d.queued == 0
        await d.aclose()
        return value, metrics

    value, metrics = _run_async(scenario())
    assert value == [0.5]
    assert metrics.as_dict()["counters"]["serve.deadline_misses"] == 1


def test_dispatcher_retries_transient_failures():
    attempts = []

    def solve(key, points):
        attempts.append(1)
        if len(attempts) == 1:
            raise RuntimeError("transient")
        return [7.0 for _ in points]

    async def scenario():
        metrics = MetricsRegistry()
        policy = RetryPolicy(max_retries=2, backoff_base_s=0.001)
        d = MicroBatchDispatcher(solve, metrics, max_batch=4,
                                 window_s=0.001, policy=policy)
        value = await d.resolve(KEY, [(0.5, 0.0, 0.99)], timeout=10)
        await d.aclose()
        return value, metrics

    value, metrics = _run_async(scenario())
    assert value == [7.0]
    assert len(attempts) == 2
    assert metrics.as_dict()["counters"]["serve.solver_retries"] == 1


def test_dispatcher_exhausted_retries_fail_the_bucket():
    from repro.serve import SolverError

    def solve(key, points):
        raise RuntimeError("permanent")

    async def scenario():
        metrics = MetricsRegistry()
        policy = RetryPolicy(max_retries=1, backoff_base_s=0.001)
        d = MicroBatchDispatcher(solve, metrics, max_batch=4,
                                 window_s=0.001, policy=policy)
        with pytest.raises(SolverError):
            await d.resolve(KEY, [(0.5, 0.0, 0.99)], timeout=10)
        # failures are not memoised: the queue is clean afterwards
        assert d.queued == 0
        await d.aclose()
        return metrics

    metrics = _run_async(scenario())
    assert metrics.as_dict()["counters"]["serve.solver_failures"] == 1


# -- HTTP round trips ----------------------------------------------------------


def test_server_roundtrip_bit_identical(fresh_cache):
    vdds = [0.5, 0.55, 0.6]
    expected = direct_values(vdds)
    with ServerHarness(ServeConfig(port=0, max_batch=8,
                                   batch_window_ms=2.0)) as h:
        with h.client() as c:
            single = c.chip_quantile("22nm", vdd=0.55, **ARCH)
            batch = c.chip_quantile_batch("22nm", vdd=vdds, **ARCH)
            raw = c._request("POST", "/v1/chip_quantile_batch",
                             dict(node="22nm", vdd=vdds, **ARCH))
            health = c.health()
    assert batch == expected
    assert single == expected[1]
    assert raw["values_hex"] == [v.hex() for v in expected]
    assert health["ok"] is True


def test_server_signoff_sweep_matches_analyzer_math(fresh_cache):
    vdds = [0.5, 0.6]
    with ServerHarness(ServeConfig(port=0)) as h:
        with h.client() as c:
            sweep = c.signoff_sweep("22nm", vdd=vdds, **ARCH)
    tech = get_technology("22nm")
    expected = direct_values(vdds + [tech.nominal_vdd])
    assert sweep["values"] == expected[:2]
    base_fo4 = expected[2] / tech.fo4_unit(tech.nominal_vdd)
    fo4 = [v / tech.fo4_unit(x) for v, x in zip(expected[:2], vdds)]
    assert sweep["fo4chipd"] == pytest.approx(fo4, rel=0, abs=0)
    assert sweep["performance_drop"] == [f / base_fo4 - 1.0 for f in fo4]
    assert sweep["baseline"]["value"] == expected[2]


def test_server_concurrent_clients_coalesce(fresh_cache):
    vdds = [round(0.45 + 0.005 * i, 9) for i in range(16)]
    expected = dict(zip(vdds, direct_values(vdds)))
    with ServerHarness(ServeConfig(port=0, max_batch=16,
                                   batch_window_ms=100.0)) as h:
        def one(v):
            with h.client() as c:
                return c.chip_quantile("22nm", vdd=v, **ARCH)
        with ThreadPoolExecutor(max_workers=16) as pool:
            got = list(pool.map(one, vdds))
        snap = h.server.metrics.as_dict()
    assert got == [expected[v] for v in vdds]
    counts = snap["histograms"]["serve.batch_size"]["counts"]
    assert sum(counts[1:]) >= 1, f"no coalescing happened: {counts}"
    assert snap["gauges"]["serve.coalesce_ratio"] > 1.0


def test_server_http_error_codes(fresh_cache):
    with ServerHarness(ServeConfig(port=0)) as h:
        with h.client() as c:
            with pytest.raises(ServeRequestError) as exc:
                c._request("POST", "/v1/nope", {"node": "22nm", "vdd": 0.5})
            assert exc.value.status == 404
            with pytest.raises(ServeRequestError) as exc:
                c._request("GET", "/v1/chip_quantile")
            assert exc.value.status == 405
            with pytest.raises(ServeRequestError) as exc:
                c._request("POST", "/v1/chip_quantile",
                           {"node": "22nm", "vdd": [0.5, 0.6]})
            assert exc.value.status == 400 and exc.value.code == "bad_request"
            # malformed JSON body straight through the connection
            import http.client
            conn = http.client.HTTPConnection("127.0.0.1", h.port, timeout=30)
            conn.request("POST", "/v1/query", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            payload = json.loads(resp.read())
            assert resp.status == 400
            assert payload["error"] == "bad_request"
            conn.close()
            # the server is still healthy after every rejection
            assert c.health()["ok"] is True


def test_server_deadline_then_recovery(fresh_cache):
    config = ServeConfig(port=0, batch_window_ms=300.0, deadline_ms=30.0)
    with ServerHarness(config) as h:
        with h.client() as c:
            with pytest.raises(ServeRequestError) as exc:
                c.chip_quantile("22nm", vdd=0.52, **ARCH)
            assert exc.value.status == 408
            assert exc.value.code == "deadline_exceeded"
            # the batch window eventually flushes and the solve completes;
            # the same query then hits the dispatcher memo well inside the
            # deadline — the queue never wedged.
            deadline_value = None
            for _ in range(100):
                try:
                    deadline_value = c.chip_quantile("22nm", vdd=0.52, **ARCH)
                    break
                except ServeRequestError as err:
                    assert err.status == 408
            assert deadline_value == direct_values([0.52])[0]
            assert c.health()["queued"] == 0


def test_server_backpressure_429(fresh_cache):
    config = ServeConfig(port=0, max_queue=1, batch_window_ms=200.0)
    with ServerHarness(config) as h:
        with h.client() as c:
            with pytest.raises(ServeRequestError) as exc:
                c.chip_quantile_batch("22nm", vdd=[0.5, 0.55, 0.6], **ARCH)
            assert exc.value.status == 429
            assert exc.value.code == "overloaded"


# -- chaos ---------------------------------------------------------------------


def test_serve_chaos_solver_nan_bit_identical(fresh_cache):
    """A poisoned solver point is rescued and parity survives the chaos.

    The first (single-point) request pins the poisoned index: the rescue
    ladder's scalar Brent fallback answers it, and every *other* point —
    served while the fault fires mid-flight — must still match the
    invariant batch bits exactly.
    """
    runtime = build_runtime(jobs=1, metrics=True,
                            faults=parse_faults("solver_nan:0"))
    poisoned_vdd = 0.5
    burst = [round(0.52 + 0.005 * i, 9) for i in range(8)]
    try:
        with ServerHarness(ServeConfig(port=0, max_batch=8,
                                       batch_window_ms=20.0),
                           runtime) as h:
            with h.client() as c:
                rescued = c.chip_quantile("22nm", vdd=poisoned_vdd, **ARCH)

                def one(v):
                    with h.client() as cc:
                        return cc.chip_quantile("22nm", vdd=v, **ARCH)
                with ThreadPoolExecutor(max_workers=8) as pool:
                    got = list(pool.map(one, burst))
                assert c.health()["ok"] is True and c.health()["queued"] == 0
    finally:
        runtime.close()
    engine = ChipDelayEngine(get_technology("22nm"), **ARCH)
    assert rescued == engine.chip_quantile(poisoned_vdd, 0.99, 0.0)
    assert got == direct_values(burst)
    snap = runtime.obs.metrics.as_dict()
    assert snap["counters"]["resilience.solver.fallback_scalar"] == 1


def test_serve_chaos_worker_crash_bit_identical(fresh_cache):
    """A worker crash mid-batch recovers via pool respawn with exact bits.

    16 concurrent cold points coalesce into one dispatcher batch, which
    crosses the analyzer's parallel-solve threshold and fans out over a
    2-worker pool; ``worker_crash:0`` kills the first shard's worker.
    The respawned pool must deliver the same bits as a direct solve and
    leave the queue empty.
    """
    runtime = build_runtime(jobs=2, metrics=True,
                            faults=parse_faults("worker_crash:0"))
    vdds = [round(0.45 + 0.01 * i, 9) for i in range(16)]
    points = [(v, 0.0, 0.99) for v in vdds]

    async def scenario():
        server = SignoffServer(ServeConfig(port=0, max_batch=16,
                                           batch_window_ms=500.0),
                               runtime)
        server._analyzer(KEY)
        tasks = [asyncio.ensure_future(
            server.dispatcher.resolve(KEY, [p], timeout=120))
            for p in points]
        values = [(await t)[0] for t in tasks]
        assert server.dispatcher.queued == 0
        await server.dispatcher.aclose()
        return values

    try:
        values = _run_async(scenario())
    finally:
        runtime.close()
    assert values == direct_values(vdds)
    snap = runtime.obs.metrics.as_dict()
    assert snap["counters"].get("resilience.pool_respawns", 0) >= 1
    assert snap["counters"]["serve.batches"] == 1
    # buckets (1, 2, 4, 8, 16, ...): one batch of exactly 16 points
    assert snap["histograms"]["serve.batch_size"]["counts"][4] == 1


# -- CLI -----------------------------------------------------------------------


def test_serve_cli_validates_flags():
    from repro.experiments.__main__ import main as cli_main
    assert cli_main(["serve", "--port", "70000"]) == 2
    assert cli_main(["serve", "--max-batch", "0"]) == 2
    assert cli_main(["serve", "--jobs", "0"]) == 2
    assert cli_main(["serve", "--drain-timeout-s", "0"]) == 2


def test_serve_module_cli_validates_flags():
    from repro.serve.__main__ import main as serve_main
    assert serve_main(["--max-queue", "0"]) == 2
    assert serve_main(["--slo-availability", "1.5"]) == 2
    assert serve_main(["--window-s", "0"]) == 2
    assert serve_main(["--flight-capacity", "-1"]) == 2
    assert serve_main(["--degraded-ratio", "0"]) == 2
    assert serve_main(["--degraded-ratio", "1.5"]) == 2
    assert serve_main(["--drain-timeout-s", "0"]) == 2


# -- telemetry: tracing, rolling metrics, flight recorder ----------------------


def test_dispatcher_passes_ctx_and_records_flight_events():
    """A 3-arg solver receives the batch trace context; the flight ring
    sees the flush/solve/coalesce events; the batch span links fan-ins."""
    seen_ctx = []

    def solve(key, points, ctx):
        seen_ctx.append(ctx)
        return [p[0] for p in points]

    tracer = Tracer(trace_id="server")
    flight = FlightRecorder(capacity=32)

    async def scenario():
        d = MicroBatchDispatcher(solve, MetricsRegistry(), max_batch=8,
                                 window_s=0.01, tracer=tracer,
                                 flight=flight)
        p = (0.5, 0.0, 0.99)
        await d.resolve(KEY, [p], timeout=10,
                        trace_ctx=("client-trace", "c.1"))
        await d.resolve(KEY, [p], timeout=10,
                        trace_ctx=("client-trace", "c.2"))   # memo hit
        await d.aclose()

    _run_async(scenario())
    assert len(seen_ctx) == 1
    trace_id, batch_span = seen_ctx[0]
    assert trace_id == "client-trace" and batch_span
    batch = next(e for e in tracer.events() if e["name"] == "serve.batch")
    assert batch["args"]["span_id"] == batch_span
    assert batch["args"]["trace_id"] == "client-trace"
    assert batch["args"]["parent_id"] == "c.1"
    assert batch["args"]["links"] == [
        {"trace_id": "client-trace", "span_id": "c.1"}]
    assert batch["args"]["ok"] is True
    kinds = [e["kind"] for e in flight.snapshot()["events"]]
    assert kinds == ["flush", "solve", "coalesce"]
    solve_ev = flight.snapshot()["events"][1]
    assert solve_ev["ok"] is True and solve_ev["n"] == 1


def test_dispatcher_flight_records_retries_and_faults():
    def solve(key, points):
        raise RuntimeError("permanent")

    flight = FlightRecorder(capacity=32)

    async def scenario():
        from repro.serve import SolverError
        d = MicroBatchDispatcher(
            solve, MetricsRegistry(), max_batch=4, window_s=0.001,
            policy=RetryPolicy(max_retries=1, backoff_base_s=0.001),
            flight=flight)
        with pytest.raises(SolverError):
            await d.resolve(KEY, [(0.5, 0.0, 0.99)], timeout=10)
        await d.aclose()

    _run_async(scenario())
    events = flight.snapshot()["events"]
    retry = next(e for e in events if e["kind"] == "retry")
    assert retry["attempt"] == 1 and retry["error"] == "RuntimeError"
    fault = next(e for e in events if e["kind"] == "fault")
    assert fault["attempts"] == 2 and fault["error"] == "RuntimeError"
    # solve settled not-ok
    assert [e for e in events if e["kind"] == "solve"][0]["ok"] is False


def test_server_trace_id_echoed_and_malformed_header_ignored(fresh_cache):
    with ServerHarness(ServeConfig(port=0)) as h:
        with h.client() as c:
            payload = c.query("22nm", vdd=0.55, **ARCH)
            assert payload["trace_id"] == c.last_trace_id
            # each request mints a fresh id by default
            second = c.query("22nm", vdd=0.55, **ARCH)
            assert second["trace_id"] == c.last_trace_id
            assert second["trace_id"] != payload["trace_id"]
        # a malformed header is ignored: 200, no echo, request unharmed
        import http.client
        conn = http.client.HTTPConnection("127.0.0.1", h.port, timeout=30)
        body = json.dumps(dict(node="22nm", vdd=0.55, **ARCH))
        conn.request("POST", "/v1/query", body=body,
                     headers={"Content-Type": "application/json",
                              "X-Repro-Trace": "bad id with spaces!"})
        resp = conn.getresponse()
        data = json.loads(resp.read())
        conn.close()
        assert resp.status == 200
        assert "trace_id" not in data


def test_server_end_to_end_trace_is_one_connected_tree(fresh_cache):
    """The tentpole: client span -> request span -> batch -> solve ->
    pool worker shards, all under the client's minted trace id."""
    runtime = build_runtime(jobs=2, trace=True, metrics=True)
    client_tracer = Tracer(trace_id="e2e-client")
    vdds = [round(0.45 + 0.01 * i, 9) for i in range(16)]
    try:
        with ServerHarness(ServeConfig(port=0, max_batch=16,
                                       batch_window_ms=200.0),
                           runtime) as h:
            with h.client(tracer=client_tracer) as c:
                payload = c.query("22nm", vdd=vdds, **ARCH)
    finally:
        runtime.close()
    assert payload["trace_id"] == "e2e-client"
    assert c.last_trace_id == "e2e-client"

    client_span = client_tracer.events()[0]
    assert client_span["name"] == "client.request"
    assert client_span["args"]["trace_id"] == "e2e-client"

    events = runtime.obs.tracer.events()
    by_id = {e["args"]["span_id"]: e for e in events}
    request = next(e for e in events if e["name"] == "serve.request"
                   and e["args"]["path"] == "/v1/query")
    batch = next(e for e in events if e["name"] == "serve.batch")
    solve = next(e for e in events if e["name"] == "serve.solve")
    shards = [e for e in events
              if e["name"] == "sampler.solve_quantiles.shard"]
    assert len(shards) >= 2, "batch did not fan out over the pool"

    # every server-side span carries the client's trace id...
    for e in [request, batch, solve] + shards:
        assert e["args"]["trace_id"] == "e2e-client", e["name"]
    # ...and the parent chain walks all the way back to the client span
    assert request["args"]["parent_id"] == \
        client_span["args"]["span_id"]
    assert batch["args"]["parent_id"] == request["args"]["span_id"]
    assert batch["args"]["links"] == [
        {"trace_id": "e2e-client",
         "span_id": request["args"]["span_id"]}]
    assert solve["args"]["parent_id"] == batch["args"]["span_id"]
    for shard in shards:
        # each shard's ancestry chain passes through serve.solve (the
        # worker context is built inside the solve, possibly under
        # intermediate analyzer spans)
        names, seen = [], set()
        span_id = shard["args"]["parent_id"]
        while span_id in by_id and span_id not in seen:
            seen.add(span_id)
            names.append(by_id[span_id]["name"])
            span_id = by_id[span_id]["args"].get("parent_id")
        assert "serve.solve" in names, names
    # worker spans come from other processes: >= 2 pids in the trace
    assert len({e["pid"] for e in [request] + shards}) >= 2


def test_server_openmetrics_scrape_is_valid(fresh_cache):
    with ServerHarness(ServeConfig(port=0)) as h:
        with h.client() as c:
            c.chip_quantile("22nm", vdd=0.55, **ARCH)
            text = c.openmetrics()
    assert check_openmetrics(text) == []
    fams = parse_openmetrics(text)
    assert fams["serve_requests"]["type"] == "counter"
    assert fams["serve_latency_ms"]["type"] == "histogram"
    buckets = [v for name, labels, v
               in fams["serve_latency_ms"]["samples"]
               if name.endswith("_bucket") and labels["le"] == "+Inf"]
    assert buckets and buckets[0] >= 1
    for gauge in ("serve_latency_p50_ms", "serve_latency_p99_ms",
                  "serve_qps", "serve_error_rate",
                  "serve_slo_availability_burn_rate",
                  "serve_slo_latency_burn_rate"):
        assert fams[gauge]["type"] == "gauge", gauge


def test_server_rolling_gauges_move_where_cumulative_would_not(fresh_cache):
    """After the traffic burst ages out of the window, QPS falls while
    the cumulative request counter keeps growing."""
    config = ServeConfig(port=0, window_s=0.5)
    with ServerHarness(config) as h:
        with h.client() as c:
            for _ in range(6):
                c.chip_quantile("22nm", vdd=0.55, **ARCH)
            snap1 = c.metrics()
            qps1 = snap1["gauges"]["serve.qps"]
            assert qps1 >= 6 / 0.5 * 0.5          # burst visible in window
            time.sleep(0.8)                       # burst ages out
            snap2 = c.metrics()
    qps2 = snap2["gauges"]["serve.qps"]
    assert qps2 < qps1
    # the cumulative side only ever grows — the rolling gauge is the one
    # that reflects the traffic shift
    assert snap2["counters"]["serve.requests"] > \
        snap1["counters"]["serve.requests"]
    assert snap2["histograms"]["serve.latency_ms"]["count"] >= \
        snap1["histograms"]["serve.latency_ms"]["count"]
    assert snap2["gauges"]["serve.slo_availability_target"] == 0.999
    assert snap2["gauges"]["serve.error_rate"] == 0.0


def test_server_flight_endpoint_and_chaos_determinism(fresh_cache):
    """Identical chaos request sequences leave identical flight stories
    (modulo timing), and /v1/debug/flight serves them."""
    def run_once():
        runtime = build_runtime(jobs=1, metrics=True,
                                faults=parse_faults("solver_nan:0"))
        try:
            with ServerHarness(ServeConfig(port=0, batch_window_ms=1.0),
                               runtime) as h:
                with h.client() as c:
                    c.chip_quantile("22nm", vdd=0.5, **ARCH)
                    c.chip_quantile("22nm", vdd=0.5, **ARCH)  # memo hit
                    c.chip_quantile("22nm", vdd=0.55, **ARCH)
                    return c.flight()
        finally:
            runtime.close()

    a, b = run_once(), run_once()
    assert a["kind"] == "repro-flight-recorder"
    assert a["total"] >= 3 and a["dropped"] == 0
    kinds = [e["kind"] for e in a["events"]]
    assert "admit" in kinds and "flush" in kinds and "solve" in kinds
    assert "coalesce" in kinds                     # the memo hit
    assert strip_timing(a["events"]) == strip_timing(b["events"])


def test_server_flight_deterministic_under_worker_crash(fresh_cache):
    """A crashed-and-respawned pool worker leaves the same flight story
    as its twin run: the recovery below the dispatcher is deterministic."""
    vdds = [round(0.45 + 0.01 * i, 9) for i in range(16)]

    def run_once():
        runtime = build_runtime(jobs=2, metrics=True,
                                faults=parse_faults("worker_crash:1"))
        try:
            with ServerHarness(ServeConfig(port=0, max_batch=16,
                                           batch_window_ms=50.0),
                               runtime) as h:
                with h.client() as c:
                    values = c.query("22nm", vdd=vdds, **ARCH)["values"]
                    return values, c.flight()
        finally:
            runtime.close()

    (values_a, a), (values_b, b) = run_once(), run_once()
    assert values_a == values_b
    assert [e["kind"] for e in a["events"]].count("solve") >= 1
    assert all(e["ok"] for e in a["events"] if e["kind"] == "solve")
    assert strip_timing(a["events"]) == strip_timing(b["events"])


def test_server_flight_disabled_with_zero_capacity(fresh_cache):
    with ServerHarness(ServeConfig(port=0, flight_capacity=0)) as h:
        with h.client() as c:
            c.chip_quantile("22nm", vdd=0.55, **ARCH)
            snap = c.flight()
    assert snap["capacity"] == 0 and snap["events"] == []


def test_serve_module_cli_sigusr2_dump_and_artifacts(fresh_cache, tmp_path):
    """End-to-end over the real CLI: SIGUSR2 dumps the flight ring to
    stderr; shutdown writes the Chrome trace and flight-bearing manifest."""
    trace_file = tmp_path / "serve_trace.json"
    manifest_file = tmp_path / "serve_manifest.json"
    env = dict(os.environ,
               PYTHONPATH="src",
               REPRO_CACHE_DIR=str(tmp_path / "cache"))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0",
         "--trace", str(trace_file), "--metrics", str(manifest_file),
         "--window-s", "5", "--flight-capacity", "64"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, env=env, cwd=os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
    try:
        line = proc.stdout.readline()
        assert "listening on" in line, line
        port = int(line.rsplit(":", 1)[1])
        with ServeClient("127.0.0.1", port) as c:
            value = c.chip_quantile("22nm", vdd=0.55, **ARCH)
            assert value > 0
        proc.send_signal(signal.SIGUSR2)
        time.sleep(0.5)                      # let the handler run
        proc.send_signal(signal.SIGTERM)
        _, stderr = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0, stderr
    assert "flight-recorder dump" in stderr
    dump_line = next(ln for ln in stderr.splitlines()
                     if ln.startswith("{"))
    dump = json.loads(dump_line)
    assert dump["kind"] == "repro-flight-recorder"
    assert any(e["kind"] == "admit" for e in dump["events"])
    trace = json.loads(trace_file.read_text())
    assert any(e["name"] == "serve.request"
               for e in trace["traceEvents"])
    manifest = json.loads(manifest_file.read_text())
    assert manifest["run"]["targets"] == ["serve"]
    assert manifest["flight"]["total"] >= 1
    assert manifest["metrics"]["counters"]["serve.requests"] >= 1


# -- adaptive load shedding (dispatcher) ---------------------------------------


def test_dispatcher_sheds_when_estimated_wait_exceeds_deadline():
    flight = FlightRecorder(capacity=32)

    def solve(key, points):
        return [p[0] * 2.0 for p in points]

    async def scenario():
        metrics = MetricsRegistry()
        d = MicroBatchDispatcher(solve, metrics, max_batch=8,
                                 window_s=30.0, max_queue=64,
                                 flight=flight)
        warm = (0.4, 0.0, 0.99)
        task = asyncio.ensure_future(d.resolve(KEY, [warm], timeout=10))
        await asyncio.sleep(0)
        d.flush()
        assert await task == [0.8]
        # the cost model primed itself from the settled batch
        assert d.solve_ewma_s is not None and d.solve_ewma_s > 0
        # pretend solves cost 5 s/point, then park one point in the
        # long batch window so the queue is non-empty
        d._ewma_point_s = 5.0
        parked = asyncio.ensure_future(
            d.resolve(KEY, [(0.5, 0.0, 0.99)], timeout=60))
        await asyncio.sleep(0)
        assert d.queued == 1
        # estimated wait (1 queued + 1 new) * 5 s >> the 2 s deadline
        with pytest.raises(ShedError) as exc:
            await d.resolve(KEY, [(0.6, 0.0, 0.99)], timeout=2)
        assert exc.value.retry_after_s >= 1.0
        # a memoised point sails through under the same deadline
        assert await d.resolve(KEY, [warm], timeout=2) == [0.8]
        d.flush()
        assert await parked == [1.0]
        # with the queue drained the same request is admitted
        d._ewma_point_s = 0.0001
        admitted = asyncio.ensure_future(
            d.resolve(KEY, [(0.6, 0.0, 0.99)], timeout=2))
        await asyncio.sleep(0)
        d.flush()
        value = await admitted
        await d.aclose()
        return value, metrics

    value, metrics = _run_async(scenario())
    assert value == [1.2]
    snap = metrics.as_dict()
    assert snap["counters"]["serve.shed.deadline"] == 1
    assert "serve.estimated_wait_s" in snap["gauges"]
    shed = [e for e in flight.snapshot()["events"] if e["kind"] == "shed"]
    assert len(shed) == 1 and shed[0]["reason"] == "deadline"


def test_dispatcher_degraded_mode_is_cache_hit_only():
    def solve(key, points):
        return [p[0] * 2.0 for p in points]

    async def scenario():
        metrics = MetricsRegistry()
        d = MicroBatchDispatcher(solve, metrics, max_batch=8,
                                 window_s=30.0, max_queue=4,
                                 degraded_ratio=0.5)
        warm = (0.4, 0.0, 0.99)
        task = asyncio.ensure_future(d.resolve(KEY, [warm], timeout=10))
        await asyncio.sleep(0)
        d.flush()
        assert await task == [0.8]
        # park 2 of max_queue=4 points: saturation 0.5 -> degraded
        parked = [asyncio.ensure_future(
            d.resolve(KEY, [(v, 0.0, 0.99)], timeout=60))
            for v in (0.5, 0.6)]
        await asyncio.sleep(0)
        assert d.queued == 2 and d.saturation == 0.5
        assert d.degraded
        # cold point: rejected with a Retry-After hint
        with pytest.raises(DegradedError) as exc:
            await d.resolve(KEY, [(0.7, 0.0, 0.99)], timeout=10)
        assert exc.value.retry_after_s >= 1.0
        # memo hit: still answered
        assert await d.resolve(KEY, [warm], timeout=10) == [0.8]
        # in-flight join: still answered
        join = asyncio.ensure_future(
            d.resolve(KEY, [(0.5, 0.0, 0.99)], timeout=60))
        await asyncio.sleep(0)
        d.flush()
        assert [await t for t in parked] == [[1.0], [1.2]]
        assert await join == [1.0]
        # saturation receded: cold points admitted again
        assert not d.degraded
        final = asyncio.ensure_future(
            d.resolve(KEY, [(0.7, 0.0, 0.99)], timeout=10))
        await asyncio.sleep(0)
        d.flush()
        value = await final
        await d.aclose()
        return value, metrics

    value, metrics = _run_async(scenario())
    assert value == [1.4]
    snap = metrics.as_dict()
    assert snap["counters"]["serve.shed.degraded"] == 1
    assert snap["counters"]["serve.singleflight_joins"] == 1
    assert snap["counters"]["serve.memo_hits"] == 1


def test_dispatcher_no_shed_disables_admission_control():
    def solve(key, points):
        return [p[0] for p in points]

    async def scenario():
        d = MicroBatchDispatcher(solve, MetricsRegistry(), max_batch=8,
                                 window_s=0.001, max_queue=4, shed=False)
        # an absurd cost model would shed everything -- but shed=False
        d._ewma_point_s = 1000.0
        assert not d.degraded
        value = await d.resolve(KEY, [(0.5, 0.0, 0.99)], timeout=2)
        await d.aclose()
        return value

    assert _run_async(scenario()) == [0.5]


def test_dispatcher_bounded_drain_fails_stranded_waiters():
    release = threading.Event()

    def solve(key, points):
        release.wait(10)
        return [p[0] for p in points]

    async def scenario():
        metrics = MetricsRegistry()
        d = MicroBatchDispatcher(solve, metrics, max_batch=4,
                                 window_s=0.001)
        task = asyncio.ensure_future(
            d.resolve(KEY, [(0.5, 0.0, 0.99)], timeout=30))
        await asyncio.sleep(0.05)          # flushed; solve is blocked
        await d.aclose(drain_timeout_s=0.05)
        with pytest.raises(DrainingError):
            await task
        release.set()
        await asyncio.sleep(0.05)          # let the solver thread settle
        return metrics

    metrics = _run_async(scenario())
    assert metrics.as_dict()["counters"]["serve.drain_timeouts"] == 1


# -- drain / readiness over HTTP -----------------------------------------------


def test_server_draining_fails_readiness_not_liveness(fresh_cache):
    """Satellite regression: a draining server keeps answering liveness
    (200 /healthz) while readiness (/readyz) and new solves fail 503."""
    with ServerHarness(ServeConfig(port=0)) as h:
        with h.client() as c:
            assert c.chip_quantile("22nm", vdd=0.55, **ARCH) > 0
            assert c.ready()["ready"] is True
            health = c.health()
            assert health["draining"] is False
            assert health["degraded"] is False
            assert health["queue_saturation"] == 0.0

            h.server._draining = True
            health = c.health()
            assert health["ok"] is True          # liveness holds
            assert health["draining"] is True
            with pytest.raises(ServeRequestError) as not_ready:
                c.ready()
            assert not_ready.value.status == 503
            assert not_ready.value.code == "not_ready"
            with pytest.raises(ServeRequestError) as rejected:
                c.chip_quantile("22nm", vdd=0.6, **ARCH)
            assert rejected.value.status == 503
            assert rejected.value.code == "draining"
            assert rejected.value.retry_after == 1.0
            # intentional rejections never burn the error budget
            snap = c.metrics()
            assert snap["gauges"]["serve.error_rate"] == 0.0
            assert snap["counters"]["serve.shed.responses"] >= 2

            # saturation alone also fails readiness (still alive)
            h.server._draining = False
            h.server.dispatcher._queued = h.server.dispatcher.max_queue
            assert c.health()["degraded"] is True
            with pytest.raises(ServeRequestError) as saturated:
                c.ready()
            assert saturated.value.status == 503
            h.server.dispatcher._queued = 0

            assert c.ready()["ready"] is True
            assert c.chip_quantile("22nm", vdd=0.6, **ARCH) == \
                direct_values([0.6])[0]


def test_server_shed_latency_excluded_from_slo_window(fresh_cache):
    """Satellite: 429s land in serve.shed_latency_ms, never in the
    served-latency histogram/window -- burn rates stay honest."""
    config = ServeConfig(port=0, max_queue=1, batch_window_ms=200.0)
    with ServerHarness(config) as h:
        with h.client() as c:
            assert c.chip_quantile("22nm", vdd=0.55, **ARCH) > 0
            with pytest.raises(ServeRequestError) as exc:
                c.chip_quantile_batch("22nm", vdd=[0.5, 0.52, 0.6], **ARCH)
            assert exc.value.status == 429
            snap = c.metrics()
    assert snap["histograms"]["serve.shed_latency_ms"]["count"] == 1
    # only the served solve was observed (the /v1/metrics request itself
    # is accounted after its own snapshot renders)
    assert snap["histograms"]["serve.latency_ms"]["count"] == 1
    assert snap["counters"]["serve.shed.responses"] == 1
    assert snap["gauges"]["serve.error_rate"] == 0.0


# -- client reconnect path (stub sockets) --------------------------------------


def _http_response(body: bytes) -> bytes:
    return (b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"Connection: keep-alive\r\n\r\n" + body)


def _read_http_request(conn) -> bytes:
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = conn.recv(4096)
        if not chunk:
            return data
        data += chunk
    return data


def _stub_http_server(handlers):
    """Raw-socket server running one scripted handler per connection."""
    srv = socket.create_server(("127.0.0.1", 0))
    srv.settimeout(10)
    accepted = []

    def run():
        for handler in handlers:
            try:
                conn, _ = srv.accept()
            except OSError:
                return
            accepted.append(handler)
            try:
                handler(conn)
            finally:
                with contextlib.suppress(OSError):
                    conn.close()

    threading.Thread(target=run, daemon=True).start()
    return srv, srv.getsockname()[1], accepted


def test_client_roundtrip_reconnects_once_on_stale_keepalive():
    """Satellite: the server closing a keep-alive between requests is
    healed by one transparent reconnect on a fresh socket."""
    body = b'{"ok": true}'

    def serve_once_then_close(conn):
        _read_http_request(conn)
        conn.sendall(_http_response(body))
        # returning closes the socket: the pooled keep-alive goes stale

    srv, port, accepted = _stub_http_server(
        [serve_once_then_close, serve_once_then_close])
    try:
        with ServeClient("127.0.0.1", port, timeout=10) as c:
            assert c.health() == {"ok": True}
            # second request rides the dead pooled socket first, then
            # transparently succeeds on a fresh connection
            assert c.health() == {"ok": True}
    finally:
        srv.close()
    assert len(accepted) == 2


def test_client_roundtrip_surfaces_error_when_both_attempts_fail():
    """Satellite: when the fresh socket fails too, the original
    exception propagates -- never a silent ``None`` round trip."""
    def slam(conn):
        pass                                 # close without responding

    srv, port, accepted = _stub_http_server([slam, slam])
    try:
        with ServeClient("127.0.0.1", port, timeout=10) as c:
            # a TypeError here would mean _roundtrip returned None
            with pytest.raises((ConnectionError,
                                http.client.HTTPException, OSError)):
                c.health()
    finally:
        srv.close()
    assert len(accepted) == 2


# -- resilient client ----------------------------------------------------------


def _fast_policy(max_retries=3):
    return RetryPolicy(max_retries=max_retries, backoff_base_s=0.01,
                       backoff_cap_s=10.0)


def test_resilient_client_retries_and_honors_retry_after(monkeypatch):
    script = [ServeRequestError(429, "shed", "try later", 3.0),
              ConnectionResetError("mid-flight reset"),
              {"values": [1.0]}]

    def fake_request(self, method, path, payload=None):
        action = script.pop(0)
        if isinstance(action, Exception):
            raise action
        return action

    monkeypatch.setattr(ServeClient, "_request", fake_request)
    sleeps = []
    metrics = MetricsRegistry()
    c = ResilientServeClient(policy=_fast_policy(), metrics=metrics,
                             sleep=sleeps.append)
    assert c._request("POST", "/v1/query", {}) == {"values": [1.0]}
    assert not script
    assert len(sleeps) == 2
    assert sleeps[0] >= 3.0        # Retry-After floors the backoff
    assert c.retries == 2 and c.giveups == 0
    snap = metrics.as_dict()
    assert snap["counters"]["serve.retry.attempts"] == 2
    assert "serve.retry.giveups" not in snap["counters"]


def test_resilient_client_never_retries_after_2xx(monkeypatch):
    calls = []

    def fake_request(self, method, path, payload=None):
        calls.append(path)
        raise ServeRequestError(200, "bad_payload",
                                "server returned non-object JSON")

    monkeypatch.setattr(ServeClient, "_request", fake_request)
    c = ResilientServeClient(policy=_fast_policy(),
                             sleep=lambda s: None)
    with pytest.raises(ServeRequestError) as exc:
        c._request("GET", "/healthz")
    assert exc.value.status == 200
    assert calls == ["/healthz"]           # exactly one attempt
    assert c.retries == 0


@pytest.mark.parametrize("status,code", [(400, "bad_request"),
                                         (404, "not_found"),
                                         (408, "deadline_exceeded"),
                                         (500, "internal")])
def test_resilient_client_never_retries_non_retryable(monkeypatch,
                                                      status, code):
    calls = []

    def fake_request(self, method, path, payload=None):
        calls.append(1)
        raise ServeRequestError(status, code, "answered, not retryable")

    monkeypatch.setattr(ServeClient, "_request", fake_request)
    c = ResilientServeClient(policy=_fast_policy(),
                             sleep=lambda s: None)
    with pytest.raises(ServeRequestError):
        c._request("POST", "/v1/query", {})
    assert len(calls) == 1


def test_resilient_client_gives_up_after_policy_budget(monkeypatch):
    calls = []

    def fake_request(self, method, path, payload=None):
        calls.append(1)
        raise ServeRequestError(503, "draining", "still draining", 0.0)

    monkeypatch.setattr(ServeClient, "_request", fake_request)
    metrics = MetricsRegistry()
    c = ResilientServeClient(policy=_fast_policy(max_retries=2),
                             metrics=metrics, sleep=lambda s: None,
                             breaker_threshold=100)
    with pytest.raises(ServeRequestError) as exc:
        c._request("POST", "/v1/query", {})
    assert exc.value.status == 503
    assert len(calls) == 3                 # 1 + max_retries
    assert c.giveups == 1
    assert metrics.as_dict()["counters"]["serve.retry.giveups"] == 1


def test_resilient_client_backoff_is_deterministic(monkeypatch):
    def fail_twice_then_ok():
        state = {"n": 0}

        def fake_request(self, method, path, payload=None):
            state["n"] += 1
            if state["n"] <= 2:
                raise ConnectionResetError("boom")
            return {"ok": True}
        return fake_request

    def run_once():
        sleeps = []
        c = ResilientServeClient(policy=_fast_policy(),
                                 sleep=sleeps.append)
        c._request("GET", "/healthz")
        return sleeps

    monkeypatch.setattr(ServeClient, "_request", fail_twice_then_ok())
    a = run_once()
    monkeypatch.setattr(ServeClient, "_request", fail_twice_then_ok())
    b = run_once()
    assert a == b and len(a) == 2          # CRC32 jitter, no RNG state


def test_resilient_client_circuit_breaker_opens_probes_and_closes(
        monkeypatch):
    behavior = {"fail": True}
    calls = []

    def fake_request(self, method, path, payload=None):
        calls.append(1)
        if behavior["fail"]:
            raise ConnectionResetError("down")
        return {"ok": True}

    monkeypatch.setattr(ServeClient, "_request", fake_request)
    now = [0.0]
    metrics = MetricsRegistry()
    c = ResilientServeClient(policy=_fast_policy(max_retries=0),
                             breaker_threshold=3, breaker_reset_s=10.0,
                             metrics=metrics, sleep=lambda s: None,
                             clock=lambda: now[0])
    from repro.serve.resilient import (BREAKER_CLOSED, BREAKER_OPEN)
    # three consecutive failures open the circuit
    for _ in range(3):
        with pytest.raises(ConnectionResetError):
            c._request("GET", "/healthz")
    assert c.breaker_state == BREAKER_OPEN
    assert metrics.as_dict()["gauges"]["serve.breaker_state"] == 2.0
    # while open: fail fast, no socket touched
    n_calls = len(calls)
    with pytest.raises(CircuitOpenError) as exc:
        c._request("GET", "/healthz")
    assert len(calls) == n_calls
    assert 0 < exc.value.retry_after <= 10.0
    # after the reset window a half-open probe that fails re-opens...
    now[0] = 10.5
    with pytest.raises(ConnectionResetError):
        c._request("GET", "/healthz")
    assert c.breaker_state == BREAKER_OPEN
    # ...and one that succeeds closes the circuit for good
    now[0] = 21.0
    behavior["fail"] = False
    assert c._request("GET", "/healthz") == {"ok": True}
    assert c.breaker_state == BREAKER_CLOSED
    assert metrics.as_dict()["gauges"]["serve.breaker_state"] == 0.0
    assert c._request("GET", "/healthz") == {"ok": True}


# -- network chaos -------------------------------------------------------------


def test_serve_network_chaos_twin_bit_identical(tmp_path, monkeypatch):
    """The tentpole gate: a retrying client driving a server under
    conn_reset + slow_read + partial_write + garbled_response +
    solver_nan gets byte-identical values_hex to a clean serial solve,
    twice over, with every fault on the flight recorder."""
    monkeypatch.setenv("REPRO_FAULT_SLOW_S", "0.01")
    vdds = [0.5, 0.52, 0.54, 0.56]
    spec = ("conn_reset:0,slow_read:3,partial_write:4,"
            "garbled_response:5,solver_nan:0")

    def run_once(tag):
        # each run gets a cold quantile cache so the poisoned solve
        # (and its rescue) actually executes both times
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / tag))
        runtime = build_runtime(jobs=1, metrics=True,
                                faults=parse_faults(spec))
        try:
            with ServerHarness(ServeConfig(port=0, batch_window_ms=1.0),
                               runtime) as h:
                with ResilientServeClient(
                        "127.0.0.1", h.port, timeout=30,
                        policy=RetryPolicy(max_retries=3,
                                           backoff_base_s=0.01,
                                           backoff_cap_s=0.05)) as c:
                    hexes = [c.query("22nm", vdd=v, **ARCH)
                             ["values_hex"][0] for v in vdds]
                    health = c.health()
                    snap = c.metrics()
                    flight = c.flight()
                    retries = c.retries
            assert health["ok"] is True and health["queued"] == 0
            return hexes, snap, flight, retries
        finally:
            runtime.close()

    hex_a, snap_a, flight_a, retries_a = run_once("run-a")
    hex_b, snap_b, flight_b, retries_b = run_once("run-b")
    # the poisoned first point answers via the scalar Brent rescue
    # (same bits as the rescue ladder in a clean CLI run); every other
    # point must match the invariant batch exactly
    engine = ChipDelayEngine(get_technology("22nm"), **ARCH)
    expected = [float(engine.chip_quantile(vdds[0], 0.99, 0.0)).hex()]
    expected += [v.hex() for v in direct_values(vdds[1:])]
    assert hex_a == expected
    assert hex_b == expected
    # every injected fault fired exactly once, on both runs
    for snap in (snap_a, snap_b):
        assert snap["counters"]["serve.net_faults"] == 4
        for kind in ("conn_reset", "slow_read", "partial_write",
                     "garbled_response"):
            assert snap["counters"][f"serve.net_fault.{kind}"] == 1
        assert snap["counters"]["resilience.solver.fallback_scalar"] == 1
    net = [e for e in flight_a["events"] if e["kind"] == "net_fault"]
    assert sorted(e["fault"] for e in net) == sorted(
        ["conn_reset", "garbled_response", "partial_write", "slow_read"])
    # the chaos story itself is a twin (modulo timing)
    assert strip_timing(flight_a["events"]) == \
        strip_timing(flight_b["events"])
    assert retries_a == retries_b >= 1


def test_serve_cli_graceful_drain_completes_inflight(fresh_cache, tmp_path):
    """SIGTERM mid-batch-window: the parked request completes 200 with
    correct bits, a new request gets 503 draining, and the process
    exits 0 well inside --drain-timeout-s."""
    env = dict(os.environ, PYTHONPATH="src",
               REPRO_CACHE_DIR=str(tmp_path / "cache"))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0",
         "--batch-window-ms", "1500", "--drain-timeout-s", "20"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=env, cwd=os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
    try:
        line = proc.stdout.readline()
        assert "listening on" in line, line
        port = int(line.rsplit(":", 1)[1])
        # warm the engine so the parked request below solves quickly
        with ServeClient("127.0.0.1", port, timeout=60) as warm:
            warm.chip_quantile("22nm", vdd=0.5, **ARCH)
        results = {}

        def inflight():
            with ServeClient("127.0.0.1", port, timeout=60) as cc:
                results["value"] = cc.chip_quantile("22nm", vdd=0.55,
                                                    **ARCH)

        t = threading.Thread(target=inflight)
        t.start()
        time.sleep(0.4)                  # parked in the batch window
        t_drain = time.monotonic()
        proc.send_signal(signal.SIGTERM)
        time.sleep(0.3)                  # drain begun, window still open
        with ServeClient("127.0.0.1", port, timeout=10) as probe:
            with pytest.raises(ServeRequestError) as exc:
                probe.chip_quantile("22nm", vdd=0.6, **ARCH)
        assert exc.value.status == 503
        assert exc.value.code == "draining"
        t.join(30)
        stdout, stderr = proc.communicate(timeout=30)
        elapsed = time.monotonic() - t_drain
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0, stderr
    assert elapsed < 20, f"drain blew its budget: {elapsed:.1f}s"
    assert results["value"] == direct_values([0.55])[0]
    assert "drained clean=True" in stdout


def test_server_tail_quantile_roundtrip(fresh_cache):
    """/v1/tail_quantile solves, memoises, and surfaces diagnostics."""
    point = dict(vdd=0.55, q=0.999, n_samples=256, root_seed=3, **ARCH)
    with ServerHarness(ServeConfig(port=0)) as h:
        with h.client() as c:
            first = c.tail_quantile("22nm", **point)
            again = c.tail_quantile("22nm", **point)
            metrics = c.metrics()
            with pytest.raises(ServeRequestError) as err:
                c.tail_quantile("22nm", vdd=0.55, q=1.5, **ARCH)
            with pytest.raises(ServeRequestError):
                c.tail_quantile("22nm", vdd=0.55, q=0.999,
                                n_samples=0, **ARCH)
    assert err.value.status == 400
    assert first["values_hex"] == again["values_hex"]
    assert first["value"] == first["values"][0] > 0.0
    est = first["estimates"][0]
    assert est["kind"] == "quantile"
    assert est["ess"] > 2.0
    assert 0.0 < est["weight_max_ratio"] < 1.0
    assert est["proposal"]["d2d_shifts"][0] > 0.0
    gauges = metrics["gauges"]
    assert gauges["tail.ess"] > 0.0
    assert gauges["tail.weight_max_ratio"] > 0.0
    assert metrics["counters"]["serve.tail_points"] >= 2
    # The solve is deterministic: a local analyzer at the same
    # architecture reproduces the served bits exactly.
    from repro.core.analyzer import VariationAnalyzer
    local = VariationAnalyzer("22nm", **ARCH).chip_tail_quantile(
        0.55, 0.999, n_samples=256, root_seed=3)
    assert local.value.hex() in first["values_hex"]


def test_server_tail_explicit_shift_skips_search(fresh_cache):
    with ServerHarness(ServeConfig(port=0)) as h:
        with h.client() as c:
            got = c.tail_quantile("22nm", vdd=0.55, q=0.999,
                                  n_samples=128, shift=2.5,
                                  defensive_weight=0.2, **ARCH)
    est = got["estimates"][0]
    assert est["shift_search_rounds"] == 0
    assert est["proposal"]["d2d_shifts"] == [2.5, 0.0]
    assert est["proposal"]["mix_weights"] == [0.8, 0.2]
