"""Logical-effort gate library."""

import numpy as np
import pytest

from repro.circuits.gates import GATE_LIBRARY, Gate, get_gate
from repro.errors import ConfigurationError


def test_library_contents():
    for name in ("inv", "nand2", "nor2", "xor2", "aoi21", "buf"):
        assert get_gate(name).name == name


def test_unknown_gate():
    with pytest.raises(ConfigurationError):
        get_gate("nand17")


def test_effort_delay_formula():
    inv = get_gate("inv")
    assert inv.effort_delay_units(4.0) == pytest.approx(5.0)
    nand = get_gate("nand2")
    assert nand.effort_delay_units(3.0) == pytest.approx(2.0 + 4.0)


def test_fo4_inverter_matches_technology_unit(tech90):
    inv = get_gate("inv")
    assert float(inv.delay(tech90, 0.6, fanout=4.0)) == pytest.approx(
        tech90.fo4_unit(0.6))


def test_gate_delay_ordering(tech90):
    """Higher logical effort -> slower gate at the same fanout."""
    inv = float(get_gate("inv").delay(tech90, 0.6, 4.0))
    nand = float(get_gate("nand2").delay(tech90, 0.6, 4.0))
    nor = float(get_gate("nor2").delay(tech90, 0.6, 4.0))
    xor = float(get_gate("xor2").delay(tech90, 0.6, 4.0))
    assert inv < nand < nor < xor


def test_gate_delay_scales_with_variation(tech90):
    nand = get_gate("nand2")
    base = float(nand.delay(tech90, 0.5))
    slow = float(nand.delay(tech90, 0.5, dvth=0.02))
    assert slow > base
    assert float(nand.delay(tech90, 0.5, mult=0.25)) == pytest.approx(
        1.25 * base)


def test_gate_validation():
    with pytest.raises(ConfigurationError):
        Gate("bad", logical_effort=0.0, parasitic=1.0, inputs=1)
    with pytest.raises(ConfigurationError):
        Gate("bad", logical_effort=1.0, parasitic=1.0, inputs=0)
    with pytest.raises(ConfigurationError):
        get_gate("inv").effort_delay_units(0.0)


def test_size_scale_positive_everywhere():
    assert all(g.size_scale > 0 for g in GATE_LIBRARY.values())
