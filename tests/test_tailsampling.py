"""Importance-sampling tail estimation: weights, invariance, recovery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.montecarlo import MonteCarloEngine
from repro.core.tailsampling import (
    MAX_SHIFT,
    ShiftProposal,
    TailSampler,
    effective_sample_size,
    normalized_weights,
    weight_max_ratio,
)
from repro.devices.technology import get_technology
from repro.errors import ConfigurationError
from repro.resilience import (
    FaultLedger,
    activate_ledger,
    install_faults,
    parse_faults,
)
from repro.runtime.parallel import ParallelSampler

SMALL_ARCH = dict(width=4, paths_per_lane=3, chain_length=5)
VDD = 0.55


# -- weight helpers -----------------------------------------------------------


def test_normalized_weights_uniform_and_offset_invariant():
    w = normalized_weights([0.0, 0.0, 0.0, 0.0])
    np.testing.assert_allclose(w, 0.25)
    a = normalized_weights([1.0, 2.0, 3.0])
    b = normalized_weights([-699.0, -698.0, -697.0])
    np.testing.assert_allclose(a, b, rtol=1e-12)


def test_normalized_weights_validation():
    with pytest.raises(ConfigurationError):
        normalized_weights([])
    with pytest.raises(ConfigurationError):
        normalized_weights([0.0, np.nan])


def test_ess_and_max_ratio_limits():
    n = 64
    assert effective_sample_size(np.zeros(n)) == pytest.approx(n)
    assert weight_max_ratio(np.zeros(n)) == pytest.approx(1.0 / n)
    # One dominant sample: ESS -> 1, max ratio -> 1.
    lw = np.full(n, -100.0)
    lw[5] = 0.0
    assert effective_sample_size(lw) == pytest.approx(1.0, rel=1e-10)
    assert weight_max_ratio(lw) == pytest.approx(1.0, rel=1e-10)


# -- ShiftProposal ------------------------------------------------------------


def test_proposal_validation():
    with pytest.raises(ConfigurationError):
        ShiftProposal(d2d_shifts=())
    with pytest.raises(ConfigurationError):
        ShiftProposal(d2d_shifts=(MAX_SHIFT + 1.0,))
    with pytest.raises(ConfigurationError):
        ShiftProposal(d2d_shifts=(float("nan"),))
    with pytest.raises(ConfigurationError):
        ShiftProposal(d2d_shifts=(1.0, 2.0), mix_weights=(1.0,))
    with pytest.raises(ConfigurationError):
        ShiftProposal(d2d_shifts=(1.0, 2.0), mix_weights=(1.0, -1.0))
    with pytest.raises(ConfigurationError):
        ShiftProposal(lane_shift=float("inf"))
    with pytest.raises(ConfigurationError):
        ShiftProposal.defensive(2.0, defensive_weight=1.0)


def test_proposal_defensive_degrades_to_mean_shift():
    assert ShiftProposal.defensive(2.0, 0.0) == ShiftProposal.mean_shift(2.0)
    assert ShiftProposal.defensive(0.0, 0.3) == ShiftProposal.mean_shift(0.0)
    mix = ShiftProposal.defensive(2.0, 0.25)
    assert mix.is_mixture
    assert mix.d2d_shifts == (2.0, 0.0)
    assert mix.mix_weights == (0.75, 0.25)


def test_proposal_roundtrip_and_fingerprint():
    p = ShiftProposal(d2d_shifts=(1.5, 0.0), mix_weights=(0.8, 0.2),
                      lane_shift=0.5)
    assert ShiftProposal.from_dict(p.as_dict()) == p
    assert p.fingerprint() == ShiftProposal.from_dict(
        p.as_dict()).fingerprint()
    assert p.fingerprint() != ShiftProposal.mean_shift(1.5).fingerprint()


def test_proposal_stream_consumption():
    """Only a genuine mixture consumes a uniform for component choice."""
    single = ShiftProposal.mean_shift(3.0)
    mix = ShiftProposal.defensive(3.0, 0.2)
    rng = np.random.default_rng(0)
    before = rng.bit_generator.state["state"]["state"]
    assert single.pick_component(rng) == 0
    assert rng.bit_generator.state["state"]["state"] == before
    mix.pick_component(rng)
    assert rng.bit_generator.state["state"]["state"] != before


def test_proposal_rejects_zero_sigma_component():
    class _Var:
        sigma_vth_d2d = 0.0
        sigma_vth_lane = 0.0

    with pytest.raises(ConfigurationError):
        ShiftProposal.mean_shift(2.0).validate_for(_Var())
    with pytest.raises(ConfigurationError):
        ShiftProposal.mean_shift(0.0, lane_shift=1.0).validate_for(_Var())
    ShiftProposal.mean_shift(0.0).validate_for(_Var())  # nominal is fine


# -- weighted sampling parity and invariance ----------------------------------


def test_zero_shift_reproduces_plain_sampling(tech22):
    """A nominal proposal must be bit-identical to plain MC, logw == 0."""
    kw = dict(n_chips=48, batch_size=16, **SMALL_ARCH)
    plain = MonteCarloEngine(tech22, seed=3).system_delays(VDD, **kw)
    weighted, logw = MonteCarloEngine(tech22, seed=3).weighted_system_delays(
        VDD, proposal=ShiftProposal.mean_shift(0.0), **kw)
    np.testing.assert_array_equal(weighted, plain)
    assert np.all(logw == 0.0)


def test_weighted_sampling_batch_size_invariant(tech22):
    proposal = ShiftProposal.defensive(2.0, 0.2, lane_shift=0.5)
    d1, w1 = MonteCarloEngine(tech22, seed=9).weighted_system_delays(
        VDD, n_chips=48, batch_size=7, proposal=proposal, **SMALL_ARCH)
    d2, w2 = MonteCarloEngine(tech22, seed=9).weighted_system_delays(
        VDD, n_chips=48, batch_size=48, proposal=proposal, **SMALL_ARCH)
    np.testing.assert_array_equal(d1, d2)
    np.testing.assert_array_equal(w1, w2)


def test_weighted_shift_slows_chips_and_weights_compensate(tech22):
    """A positive d2d shift must push delays up, with sub-unity weights."""
    kw = dict(n_chips=64, batch_size=32, **SMALL_ARCH)
    plain = MonteCarloEngine(tech22, seed=1).system_delays(VDD, **kw)
    shifted, logw = MonteCarloEngine(tech22, seed=1).weighted_system_delays(
        VDD, proposal=ShiftProposal.mean_shift(3.0), **kw)
    assert np.median(shifted) > np.median(plain)
    # Deep-shifted samples carry small likelihood ratios on average.
    assert np.median(logw) < 0.0


def test_weighted_sampling_jobs_invariant(tech22):
    proposal = ShiftProposal.defensive(2.0, 0.1)
    kw = dict(width=4, paths_per_lane=3, chain_length=5, n_chips=64,
              proposal=proposal, batch_size=16, root_seed=11)
    with ParallelSampler(1, shard_size=16) as serial:
        d1, w1 = serial.weighted_system_delays(tech22, VDD, **kw)
    with ParallelSampler(2, shard_size=16, shm_min_bytes=0) as pooled:
        d2, w2 = pooled.weighted_system_delays(tech22, VDD, **kw)
    np.testing.assert_array_equal(d1, d2)
    np.testing.assert_array_equal(w1, w2)


def test_weighted_sampling_survives_worker_crash(tech22):
    """A crashed worker mid-run must recover bit-identically (chaos)."""
    proposal = ShiftProposal.defensive(2.5, 0.1)
    kw = dict(width=4, paths_per_lane=3, chain_length=5, n_chips=64,
              proposal=proposal, batch_size=16, root_seed=5)
    with ParallelSampler(1, shard_size=16) as serial:
        d_ref, w_ref = serial.weighted_system_delays(tech22, VDD, **kw)
    ledger = FaultLedger()
    with activate_ledger(ledger), \
            install_faults(parse_faults("worker_crash:1")):
        with ParallelSampler(2, shard_size=16, shm_min_bytes=0) as pooled:
            d, w = pooled.weighted_system_delays(tech22, VDD, **kw)
    assert ledger.counts()["pool_respawn"] == 1
    np.testing.assert_array_equal(d, d_ref)
    np.testing.assert_array_equal(w, w_ref)


# -- TailSampler --------------------------------------------------------------


@pytest.fixture(scope="module")
def tail_sampler():
    return TailSampler("22nm", batch_size=64, **SMALL_ARCH)


def test_tail_quantile_matches_brute_force(tail_sampler, tech22):
    """IS estimate at 512 weighted samples vs 20k plain-MC reference."""
    q = 0.99
    est = tail_sampler.tail_quantile(VDD, q, n_samples=512, root_seed=0,
                                     n_pilot=128, max_rounds=3)
    ref = MonteCarloEngine(tech22, seed=0).system_delays(
        VDD, n_chips=20_000, batch_size=2048, **SMALL_ARCH)
    assert est.value == pytest.approx(float(np.quantile(ref, q)), rel=0.05)
    assert est.kind == "quantile" and est.q == q
    assert 2.0 < est.ess <= 512.0
    assert 0.0 < est.weight_max_ratio < 0.5
    assert est.shift_search_rounds >= 1
    assert est.proposal.has_d2d_shift


def test_tail_quantile_deterministic_and_explicit_proposal(tail_sampler):
    a = tail_sampler.tail_quantile(VDD, 0.999, n_samples=256, root_seed=7,
                                   n_pilot=64, max_rounds=2)
    b = tail_sampler.tail_quantile(VDD, 0.999, n_samples=256, root_seed=7,
                                   n_pilot=64, max_rounds=2)
    assert a.value.hex() == b.value.hex()
    assert a.proposal == b.proposal
    # An explicit proposal skips the search entirely.
    c = tail_sampler.tail_quantile(VDD, 0.999, n_samples=256, root_seed=7,
                                   proposal=a.proposal)
    assert c.shift_search_rounds == 0
    assert c.value.hex() == a.value.hex()


def test_failure_probability_t_limit_and_f_clk_agree(tail_sampler):
    t_limit = 2e-9
    a = tail_sampler.failure_probability(VDD, t_limit, n_samples=256,
                                         root_seed=3, n_pilot=64,
                                         max_rounds=2)
    b = tail_sampler.failure_probability(VDD, f_clk=1.0 / t_limit,
                                         n_samples=256, root_seed=3,
                                         n_pilot=64, max_rounds=2)
    assert a.value == b.value
    assert a.kind == "probability"
    assert a.threshold == t_limit
    assert 0.0 <= a.value <= 1.0


def test_failure_probability_consistent_with_quantile(tail_sampler, tech22):
    """P(delay > t_q) must land near 1 - q (independent threshold)."""
    q = 0.99
    ref = MonteCarloEngine(tech22, seed=0).system_delays(
        VDD, n_chips=20_000, batch_size=2048, **SMALL_ARCH)
    t_q = float(np.quantile(ref, q))
    est = tail_sampler.failure_probability(VDD, t_q, n_samples=1024,
                                           root_seed=1, n_pilot=128,
                                           max_rounds=3)
    assert est.value == pytest.approx(1.0 - q, rel=0.5)


def test_tail_sampler_validation(tail_sampler):
    with pytest.raises(ConfigurationError):
        tail_sampler.tail_quantile(VDD, 1.5)
    with pytest.raises(ConfigurationError):
        tail_sampler.tail_quantile(VDD, 0.99, n_samples=1)
    with pytest.raises(ConfigurationError):
        tail_sampler.failure_probability(VDD)                 # neither
    with pytest.raises(ConfigurationError):
        tail_sampler.failure_probability(VDD, 1e-9, f_clk=1e9)  # both
    with pytest.raises(ConfigurationError):
        tail_sampler.failure_probability(VDD, f_clk=-1.0)
    with pytest.raises(ConfigurationError):
        tail_sampler.find_shift(VDD)                          # neither
    with pytest.raises(ConfigurationError):
        tail_sampler.find_shift(VDD, 0.99, t_limit=1e-9)      # both
    with pytest.raises(ConfigurationError):
        tail_sampler.find_shift(VDD, 0.99, n_pilot=4)
    with pytest.raises(ConfigurationError):
        tail_sampler.find_shift(VDD, 0.99, elite_fraction=0.7)
    with pytest.raises(ConfigurationError):
        TailSampler("22nm", width=0)


def test_tail_estimate_as_dict_roundtrips_json(tail_sampler):
    import json
    est = tail_sampler.tail_quantile(VDD, 0.99, n_samples=64, root_seed=0,
                                     proposal=ShiftProposal.mean_shift(2.0))
    payload = json.loads(json.dumps(est.as_dict()))
    assert payload["kind"] == "quantile"
    assert payload["value"] == est.value
    assert ShiftProposal.from_dict(payload["proposal"]) == est.proposal


# -- analyzer integration (validation + tail API + caching) -------------------


def test_analyzer_point_validation_before_caches(analyzer90):
    for bad_q in (0.0, 1.0, -2.0, 1.5, float("nan")):
        with pytest.raises(ConfigurationError):
            analyzer90.chip_quantile(0.6, q=bad_q)
    with pytest.raises(ConfigurationError):
        analyzer90.chip_quantile(0.6, spares=-1.0)
    with pytest.raises(ConfigurationError):
        analyzer90.chip_quantiles([0.5, 0.6], q=[0.9, 1.5])
    with pytest.raises(ConfigurationError):
        analyzer90.chip_quantiles([0.5, 0.6], spares=[0.0, -3.0])
    with pytest.raises(ConfigurationError):
        analyzer90.chip_quantiles([0.5, 0.6], q=[0.9, float("inf")])


@pytest.fixture(scope="module")
def tail_analyzer():
    from repro.core.analyzer import VariationAnalyzer
    return VariationAnalyzer("22nm", **SMALL_ARCH)


def test_analyzer_tail_quantile_memoised(tail_analyzer):
    kw = dict(n_samples=256, root_seed=2, n_pilot=64, max_rounds=2)
    first = tail_analyzer.chip_tail_quantile(VDD, 0.999, **kw)
    again = tail_analyzer.chip_tail_quantile(VDD, 0.999, **kw)
    assert again.value.hex() == first.value.hex()
    assert again.ess == first.ess
    # A fresh analyzer must hit the on-disk cache and agree bit-for-bit.
    from repro.core.analyzer import VariationAnalyzer
    fresh = VariationAnalyzer("22nm", **SMALL_ARCH)
    cached = fresh.chip_tail_quantile(VDD, 0.999, **kw)
    assert cached.value.hex() == first.value.hex()
    assert cached.proposal == first.proposal


def test_analyzer_tail_distinct_points_not_conflated(tail_analyzer):
    kw = dict(n_samples=256, root_seed=2, n_pilot=64, max_rounds=2)
    a = tail_analyzer.chip_tail_quantile(VDD, 0.999, **kw)
    b = tail_analyzer.chip_tail_quantile(VDD, 0.9995, **kw)
    assert a.value != b.value


def test_analyzer_failure_probability_f_clk(tail_analyzer):
    est = tail_analyzer.chip_failure_probability(
        VDD, f_clk=5e8, n_samples=256, root_seed=0, n_pilot=64,
        max_rounds=2)
    assert est.kind == "probability"
    assert est.threshold == pytest.approx(2e-9)
    assert 0.0 <= est.value <= 1.0
    with pytest.raises(ConfigurationError):
        tail_analyzer.chip_failure_probability(VDD)
    with pytest.raises(ConfigurationError):
        tail_analyzer.chip_failure_probability(VDD, 1e-9, f_clk=1e9)
