"""XRAM crossbar behavioural model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, RoutingError
from repro.simd.xram import XRAMCrossbar


def test_store_and_route():
    xram = XRAMCrossbar(4)
    xram.store_configuration("rev", [3, 2, 1, 0])
    data = np.array([10, 20, 30, 40])
    np.testing.assert_array_equal(xram.route(data), [40, 30, 20, 10])


def test_broadcast_allowed_permutation_detected():
    xram = XRAMCrossbar(4)
    xram.store_configuration("bcast", [0, 0, 0, 0])
    assert not xram.is_permutation("bcast")
    xram.store_configuration("perm", [1, 0, 3, 2])
    assert xram.is_permutation("perm")


def test_crosspoint_matrix_one_hot_per_output():
    xram = XRAMCrossbar(5, 3)
    xram.store_configuration("c", [4, 0, 2])
    matrix = xram.crosspoint_matrix("c")
    assert matrix.shape == (5, 3)
    np.testing.assert_array_equal(matrix.sum(axis=0), [1, 1, 1])


def test_configuration_switching():
    xram = XRAMCrossbar(3)
    xram.store_configuration("a", [0, 1, 2])
    xram.store_configuration("b", [2, 1, 0])
    assert set(xram.configurations) == {"a", "b"}
    xram.select("b")
    np.testing.assert_array_equal(xram.active_mapping, [2, 1, 0])
    with pytest.raises(RoutingError):
        xram.select("missing")


def test_invalid_mappings_rejected():
    xram = XRAMCrossbar(4)
    with pytest.raises(RoutingError):
        xram.store_configuration("bad", [0, 1])           # wrong length
    with pytest.raises(RoutingError):
        xram.store_configuration("bad", [0, 1, 2, 7])     # out of range


def test_route_requires_configuration():
    xram = XRAMCrossbar(2)
    with pytest.raises(RoutingError):
        xram.route(np.array([1, 2]))


def test_bypass_skips_faulty_paper_example():
    """Paper Fig. 12(c): 10 FUs, 8 lanes, FU-2 and FU-3 faulty."""
    xram = XRAMCrossbar(10, 8)
    mapping = xram.bypass_configuration([2, 3])
    np.testing.assert_array_equal(mapping, [0, 1, 4, 5, 6, 7, 8, 9])
    assert xram.is_permutation()


def test_bypass_too_many_faults():
    xram = XRAMCrossbar(10, 8)
    with pytest.raises(RoutingError):
        xram.bypass_configuration([0, 1, 2])
    with pytest.raises(RoutingError):
        xram.bypass_configuration([10])


def test_physical_scaling():
    small = XRAMCrossbar(128)
    grown = XRAMCrossbar(134)
    assert small.relative_power() == pytest.approx(1.0)
    assert grown.relative_power() == pytest.approx((134 / 128) ** 1.5)
    assert grown.relative_area() > 1.0


def test_constructor_validation():
    with pytest.raises(ConfigurationError):
        XRAMCrossbar(0)
    with pytest.raises(ConfigurationError):
        XRAMCrossbar(4, 0)


@settings(max_examples=30, deadline=None)
@given(st.sets(st.integers(0, 15), max_size=6))
def test_bypass_property(faulty):
    """Any fault set within the spare budget yields a valid permutation
    avoiding every faulty FU."""
    xram = XRAMCrossbar(16, 10)
    if len(faulty) > 6:
        return
    mapping = xram.bypass_configuration(faulty)
    assert len(set(mapping.tolist())) == 10
    assert not (set(mapping.tolist()) & faulty)
    # Order-preserving: healthy FUs used in ascending order.
    assert list(mapping) == sorted(mapping)
