"""Stall/replay error-tolerance model (the paper's rejected alternative)."""

import pytest

from repro.errors import ConfigurationError
from repro.mitigation.error_tolerance import (
    ReplayModel,
    optimal_clock,
    simd_vs_scalar,
)

VDD = 0.55


@pytest.fixture(scope="module")
def model(analyzer90):
    return ReplayModel(analyzer90, penalty_cycles=10.0)


def test_error_probability_monotone_in_clock(model):
    tight = model.error_probability(VDD, 0.9 * model.analyzer.chip_quantile(VDD))
    loose = model.error_probability(VDD, 1.1 * model.analyzer.chip_quantile(VDD))
    assert 0 <= loose < tight <= 1


def test_error_probability_grows_with_width(model):
    clock = model.analyzer.chip_quantile(VDD, q=0.5)
    p1 = model.error_probability(VDD, clock, width=1)
    p128 = model.error_probability(VDD, clock, width=128)
    assert p128 > p1


def test_chip_cdf_consistency(model, analyzer90):
    """At the 99% chip quantile, the any-lane error rate is 1%."""
    clock = analyzer90.chip_quantile(VDD)
    p = model.error_probability(VDD, clock, width=128)
    assert p == pytest.approx(0.01, abs=2e-3)


def test_effective_throughput_shape(model):
    safe = model.analyzer.chip_quantile(VDD, q=0.999)
    reckless = 0.9 * model.analyzer.chip_quantile(VDD, q=0.5)
    # Overclocking into the error region can *lose* throughput.
    assert (model.effective_throughput(VDD, safe)
            > 0.5 * model.effective_throughput(VDD, reckless))


def test_optimal_clock_beats_reckless(model):
    result = optimal_clock(model, VDD, width=128)
    assert result["throughput"] >= result["safe_throughput"]
    assert 0 <= result["error_probability"] < 0.5
    assert result["overclock_gain"] >= 0


def test_scalar_tolerates_more_overclocking(model):
    """A scalar pipeline's throughput-optimal point sits deeper in the
    error region than the 128-wide machine's (relative to its own safe
    clock) — the quantitative form of the paper's argument."""
    simd = optimal_clock(model, VDD, width=128)
    scalar = optimal_clock(model, VDD, width=1)
    rel_simd = simd["clock"] / simd["safe_clock"]
    rel_scalar = scalar["clock"] / scalar["safe_clock"]
    assert rel_scalar <= rel_simd + 1e-9
    assert scalar["error_probability"] >= simd["error_probability"] - 1e-12


def test_simd_vs_scalar_amplification(analyzer90):
    result = simd_vs_scalar(analyzer90, VDD)
    # Any-lane error rate amplifies strongly over the scalar rate ...
    assert result["amplification"] > 5
    assert result["p_simd"] > result["p_scalar"]
    # ... so SIMD throughput derates more and needs a slower clock for
    # parity.
    assert (result["throughput_derate_simd"]
            < result["throughput_derate_scalar"])
    assert result["clock_slowdown_for_parity"] > 0


def test_validation(analyzer90, model):
    with pytest.raises(ConfigurationError):
        ReplayModel(analyzer90, penalty_cycles=0)
    with pytest.raises(ConfigurationError):
        model.error_probability(VDD, -1.0)
    with pytest.raises(ConfigurationError):
        model.error_probability(VDD, 1.0, width=0)
