"""Cross-validation: the analytic order-statistics engine against the
brute-force per-gate Monte-Carlo, on a reduced architecture.

This is the correctness keystone: if the Cornish-Fisher path
approximation or the quadrature over the correlated scales were wrong,
the two engines would disagree at the distribution tails.
"""

import numpy as np
import pytest

from repro.core.chip_delay import ChipDelayEngine
from repro.core.montecarlo import MonteCarloEngine

WIDTH, PATHS, CHAIN = 16, 10, 20


@pytest.fixture(scope="module")
def engines(tech90):
    analytic = ChipDelayEngine(tech90, width=WIDTH, paths_per_lane=PATHS,
                               chain_length=CHAIN)
    mc = MonteCarloEngine(tech90, seed=99)
    return analytic, mc


@pytest.mark.parametrize("vdd", [0.5, 0.7, 1.0])
def test_chain_statistics_match_full_mc(engines, vdd):
    analytic, mc = engines
    samples = mc.chain_delays(vdd, CHAIN, 40_000)
    stats = analytic.chain_statistics(vdd, CHAIN)
    assert float(stats.mean) == pytest.approx(samples.mean(), rel=3e-3)
    assert float(stats.std) == pytest.approx(samples.std(), rel=0.03)


@pytest.mark.parametrize("vdd", [0.55, 0.8])
def test_chip_delay_distribution_matches_full_mc(engines, vdd):
    analytic, mc = engines
    full = mc.system_delays(vdd, width=WIDTH, paths_per_lane=PATHS,
                            chain_length=CHAIN, n_chips=4000,
                            batch_size=250)
    fast = analytic.sample_chips(vdd, 20_000, np.random.default_rng(3))
    assert fast.mean() == pytest.approx(full.mean(), rel=0.01)
    for q in (0.5, 0.9, 0.99):
        assert np.quantile(fast, q) == pytest.approx(
            np.quantile(full, q), rel=0.015)
    deterministic = analytic.chip_quantile(vdd, 0.99)
    assert deterministic == pytest.approx(np.quantile(full, 0.99), rel=0.015)


def test_spare_dropping_matches_full_mc(engines):
    analytic, mc = engines
    spares = 3
    full = mc.system_delays(0.6, width=WIDTH, paths_per_lane=PATHS,
                            chain_length=CHAIN, n_chips=4000,
                            spares=spares, batch_size=250)
    deterministic = analytic.chip_quantile(0.6, 0.99, spares=spares)
    assert deterministic == pytest.approx(np.quantile(full, 0.99), rel=0.02)


def test_lane_delays_match_full_mc(engines):
    analytic, mc = engines
    full = mc.lane_delays(0.6, paths_per_lane=PATHS, chain_length=CHAIN,
                          n_samples=20_000)
    fast = analytic.sample_lanes(0.6, 20_000, np.random.default_rng(8))
    assert fast.mean() == pytest.approx(full.mean(), rel=0.01)
    assert np.quantile(fast, 0.95) == pytest.approx(
        np.quantile(full, 0.95), rel=0.015)
