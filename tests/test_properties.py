"""Cross-stack property-based tests (hypothesis).

These pin down invariants that must hold for *any* parameterisation, not
just the calibrated cards: monotonicities of the delay model, order
statistics, solver consistency and repair-routing validity.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analyzer import VariationAnalyzer
from repro.core.chip_delay import ChipDelayEngine
from repro.devices.mosfet import TransregionalModel
from repro.devices.technology import TechnologyNode
from repro.devices.variation import VariationModel


def _card(vth0, n_slope, sigma_wid, sigma_lane):
    return TechnologyNode(
        name="prop", process="hypothesis card", nominal_vdd=1.0, min_vdd=0.4,
        mosfet=TransregionalModel(vth0=vth0, n_slope=n_slope, alpha=1.8,
                                  dibl=0.05),
        variation=VariationModel(
            sigma_vth_wid=sigma_wid, sigma_vth_lane=sigma_lane,
            sigma_vth_d2d=0.002, sigma_mult_rand=0.03,
            sigma_mult_lane=0.01, sigma_mult_corr=0.005),
        fo4_scale=1e-10,
    )


card_strategy = st.builds(
    _card,
    vth0=st.floats(0.25, 0.42),
    n_slope=st.floats(1.2, 1.8),
    sigma_wid=st.floats(0.002, 0.02),
    sigma_lane=st.floats(0.0, 0.01),
)


@settings(max_examples=15, deadline=None)
@given(card=card_strategy, vdd=st.floats(0.48, 0.95))
def test_fo4_delay_positive_and_voltage_monotone(card, vdd):
    d_lo = float(card.fo4_delay(vdd))
    d_hi = float(card.fo4_delay(vdd + 0.05))
    assert 0 < d_hi < d_lo


@settings(max_examples=10, deadline=None)
@given(card=card_strategy)
def test_chain_variation_decreases_with_length(card):
    engine = ChipDelayEngine(card, width=4, paths_per_lane=4, chain_length=10)
    v1 = float(engine.chain_statistics(0.55, 1).three_sigma_over_mu)
    v10 = float(engine.chain_statistics(0.55, 10).three_sigma_over_mu)
    v100 = float(engine.chain_statistics(0.55, 100).three_sigma_over_mu)
    assert v1 > v10 > v100 > 0
    # Floor: the correlated component survives infinite averaging.
    floor = 3 * card.variation.sigma_mult_chain_corr
    assert v100 > floor * 0.8


@settings(max_examples=8, deadline=None)
@given(card=card_strategy, vdd=st.floats(0.5, 0.8),
       spares=st.integers(0, 6))
def test_chip_quantile_monotone_in_spares_and_q(card, vdd, spares):
    engine = ChipDelayEngine(card, width=8, paths_per_lane=5, chain_length=10)
    q50 = engine.chip_quantile(vdd, 0.5, spares=spares)
    q99 = engine.chip_quantile(vdd, 0.99, spares=spares)
    assert q99 > q50 > 0
    if spares:
        assert engine.chip_quantile(vdd, 0.99, spares=spares - 1) >= q99


@settings(max_examples=8, deadline=None)
@given(card=card_strategy, vdd=st.floats(0.5, 0.7))
def test_solver_outputs_meet_their_targets(card, vdd):
    from repro.mitigation.voltage_margin import solve_voltage_margin
    from repro.sparing.duplication import solve_spares
    analyzer = VariationAnalyzer(card, width=8, paths_per_lane=5,
                                 chain_length=10)
    target = analyzer.target_delay(vdd)
    dup = solve_spares(analyzer, vdd, max_spares=64)
    if dup.feasible:
        assert dup.achieved_delay <= target * (1 + 1e-9)
    mar = solve_voltage_margin(analyzer, vdd, max_margin=0.3)
    if mar.feasible:
        assert mar.achieved_delay <= target * (1 + 1e-6)


@settings(max_examples=25, deadline=None)
@given(width=st.integers(2, 12), spares=st.integers(0, 6),
       data=st.data())
def test_repair_mapping_always_valid(width, spares, data):
    """For any fault pattern within budget, global repair produces a
    permutation of healthy lanes; beyond budget it must refuse."""
    from repro.errors import RoutingError
    from repro.simd.datapath import SIMDDatapath
    n = width + spares
    n_faulty = data.draw(st.integers(0, n))
    faulty = data.draw(st.permutations(range(n))).copy()[:n_faulty]
    delays = np.ones(n)
    delays[list(faulty)] = 3.0
    dp = SIMDDatapath(width=width, spares=spares)
    dp.load_delays(delays)
    dp.test(2.0)
    if n_faulty <= spares:
        mapping = dp.repair()
        assert len(set(mapping.tolist())) == width
        assert not (set(mapping.tolist()) & set(faulty))
        assert dp.effective_delay() == pytest.approx(1.0)
    else:
        assert not dp.repairable()
        with pytest.raises(RoutingError):
            dp.repair()


@settings(max_examples=10, deadline=None)
@given(card=card_strategy, vdd=st.floats(0.5, 0.8))
def test_sampling_consistent_with_cdf(card, vdd):
    """Empirical ensembles must agree with the deterministic CDF at the
    median (tight statistics, small n)."""
    engine = ChipDelayEngine(card, width=8, paths_per_lane=5, chain_length=10)
    rng = np.random.default_rng(0)
    samples = engine.sample_chips(vdd, 4000, rng)
    median = engine.chip_quantile(vdd, 0.5)
    frac_below = float((samples <= median).mean())
    assert frac_below == pytest.approx(0.5, abs=0.05)
