"""Structural SIMD datapath: lanes, test and repair."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, RoutingError
from repro.simd.datapath import SIMDDatapath
from repro.simd.lane import LaneState, SIMDLane
from repro.simd.shuffle import ShuffleNetwork


def _delays(n, slow=(), base=1.0, slow_value=2.0):
    d = np.full(n, base)
    d[list(slow)] = slow_value
    return d


def test_lane_testing():
    lane = SIMDLane(index=0, delay=1.5)
    assert lane.apply_test(2.0) is LaneState.HEALTHY
    assert lane.apply_test(1.0) is LaneState.FAULTY
    assert not lane.usable


def test_lane_validation():
    with pytest.raises(ConfigurationError):
        SIMDLane(index=-1)
    with pytest.raises(ConfigurationError):
        SIMDLane(index=0, delay=0.0)
    with pytest.raises(ConfigurationError):
        SIMDLane(index=0).apply_test(1.0)


def test_global_repair_burst():
    dp = SIMDDatapath(width=8, spares=2)
    dp.load_delays(_delays(10, slow=[2, 3]))
    faulty = dp.test(clock_period=1.5)
    assert [l.index for l in faulty] == [2, 3]
    assert dp.repairable()
    mapping = dp.repair()
    np.testing.assert_array_equal(mapping, [0, 1, 4, 5, 6, 7, 8, 9])
    assert dp.effective_delay() == pytest.approx(1.0)


def test_local_repair_fails_on_burst():
    # 8 lanes in clusters of 4, one spare per cluster; burst of 2 faults
    # inside cluster 0 is unrepairable locally...
    dp = SIMDDatapath(width=8, spares=2, cluster_size=4)
    dp.load_delays(_delays(10, slow=[0, 1]))
    dp.test(1.5)
    assert not dp.repairable()
    with pytest.raises(RoutingError):
        dp.repair()
    # ...but the same fault pattern is repairable globally.
    dp2 = SIMDDatapath(width=8, spares=2)
    dp2.load_delays(_delays(10, slow=[0, 1]))
    dp2.test(1.5)
    assert dp2.repairable()


def test_local_repair_distributed_faults():
    dp = SIMDDatapath(width=8, spares=2, cluster_size=4)
    # One fault in each cluster (clusters are lanes 0-4 and 5-9 inc. spares).
    dp.load_delays(_delays(10, slow=[1, 6]))
    dp.test(1.5)
    assert dp.repairable()
    mapping = dp.repair()
    assert len(mapping) == 8
    assert 1 not in mapping and 6 not in mapping


def test_unused_healthy_spares_power_gated():
    dp = SIMDDatapath(width=4, spares=2)
    dp.load_delays(_delays(6))
    dp.test(1.5)
    dp.repair()
    states = [l.state for l in dp.lanes]
    assert states.count(LaneState.POWER_GATED) == 2


def test_construction_validation():
    with pytest.raises(ConfigurationError):
        SIMDDatapath(width=0)
    with pytest.raises(ConfigurationError):
        SIMDDatapath(width=8, spares=-1)
    with pytest.raises(ConfigurationError):
        SIMDDatapath(width=8, cluster_size=3)      # not divisible
    with pytest.raises(ConfigurationError):
        SIMDDatapath(width=8, spares=3, cluster_size=4)  # uneven spares


def test_load_delays_shape_checked():
    dp = SIMDDatapath(width=4, spares=1)
    with pytest.raises(ConfigurationError):
        dp.load_delays(np.ones(4))


def test_shuffle_network_scaling():
    ssn = ShuffleNetwork()
    assert ssn.power_at_width(128) == pytest.approx(0.137)
    assert ssn.widening_overhead(0) == pytest.approx(0.0)
    assert ssn.widening_overhead(128) == pytest.approx(
        0.137 * (2 ** 1.5 - 1))
    with pytest.raises(ConfigurationError):
        ShuffleNetwork(exponent=0.5)
    with pytest.raises(ConfigurationError):
        ssn.widening_overhead(-1)
