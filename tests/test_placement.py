"""Spare placement: global vs local repair yields."""

import pytest

from repro.errors import ConfigurationError
from repro.sparing.placement import compare_placements, repair_probability


@pytest.fixture(scope="module")
def placement_args(analyzer90):
    # A clock between target and unmitigated p99 so faults are common
    # enough for the yield contrast to show at modest sample counts.
    clock = analyzer90.target_delay(0.55)
    return dict(analyzer=analyzer90, vdd=0.55, clock_period=clock)


def test_global_beats_local(placement_args):
    a = placement_args
    g = repair_probability(a["analyzer"], a["vdd"], spares=32,
                           clock_period=a["clock_period"],
                           n_chips=1500, seed=1)
    l = repair_probability(a["analyzer"], a["vdd"], spares=32,
                           cluster_size=4, clock_period=a["clock_period"],
                           n_chips=1500, seed=1)
    assert g.repair_probability >= l.repair_probability
    assert g.policy.startswith("global")


def test_more_spares_higher_yield(placement_args):
    a = placement_args
    lo = repair_probability(a["analyzer"], a["vdd"], spares=8,
                            clock_period=a["clock_period"],
                            n_chips=1500, seed=2)
    hi = repair_probability(a["analyzer"], a["vdd"], spares=64,
                            clock_period=a["clock_period"],
                            n_chips=1500, seed=2)
    assert hi.repair_probability >= lo.repair_probability


def test_larger_clusters_trend_toward_global(placement_args):
    """Bigger clusters pool spares, approaching global flexibility."""
    a = placement_args
    yields = []
    for size in (4, 16, 64):
        res = repair_probability(a["analyzer"], a["vdd"], spares=32,
                                 cluster_size=size,
                                 clock_period=a["clock_period"],
                                 n_chips=2500, seed=3)
        yields.append(res.repair_probability)
    assert yields[-1] >= yields[0]


def test_compare_placements_skips_nonintegral(analyzer90):
    results = compare_placements(analyzer90, 0.55, spares=32,
                                 cluster_sizes=(4, 5, 7, 8),
                                 n_chips=300, seed=0)
    policies = [r.cluster_size for r in results]
    assert policies[0] is None          # global first
    assert 5 not in policies and 7 not in policies


def test_invalid_configs(analyzer90):
    with pytest.raises(ConfigurationError):
        repair_probability(analyzer90, 0.55, spares=-1)
    with pytest.raises(ConfigurationError):
        repair_probability(analyzer90, 0.55, spares=32, cluster_size=5,
                           n_chips=10)
    with pytest.raises(ConfigurationError):
        repair_probability(analyzer90, 0.55, spares=30, cluster_size=4,
                           n_chips=10)  # 30 spares over 32 clusters


def test_result_summary_readable(placement_args):
    a = placement_args
    res = repair_probability(a["analyzer"], a["vdd"], spares=8,
                             clock_period=a["clock_period"],
                             n_chips=200, seed=4)
    assert "yield" in res.summary()
