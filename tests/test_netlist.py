"""Structural netlist."""

import pytest

from repro.circuits.netlist import Netlist
from repro.errors import NetlistError


def _simple():
    nl = Netlist("simple")
    nl.add_cell("g1", "nand2", ["a", "b"], "n1")
    nl.add_cell("g2", "inv", ["n1"], "y")
    nl.mark_output("y")
    return nl


def test_primary_ports():
    nl = _simple()
    assert nl.primary_inputs == ("a", "b")
    assert nl.primary_outputs == ("y",)
    assert nl.n_cells == 2


def test_duplicate_cell_rejected():
    nl = _simple()
    with pytest.raises(NetlistError):
        nl.add_cell("g1", "inv", ["y"], "z")


def test_multiple_drivers_rejected():
    nl = _simple()
    with pytest.raises(NetlistError):
        nl.add_cell("g3", "inv", ["a"], "n1")


def test_arity_mismatch_rejected():
    nl = Netlist()
    with pytest.raises(NetlistError):
        nl.add_cell("g1", "nand2", ["a"], "y")


def test_topological_order():
    nl = _simple()
    order = [c.name for c in nl.topological_order()]
    assert order.index("g1") < order.index("g2")


def test_cycle_detection():
    nl = Netlist()
    nl.add_cell("g1", "inv", ["b"], "a")
    nl.add_cell("g2", "inv", ["a"], "b")
    with pytest.raises(NetlistError):
        nl.topological_order()


def test_logic_depth():
    nl = Netlist()
    nl.add_cell("g1", "inv", ["a"], "n1")
    nl.add_cell("g2", "inv", ["n1"], "n2")
    nl.add_cell("g3", "nand2", ["n2", "a"], "y")
    nl.mark_output("y")
    assert nl.logic_depth() == 3


def test_fanout_counts():
    nl = Netlist()
    nl.add_cell("g1", "inv", ["a"], "n1")
    nl.add_cell("g2", "inv", ["n1"], "y1")
    nl.add_cell("g3", "inv", ["n1"], "y2")
    assert nl.fanout_of("g1") == 2
    assert nl.fanout_of("g2") == 1  # floor of 1 for outputs


def test_path_to_tracks_deepest_input():
    nl = Netlist()
    nl.add_cell("g1", "inv", ["a"], "n1")
    nl.add_cell("g2", "inv", ["n1"], "n2")
    nl.add_cell("g3", "nand2", ["n2", "a"], "y")
    path = [c.name for c in nl.path_to("y")]
    assert path == ["g1", "g2", "g3"]


def test_missing_cell_lookup():
    with pytest.raises(NetlistError):
        _simple().cell("nope")
