"""Transregional MOSFET model invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.mosfet import TransregionalModel
from repro.errors import VoltageRangeError


@pytest.fixture(scope="module")
def device():
    return TransregionalModel(vth0=0.35, n_slope=1.4, alpha=1.8, dibl=0.05)


@pytest.fixture(scope="module")
def unbalanced():
    return TransregionalModel(vth0=0.30, n_slope=1.3, alpha=1.8, dibl=0.05,
                              vth_split=0.15, strength_p=0.5)


def test_drive_monotone_in_vdd(device):
    v = np.linspace(0.2, 1.2, 200)
    drives = device.drive(v)
    assert np.all(np.diff(drives) > 0)


def test_drive_monotone_in_vth_shift(device):
    shifts = np.linspace(-0.05, 0.05, 50)
    drives = device.drive(0.5, shifts)
    assert np.all(np.diff(drives) < 0)  # higher Vth -> less current


def test_log_drive_consistent(device):
    v = np.linspace(0.3, 1.0, 20)
    np.testing.assert_allclose(np.exp(device.log_drive(v)), device.drive(v),
                               rtol=1e-10)


def test_unbalanced_log_drive_consistent(unbalanced):
    v = np.linspace(0.3, 1.0, 20)
    np.testing.assert_allclose(np.exp(unbalanced.log_drive(v)),
                               unbalanced.drive(v), rtol=1e-10)


def test_subthreshold_slope_matches_model(device):
    """Deep sub-threshold current follows exp(alpha V / (2 n vT)).

    The softplus**alpha form has an effective sub-threshold slope factor
    of 2n/alpha; verify the implementation against that closed form.
    """
    v1, v2 = 0.10, 0.12
    ratio = device.drive(v2) / device.drive(v1)
    expected = np.exp((v2 - v1) * (1 + device.dibl) * device.alpha
                      / (2 * device.n_slope * device.thermal_voltage))
    assert ratio == pytest.approx(expected, rel=0.02)


def test_sensitivity_matches_numerical_derivative(device):
    for vdd in (0.4, 0.5, 0.7, 1.0):
        h = 1e-6
        num = (np.log(device.drive(vdd, -h)) - np.log(device.drive(vdd, h))) / (2 * h)
        # delay ~ 1/I so d ln(delay)/dVth = -d ln(I)/dVth = num with sign.
        assert device.delay_vth_sensitivity(vdd) == pytest.approx(num, rel=1e-4)


def test_sensitivity_matches_numerical_derivative_unbalanced(unbalanced):
    for vdd in (0.4, 0.5, 0.7, 1.0):
        h = 1e-6
        num = (np.log(unbalanced.drive(vdd, -h))
               - np.log(unbalanced.drive(vdd, h))) / (2 * h)
        assert unbalanced.delay_vth_sensitivity(vdd) == pytest.approx(
            num, rel=1e-4)


def test_sensitivity_grows_toward_low_voltage(device):
    v = np.linspace(0.3, 1.0, 40)
    s = device.delay_vth_sensitivity(v)
    assert np.all(np.diff(s) < 0)  # decreasing with voltage
    assert s[0] > 3 * s[-1]


def test_sensitivity_bounded_by_subthreshold_limit(device):
    """S cannot exceed the sub-threshold limit alpha/(2 n vT) * ... ~ 1/(n vT)."""
    limit = device.alpha / (2 * device.n_slope * device.thermal_voltage)
    s = device.delay_vth_sensitivity(np.linspace(0.05, 1.2, 100))
    assert np.all(s <= limit * 1.0001)


def test_unbalanced_collapses_to_single_branch():
    single = TransregionalModel(vth0=0.3, n_slope=1.4, alpha=2.0)
    merged = TransregionalModel(vth0=0.3, n_slope=1.4, alpha=2.0,
                                vth_split=0.0, strength_p=1.0)
    v = np.linspace(0.3, 1.0, 10)
    np.testing.assert_allclose(single.drive(v), merged.drive(v))


def test_unbalanced_weak_branch_dominates_at_low_v(unbalanced):
    """Near the weak threshold the sensitivity approaches the weak branch's."""
    s_low = float(unbalanced.delay_vth_sensitivity(0.42))
    balanced = TransregionalModel(vth0=0.30, n_slope=1.3, alpha=1.8, dibl=0.05)
    assert s_low > float(balanced.delay_vth_sensitivity(0.42))


def test_region_classification(device):
    assert device.region(0.2) == "sub"
    assert device.region(0.40) == "near"
    assert device.region(1.0) == "super"


def test_region_rejects_nonpositive(device):
    with pytest.raises(VoltageRangeError):
        device.region(0.0)


@pytest.mark.parametrize("kwargs", [
    {"vth0": -0.1, "n_slope": 1.4},
    {"vth0": 0.3, "n_slope": 0.9},
    {"vth0": 0.3, "n_slope": 1.4, "alpha": 5.0},
    {"vth0": 0.3, "n_slope": 1.4, "dibl": -0.01},
    {"vth0": 0.3, "n_slope": 1.4, "vth_split": -0.05},
    {"vth0": 0.3, "n_slope": 1.4, "strength_p": 0.0},
])
def test_constructor_validation(kwargs):
    with pytest.raises(VoltageRangeError):
        TransregionalModel(**kwargs)


def test_leakage_increases_with_dibl_supply(device):
    assert device.subthreshold_leakage(1.0) > device.subthreshold_leakage(0.5)


@settings(max_examples=50, deadline=None)
@given(vdd=st.floats(0.2, 1.2), dvth=st.floats(-0.06, 0.06))
def test_drive_always_positive_finite(vdd, dvth):
    device = TransregionalModel(vth0=0.35, n_slope=1.4, alpha=1.8, dibl=0.05)
    d = float(device.drive(vdd, dvth))
    assert np.isfinite(d) and d > 0


@settings(max_examples=50, deadline=None)
@given(vdd=st.floats(0.25, 1.2))
def test_broadcasting_matches_scalar(vdd):
    device = TransregionalModel(vth0=0.35, n_slope=1.4, alpha=1.8)
    shifts = np.array([-0.02, 0.0, 0.02])
    vector = device.drive(vdd, shifts)
    scalars = [float(device.drive(vdd, s)) for s in shifts]
    np.testing.assert_allclose(vector, scalars, rtol=1e-12)
