"""Chip-delay engine: CDF/quantile consistency, order-statistics
semantics, spare handling."""

import numpy as np
import pytest

from repro.core.chip_delay import ChipDelayEngine, chip_delay_cdf
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def engine(tech90):
    return ChipDelayEngine(tech90, width=16, paths_per_lane=10,
                           chain_length=20)


def test_cdf_monotone_in_x(engine):
    med = engine.chip_quantile(0.6, 0.5)
    xs = np.linspace(0.8 * med, 1.3 * med, 40)
    cdf = engine.chip_cdf(0.6, xs)
    assert np.all(np.diff(cdf) >= -1e-12)
    assert cdf[0] < 0.05 and cdf[-1] > 0.95


def test_quantile_inverts_cdf(engine):
    for q in (0.1, 0.5, 0.9, 0.99):
        x = engine.chip_quantile(0.6, q)
        assert float(engine.chip_cdf(0.6, x)) == pytest.approx(q, abs=1e-6)


def test_quantile_decreases_with_spares(engine):
    qs = [engine.chip_quantile(0.55, spares=a) for a in (0, 1, 2, 4, 8)]
    assert all(a > b for a, b in zip(qs, qs[1:]))


def test_fractional_spares_interpolate(engine):
    q1 = engine.chip_quantile(0.55, spares=1)
    q15 = engine.chip_quantile(0.55, spares=1.5)
    q2 = engine.chip_quantile(0.55, spares=2)
    assert q2 < q15 < q1


def test_quantile_increases_at_lower_vdd(engine):
    assert engine.chip_quantile(0.5) > engine.chip_quantile(0.6) \
        > engine.chip_quantile(0.8)


def test_wider_chip_is_slower(tech90):
    narrow = ChipDelayEngine(tech90, width=4, paths_per_lane=10,
                             chain_length=20)
    wide = ChipDelayEngine(tech90, width=64, paths_per_lane=10,
                           chain_length=20)
    assert wide.chip_quantile(0.6) > narrow.chip_quantile(0.6)


def test_more_paths_per_lane_is_slower(tech90):
    few = ChipDelayEngine(tech90, width=16, paths_per_lane=5,
                          chain_length=20)
    many = ChipDelayEngine(tech90, width=16, paths_per_lane=100,
                           chain_length=20)
    assert many.chip_quantile(0.6) > few.chip_quantile(0.6)


def test_sampling_matches_deterministic_quantile(engine, rng):
    samples = engine.sample_chips(0.55, 40_000, rng)
    empirical = np.quantile(samples, 0.99)
    deterministic = engine.chip_quantile(0.55, 0.99)
    assert empirical == pytest.approx(deterministic, rel=0.01)


def test_sampling_with_spares_matches_quantile(engine, rng):
    samples = engine.sample_chips(0.55, 40_000, rng, spares=4)
    empirical = np.quantile(samples, 0.99)
    deterministic = engine.chip_quantile(0.55, 0.99, spares=4)
    assert empirical == pytest.approx(deterministic, rel=0.01)


def test_spare_sampling_equals_partition_of_lane_matrix(engine):
    rng1 = np.random.default_rng(5)
    rng2 = np.random.default_rng(5)
    chips = engine.sample_chips(0.6, 200, rng1, spares=3)
    lanes = engine.sample_lane_matrix(0.6, 200, rng2, spares=3)
    expected = np.sort(lanes, axis=1)[:, -4]  # 4th largest = drop 3
    np.testing.assert_allclose(chips, expected, rtol=1e-12)


def test_lane_is_max_ordering(engine, rng):
    """lane delays stochastically dominate path delays."""
    paths = engine.sample_paths(0.6, 20_000, rng)
    lanes = engine.sample_lanes(0.6, 20_000, rng)
    assert lanes.mean() > paths.mean()
    assert np.quantile(lanes, 0.99) > np.quantile(paths, 0.99)


def test_chain_statistics_scaling(engine):
    one = engine.chain_statistics(0.6, 1)
    fifty = engine.chain_statistics(0.6, 50)
    assert float(fifty.mean) == pytest.approx(50 * float(one.mean), rel=1e-9)
    # Averaging: relative spread shrinks but stays above correlated floor.
    assert float(fifty.three_sigma_over_mu) < float(one.three_sigma_over_mu)
    floor = np.hypot(engine.tech.variation.sigma_mult_chain_corr, 0.0)
    assert float(fifty.three_sigma_over_mu) > 3 * floor * 0.9


def test_invalid_arguments(engine, tech90):
    with pytest.raises(ConfigurationError):
        ChipDelayEngine(tech90, width=0)
    with pytest.raises(ConfigurationError):
        engine.chip_quantile(0.6, q=1.5)
    with pytest.raises(ConfigurationError):
        engine.chip_cdf(0.6, 1e-9, spares=-1)
    with pytest.raises(ConfigurationError):
        engine.sample_chips(0.6, 10, np.random.default_rng(0), spares=1.5)


def test_functional_wrapper(tech90):
    x = chip_delay_cdf(tech90, 0.6, 1e-7, width=4, paths_per_lane=5,
                       chain_length=10)
    assert 0.0 <= float(x) <= 1.0


def test_integer_spares_match_binomial_form(engine):
    """betainc(width, a+1, g) must equal the binomial tail for integer a."""
    from scipy.special import betainc
    from scipy.stats import binom
    g = np.linspace(0.01, 0.999, 50)
    for a in (1, 3, 7):
        beta_form = betainc(engine.width, a + 1.0, g)
        binom_form = binom.cdf(a, engine.width + a, 1.0 - g)
        np.testing.assert_allclose(beta_form, binom_form, atol=1e-12)
