"""Spatial variation fields and the lane floorplan."""

import numpy as np
import pytest

from repro.devices.spatial import (
    SpatialField,
    effective_lane_sigma,
    lane_correlation_matrix,
)
from repro.errors import ConfigurationError
from repro.simd.floorplan import LaneFloorplan


@pytest.fixture(scope="module")
def field():
    return SpatialField(sigma=0.010, correlation_length_mm=1.0)


@pytest.fixture(scope="module")
def floorplan():
    return LaneFloorplan()


def test_correlation_kernel(field):
    assert float(field.correlation(0.0)) == pytest.approx(1.0)
    assert float(field.correlation(1.0)) == pytest.approx(np.exp(-1))
    assert float(field.correlation(10.0)) < 1e-4


def test_covariance_matrix_properties(field, floorplan):
    cov = field.covariance_matrix(floorplan.lane_positions_mm())
    assert cov.shape == (128, 128)
    np.testing.assert_allclose(cov, cov.T)
    np.testing.assert_allclose(np.diag(cov), field.sigma ** 2)
    # Positive semi-definite.
    eigs = np.linalg.eigvalsh(cov)
    assert eigs.min() > -1e-12


def test_sampling_statistics(field, floorplan, rng):
    samples = field.sample(floorplan.lane_positions_mm()[:16], 20_000, rng)
    assert samples.shape == (20_000, 16)
    assert samples.std() == pytest.approx(field.sigma, rel=0.03)
    # Adjacent lanes (80 um apart, Lc = 1 mm) are highly correlated.
    r = np.corrcoef(samples[:, 0], samples[:, 1])[0, 1]
    assert r == pytest.approx(np.exp(-0.08), abs=0.03)


def test_zero_sigma_field(floorplan, rng):
    quiet = SpatialField(sigma=0.0, correlation_length_mm=1.0)
    samples = quiet.sample(floorplan.lane_positions_mm()[:4], 10, rng)
    assert np.all(samples == 0)
    assert np.allclose(lane_correlation_matrix(quiet, floorplan), np.eye(128))


def test_validation():
    with pytest.raises(ConfigurationError):
        SpatialField(sigma=-1, correlation_length_mm=1.0)
    with pytest.raises(ConfigurationError):
        SpatialField(sigma=0.01, correlation_length_mm=0.0)
    field = SpatialField(sigma=0.01, correlation_length_mm=1.0)
    with pytest.raises(ConfigurationError):
        field.covariance_matrix(np.zeros((4, 3)))


def test_effective_lane_sigma_decomposition(field, floorplan):
    result = effective_lane_sigma(field, floorplan, n_samples=3000)
    # The field splits into a die-common part and lane deviations,
    # recombining to roughly the point sigma.
    total = np.hypot(result["sigma_die"], result["sigma_lane"])
    assert total == pytest.approx(field.sigma, rel=0.1)
    assert result["sigma_lane"] > 0
    # Adjacent lanes are positively correlated -> bursty faults.
    assert result["neighbor_correlation"] > 0.5


def test_longer_correlation_means_more_die_level(floorplan):
    """As Lc grows past the die size, the field becomes die-to-die."""
    short = effective_lane_sigma(
        SpatialField(0.01, 0.3), floorplan, n_samples=2000)
    long = effective_lane_sigma(
        SpatialField(0.01, 30.0), floorplan, n_samples=2000)
    assert long["sigma_die"] > short["sigma_die"]
    assert long["sigma_lane"] < short["sigma_lane"]


def test_floorplan_geometry(floorplan):
    pos = floorplan.lane_positions_mm()
    assert pos.shape == (128, 2)
    # 4 rows of 32.
    assert len(np.unique(pos[:, 1])) == 4
    assert floorplan.lane_distance_mm(0, 1) == pytest.approx(0.08)
    assert floorplan.lane_distance_mm(0, 32) == pytest.approx(0.9)
    width, height = floorplan.extent_mm
    assert width == pytest.approx(31 * 0.08)
    assert height == pytest.approx(3 * 0.9)


def test_floorplan_validation():
    with pytest.raises(ConfigurationError):
        LaneFloorplan(n_lanes=0)
    with pytest.raises(ConfigurationError):
        LaneFloorplan(lane_pitch_mm=-1)
    with pytest.raises(ConfigurationError):
        LaneFloorplan().lane_distance_mm(0, 500)


def test_card_abstraction_is_consistent_with_a_field(tech90, floorplan):
    """The calibrated card's lane/die split corresponds to a plausible
    spatial field: find the correlation length whose decomposition
    matches the card's sigma ratio."""
    var = tech90.variation
    target_ratio = var.sigma_vth_d2d / max(var.sigma_vth_lane, 1e-12)
    total = np.hypot(var.sigma_vth_lane, var.sigma_vth_d2d)
    best = None
    for lc in (0.1, 0.3, 1.0, 3.0, 10.0, 30.0):
        result = effective_lane_sigma(SpatialField(total, lc), floorplan,
                                      n_samples=1500)
        ratio = result["sigma_die"] / max(result["sigma_lane"], 1e-12)
        err = abs(np.log(max(ratio, 1e-6) / max(target_ratio, 1e-6)))
        if best is None or err < best[1]:
            best = (lc, err)
    # Some physically sensible correlation length (0.1-30 mm) matches the
    # calibrated split within a factor ~2.
    assert best[1] < np.log(2.5)
