"""Diet SODA PE breakdown and overhead accounting."""

import math

import pytest

from repro.devices.paper_anchors import TABLE1, TABLE2
from repro.errors import ConfigurationError
from repro.simd.diet_soda import DIET_SODA, DietSodaPE, Module, VoltageDomain


def test_fractions_sum_to_one():
    assert sum(m.area_fraction for m in DIET_SODA.modules) == pytest.approx(1.0)
    assert sum(m.power_fraction for m in DIET_SODA.modules) == pytest.approx(1.0)


def test_reverse_engineered_constants():
    assert 100 * DIET_SODA.area_per_spare == pytest.approx(57.8 / 128, rel=1e-6)
    assert DIET_SODA.dv_power_fraction == pytest.approx(0.43)
    assert DIET_SODA.shuffle_power_fraction == pytest.approx(0.137)


def test_module_lookup():
    assert DIET_SODA.module("simd-functional-units").domain is VoltageDomain.DUAL
    with pytest.raises(ConfigurationError):
        DIET_SODA.module("gpu")


def test_spare_area_overhead_matches_table1_intact_cells():
    """Every intact Table-1 area cell must be reproduced within rounding."""
    for node, rows in TABLE1.items():
        for vdd, entry in rows.items():
            if entry.saturated or entry.inferred:
                continue
            model = 100 * DIET_SODA.spare_area_overhead(entry.spares)
            # Paper truncates to one decimal; allow that rounding.
            assert model == pytest.approx(entry.area_pct, abs=0.2), \
                f"{node}@{vdd}"


def test_spare_power_overhead_matches_table1_intact_cells():
    for node, rows in TABLE1.items():
        for vdd, entry in rows.items():
            if entry.saturated:
                continue
            model = 100 * DIET_SODA.spare_power_overhead(entry.spares)
            assert model == pytest.approx(entry.power_pct, abs=0.45), \
                f"{node}@{vdd}: {model} vs {entry.power_pct}"


def test_margin_power_overhead_matches_table2():
    """The 43%-DV-domain V^2 model must reproduce Table 2's power column."""
    for node, rows in TABLE2.items():
        for vdd, entry in rows.items():
            model = 100 * DIET_SODA.margin_power_overhead(
                vdd, entry.margin_mv * 1e-3)
            assert model == pytest.approx(entry.power_pct, abs=0.35), \
                f"{node}@{vdd}: {model} vs {entry.power_pct}"


def test_overheads_monotone():
    assert DIET_SODA.spare_power_overhead(10) > DIET_SODA.spare_power_overhead(2)
    assert (DIET_SODA.margin_power_overhead(0.5, 0.02)
            > DIET_SODA.margin_power_overhead(0.5, 0.01))


def test_combined_additivity():
    total = DIET_SODA.combined_power_overhead(4, 0.6, 0.01)
    assert total == pytest.approx(
        DIET_SODA.spare_power_overhead(4)
        + DIET_SODA.margin_power_overhead(0.6, 0.01))


def test_validation_errors():
    with pytest.raises(ConfigurationError):
        DIET_SODA.spare_area_overhead(-1)
    with pytest.raises(ConfigurationError):
        DIET_SODA.margin_power_overhead(0.0, 0.01)
    with pytest.raises(ConfigurationError):
        DIET_SODA.margin_power_overhead(0.6, -0.01)


def test_inconsistent_breakdown_rejected():
    bad = (Module("a", VoltageDomain.FULL, 0.5, 0.5),)
    with pytest.raises(ConfigurationError):
        DietSodaPE(simd_width=128, modules=bad)


def test_domain_power_split():
    fv = DIET_SODA.domain_power_fraction(VoltageDomain.FULL)
    dv = DIET_SODA.domain_power_fraction(VoltageDomain.DUAL)
    assert fv + dv == pytest.approx(1.0)
    assert fv == pytest.approx(0.57)
