"""Parallel sharded runtime: determinism, persistent cache, profiling."""

import time

import numpy as np
import pytest

from repro.core.analyzer import VariationAnalyzer
from repro.devices.technology import get_technology
from repro.errors import ConfigurationError
from repro.runtime import (
    ParallelSampler,
    Profiler,
    QuantileCache,
    ReproRuntime,
    activate_runtime,
    build_runtime,
    current_runtime,
    plan_shards,
    shard_seeds,
    technology_fingerprint,
)

SMALL_ARCH = dict(width=4, paths_per_lane=3, chain_length=5)


# -- shard planning ------------------------------------------------------------


def test_plan_shards_covers_exactly():
    assert plan_shards(2000, 256) == [256] * 7 + [208]
    assert sum(plan_shards(2000, 256)) == 2000
    assert plan_shards(100, 256) == [100]
    assert plan_shards(512, 256) == [256, 256]


def test_plan_shards_validates():
    with pytest.raises(ConfigurationError):
        plan_shards(0, 256)
    with pytest.raises(ConfigurationError):
        plan_shards(100, 0)


def test_shard_seeds_are_independent():
    seeds = shard_seeds(42, 8)
    streams = [np.random.default_rng(s).uniform(size=4) for s in seeds]
    for i, a in enumerate(streams):
        for b in streams[i + 1:]:
            assert not np.array_equal(a, b)


def test_sampler_validates():
    with pytest.raises(ConfigurationError):
        ParallelSampler(0)
    with pytest.raises(ConfigurationError):
        ParallelSampler(2, shard_size=0)


# -- reproducibility contract --------------------------------------------------


def test_system_delays_bit_identical_across_jobs(tech90):
    """Acceptance: n_chips=2000 via jobs=4 matches the jobs=1 result."""
    with ParallelSampler(1) as serial, ParallelSampler(4) as parallel:
        a = serial.system_delays(tech90, 0.6, n_chips=2000, root_seed=42,
                                 **SMALL_ARCH)
        b = parallel.system_delays(tech90, 0.6, n_chips=2000, root_seed=42,
                                   **SMALL_ARCH)
    assert a.shape == (2000,)
    np.testing.assert_array_equal(a, b)
    assert np.all(a > 0)


def test_sample_chips_bit_identical_across_jobs(tech90):
    kwargs = dict(n_samples=1000, width=16, paths_per_lane=10,
                  chain_length=20, root_seed=7)
    with ParallelSampler(1) as serial, ParallelSampler(2) as parallel:
        a = serial.sample_chips(tech90, 0.6, **kwargs)
        b = parallel.sample_chips(tech90, 0.6, **kwargs)
    np.testing.assert_array_equal(a, b)


def test_root_seed_and_shard_size_key_the_stream(tech90):
    with ParallelSampler(1) as s:
        base = s.system_delays(tech90, 0.6, n_chips=300, root_seed=1,
                               **SMALL_ARCH)
        reseed = s.system_delays(tech90, 0.6, n_chips=300, root_seed=2,
                                 **SMALL_ARCH)
    with ParallelSampler(1, shard_size=64) as s:
        resize = s.system_delays(tech90, 0.6, n_chips=300, root_seed=1,
                                 **SMALL_ARCH)
    assert not np.array_equal(base, reseed)
    # shard_size is part of the reproducibility key, by contract.
    assert not np.array_equal(base, resize)


def test_sampler_records_profile_stages(tech90):
    profiler = Profiler()
    with ParallelSampler(1, profiler=profiler) as s:
        s.system_delays(tech90, 0.6, n_chips=100, root_seed=0, **SMALL_ARCH)
    stages = {st.name: st for st in profiler.stages()}
    assert stages["sampler.system_delays"].calls == 1
    assert stages["sampler.system_delays"].samples == 100
    assert "sampler.system_delays" in profiler.render()


# -- profiler -----------------------------------------------------------------


def test_profiler_merge_roundtrip():
    a = Profiler()
    a.record("solve", 1.5, 10)
    b = Profiler()
    b.record("solve", 0.5, 5)
    b.record("sample", 2.0, 100)
    a.merge(b.as_dict())
    stages = {s.name: s for s in a.stages()}
    assert stages["solve"].calls == 2
    assert stages["solve"].wall_s == pytest.approx(2.0)
    assert stages["solve"].samples == 15
    assert stages["sample"].samples_per_s == pytest.approx(50.0)


# -- persistent quantile cache -------------------------------------------------


def test_fingerprint_distinguishes_cards(tech90):
    tech45 = get_technology("45nm")
    assert technology_fingerprint(tech90) != technology_fingerprint(tech45)
    ablated = tech90.with_variation(tech90.variation.scaled(0.5))
    assert technology_fingerprint(tech90) != technology_fingerprint(ablated)
    # Stable across calls for the same card.
    assert technology_fingerprint(tech90) == technology_fingerprint(tech90)


def test_cache_roundtrips_exact_bytes(tmp_path, tech90):
    cache = QuantileCache(path=str(tmp_path / "q.json"), enabled=True)
    key = QuantileCache.make_key(tech90, width=4, paths_per_lane=3,
                                 chain_length=5, quad_within=48,
                                 quad_corr_vth=12, quad_corr_mult=6,
                                 vdd=0.55, q=0.99, spares=0)
    value = 1.234567890123456789e-8 * (1.0 + 2 ** -50)
    cache.put(key, value)
    fresh = QuantileCache(path=str(tmp_path / "q.json"), enabled=True)
    hit = fresh.get(key)
    assert hit.hex() == value.hex()
    assert fresh.hits == 1 and fresh.misses == 0
    assert fresh.get("no-such-key") is None
    assert fresh.misses == 1


def test_cache_tolerates_corrupt_file(tmp_path):
    path = tmp_path / "q.json"
    path.write_text("{not json!")
    cache = QuantileCache(path=str(path), enabled=True)
    assert cache.get("anything") is None
    cache.put("k", 2.0)        # must recover by rewriting the file
    assert QuantileCache(path=str(path), enabled=True).get("k") == 2.0


def test_cache_disable_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DISABLE", "1")
    cache = QuantileCache(path=str(tmp_path / "q.json"))
    assert not cache.enabled
    cache.put("k", 1.0)
    assert cache.get("k") is None
    assert not (tmp_path / "q.json").exists()


def test_analyzer_hits_persistent_cache_without_solving(tmp_path):
    path = str(tmp_path / "q.json")
    first = VariationAnalyzer("90nm", width=4, paths_per_lane=2,
                              chain_length=5,
                              quantile_cache=QuantileCache(path=path,
                                                           enabled=True))
    value = first.chip_quantile(0.55)

    second = VariationAnalyzer("90nm", width=4, paths_per_lane=2,
                               chain_length=5,
                               quantile_cache=QuantileCache(path=path,
                                                            enabled=True))

    def boom(*args, **kwargs):   # a hit must not re-enter the solver
        raise AssertionError("cache miss: solver was invoked")

    second.engine.chip_quantile = boom
    hit = second.chip_quantile(0.55)
    assert hit.hex() == value.hex()
    assert second.quantile_cache.hits == 1


def test_analyzer_cache_key_separates_architectures(tmp_path):
    path = str(tmp_path / "q.json")
    narrow = VariationAnalyzer("90nm", width=4, paths_per_lane=2,
                               chain_length=5,
                               quantile_cache=QuantileCache(path=path,
                                                            enabled=True))
    wide = VariationAnalyzer("90nm", width=8, paths_per_lane=2,
                             chain_length=5,
                             quantile_cache=QuantileCache(path=path,
                                                          enabled=True))
    assert narrow.chip_quantile(0.6) != wide.chip_quantile(0.6)
    assert wide.quantile_cache.misses == 1   # no false sharing


def test_chip_quantile_q_normalisation(small_analyzer):
    """q=None and an explicit equal q must share one cache entry."""
    small_analyzer._signoff_cache.clear()
    a = small_analyzer.chip_quantile(0.62)
    b = small_analyzer.chip_quantile(0.62, q=small_analyzer.signoff_quantile)
    assert a == b
    keys = [k for k in small_analyzer._signoff_cache
            if k[0] == pytest.approx(0.62)]
    assert len(keys) == 1


# -- runtime context -----------------------------------------------------------


def test_runtime_activation_scoped():
    runtime = ReproRuntime(jobs=1)
    assert current_runtime() is None
    with activate_runtime(runtime):
        assert current_runtime() is runtime
    assert current_runtime() is None


def test_chip_distribution_shards_through_active_runtime():
    analyzer = VariationAnalyzer("90nm", width=16, paths_per_lane=10,
                                 chain_length=20)
    runtime = build_runtime(jobs=2)
    try:
        with activate_runtime(runtime):
            dist = analyzer.chip_distribution(0.6, n_samples=600, seed=9)
    finally:
        runtime.close()
    # Same sharded stream as a serial ParallelSampler with the same seed.
    with ParallelSampler(1) as serial:
        expected = serial.sample_chips(analyzer.tech, 0.6, n_samples=600,
                                       width=16, paths_per_lane=10,
                                       chain_length=20, root_seed=9)
    np.testing.assert_array_equal(dist.samples, expected)
    stages = {s.name for s in runtime.profiler.stages()}
    assert "sampler.sample_chips" in stages


# -- end-to-end cache speedup (acceptance criterion) ---------------------------


def test_second_fig4_run_faster_via_cache(monkeypatch, tmp_path):
    from repro.experiments.registry import get_analyzer, run_experiment

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    get_analyzer.cache_clear()           # cold: no in-memory analyzers
    try:
        start = time.perf_counter()
        cold = run_experiment("fig4")
        cold_s = time.perf_counter() - start

        get_analyzer.cache_clear()       # drop in-memory caches again
        start = time.perf_counter()
        warm = run_experiment("fig4")
        warm_s = time.perf_counter() - start
    finally:
        get_analyzer.cache_clear()       # don't leak tmp-dir analyzers

    assert warm.data == cold.data        # cache hits reproduce exactly
    assert warm_s < cold_s
    assert warm_s < 0.5 * cold_s, (
        f"persistent cache gave no speedup: cold={cold_s:.3f}s "
        f"warm={warm_s:.3f}s")


# -- cache merge precedence under concurrency ----------------------------------


def test_put_many_fresh_disk_wins_over_stale_memory(tmp_path):
    """A concurrent writer's newer entry must survive another's put_many.

    Instance ``a`` loads the file, instance ``b`` overwrites a key on
    disk; when ``a`` later writes an unrelated key, its stale in-memory
    copy of the first key must not shadow ``b``'s fresh on-disk value.
    """
    path = str(tmp_path / "q.json")
    a = QuantileCache(path=path, enabled=True)
    b = QuantileCache(path=path, enabled=True)
    a.put("k1", 1.0)                   # a now holds k1=1.0 in memory
    b.put("k1", 2.0)                   # b supersedes it on disk
    a.put_many([("k2", 3.0)])          # must not resurrect k1=1.0
    fresh = QuantileCache(path=path, enabled=True)
    assert fresh.get("k1") == 2.0
    assert fresh.get("k2") == 3.0
    # a's own view converged to the merged state as well
    assert a.get("k1") == 2.0


def test_put_many_own_items_win_over_disk(tmp_path):
    """Keys the caller is writing take precedence over both sources."""
    path = str(tmp_path / "q.json")
    a = QuantileCache(path=path, enabled=True)
    b = QuantileCache(path=path, enabled=True)
    a.put("k", 1.0)
    b.put("k", 2.0)
    a.put_many([("k", 9.0)])
    assert QuantileCache(path=path, enabled=True).get("k") == 9.0


def test_build_runtime_validates_jobs():
    with pytest.raises(ConfigurationError):
        build_runtime(jobs=0)
    with pytest.raises(ConfigurationError):
        build_runtime(jobs=-3)
    runtime = build_runtime(jobs=1)
    try:
        assert runtime.jobs == 1
    finally:
        runtime.close()
