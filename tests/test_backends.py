"""Kernel execution backends: parity matrix, fallback, workspace accounting."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.backends import (
    BACKENDS,
    KernelBackend,
    NumpyBackend,
    ThreadedBlocksBackend,
    available_backends,
    backend_manifest,
    get_backend,
    resolve_backend,
)
from repro.core.kernels import MonteCarloKernel
from repro.core.montecarlo import MonteCarloEngine
from repro.devices.technology import available_technologies, get_technology
from repro.errors import BackendUnavailableError, ConfigurationError
from repro.obs.api import activate_obs, build_obs
from repro.resilience import (
    FaultLedger,
    RetryPolicy,
    activate_ledger,
    install_faults,
    parse_faults,
)
from repro.runtime import ParallelSampler, build_runtime, \
    release_worker_workspaces
from repro.runtime.context import activate_runtime

SMALL_ARCH = dict(width=4, paths_per_lane=3, chain_length=5)
SYS_KW = dict(width=6, paths_per_lane=4, chain_length=7, spares=1)

#: Small enough that every parity batch splits into several internal
#: blocks, so the threaded dispatch actually fans out.
TINY_BLOCKS = 97


def _threaded(threads=3):
    """A private pool instance per test (never the shared singleton)."""
    return ThreadedBlocksBackend(threads=threads)


# -- registry -----------------------------------------------------------------


def test_registry_names_and_unknown_backend():
    assert BACKENDS == ("numpy", "threaded", "numba", "cupy")
    assert set(available_backends()) >= {"numpy", "threaded"}
    with pytest.raises(ConfigurationError):
        get_backend("fortran")
    with pytest.raises(ConfigurationError):
        resolve_backend("fortran")


def test_get_backend_returns_singletons():
    assert get_backend("numpy") is get_backend("numpy")
    assert get_backend("threaded", threads=2) is get_backend(
        "threaded", threads=2)
    assert get_backend("threaded", threads=2) is not get_backend(
        "threaded", threads=3)


def test_resolve_backend_instance_passthrough():
    inst = _threaded(2)
    assert resolve_backend(inst) is inst
    assert isinstance(resolve_backend("numpy"), NumpyBackend)


def test_threaded_thread_count_validated():
    with pytest.raises(ConfigurationError):
        ThreadedBlocksBackend(threads=0)


# -- threaded parity matrix: bit-identical by construction --------------------


@pytest.mark.parametrize("precision", ["float64", "float32"])
@pytest.mark.parametrize("node", available_technologies())
def test_threaded_system_parity_matrix(node, precision):
    """4 nodes x both precisions: threaded == numpy, bit for bit."""
    tech = get_technology(node)
    kw = dict(n_chips=24, batch_size=24, **SYS_KW)
    ref = MonteCarloEngine(tech, seed=3,
                           precision=precision).system_delays(0.6, **kw)
    thr = MonteCarloEngine(tech, seed=3, precision=precision,
                           backend=_threaded(), block_elems=TINY_BLOCKS
                           ).system_delays(0.6, **kw)
    np.testing.assert_array_equal(thr, ref)


@pytest.mark.parametrize("precision", ["float64", "float32"])
def test_threaded_lane_and_chain_parity(tech90, precision):
    ref = MonteCarloEngine(tech90, seed=5, precision=precision)
    thr = MonteCarloEngine(tech90, seed=5, precision=precision,
                           backend=_threaded(), block_elems=29)
    np.testing.assert_array_equal(
        thr.lane_delays(0.55, paths_per_lane=4, chain_length=6,
                        n_samples=40, batch_size=40),
        ref.lane_delays(0.55, paths_per_lane=4, chain_length=6,
                        n_samples=40, batch_size=40))
    np.testing.assert_array_equal(thr.chain_delays(0.5, 12, 50),
                                  ref.chain_delays(0.5, 12, 50))


def test_threaded_thread_count_invariance(tech22):
    """1, 2 and 8 threads all produce the identical bits."""
    kw = dict(n_chips=20, batch_size=20, **SYS_KW)
    outs = [MonteCarloEngine(tech22, seed=9, backend=_threaded(t),
                             block_elems=TINY_BLOCKS
                             ).system_delays(0.6, **kw)
            for t in (1, 2, 8)]
    np.testing.assert_array_equal(outs[0], outs[1])
    np.testing.assert_array_equal(outs[0], outs[2])


def test_threaded_matches_reference_path(tech90):
    """Threaded fused == unfused naive reference (the PR-5 parity gate)."""
    kw = dict(n_chips=16, batch_size=16, **SYS_KW)
    thr = MonteCarloEngine(tech90, seed=7, backend=_threaded(),
                           block_elems=TINY_BLOCKS).system_delays(0.6, **kw)
    ref = MonteCarloEngine(tech90, seed=7, fused=False).system_delays(
        0.6, **kw)
    np.testing.assert_array_equal(thr, ref)


# -- composition with process sharding ----------------------------------------


def test_threaded_composes_with_jobs_bit_identical(tech90):
    """--backend threaded --jobs 2 == serial numpy run, bit for bit."""
    kw = dict(n_chips=96, spares=0, root_seed=11, batch_size=32,
              **SMALL_ARCH)
    with ParallelSampler(1, shard_size=16) as serial:
        baseline = serial.system_delays(tech90, 0.6, **kw)
    with ParallelSampler(2, shard_size=16) as pooled:
        threaded = pooled.system_delays(tech90, 0.6, backend="threaded",
                                        block_elems=TINY_BLOCKS, **kw)
    np.testing.assert_array_equal(threaded, baseline)


def test_threaded_under_worker_crash_bit_identical(tech90):
    """Chaos recovery (respawn -> serial fallback) keeps threaded parity."""
    kw = dict(n_chips=64, spares=0, root_seed=11, batch_size=32,
              **SMALL_ARCH)
    with ParallelSampler(1, shard_size=16) as serial:
        baseline = serial.system_delays(tech90, 0.6, **kw)
    ledger = FaultLedger()
    obs = build_obs(metrics=True)
    with activate_obs(obs), activate_ledger(ledger), \
            install_faults(parse_faults("worker_crash:0:inf")):
        sampler = ParallelSampler(
            2, shard_size=16, retry=RetryPolicy(max_pool_respawns=1))
        try:
            out = sampler.system_delays(tech90, 0.6, backend="threaded",
                                        block_elems=TINY_BLOCKS, **kw)
        finally:
            sampler.close()
    assert ledger.counts()["serial_fallback"] == 1
    np.testing.assert_array_equal(out, baseline)


# -- optional backends: degrade with a warning --------------------------------


@pytest.mark.parametrize("name", ["numba", "cupy"])
def test_missing_optional_backend_falls_back_and_solves(tech90, name):
    if name in available_backends():
        pytest.skip(f"{name} is installed; fallback path not reachable")
    with pytest.raises(BackendUnavailableError):
        get_backend(name)
    with pytest.warns(RuntimeWarning, match=name):
        engine = MonteCarloEngine(tech90, seed=1, backend=name)
    assert engine.backend == "numpy"
    out = engine.system_delays(0.6, n_chips=8, batch_size=8, **SMALL_ARCH)
    ref = MonteCarloEngine(tech90, seed=1).system_delays(
        0.6, n_chips=8, batch_size=8, **SMALL_ARCH)
    np.testing.assert_array_equal(out, ref)


@pytest.mark.parametrize("name", ["numba", "cupy"])
def test_available_optional_backend_rtol_parity(tech90, name):
    if name not in available_backends():
        pytest.skip(f"{name} not installed")
    kw = dict(n_chips=16, batch_size=16, **SYS_KW)
    ref = MonteCarloEngine(tech90, seed=3).system_delays(0.6, **kw)
    acc = MonteCarloEngine(tech90, seed=3, backend=name).system_delays(
        0.6, **kw)
    np.testing.assert_allclose(acc, ref, rtol=1e-9)


def test_backend_manifest_records_fallback():
    section = backend_manifest("threaded")
    assert section["requested"] == "threaded"
    assert section["active"] == "threaded"
    assert section["fallback"] is False
    assert section["bit_parity"] is True
    assert section["threads"] >= 1
    assert "numpy" in section["available"]
    if "numba" not in available_backends():
        degraded = backend_manifest("numba")
        assert degraded["active"] == "numpy"
        assert degraded["fallback"] is True


# -- runtime / CLI plumbing ---------------------------------------------------


def test_build_runtime_validates_backend_and_block_elems():
    with pytest.raises(ConfigurationError):
        build_runtime(backend="fortran")
    with pytest.raises(ConfigurationError):
        build_runtime(block_elems=0)
    runtime = build_runtime(backend="threaded", block_elems=1234)
    try:
        assert runtime.backend == "threaded"
        assert runtime.block_elems == 1234
    finally:
        runtime.close()


def test_analyzer_monte_carlo_picks_up_runtime_backend():
    from repro.core.analyzer import VariationAnalyzer

    analyzer = VariationAnalyzer("90nm", width=4, paths_per_lane=3,
                                 chain_length=5)
    runtime = build_runtime(backend="threaded", block_elems=4321)
    try:
        with activate_runtime(runtime):
            engine = analyzer.monte_carlo(seed=1)
        assert engine.backend == "threaded"
        assert engine.kernel.block_elems == 4321
        default = analyzer.monte_carlo(seed=1)
        assert default.backend == "numpy"
    finally:
        runtime.close()


def test_cli_rejects_bad_block_elems(capsys):
    from repro.experiments.__main__ import main as cli_main
    assert cli_main(["fig9", "--block-elems", "0"]) == 2
    assert "block_elems" in capsys.readouterr().err


def test_cli_runs_experiment_on_threaded_backend(tmp_path):
    import json

    from repro.experiments.__main__ import main as cli_main
    manifest = tmp_path / "manifest.json"
    assert cli_main(["fig1", "--fast", "--backend", "threaded",
                     "--block-elems", "50000",
                     "--metrics", str(manifest)]) == 0
    payload = json.loads(manifest.read_text())
    assert payload["backends"]["requested"] == "threaded"
    assert payload["backends"]["active"] == "threaded"
    assert payload["backends"]["fallback"] is False


# -- workspace accounting (staging included) ----------------------------------


def test_workspace_breakdown_counts_float32_staging(tech90):
    kernel = MonteCarloKernel(tech90, precision="float32")
    engine = MonteCarloEngine(tech90, kernel=kernel, seed=0)
    engine.system_delays(0.6, n_chips=8, batch_size=8, **SMALL_ARCH)
    breakdown = kernel.workspace_breakdown()
    # One float64 staging row per gate slab: (lanes, paths, chain) doubles.
    lanes = SMALL_ARCH["width"]
    elems = lanes * SMALL_ARCH["paths_per_lane"] * SMALL_ARCH["chain_length"]
    assert breakdown["staging"] == elems * 8
    assert kernel.workspace_nbytes == sum(breakdown.values())


def test_float64_kernel_has_no_staging(tech90):
    kernel = MonteCarloKernel(tech90)
    engine = MonteCarloEngine(tech90, kernel=kernel, seed=0)
    engine.system_delays(0.6, n_chips=8, batch_size=8, **SMALL_ARCH)
    breakdown = kernel.workspace_breakdown()
    assert "staging" not in breakdown
    assert kernel.workspace_nbytes == sum(breakdown.values())


def test_threaded_arenas_release_across_threads(tech22):
    kernel = MonteCarloKernel(tech22, backend=_threaded(2),
                              block_elems=TINY_BLOCKS)
    engine = MonteCarloEngine(tech22, kernel=kernel, seed=0)
    engine.system_delays(0.6, n_chips=20, batch_size=20, **SYS_KW)
    assert kernel.workspace_nbytes > 0
    kernel.release_workspaces()
    assert kernel.workspace_nbytes == 0


def test_release_worker_workspaces_frees_driver_kernels(tech90):
    release_worker_workspaces()   # start clean (module-global memo)
    with ParallelSampler(1, shard_size=16) as sampler:
        sampler.system_delays(tech90, 0.6, n_chips=32, spares=0,
                              root_seed=3, **SMALL_ARCH)
    assert release_worker_workspaces() > 0
    assert release_worker_workspaces() == 0


def test_serial_fallback_releases_workspaces(tech90):
    """The fallback path must not pin shard workspaces in the driver."""
    release_worker_workspaces()
    ledger = FaultLedger()
    obs = build_obs(metrics=True)
    with activate_obs(obs), activate_ledger(ledger), \
            install_faults(parse_faults("worker_crash:0:inf")):
        sampler = ParallelSampler(
            2, shard_size=16, retry=RetryPolicy(max_pool_respawns=1))
        try:
            sampler.system_delays(tech90, 0.6, n_chips=48, spares=0,
                                  root_seed=3, batch_size=16, **SMALL_ARCH)
        finally:
            sampler.close()
    assert ledger.counts()["serial_fallback"] == 1
    # Every fallback shard released after itself: nothing left to free.
    assert release_worker_workspaces() == 0


# -- metrics ------------------------------------------------------------------


def test_threaded_backend_metrics_emitted(tech22):
    obs = build_obs(metrics=True)
    with activate_obs(obs):
        MonteCarloEngine(tech22, seed=0, backend=_threaded(2),
                         block_elems=TINY_BLOCKS).system_delays(
            0.6, n_chips=20, batch_size=20, **SYS_KW)
    assert obs.metrics.counter("kernels.backend_blocks").value > 1
    assert obs.metrics.gauge("kernels.backend_threads").value == 2.0
    assert obs.metrics.gauge("kernels.backend.threaded").value == 1.0
    util = obs.metrics.gauge("kernels.thread_utilization").value
    assert 0.0 <= util <= 1.0


def test_backend_base_class_serial_contract(tech90):
    """The default run_blocks is the serial loop every backend inherits."""
    backend = KernelBackend()
    kernel = MonteCarloKernel(tech90, backend=backend)
    seen = []
    backend.run_blocks(kernel, lambda arena, start, stop:
                       seen.append((start, stop)), [(0, 3), (3, 5)])
    assert seen == [(0, 3), (3, 5)]
    assert backend.path_sums(kernel, 0.6, None, None, None) is False
    assert backend.workspace_nbytes == 0


def test_kernel_accepts_none_block_elems(tech90):
    from repro.core.kernels import DEFAULT_BLOCK_ELEMS
    assert MonteCarloKernel(tech90,
                            block_elems=None).block_elems == DEFAULT_BLOCK_ELEMS
    with pytest.raises(ConfigurationError):
        MonteCarloKernel(tech90, backend="nope")


def test_resolve_backend_warning_mentions_fallback():
    if "cupy" in available_backends():
        pytest.skip("cupy installed; no fallback warning to test")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        backend = resolve_backend("cupy")
    assert backend.name == "numpy"
    messages = [str(w.message) for w in caught
                if issubclass(w.category, RuntimeWarning)]
    assert any("falling back to 'numpy'" in m for m in messages)
