"""Per-gate Monte-Carlo engine."""

import numpy as np
import pytest

from repro.core.montecarlo import MonteCarloEngine
from repro.errors import ConfigurationError


@pytest.fixture()
def mc(tech90):
    return MonteCarloEngine(tech90, seed=3)


def test_seed_reproducibility(tech90):
    a = MonteCarloEngine(tech90, seed=5).chain_delays(0.6, 10, 500)
    b = MonteCarloEngine(tech90, seed=5).chain_delays(0.6, 10, 500)
    np.testing.assert_array_equal(a, b)


def test_chain_mean_scales_with_length(mc, tech90):
    short = mc.chain_delays(0.7, 10, 20_000)
    long = mc.chain_delays(0.7, 40, 20_000)
    assert long.mean() / short.mean() == pytest.approx(4.0, rel=0.01)


def test_chain_matches_nominal_fo4(mc, tech90):
    samples = mc.chain_delays(0.6, 50, 50_000)
    nominal = 50 * tech90.fo4_unit(0.6)
    # Mean exceeds the nominal slightly (convexity of delay in Vth).
    assert samples.mean() == pytest.approx(nominal, rel=0.05)


def test_die_effects_increase_spread(tech90):
    with_die = MonteCarloEngine(tech90, seed=1).chain_delays(
        0.6, 50, 20_000, include_die=True)
    without = MonteCarloEngine(tech90, seed=1).chain_delays(
        0.6, 50, 20_000, include_die=False)
    rel_with = with_die.std() / with_die.mean()
    rel_without = without.std() / without.mean()
    assert rel_with > rel_without


def test_gate_delays_positive(mc):
    samples = mc.gate_delays(0.5, 5000)
    assert np.all(samples > 0)


def test_system_delays_batching_consistent(tech90):
    a = MonteCarloEngine(tech90, seed=11).system_delays(
        0.6, width=4, paths_per_lane=3, chain_length=5, n_chips=300,
        batch_size=7)
    b = MonteCarloEngine(tech90, seed=11).system_delays(
        0.6, width=4, paths_per_lane=3, chain_length=5, n_chips=300,
        batch_size=300)
    # Different batching orders draw the same per-chip structure because
    # every draw happens within a batch; distributions must agree.
    assert a.mean() == pytest.approx(b.mean(), rel=0.05)
    assert np.all(a > 0) and np.all(b > 0)


def test_system_spares_reduce_delay(tech90):
    base = MonteCarloEngine(tech90, seed=2).system_delays(
        0.55, width=16, paths_per_lane=5, chain_length=10, n_chips=1500)
    spared = MonteCarloEngine(tech90, seed=2).system_delays(
        0.55, width=16, paths_per_lane=5, chain_length=10, n_chips=1500,
        spares=4)
    assert np.quantile(spared, 0.99) < np.quantile(base, 0.99)


def test_invalid_args(mc):
    with pytest.raises(ConfigurationError):
        mc.chain_delays(0.6, 0, 10)
    with pytest.raises(ConfigurationError):
        mc.chain_delays(0.6, 5, 0)
    with pytest.raises(ConfigurationError):
        mc.system_delays(0.6, width=4, paths_per_lane=2, chain_length=3,
                         n_chips=10, spares=-1)


def test_batch_size_validated(mc):
    """batch_size <= 0 used to loop forever; it must raise instead."""
    with pytest.raises(ConfigurationError):
        mc.system_delays(0.6, width=2, paths_per_lane=2, chain_length=3,
                         n_chips=10, batch_size=0)
    with pytest.raises(ConfigurationError):
        mc.system_delays(0.6, width=2, paths_per_lane=2, chain_length=3,
                         n_chips=10, batch_size=-4)
    with pytest.raises(ConfigurationError):
        mc.lane_delays(0.6, paths_per_lane=2, chain_length=3,
                       n_samples=10, batch_size=0)
