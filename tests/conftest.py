"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.analyzer import VariationAnalyzer
from repro.devices.technology import available_technologies, get_technology


@pytest.fixture(scope="session", autouse=True)
def _isolated_quantile_cache(tmp_path_factory):
    """Point the persistent quantile cache at a per-session temp dir.

    Keeps the suite from reading or polluting the developer's real
    ``~/.cache/repro`` while still exercising the on-disk cache path.
    """
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(
        tmp_path_factory.mktemp("quantile-cache"))
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture(scope="session")
def tech90():
    return get_technology("90nm")


@pytest.fixture(scope="session")
def tech22():
    return get_technology("22nm")


@pytest.fixture(scope="session", params=available_technologies())
def any_tech(request):
    """Parametrised over all four technology cards."""
    return get_technology(request.param)


@pytest.fixture(scope="session")
def analyzer90():
    """Full-size 90 nm analyzer shared across tests (cached quadratures)."""
    return VariationAnalyzer("90nm")


@pytest.fixture(scope="session")
def analyzer45():
    return VariationAnalyzer("45nm")


@pytest.fixture(scope="session")
def small_analyzer(tech90):
    """A small architecture for fast cross-validation tests."""
    return VariationAnalyzer(tech90, width=16, paths_per_lane=10,
                             chain_length=20)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
