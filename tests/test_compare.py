"""Duplication-vs-margining comparison (Fig. 7 logic)."""

import pytest

from repro.mitigation.compare import compare_techniques, crossover_voltage


def test_comparison_fields(analyzer90):
    c = compare_techniques(analyzer90, 0.6)
    assert c.technology == "90nm"
    assert c.duplication_feasible
    assert c.margin_feasible
    assert c.winner in ("duplication", "margining")
    assert "->" in c.summary()


def test_duplication_wins_high_v_90nm(analyzer90):
    """Paper: at 90nm duplication alone handles the variation (cheap)."""
    c = compare_techniques(analyzer90, 0.65)
    assert c.winner == "duplication"


def test_margining_wins_when_duplication_saturates(analyzer45):
    c = compare_techniques(analyzer45, 0.5)
    assert not c.duplication_feasible
    assert c.winner == "margining"


def test_crossover_exists_for_advanced_node(analyzer45):
    voltages = (0.5, 0.55, 0.6, 0.65, 0.7)
    crossover = crossover_voltage(analyzer45, voltages)
    assert crossover is not None
    # Below the crossover margining must win.
    low = compare_techniques(analyzer45, 0.5)
    assert low.winner == "margining"


def test_comparisons_share_target(analyzer90):
    """Both techniques are judged against the same sign-off target."""
    from repro.mitigation.voltage_margin import solve_voltage_margin
    from repro.sparing.duplication import solve_spares
    dup = solve_spares(analyzer90, 0.6)
    mar = solve_voltage_margin(analyzer90, 0.6)
    assert dup.target_delay == pytest.approx(mar.target_delay)
