"""Extension modules: body bias, frequency binning, process corners."""

import numpy as np
import pytest

from repro.devices.corners import (
    corner_vs_statistical,
    derive_corner,
    standard_corners,
)
from repro.errors import ConfigurationError
from repro.mitigation.body_bias import (
    compare_with_margining,
    leakage_overhead,
    solve_body_bias,
)
from repro.sparing.binning import bin_chips, spare_binning_study

VDD = 0.55


# -- body bias ---------------------------------------------------------------


def test_body_bias_meets_target(analyzer90):
    sol = solve_body_bias(analyzer90, VDD)
    assert sol.feasible and sol.v_bb > 0
    assert sol.achieved_delay <= sol.target_delay * (1 + 1e-6)
    assert sol.dvth == pytest.approx(0.15 * sol.v_bb)


def test_body_bias_zero_at_nominal(analyzer90):
    sol = solve_body_bias(analyzer90, analyzer90.nominal_vdd)
    assert sol.feasible and sol.v_bb == 0.0
    assert sol.power_overhead == 0.0


def test_body_bias_grows_at_lower_vdd(analyzer90):
    low = solve_body_bias(analyzer90, 0.5)
    high = solve_body_bias(analyzer90, 0.65)
    assert low.v_bb > high.v_bb > 0


def test_leakage_overhead_monotone(analyzer90):
    small = leakage_overhead(analyzer90, 0.005)
    large = leakage_overhead(analyzer90, 0.02)
    assert 0 < small < large
    with pytest.raises(ConfigurationError):
        leakage_overhead(analyzer90, -0.01)


def test_body_bias_comparison(analyzer90):
    result = compare_with_margining(analyzer90, VDD)
    assert result["winner"] in ("body-bias", "margining")
    assert result["body_bias"].feasible
    assert result["margining"].feasible


def test_body_bias_validation(analyzer90):
    with pytest.raises(ConfigurationError):
        solve_body_bias(analyzer90, VDD, body_coefficient=1.5)


# -- frequency binning ---------------------------------------------------------


def test_binning_partitions_population(analyzer90):
    result = bin_chips(analyzer90, VDD, n_chips=4000, seed=1)
    total = sum(b.fraction for b in result.bins) + result.scrap_fraction
    assert total == pytest.approx(1.0)
    assert sum(b.count for b in result.bins) <= result.n_chips


def test_binning_grades_ordered(analyzer90):
    result = bin_chips(analyzer90, VDD, n_chips=4000, seed=1)
    grades = [b.grade for b in result.bins]
    assert grades == sorted(grades)
    assert result.bins[0].relative_value == pytest.approx(1.0)


def test_spares_improve_bins(analyzer90):
    study = spare_binning_study(analyzer90, VDD,
                                spare_options=(0, 8, 16),
                                n_chips=4000, seed=2)
    values = [r.expected_value for r in study]
    yields = [r.full_speed_yield for r in study]
    assert values[-1] >= values[0]
    assert yields[-1] >= yields[0]
    # At this NTV point, unspared full-speed yield is visibly imperfect.
    assert yields[0] < 0.999


def test_binning_rejects_fast_grades(analyzer90):
    with pytest.raises(ConfigurationError):
        bin_chips(analyzer90, VDD, grades=(0.9, 1.0), n_chips=100)


def test_binning_summary(analyzer90):
    result = bin_chips(analyzer90, VDD, n_chips=500, seed=3)
    assert "E[value]" in result.summary()


# -- corners -----------------------------------------------------------------


def test_corner_ordering(tech90):
    corners = standard_corners(tech90)
    ff = float(corners["FF"].fo4_delay(0.6))
    tt = float(corners["TT"].fo4_delay(0.6))
    ss = float(corners["SS"].fo4_delay(0.6))
    assert ff < tt < ss


def test_tt_corner_matches_nominal(tech90):
    tt = standard_corners(tech90)["TT"]
    assert float(tt.fo4_delay(0.6)) == pytest.approx(tech90.fo4_unit(0.6))


def test_corner_card_is_deterministic(tech90):
    ss = derive_corner(tech90, 3.0)
    assert ss.tech.variation.sigma_vth_wid == 0.0
    assert ss.tech.variation.sigma_vth_d2d == 0.0
    hybrid = derive_corner(tech90, 3.0, include_within_die=True)
    assert hybrid.tech.variation.sigma_vth_wid > 0.0
    assert hybrid.tech.variation.sigma_vth_d2d == 0.0


def test_corner_vs_statistical(analyzer90):
    result = corner_vs_statistical(analyzer90, VDD)
    assert result["corner_delay"] > 0
    assert result["statistical_delay"] > 0
    # For the calibrated 90nm card (tiny die-level sigma, large
    # within-die spread over 12,800 paths), the SS corner *understates*
    # the wide-SIMD chip delay.
    assert result["ratio"] < 1.0
    with pytest.raises(ConfigurationError):
        corner_vs_statistical(analyzer90, VDD, sigma_count=-1)
