"""Ablation and sensitivity analyses."""

import pytest

from repro.analysis import (
    chain_length_sweep,
    decompose_performance_drop,
    mitigation_coverage,
    paths_per_lane_sweep,
    signoff_quantile_sweep,
)
from repro.errors import ConfigurationError

VDD = 0.55


def test_decomposition_components(analyzer90):
    rows = decompose_performance_drop(analyzer90, VDD)
    by_name = {r.component: r for r in rows}
    assert set(by_name) == {"gate-level", "lane-level", "die-level",
                            "threshold (all scales)",
                            "multiplicative (all scales)"}
    # The NTV excess is entirely threshold-driven: without any threshold
    # variation the drop vanishes (voltage-flat components affect the 1 V
    # baseline identically and cancel out of the relative metric).
    assert by_name["threshold (all scales)"].drop_without < 0.005
    assert by_name["threshold (all scales)"].share > 0.9
    # Flat multiplicative variation actually *shrinks* the relative drop
    # (it inflates the baseline quantile), so its contribution is <= 0.
    assert by_name["multiplicative (all scales)"].contribution < 0.005
    # Gate- and lane-level threshold variation both contribute; die-level
    # is negligible in the calibrated 90nm card.
    assert by_name["gate-level"].contribution > 0.005
    assert by_name["lane-level"].contribution > 0.003
    assert abs(by_name["die-level"].contribution) < 0.005


def test_decomposition_unknown_component(analyzer90):
    with pytest.raises(ConfigurationError):
        decompose_performance_drop(analyzer90, VDD, components=["magic"])


def test_mitigation_coverage_structure(analyzer90):
    cov = mitigation_coverage(analyzer90, VDD, spares=32, margin=0.02)
    assert set(cov) == {"gate-level", "lane-level", "die-level"}
    # Spares fix lane-level outliers well but die-level slowdown poorly.
    lane = cov["lane-level"]
    die = cov["die-level"]
    if lane["base_drop"] > 0 and die["base_drop"] > 0:
        assert lane["duplication"] > die["duplication"]
    # Margining helps every scale substantially.
    for scale, result in cov.items():
        if result["base_drop"] > 0:
            assert result["margining"] > 0.5


def test_signoff_quantile_sweep():
    rows = signoff_quantile_sweep("90nm", VDD)
    assert [r.value for r in rows] == [0.90, 0.99, 0.999]
    drops = [r.performance_drop for r in rows]
    # The conclusion is robust: drops stay within a few pp across
    # sign-off choices and all remain positive.
    assert all(0 < d < 0.12 for d in drops)
    with pytest.raises(ConfigurationError):
        signoff_quantile_sweep("90nm", VDD, quantiles=(1.5,))


def test_paths_per_lane_sweep():
    rows = paths_per_lane_sweep("90nm", VDD)
    drops = {int(r.value): r.performance_drop for r in rows}
    # More paths -> deeper max -> larger drop, but the effect is mild
    # (the paper's 50 -> 100 doubling is not decision-changing).
    assert drops[200] > drops[50]
    assert drops[200] - drops[50] < 0.02


def test_chain_length_sweep():
    rows = chain_length_sweep("90nm", VDD)
    drops = {int(r.value): r.performance_drop for r in rows}
    # Shorter proxy chains average less -> more per-path spread -> larger
    # drop.
    assert drops[25] > drops[100]
    for r in rows:
        assert r.margin_mv is not None and r.margin_mv > 0


def test_sweep_summaries_readable():
    row = signoff_quantile_sweep("90nm", VDD, quantiles=(0.99,))[0]
    assert "signoff_q" in row.summary()
