"""Energy model and operating regions (Fig. 9 semantics)."""

import numpy as np
import pytest

from repro.energy.model import EnergyModel
from repro.energy.regions import (
    OperatingRegion,
    classify_region,
    minimum_energy_voltage,
    region_boundaries,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def model(tech90):
    return EnergyModel(tech90)


def test_normalised_at_nominal(model, tech90):
    assert float(model.total_energy(tech90.nominal_vdd)) == pytest.approx(1.0)
    assert float(model.relative_delay(tech90.nominal_vdd)) == pytest.approx(1.0)


def test_leakage_fraction_at_nominal(model, tech90):
    frac = float(model.leakage_energy(tech90.nominal_vdd))
    assert frac == pytest.approx(model.leakage_fraction_nominal)


def test_ntv_energy_savings_severalfold(model, tech90):
    """Paper: scaling to NTV yields a several-fold (order 10x counting
    the full nominal range) energy reduction."""
    from repro.energy.regions import region_boundaries
    ntv = region_boundaries(tech90)[0] * 1.05   # just above threshold
    savings = model.energy_savings_at(ntv)
    assert 3 < savings < 20


def test_ntv_delay_cost_order_10x(model):
    cost = model.performance_cost_at(0.5)
    assert 4 < cost < 30


def test_energy_minimum_near_subthreshold_boundary(model, tech90):
    v_min = minimum_energy_voltage(model)
    sub_near, near_super = region_boundaries(tech90)
    assert v_min < sub_near + 0.05  # at/below the near-threshold boundary
    # The minimum is a true interior minimum.
    e_min = float(model.total_energy(v_min))
    assert float(model.total_energy(v_min + 0.07)) > e_min
    assert float(model.total_energy(max(v_min - 0.07, 0.16))) > e_min


def test_ntv_vs_minimum_tradeoff(model):
    """Paper: near-threshold costs ~2x the minimum energy but is far
    faster than the minimum-energy point."""
    v_min = minimum_energy_voltage(model)
    ntv = 0.5
    energy_ratio = float(model.total_energy(ntv) / model.total_energy(v_min))
    speedup = float(model.relative_delay(v_min) / model.relative_delay(ntv))
    assert 1.0 <= energy_ratio < 4.0
    assert speedup > 2


def test_switching_energy_quadratic(model, tech90):
    e_half = float(model.switching_energy(tech90.nominal_vdd / 2))
    e_full = float(model.switching_energy(tech90.nominal_vdd))
    assert e_half == pytest.approx(e_full / 4)


def test_leakage_energy_rises_below_threshold(model):
    assert float(model.leakage_energy(0.25)) > float(model.leakage_energy(0.45))


def test_evaluate_point_fields(model):
    point = model.evaluate(0.5)
    assert point.total_energy == pytest.approx(
        point.switching_energy + point.leakage_energy)
    assert point.region in ("sub", "near", "super")
    assert point.energy_delay_product == pytest.approx(
        point.total_energy * point.delay)


def test_sweep_length(model):
    points = model.sweep(np.linspace(0.3, 1.0, 8))
    assert len(points) == 8


def test_region_classification(tech90):
    assert classify_region(tech90, 0.2) is OperatingRegion.SUB_THRESHOLD
    assert classify_region(tech90, 1.0) is OperatingRegion.SUPER_THRESHOLD
    sub_near, _ = region_boundaries(tech90)
    assert classify_region(
        tech90, sub_near * 1.2) is OperatingRegion.NEAR_THRESHOLD


def test_validation():
    from repro.devices import get_technology
    with pytest.raises(ConfigurationError):
        EnergyModel(get_technology("90nm"), leakage_fraction_nominal=1.5)
    model = EnergyModel(get_technology("90nm"))
    with pytest.raises(ConfigurationError):
        minimum_energy_voltage(model, v_lo=0.9, v_hi=0.5)
