"""Variation model: sampling semantics and physical scaling laws."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.variation import (
    VariationModel,
    combine_sigmas,
    ler_sigma_vth,
    pelgrom_sigma_vth,
)
from repro.errors import ConfigurationError


@pytest.fixture()
def model():
    return VariationModel(sigma_vth_wid=0.010, sigma_vth_d2d=0.003,
                          sigma_mult_rand=0.04, sigma_mult_corr=0.015,
                          sigma_vth_lane=0.004, sigma_mult_lane=0.008)


def test_negative_sigma_rejected():
    with pytest.raises(ConfigurationError):
        VariationModel(sigma_vth_wid=-0.01, sigma_vth_d2d=0,
                       sigma_mult_rand=0, sigma_mult_corr=0)


def test_gate_sampling_statistics(model, rng):
    draws = model.sample_gates(rng, 200_000)
    assert draws.dvth.std() == pytest.approx(model.sigma_vth_wid, rel=0.02)
    assert draws.mult.std() == pytest.approx(model.sigma_mult_rand, rel=0.02)
    assert abs(draws.dvth.mean()) < 1e-4


def test_gate_sampling_pelgrom_size_scaling(model, rng):
    big = model.sample_gates(rng, 200_000, size_scale=4.0)
    assert big.dvth.std() == pytest.approx(model.sigma_vth_wid / 2.0, rel=0.02)


def test_lane_and_die_sampling_shapes(model, rng):
    lanes = model.sample_lanes(rng, (100, 8))
    assert lanes.dvth.shape == (100, 8)
    dies = model.sample_dies(rng, 50)
    assert dies.dvth.shape == (50,)
    assert dies.mult.shape == (50,)


def test_zero_sigma_yields_zero_draws(rng):
    model = VariationModel(sigma_vth_wid=0, sigma_vth_d2d=0,
                           sigma_mult_rand=0, sigma_mult_corr=0)
    draws = model.sample_gates(rng, 100)
    assert np.all(draws.dvth == 0)
    dies = model.sample_dies(rng, 10)
    assert np.all(dies.mult == 0)


def test_chain_corr_views(model):
    assert model.sigma_vth_chain_corr == pytest.approx(
        np.hypot(0.004, 0.003))
    assert model.sigma_mult_chain_corr == pytest.approx(
        np.hypot(0.008, 0.015))
    assert model.sigma_vth_total == pytest.approx(
        combine_sigmas(0.010, 0.004, 0.003))


def test_ablation_copies(model):
    no_corr = model.without_correlated()
    assert no_corr.sigma_vth_lane == 0 and no_corr.sigma_mult_corr == 0
    assert no_corr.sigma_vth_wid == model.sigma_vth_wid
    no_rand = model.without_random()
    assert no_rand.sigma_vth_wid == 0 and no_rand.sigma_mult_rand == 0
    assert no_rand.sigma_vth_lane == model.sigma_vth_lane


def test_scaled(model):
    doubled = model.scaled(2.0)
    assert doubled.sigma_vth_wid == pytest.approx(0.020)
    assert doubled.sigma_mult_lane == pytest.approx(0.016)
    with pytest.raises(ConfigurationError):
        model.scaled(-1.0)


def test_pelgrom_law():
    base = pelgrom_sigma_vth(3.0, 1.0, 1.0)
    assert base == pytest.approx(3e-3)
    # Quadrupling area halves sigma.
    assert pelgrom_sigma_vth(3.0, 2.0, 2.0) == pytest.approx(base / 2.0)
    with pytest.raises(ConfigurationError):
        pelgrom_sigma_vth(3.0, 0.0, 1.0)


def test_ler_scaling():
    at22 = ler_sigma_vth(0.010, 22.0)
    at90 = ler_sigma_vth(0.010, 90.0)
    assert at22 == pytest.approx(0.010)
    assert at22 > at90  # LER worsens with scaling


@settings(max_examples=30, deadline=None)
@given(st.floats(0, 0.05), st.floats(0, 0.05), st.floats(0, 0.05))
def test_combine_sigmas_is_rss(a, b, c):
    assert combine_sigmas(a, b, c) == pytest.approx(
        np.sqrt(a * a + b * b + c * c))


def test_sampling_reproducible(model):
    a = model.sample_gates(np.random.default_rng(7), 100)
    b = model.sample_gates(np.random.default_rng(7), 100)
    np.testing.assert_array_equal(a.dvth, b.dvth)
