"""Property-based tests for the extension modules."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import quantile_ci
from repro.devices.spatial import SpatialField
from repro.simd.floorplan import LaneFloorplan
from repro.simd.workloads import Phase, SIMDMachine, Workload, execute


@settings(max_examples=30, deadline=None)
@given(vector_ops=st.integers(1, 100_000),
       parallelism=st.integers(1, 4096),
       width_a=st.integers(1, 256), width_b=st.integers(1, 256))
def test_cycles_monotone_in_width(analyzer90, vector_ops, parallelism,
                                  width_a, width_b):
    """More lanes never increase the cycle count."""
    wl = Workload("prop", (Phase("p", vector_ops=vector_ops,
                                 parallelism=parallelism),))
    lo, hi = sorted((width_a, width_b))
    narrow = execute(wl, SIMDMachine(analyzer=analyzer90, vdd=0.7, width=lo))
    wide = execute(wl, SIMDMachine(analyzer=analyzer90, vdd=0.7, width=hi))
    assert wide.cycles <= narrow.cycles
    # Work conservation: cycles * usable lanes >= total ops.
    usable = min(hi, parallelism)
    assert wide.vector_cycles * usable >= vector_ops


@settings(max_examples=30, deadline=None)
@given(ops=st.lists(st.integers(1, 10_000), min_size=1, max_size=6))
def test_phase_cycles_additive(analyzer90, ops):
    """A multi-phase workload costs the sum of its phases."""
    phases = tuple(Phase(f"p{i}", vector_ops=o, parallelism=128)
                   for i, o in enumerate(ops))
    machine = SIMDMachine(analyzer=analyzer90, vdd=0.7, width=128)
    whole = execute(Workload("whole", phases), machine)
    parts = sum(execute(Workload(f"part{i}", (p,)), machine).cycles
                for i, p in enumerate(phases))
    assert whole.cycles == parts


@settings(max_examples=20, deadline=None)
@given(sigma=st.floats(0.001, 0.05), lc=st.floats(0.05, 20.0),
       n=st.integers(2, 24))
def test_spatial_covariance_always_psd(sigma, lc, n):
    """Any floorplan/field pair yields a valid covariance matrix."""
    field = SpatialField(sigma=sigma, correlation_length_mm=lc)
    plan = LaneFloorplan(n_lanes=n, lanes_per_row=max(n // 2, 1))
    cov = field.covariance_matrix(plan.lane_positions_mm())
    eigs = np.linalg.eigvalsh(cov)
    assert eigs.min() > -1e-10 * sigma ** 2
    # Diagonal equals the point variance.
    np.testing.assert_allclose(np.diag(cov), sigma ** 2, rtol=1e-10)


@settings(max_examples=20, deadline=None)
@given(q=st.floats(0.05, 0.99), n=st.integers(100, 3000))
def test_quantile_ci_brackets_for_any_q(q, n):
    rng = np.random.default_rng(abs(hash((round(q, 6), n))) % 2 ** 32)
    samples = rng.exponential(1.0, n)
    lo, hi = quantile_ci(samples, q)
    assert lo <= np.quantile(samples, q) <= hi


@settings(max_examples=15, deadline=None)
@given(width=st.integers(4, 64), spares=st.integers(0, 8),
       faults=st.integers(0, 8))
def test_binning_value_bounds(analyzer90, width, spares, faults):
    """Expected chip value always lies in [0, 1]."""
    from repro.sparing.binning import bin_chips
    result = bin_chips(analyzer90, 0.6, spares=spares, n_chips=300,
                       seed=width)
    assert 0.0 <= result.expected_value <= 1.0
    assert 0.0 <= result.full_speed_yield <= 1.0
