"""Fused Monte-Carlo kernels: parity, dtype policy, shm transport."""

import os

import numpy as np
import pytest

from repro.core.kernels import MonteCarloKernel
from repro.core.montecarlo import MonteCarloEngine
from repro.devices.technology import available_technologies, get_technology
from repro.errors import ConfigurationError
from repro.obs.api import activate_obs, build_obs
from repro.obs.metrics import NOOP_METRICS
from repro.resilience import FaultLedger, activate_ledger, install_faults, \
    parse_faults
from repro.runtime import ParallelSampler

SMALL_ARCH = dict(width=4, paths_per_lane=3, chain_length=5)
SYS_KW = dict(width=6, paths_per_lane=4, chain_length=7, spares=1)


# -- float64 fused vs reference parity ----------------------------------------


@pytest.mark.parametrize("node", available_technologies())
def test_fused_system_delays_bit_identical_to_reference(node):
    tech = get_technology(node)
    fused = MonteCarloEngine(tech, seed=3).system_delays(
        0.6, n_chips=40, batch_size=9, **SYS_KW)
    reference = MonteCarloEngine(tech, seed=3, fused=False).system_delays(
        0.6, n_chips=40, batch_size=40, **SYS_KW)
    np.testing.assert_array_equal(fused, reference)


@pytest.mark.parametrize("node", available_technologies())
def test_fused_lane_and_chain_bit_identical_to_reference(node):
    tech = get_technology(node)
    fused = MonteCarloEngine(tech, seed=5)
    reference = MonteCarloEngine(tech, seed=5, fused=False)
    np.testing.assert_array_equal(
        fused.lane_delays(0.55, paths_per_lane=4, chain_length=6,
                          n_samples=50, batch_size=13),
        reference.lane_delays(0.55, paths_per_lane=4, chain_length=6,
                              n_samples=50, batch_size=50))
    np.testing.assert_array_equal(fused.chain_delays(0.5, 20, 40),
                                  reference.chain_delays(0.5, 20, 40))


def test_chain_delays_keep_legacy_stream(tech90):
    """The kernel rewrite must not move chain results for a given seed."""
    rng = np.random.default_rng(7)
    var = tech90.variation
    gates = var.sample_gates(rng, (40, 20))
    die = var.sample_dies(rng, 40)
    lane = var.sample_lanes(rng, 40)
    dvth = gates.dvth + (die.dvth + lane.dvth)[:, None]
    legacy = (tech90.fo4_delay(0.5, dvth, gates.mult).sum(axis=1)
              * ((1.0 + die.mult) * (1.0 + lane.mult)))
    new = MonteCarloEngine(tech90, rng=np.random.default_rng(7)).chain_delays(
        0.5, 20, 40)
    np.testing.assert_array_equal(new, legacy)


def test_internal_blocking_is_invisible(tech90):
    tiny_blocks = MonteCarloEngine(
        tech90, seed=3,
        kernel=MonteCarloKernel(tech90, block_elems=64))
    whole_batch = MonteCarloEngine(tech90, seed=3)
    kw = dict(n_chips=33, batch_size=33, **SYS_KW)
    np.testing.assert_array_equal(tiny_blocks.system_delays(0.6, **kw),
                                  whole_batch.system_delays(0.6, **kw))


# -- batch-size invariance (per-chip streams) ---------------------------------


def test_system_delays_batch_size_invariant_bit_for_bit(tech90):
    a = MonteCarloEngine(tech90, seed=11).system_delays(
        0.6, n_chips=300, batch_size=7, **SMALL_ARCH)
    b = MonteCarloEngine(tech90, seed=11).system_delays(
        0.6, n_chips=300, batch_size=512, **SMALL_ARCH)
    np.testing.assert_array_equal(a, b)


def test_lane_delays_batch_size_invariant_bit_for_bit(tech90):
    a = MonteCarloEngine(tech90, seed=11).lane_delays(
        0.6, paths_per_lane=3, chain_length=5, n_samples=300, batch_size=7)
    b = MonteCarloEngine(tech90, seed=11).lane_delays(
        0.6, paths_per_lane=3, chain_length=5, n_samples=300, batch_size=512)
    np.testing.assert_array_equal(a, b)


# -- dtype policy -------------------------------------------------------------


def test_float32_chip_quantile_close_to_float64(tech90):
    kw = dict(n_chips=400, batch_size=64, **SYS_KW)
    f64 = MonteCarloEngine(tech90, seed=2).system_delays(0.6, **kw)
    f32 = MonteCarloEngine(tech90, seed=2,
                           precision="float32").system_delays(0.6, **kw)
    assert f32.dtype == np.float32
    assert f64.dtype == np.float64
    # Same variates in both precisions (float64 draws, cast-scaled), so
    # the 99 % chip quantile differs only by float32 rounding.
    q64 = np.quantile(f64, 0.99)
    q32 = np.quantile(f32.astype(np.float64), 0.99)
    assert abs(q32 / q64 - 1.0) < 1e-3


def test_precision_policy_validated(tech90):
    with pytest.raises(ConfigurationError):
        MonteCarloEngine(tech90, precision="float16")
    with pytest.raises(ConfigurationError):
        MonteCarloKernel(tech90, block_elems=0)


def test_kernel_card_binding_checked(tech90, tech22):
    with pytest.raises(ConfigurationError):
        MonteCarloEngine(tech22, kernel=MonteCarloKernel(tech90))


def test_fill_gates_matches_sample_gates(tech90):
    var = tech90.variation
    shape = (17, 9)
    sampled = var.sample_gates(np.random.default_rng(13), shape)
    dvth = np.empty(shape)
    mult = np.empty(shape)
    var.fill_gates(np.random.default_rng(13), dvth, mult)
    np.testing.assert_array_equal(dvth, sampled.dvth)
    np.testing.assert_array_equal(mult, sampled.mult)
    # float32 fill draws the same float64 variates and rounds them.
    dvth32 = np.empty(shape, dtype=np.float32)
    mult32 = np.empty(shape, dtype=np.float32)
    var.fill_gates(np.random.default_rng(13), dvth32, mult32,
                   staging=np.empty(shape))
    np.testing.assert_array_equal(dvth32, sampled.dvth.astype(np.float32))


def test_workspaces_are_reused(tech90):
    kernel = MonteCarloKernel(tech90)
    engine = MonteCarloEngine(tech90, seed=0, kernel=kernel)
    engine.system_delays(0.6, n_chips=8, batch_size=8, **SMALL_ARCH)
    after_first = kernel.workspace_nbytes
    assert after_first > 0
    engine.system_delays(0.6, n_chips=8, batch_size=8, **SMALL_ARCH)
    assert kernel.workspace_nbytes == after_first
    kernel.release_workspaces()
    assert kernel.workspace_nbytes == 0


def test_fo4_delay_scalar_mult_fast_path(tech90):
    vdds = np.linspace(0.5, 1.0, 7)
    np.testing.assert_array_equal(tech90.fo4_delay(vdds),
                                  tech90.fo4_delay(vdds, 0.0, np.zeros(7)))
    assert tech90.fo4_unit(0.6) == float(tech90.fo4_delay(0.6))


def test_engine_validates_sample_counts(tech90):
    engine = MonteCarloEngine(tech90)
    with pytest.raises(ConfigurationError):
        engine.system_delays(0.6, n_chips=0, batch_size=8, **SMALL_ARCH)
    with pytest.raises(ConfigurationError):
        engine.system_delays(0.6, n_chips=4, width=0, paths_per_lane=3,
                             chain_length=5)
    with pytest.raises(ConfigurationError):
        engine.lane_delays(0.6, paths_per_lane=3, chain_length=5,
                           n_samples=0)
    with pytest.raises(ConfigurationError):
        engine.lane_delays(0.6, paths_per_lane=0, chain_length=5,
                           n_samples=10)


def test_kernel_metrics_emitted(tech90):
    obs = build_obs(metrics=True)
    with activate_obs(obs):
        MonteCarloEngine(tech90, seed=0).system_delays(
            0.6, n_chips=8, batch_size=4, **SMALL_ARCH)
    assert obs.metrics.counter("kernels.blocks").value >= 2
    assert obs.metrics.counter("kernels.gate_evals").value == 8 * 4 * 3 * 5
    assert obs.metrics.gauge("kernels.workspace_bytes").value > 0


# -- shared-memory shard transport --------------------------------------------


def _shm_entries():
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:          # non-Linux: nothing to leak-check
        return set()


def test_shm_transport_bit_identical_to_serial(tech90):
    kw = dict(n_chips=200, spares=0, root_seed=11, batch_size=32,
              **SMALL_ARCH)
    with ParallelSampler(1, shard_size=16) as serial:
        baseline = serial.system_delays(tech90, 0.6, **kw)
    before = _shm_entries()
    obs = build_obs(metrics=True)
    with activate_obs(obs), \
            ParallelSampler(2, shard_size=16, shm_min_bytes=0) as pooled:
        out = pooled.system_delays(tech90, 0.6, **kw)
    np.testing.assert_array_equal(out, baseline)
    assert obs.metrics.counter("sampler.shm_bytes").value == 200 * 8
    assert _shm_entries() - before == set()


def test_shm_transport_float32_results(tech90):
    kw = dict(n_chips=120, spares=0, root_seed=7, **SMALL_ARCH)
    with ParallelSampler(2, shard_size=16, shm_min_bytes=0) as pooled:
        out = pooled.system_delays(tech90, 0.6, precision="float32", **kw)
    with ParallelSampler(1, shard_size=16) as serial:
        baseline = serial.system_delays(tech90, 0.6, precision="float32",
                                        **kw)
    assert out.dtype == np.float32
    np.testing.assert_array_equal(out, baseline)


def test_shm_cleanup_after_worker_crash(tech90):
    """Injected crashes (respawn path) must not leak /dev/shm segments."""
    before = _shm_entries()
    ledger = FaultLedger()
    obs = build_obs(metrics=True)
    with activate_obs(obs), activate_ledger(ledger), \
            install_faults(parse_faults("worker_crash:1")):
        with ParallelSampler(2, shard_size=16, shm_min_bytes=0) as sampler:
            out = sampler.sample_chips(tech90, 0.5, n_samples=64, spares=0,
                                       root_seed=11, **SMALL_ARCH)
    assert ledger.counts()["pool_respawn"] == 1
    assert _shm_entries() - before == set()
    with ParallelSampler(1, shard_size=16) as serial:
        baseline = serial.sample_chips(tech90, 0.5, n_samples=64, spares=0,
                                       root_seed=11, **SMALL_ARCH)
    np.testing.assert_array_equal(out, baseline)


def test_shm_threshold_disables_transport(tech90):
    obs = build_obs(metrics=True)
    with activate_obs(obs), \
            ParallelSampler(2, shard_size=16,
                            shm_min_bytes=1 << 40) as pooled:
        out = pooled.system_delays(tech90, 0.6, n_chips=64, root_seed=3,
                                   **SMALL_ARCH)
    assert obs.metrics.counter("sampler.shm_bytes").value == 0
    assert out.shape == (64,)


def test_shm_zero_byte_payload_falls_back_to_pickle():
    """shm_min_bytes=0 with an empty shard must not create a 0-byte segment.

    ``SharedMemory(create=True, size=0)`` raises ValueError; the guard
    routes empty dispatches through the pickle transport instead.
    """
    with ParallelSampler(2, shm_min_bytes=0) as sampler:
        tasks = [{"n": 0}]
        segment = sampler._open_shm(tasks, np.float64, NOOP_METRICS)
        assert segment is None
        assert "shm" not in tasks[0]
