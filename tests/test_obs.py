"""Observability: span tracing, metrics, manifests, worker propagation."""

import json
import os
import threading

import numpy as np
import pytest

from repro.devices.technology import get_technology
from repro.errors import ConfigurationError
from repro.experiments.__main__ import _run_remote, main
from repro.experiments.registry import get_analyzer
from repro.obs.api import (
    NOOP_OBS,
    Observability,
    activate_obs,
    build_obs,
    counter,
    current_obs,
    span,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    TRACE_SCHEMA,
    build_manifest,
    cache_file_state,
    strip_timing,
    validate_schema,
)
from repro.obs.flight import (
    FLIGHT_SCHEMA,
    NOOP_FLIGHT,
    FlightRecorder,
)
from repro.obs.metrics import (
    NOOP_METRICS,
    MetricsRegistry,
    WindowedCounter,
    WindowedHistogram,
)
from repro.obs.openmetrics import (
    check_openmetrics,
    parse_openmetrics,
    render_openmetrics,
)
from repro.obs.trace import NOOP_TRACER, Tracer
from repro.runtime import Profiler, build_runtime
from repro.runtime.parallel import ParallelSampler

SMALL_ARCH = dict(width=4, paths_per_lane=3, chain_length=5)


# -- metrics registry ----------------------------------------------------------


def test_counter_gauge_histogram_basics():
    m = MetricsRegistry()
    m.counter("c").inc()
    m.counter("c").inc(4)
    m.gauge("g").set(0.5)
    h = m.histogram("h", buckets=(1, 10, 100))
    for v in (0.5, 1, 5, 50, 5000):
        h.observe(v)
    snap = m.as_dict()
    assert snap["counters"] == {"c": 5}
    assert snap["gauges"] == {"g": 0.5}
    rec = snap["histograms"]["h"]
    # bounds are inclusive upper edges plus one overflow bin
    assert rec["buckets"] == [1.0, 10.0, 100.0]
    assert rec["counts"] == [2, 1, 1, 1]
    assert rec["count"] == 5
    assert h.mean == pytest.approx(5056.5 / 5)
    assert len(m) == 3


def test_registry_memoises_instruments_by_name():
    m = MetricsRegistry()
    assert m.counter("x") is m.counter("x")
    assert m.gauge("x") is m.gauge("x")
    assert m.histogram("x") is m.histogram("x")


def test_metrics_merge_accumulates_and_handles_collisions():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("hits").inc(3)
    b.counter("hits").inc(4)          # name collision: counters add
    b.counter("only_b").inc(1)
    a.gauge("util").set(0.2)
    b.gauge("util").set(0.9)          # gauges: last write wins
    a.histogram("n", buckets=(1, 2)).observe(1)
    b.histogram("n", buckets=(1, 2)).observe(2)
    a.merge(b.as_dict())
    snap = a.as_dict()
    assert snap["counters"] == {"hits": 7, "only_b": 1}
    assert snap["gauges"]["util"] == 0.9
    assert snap["histograms"]["n"]["counts"] == [1, 1, 0]
    assert snap["histograms"]["n"]["count"] == 2


def test_metrics_merge_empty_snapshot_is_noop():
    m = MetricsRegistry()
    m.counter("c").inc()
    before = m.as_dict()
    m.merge({})
    m.merge(MetricsRegistry().as_dict())
    assert m.as_dict() == before


def test_metrics_merge_skips_mismatched_histogram_buckets():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.histogram("h", buckets=(1, 2)).observe(1)
    b.histogram("h", buckets=(5, 6)).observe(5)
    a.merge(b.as_dict())
    assert a.as_dict()["histograms"]["h"]["count"] == 1


def test_metrics_render_lists_instruments():
    m = MetricsRegistry()
    m.counter("cache.hits").inc(7)
    m.gauge("util").set(0.25)
    m.histogram("sizes").observe(3)
    text = m.render()
    assert "cache.hits" in text and "7" in text
    assert "util" in text and "0.25" in text
    assert "sizes" in text and "n=1" in text


def test_noop_metrics_shares_inert_instruments():
    assert not NOOP_METRICS.enabled
    inst = NOOP_METRICS.counter("anything")
    assert inst is NOOP_METRICS.gauge("else")
    inst.inc(5)
    inst.set(1.0)
    inst.observe(2.0)
    assert NOOP_METRICS.as_dict() == {"counters": {}, "gauges": {},
                                      "histograms": {}}


# -- tracer --------------------------------------------------------------------


def test_spans_nest_and_record_parent_ids():
    t = Tracer(trace_id="t1")
    with t.span("outer", node="45nm"):
        with t.span("inner", vdd=0.6):
            pass
    inner, outer = t.events()        # events close inner-first
    assert inner["name"] == "inner" and outer["name"] == "outer"
    assert inner["args"]["parent_id"] == outer["args"]["span_id"]
    assert "parent_id" not in outer["args"]
    assert inner["args"]["vdd"] == 0.6
    assert outer["args"]["node"] == "45nm"
    for ev in (inner, outer):
        assert ev["ph"] == "X"
        assert ev["args"]["trace_id"] == "t1"
        assert ev["dur"] >= 0 and ev["ts"] > 0
        assert ev["pid"] == os.getpid()


def test_tracer_base_parent_adopts_remote_span():
    t = Tracer(trace_id="t1", parent="dead.1")
    with t.span("child"):
        pass
    assert t.events()[0]["args"]["parent_id"] == "dead.1"


def test_chrome_trace_structure_and_absorb():
    t = Tracer(trace_id="t1")
    with t.span("local"):
        pass
    t.absorb([{"name": "remote", "ph": "X", "ts": 1.0, "dur": 2.0,
               "pid": 99999, "tid": 1, "cat": "repro", "args": {}}])
    doc = t.chrome_trace()
    assert validate_schema(doc, TRACE_SCHEMA) == []
    names = [e["name"] for e in doc["traceEvents"]]
    assert "local" in names and "remote" in names
    # one process_name metadata record per pid seen
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert {e["pid"] for e in meta} == {os.getpid(), 99999}
    assert doc["otherData"]["trace_id"] == "t1"
    json.dumps(doc)                  # must be serialisable as-is


def test_noop_tracer_records_nothing():
    assert not NOOP_TRACER.enabled
    with NOOP_TRACER.span("x", big=1):
        pass
    assert len(NOOP_TRACER) == 0
    # the disabled span context manager is a shared singleton
    assert NOOP_TRACER.span("a") is NOOP_TRACER.span("b")


# -- ambient api ---------------------------------------------------------------


def test_build_obs_disabled_returns_shared_noop():
    assert build_obs() is NOOP_OBS
    obs = build_obs(trace=True, metrics=True)
    assert obs.tracer.enabled and obs.metrics.enabled


def test_activation_scopes_the_accessors():
    obs = build_obs(metrics=True, trace=True)
    assert current_obs() is NOOP_OBS
    with activate_obs(obs):
        assert current_obs() is obs
        counter("k").inc(2)
        with span("s", tag=1):
            pass
    assert current_obs() is NOOP_OBS
    counter("k").inc(100)            # routed to the no-op registry
    assert obs.metrics.as_dict()["counters"]["k"] == 2
    assert [e["name"] for e in obs.tracer.events()] == ["s"]


def test_worker_context_round_trip():
    obs = build_obs(trace=True, metrics=True)
    with obs.tracer.span("dispatch"):
        ctx = obs.worker_context("stage")
    assert ctx["trace"] and ctx["metrics"] and ctx["stage"] == "stage"
    worker = Observability.for_worker(ctx)
    assert worker.tracer.trace_id == obs.tracer.trace_id
    with worker.tracer.span("remote"):
        pass
    worker.metrics.counter("c").inc(3)
    obs.merge_export(worker.export())
    names = [e["name"] for e in obs.tracer.events()]
    assert names == ["dispatch", "remote"]
    remote = obs.tracer.events()[1]
    assert remote["args"]["parent_id"] == ctx["parent"]
    assert obs.metrics.as_dict()["counters"]["c"] == 3


def test_worker_context_none_when_disabled():
    assert NOOP_OBS.worker_context("stage") is None
    assert Observability.for_worker(None) is NOOP_OBS
    NOOP_OBS.merge_export(None)      # must be a silent no-op
    NOOP_OBS.merge_export({"spans": [], "metrics": {}})


# -- profiler merge (cross-process hand-back) ---------------------------------


def test_profiler_merge_round_trips_worker_snapshots():
    parent = Profiler()
    parent.record("experiment.fig4", 1.0, 10)
    w1, w2 = Profiler(), Profiler()
    w1.record("experiment.fig4", 0.5, 5)    # stage-name collision
    w1.record("sampler.sample_chips", 2.0, 1000)
    w2.record("sampler.sample_chips", 3.0, 2000)
    parent.merge(w1.as_dict())
    parent.merge(w2.as_dict())
    parent.merge(Profiler().as_dict())      # empty snapshot: no-op
    parent.merge({})
    snap = parent.as_dict()
    assert snap["experiment.fig4"] == {"calls": 2, "wall_s": 1.5,
                                       "samples": 15}
    assert snap["sampler.sample_chips"] == {"calls": 2, "wall_s": 5.0,
                                            "samples": 3000}
    # the snapshot itself survives a JSON round trip (the pool pickles it,
    # but JSON-compatibility keeps it manifest-ready)
    rt = Profiler()
    rt.merge(json.loads(json.dumps(snap)))
    assert rt.as_dict() == snap


# -- manifests ----------------------------------------------------------------


def _tiny_manifest():
    profiler = Profiler()
    profiler.record("experiment.fig4", 0.25, 44)
    metrics = MetricsRegistry()
    metrics.counter("quantile_cache.hits").inc(40)
    metrics.counter("quantile_cache.misses").inc(4)
    metrics.gauge("sampler.worker_utilization").set(0.8)
    state = {"path": "/tmp/q.json", "entries": 4, "bytes": 100}
    return build_manifest(
        targets=["fig4"], fast=True, jobs=2, root_seed=0,
        profiler=profiler, metrics=metrics, cache_before=state,
        cache_after=dict(state, entries=8), elapsed_wall_s=1.5,
        trace_file="t.json")


def test_manifest_contents_and_schema():
    m = _tiny_manifest()
    assert validate_schema(m, MANIFEST_SCHEMA) == []
    assert m["run"]["root_seed"] == 0
    assert set(m["cards"]) == {"90nm", "45nm", "32nm", "22nm"}
    assert all(len(fp) == 16 for fp in m["cards"].values())
    assert m["cache"]["hits"] == 40 and m["cache"]["misses"] == 4
    assert m["stages"]["experiment.fig4"]["samples"] == 44
    json.dumps(m)


def test_strip_timing_removes_only_wall_clock_fields():
    m = _tiny_manifest()
    bare = strip_timing(m)
    assert "timing" not in bare
    assert "wall_s" not in bare["stages"]["experiment.fig4"]
    assert bare["stages"]["experiment.fig4"]["calls"] == 1
    assert "worker_utilization" not in bare["metrics"]["gauges"]
    assert "timing" in m            # original untouched


def test_validate_schema_reports_errors():
    errs = validate_schema({"traceEvents": "nope"}, TRACE_SCHEMA)
    assert any("expected array" in e for e in errs)
    errs = validate_schema({}, TRACE_SCHEMA)
    assert any("missing required key" in e for e in errs)
    errs = validate_schema(
        {"traceEvents": [{"name": "x", "ph": "X", "pid": True, "tid": 0}]},
        TRACE_SCHEMA)
    assert any("boolean" in e for e in errs)


def test_cache_file_state_missing_file_reads_empty(tmp_path):
    state = cache_file_state(str(tmp_path / "absent.json"))
    assert state["entries"] == 0 and state["bytes"] == 0


# -- sampler propagation ------------------------------------------------------


def test_pool_workers_hand_spans_and_metrics_back():
    tech = get_technology("45nm")
    obs = build_obs(trace=True, metrics=True)
    with activate_obs(obs), ParallelSampler(2, shard_size=8) as sampler:
        out = sampler.system_delays(tech, 0.6, n_chips=16, root_seed=7,
                                    **SMALL_ARCH)
    assert out.shape == (16,)
    shard_spans = [e for e in obs.tracer.events()
                   if e["name"] == "sampler.system_delays.shard"]
    assert len(shard_spans) == 2
    # spans were recorded inside pool workers: different pids, same trace
    assert all(e["pid"] != os.getpid() for e in shard_spans)
    assert all(e["args"]["trace_id"] == obs.tracer.trace_id
               for e in shard_spans)
    assert {e["args"]["shard"] for e in shard_spans} == {0, 1}
    counters = obs.metrics.as_dict()["counters"]
    assert counters["sampler.shards"] == 2
    assert counters["sampler.samples"] == 16
    assert counters["montecarlo.chips"] == 16   # counted inside workers
    util = obs.metrics.as_dict()["gauges"]["sampler.worker_utilization"]
    assert 0.0 < util <= 1.0


def test_in_process_shards_span_on_parent_tracer():
    tech = get_technology("45nm")
    obs = build_obs(trace=True, metrics=True)
    with activate_obs(obs), ParallelSampler(1, shard_size=8) as sampler:
        sampler.system_delays(tech, 0.6, n_chips=16, root_seed=7,
                              **SMALL_ARCH)
    shard_spans = [e for e in obs.tracer.events()
                   if e["name"] == "sampler.system_delays.shard"]
    assert len(shard_spans) == 2
    assert all(e["pid"] == os.getpid() for e in shard_spans)


def test_sampling_identical_with_obs_on_and_off():
    tech = get_technology("45nm")
    with ParallelSampler(1, shard_size=8) as sampler:
        base = sampler.system_delays(tech, 0.6, n_chips=16, root_seed=7,
                                     **SMALL_ARCH)
        with activate_obs(build_obs(trace=True, metrics=True)):
            traced = sampler.system_delays(tech, 0.6, n_chips=16,
                                           root_seed=7, **SMALL_ARCH)
    np.testing.assert_array_equal(base, traced)


def test_solve_quantiles_matches_serial_and_is_jobs_invariant():
    from repro.core.chip_delay import ChipDelayEngine
    tech = get_technology("45nm")
    vdds = np.array([0.55, 0.6, 0.65, 0.7, 0.75])
    qs = np.full(5, 0.99)
    spares = np.zeros(5)
    engine = ChipDelayEngine(tech, **SMALL_ARCH)
    serial = engine.chip_quantile_batch(vdds, qs, spares)
    with ParallelSampler(1) as s1:
        one = s1.solve_quantiles(tech, vdds, qs, spares, chunk_size=2,
                                 **SMALL_ARCH)
    with ParallelSampler(2) as s2:
        two = s2.solve_quantiles(tech, vdds, qs, spares, chunk_size=2,
                                 **SMALL_ARCH)
    # chunk partition depends only on (order, chunk_size): jobs-invariant
    np.testing.assert_array_equal(one, two)
    # chunked solves agree with the unchunked batch to solver tolerance
    np.testing.assert_allclose(one, serial, rtol=1e-6)


def test_solve_quantiles_validates_inputs():
    tech = get_technology("45nm")
    with ParallelSampler(1) as sampler:
        with pytest.raises(ConfigurationError):
            sampler.solve_quantiles(tech, [0.6, 0.7], [0.99], [0.0])
        with pytest.raises(ConfigurationError):
            sampler.solve_quantiles(tech, [0.6], [0.99], [0.0],
                                    chunk_size=0)


# -- CLI / end-to-end ----------------------------------------------------------


def _run_fig4(tmp_path, tag, extra=()):
    trace = tmp_path / f"trace-{tag}.json"
    manifest = tmp_path / f"manifest-{tag}.json"
    get_analyzer.cache_clear()       # drop in-memory quantile memos
    rc = main(["fig4", "--fast", "--trace", str(trace),
               "--metrics", str(manifest), *extra])
    assert rc == 0
    return (json.loads(trace.read_text()),
            json.loads(manifest.read_text()))


def test_cli_trace_and_manifest_end_to_end(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    trace, manifest = _run_fig4(tmp_path, "serial", ["--profile"])
    out = capsys.readouterr().out
    assert "runtime profile" in out and "metrics" in out
    assert "quantile_cache.misses" in out       # counters in the report
    assert validate_schema(trace, TRACE_SCHEMA) == []
    assert validate_schema(manifest, MANIFEST_SCHEMA) == []
    names = {e["name"] for e in trace["traceEvents"]}
    assert {"cli.run", "experiment.fig4"} <= names
    assert manifest["run"] == {"targets": ["fig4"], "fast": True,
                               "jobs": 1, "root_seed": 0, "faults": None}
    assert manifest["cache"]["misses"] > 0
    assert manifest["cache"]["after"]["entries"] > 0
    assert manifest["metrics"]["counters"]["kernel_cache.misses"] > 0


def test_cli_jobs2_trace_includes_worker_spans(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    trace, manifest = _run_fig4(tmp_path, "par", ["--jobs", "2"])
    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    pids = {e["pid"] for e in spans}
    assert os.getpid() in pids and len(pids) >= 2
    worker = [e for e in spans
              if e["name"] == "sampler.solve_quantiles.shard"]
    assert worker and all(e["pid"] != os.getpid() for e in worker)
    assert manifest["metrics"]["counters"]["sampler.shards"] > 0


def test_cli_manifests_deterministic_across_reruns(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    _run_fig4(tmp_path, "prime")     # populate the on-disk cache
    _, m1 = _run_fig4(tmp_path, "a")
    _, m2 = _run_fig4(tmp_path, "b")
    # the trace path is a CLI argument, varied here to keep artifacts apart
    m1.pop("trace_file"), m2.pop("trace_file")
    assert strip_timing(m1) == strip_timing(m2)
    # warm re-runs hit the persistent cache for every sign-off quantile
    assert m1["cache"]["misses"] == 0 and m1["cache"]["hits"] > 0


def test_cli_without_obs_flags_writes_nothing(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    get_analyzer.cache_clear()
    assert main(["fig4", "--fast"]) == 0
    capsys.readouterr()
    assert list(tmp_path.glob("*.json")) == []


def test_run_remote_skips_collection_when_parent_did_not_ask():
    get_analyzer.cache_clear()
    eid, rendered, elapsed, profile, obs_snap = _run_remote(
        ("fig4", True, {"profile": False, "trace": False,
                        "metrics": False}))
    assert eid == "fig4" and "fig4" in rendered
    assert profile == {} and obs_snap == {}


def test_run_remote_collects_when_parent_profiles():
    get_analyzer.cache_clear()
    eid, rendered, elapsed, profile, obs_snap = _run_remote(
        ("fig4", True, {"profile": True, "trace": False,
                        "metrics": False}))
    assert "experiment.fig4" in profile
    assert profile["experiment.fig4"]["calls"] == 1
    # --profile implies the metrics registry
    assert obs_snap["metrics"]["counters"]
    assert obs_snap["spans"] == []


def test_build_runtime_wires_obs_modes():
    rt = build_runtime()
    assert rt.obs is NOOP_OBS
    rt = build_runtime(profile=True)
    assert rt.obs.metrics.enabled and not rt.obs.tracer.enabled
    rt = build_runtime(trace=True)
    assert rt.obs.tracer.enabled and rt.obs.metrics.enabled
    rt.close()


def test_histogram_percentile_interpolates_within_buckets():
    h = MetricsRegistry().histogram("lat", buckets=(10, 20, 40))
    for v in (5, 5, 15, 15, 15, 15, 25, 25, 25, 35):
        h.observe(v)
    # rank 5 of 10 lands at the end of the 4-observation (10, 20] bucket
    assert h.percentile(0.5) == pytest.approx(17.5)
    assert h.percentile(0.0) == 0.0
    assert h.percentile(1.0) == pytest.approx(40.0)
    with pytest.raises(ValueError):
        h.percentile(1.5)


def test_histogram_percentile_edge_cases():
    h = MetricsRegistry().histogram("empty", buckets=(1, 2))
    assert h.percentile(0.5) == 0.0          # no observations
    h.observe(100)                           # overflow bin only
    # The overflow bin interpolates toward the observed max instead of
    # clamping to the last finite bound (the old tail under-report).
    assert h.percentile(1.0) == pytest.approx(100.0)
    assert 2.0 < h.percentile(0.5) < 100.0
    assert h.overflow == 1
    snap = MetricsRegistry()
    snap.merge({"histograms": {
        "empty": {"buckets": [1.0, 2.0], "counts": [0, 0, 1],
                  "sum": 100.0, "count": 1, "max": 100.0}}})
    assert snap.histogram("empty", (1, 2)).percentile(1.0) == \
        pytest.approx(100.0)


# -- thread safety -------------------------------------------------------------


def test_instruments_thread_safe_under_hammer():
    """Concurrent inc/observe from many threads never lose updates."""
    m = MetricsRegistry()
    n_threads, n_iters = 8, 2000
    barrier = threading.Barrier(n_threads)

    def hammer(tid):
        barrier.wait()
        for i in range(n_iters):
            m.counter("hammer.c").inc()
            m.gauge("hammer.g").set(tid)
            m.histogram("hammer.h", buckets=(10, 100)).observe(i % 200)

    threads = [threading.Thread(target=hammer, args=(t,))
               for t in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    snap = m.as_dict()
    total = n_threads * n_iters
    assert snap["counters"]["hammer.c"] == total
    h = snap["histograms"]["hammer.h"]
    assert h["count"] == total
    assert sum(h["counts"]) == total
    assert snap["gauges"]["hammer.g"] in range(n_threads)


def test_windowed_hammer_is_thread_safe():
    win = WindowedHistogram("w", buckets=(10, 100), window_s=3600.0)
    wc = WindowedCounter("wc", window_s=3600.0)
    n_threads, n_iters = 8, 1000

    def hammer():
        for i in range(n_iters):
            win.observe(i % 200)
            wc.inc()

    threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert win.count == n_threads * n_iters
    assert wc.total() == n_threads * n_iters


# -- rolling windows -----------------------------------------------------------


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


def test_windowed_histogram_forgets_old_traffic():
    clock = FakeClock()
    win = WindowedHistogram("lat", buckets=(10, 100), window_s=60.0,
                            sub_windows=6, clock=clock)
    # a burst of slow traffic now...
    for _ in range(100):
        win.observe(90.0)
    assert win.percentile(0.99) == pytest.approx(90.0, rel=0.2)
    assert win.count == 100
    # ...then fast traffic after the slow burst ages out of the window:
    # the rolling p99 collapses where a cumulative histogram would not.
    cumulative = MetricsRegistry().histogram("lat", buckets=(10, 100))
    for _ in range(100):
        cumulative.observe(90.0)
    clock.t = 120.0
    for _ in range(100):
        win.observe(5.0)
        cumulative.observe(5.0)
    assert win.count == 100                       # old burst expired
    assert win.percentile(0.99) <= 10.0
    assert cumulative.percentile(0.99) > 50.0     # cumulative still polluted
    snap = win.snapshot()
    assert snap["count"] == 100 and snap["window_s"] == 60.0
    assert win.rate() == pytest.approx(100 / 60.0)
    assert win.fraction_over(10.0) == 0.0


def test_windowed_histogram_partial_expiry_and_fraction_over():
    clock = FakeClock()
    win = WindowedHistogram("lat", buckets=(10, 100), window_s=60.0,
                            sub_windows=6, clock=clock)
    win.observe(5.0)
    clock.t = 30.0                                # 3 sub-windows later
    win.observe(500.0)
    assert win.count == 2
    assert win.fraction_over(100.0) == pytest.approx(0.5)
    clock.t = 65.0                                # first slot expired
    assert win.count == 1
    assert win.fraction_over(100.0) == pytest.approx(1.0)
    # overflow tail interpolates to the windowed max, not the last bound
    assert win.percentile(1.0) == pytest.approx(500.0)


def test_windowed_counter_rolls_and_rates():
    clock = FakeClock()
    wc = WindowedCounter("req", window_s=60.0, sub_windows=6, clock=clock)
    wc.inc(30)
    assert wc.total() == 30
    assert wc.rate() == pytest.approx(0.5)
    clock.t = 30.0
    wc.inc(12)
    assert wc.total() == 42
    clock.t = 70.0                                # first tally expired
    assert wc.total() == 12
    clock.t = 200.0                               # everything expired
    assert wc.total() == 0 and wc.rate() == 0.0


def test_windowed_validates_construction():
    with pytest.raises(ValueError):
        WindowedHistogram("w", window_s=0.0)
    with pytest.raises(ValueError):
        WindowedHistogram("w", sub_windows=0)
    with pytest.raises(ValueError):
        WindowedCounter("w", window_s=-1.0)


# -- OpenMetrics exposition ----------------------------------------------------


def test_openmetrics_render_parse_round_trip():
    m = MetricsRegistry()
    m.counter("serve.requests").inc(7)
    m.gauge("serve.qps").set(2.5)
    h = m.histogram("serve.latency_ms", buckets=(1, 10, 100))
    for v in (0.5, 5, 50, 5000):                 # one overflow observation
        h.observe(v)
    text = render_openmetrics(m.as_dict())
    assert check_openmetrics(text) == []
    fams = parse_openmetrics(text)
    assert fams["serve_requests"]["type"] == "counter"
    assert fams["serve_requests"]["samples"] == [
        ("serve_requests_total", {}, 7.0)]
    assert fams["serve_qps"]["samples"] == [("serve_qps", {}, 2.5)]
    lat = fams["serve_latency_ms"]
    assert lat["type"] == "histogram"
    buckets = {labels["le"]: v for name, labels, v in lat["samples"]
               if name.endswith("_bucket")}
    # cumulative buckets with the overflow observation in +Inf only
    assert buckets == {"1": 1.0, "10": 2.0, "100": 3.0, "+Inf": 4.0}
    count = [v for name, _, v in lat["samples"] if name.endswith("_count")]
    assert count == [4.0]


def test_openmetrics_parser_rejects_malformed():
    with pytest.raises(ValueError):
        parse_openmetrics("serve_qps 1.0\n")          # no family, no EOF
    with pytest.raises(ValueError):
        parse_openmetrics("# TYPE x gauge\nx 1\n")    # missing EOF
    with pytest.raises(ValueError):
        parse_openmetrics("# TYPE x gauge\nx 1\n# EOF\nx 2\n")
    assert check_openmetrics("garbage !!\n# EOF\n")   # problems reported
    # a non-cumulative bucket series is flagged
    bad = ("# TYPE h histogram\n"
           'h_bucket{le="1"} 5\nh_bucket{le="+Inf"} 3\n'
           "h_sum 1\nh_count 3\n# EOF\n")
    assert any("cumulative" in p for p in check_openmetrics(bad))


# -- flight recorder -----------------------------------------------------------


def test_flight_recorder_ring_drops_and_schema():
    clock = FakeClock(5.0)
    fr = FlightRecorder(capacity=4, clock=clock)
    for i in range(10):
        fr.record("admit", path=f"/v1/x{i}")
    snap = fr.snapshot()
    assert validate_schema(snap, FLIGHT_SCHEMA) == []
    assert snap["capacity"] == 4
    assert snap["total"] == 10
    assert snap["dropped"] == 6
    assert len(snap["events"]) == 4
    seqs = [e["seq"] for e in snap["events"]]
    assert seqs == [6, 7, 8, 9]                  # oldest first, monotonic
    assert all(e["t_s"] == 5.0 for e in snap["events"])
    assert fr.total == 10 and fr.dropped == 6 and len(fr) == 4
    json.dumps(snap)


def test_flight_snapshot_deterministic_after_strip_timing():
    def run(offset):
        fr = FlightRecorder(capacity=8, clock=FakeClock(offset))
        fr.record("admit", path="/v1/query", method="POST")
        fr.record("flush", node="22nm", n=3)
        fr.record("solve", node="22nm", n=3, ok=True, wall_s=0.01 * offset)
        return fr.snapshot()

    a, b = run(1.0), run(99.0)
    assert a != b                                 # timing differs...
    assert strip_timing(a) == strip_timing(b)     # ...but the story matches


def test_noop_flight_records_nothing():
    assert not NOOP_FLIGHT.enabled
    NOOP_FLIGHT.record("admit", path="/x")
    snap = NOOP_FLIGHT.snapshot()
    assert snap["total"] == 0 and snap["events"] == []
    assert snap["capacity"] == 0
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


def test_manifest_attaches_flight_snapshot():
    fr = FlightRecorder(capacity=4, clock=FakeClock())
    fr.record("admit", path="/v1/query")
    state = {"path": "/tmp/q.json", "entries": 0, "bytes": 0}
    m = build_manifest(
        targets=["serve"], fast=False, jobs=1, root_seed=0,
        profiler=Profiler(), metrics=MetricsRegistry(),
        cache_before=state, cache_after=state, elapsed_wall_s=0.1,
        flight=fr.snapshot())
    assert validate_schema(m, MANIFEST_SCHEMA) == []
    assert m["flight"]["events"][0]["kind"] == "admit"
    assert "t_s" not in strip_timing(m)["flight"]["events"][0]
    # manifests without a flight section stay valid (and omit the key)
    assert "flight" not in _tiny_manifest()


# -- distributed trace context -------------------------------------------------


def test_tracer_ctx_override_links_and_add_span():
    t = Tracer(trace_id="server-own")
    with t.span("serve.request", ctx=("client-trace", "c.1"), path="/x"):
        assert t.current_trace_id() == "client-trace"
        inner_parent = t.current_span()
        with t.span("serve.solve"):
            pass
    batch_id = t.new_span_id()
    t.add_span("serve.batch", ctx=("client-trace", "c.1"),
               span_id=batch_id, dur_s=0.5,
               links=[{"trace_id": "client-trace", "span_id": "c.1"}], n=3)
    solve, request, batch = t.events()
    assert request["args"]["trace_id"] == "client-trace"
    assert request["args"]["parent_id"] == "c.1"
    assert solve["args"]["trace_id"] == "client-trace"
    assert solve["args"]["parent_id"] == inner_parent
    assert batch["args"]["span_id"] == batch_id
    assert batch["args"]["links"] == [
        {"trace_id": "client-trace", "span_id": "c.1"}]
    assert batch["dur"] == pytest.approx(0.5e6)   # Chrome traces use µs
    # outside any span the tracer reverts to its own identity
    assert t.current_trace_id() == "server-own"


def test_tracer_isolates_span_stacks_across_threads():
    """Ancestry is per-thread: a solver-thread span never parents under
    a request span that happens to be open on the event loop."""
    t = Tracer(trace_id="t1")
    ready, release = threading.Event(), threading.Event()
    thread_parent = []

    def worker():
        with t.span("solver.side"):
            thread_parent.append(t.current_span())
            ready.set()
            release.wait(5)

    with t.span("loop.side"):
        loop_span = t.current_span()
        th = threading.Thread(target=worker)
        th.start()
        assert ready.wait(5)
        # the loop thread still sees its own span, not the worker's
        assert t.current_span() == loop_span
        release.set()
        th.join(5)
    solver = next(e for e in t.events() if e["name"] == "solver.side")
    assert "parent_id" not in solver["args"] or \
        solver["args"]["parent_id"] != loop_span


def test_worker_context_joins_adopted_trace():
    """Dispatched inside a remote-ctx span, workers join *that* trace."""
    obs = build_obs(trace=True, metrics=True)
    with obs.tracer.span("serve.solve", ctx=("client-trace", "c.9")):
        ctx = obs.worker_context("solver")
    assert ctx["trace_id"] == "client-trace"
    worker = Observability.for_worker(ctx)
    with worker.tracer.span("shard"):
        pass
    assert worker.tracer.events()[0]["args"]["trace_id"] == "client-trace"
