"""Unit-conversion helpers."""

import numpy as np
import pytest

from repro import units


def test_mv_roundtrip():
    assert units.mv(500) == pytest.approx(0.5)
    assert units.to_mv(0.5) == pytest.approx(500.0)
    assert units.to_mv(units.mv(617.3)) == pytest.approx(617.3)


def test_time_conversions():
    assert units.ns(1.0) == pytest.approx(1e-9)
    assert units.ps(1.0) == pytest.approx(1e-12)
    assert units.to_ns(2.5e-9) == pytest.approx(2.5)
    assert units.to_ps(2.5e-9) == pytest.approx(2500.0)


def test_percent_roundtrip():
    assert units.percent(0.05) == pytest.approx(5.0)
    assert units.from_percent(5.0) == pytest.approx(0.05)


def test_array_conversions_preserve_shape():
    x = np.array([1.0, 2.0, 3.0])
    assert units.to_ns(units.ns(x)).shape == (3,)
    np.testing.assert_allclose(units.to_ns(units.ns(x)), x)


def test_three_sigma_over_mu_known_value():
    samples = np.array([9.0, 10.0, 11.0])
    expected = 3.0 * np.std(samples) / 10.0
    assert units.three_sigma_over_mu(samples) == pytest.approx(expected)


def test_three_sigma_over_mu_scale_invariant():
    rng = np.random.default_rng(0)
    samples = rng.normal(10.0, 1.0, 1000)
    a = units.three_sigma_over_mu(samples)
    b = units.three_sigma_over_mu(samples * 7.5)
    assert a == pytest.approx(b)


def test_thermal_voltage_room_temperature():
    assert units.THERMAL_VOLTAGE == pytest.approx(0.02585, rel=1e-3)
