"""Structural-duplication spare solver."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.sparing.duplication import continuous_spares, solve_spares


def test_minimality(analyzer90):
    """The solver returns the *smallest* sufficient spare count."""
    sol = solve_spares(analyzer90, 0.58)
    assert sol.feasible and sol.spares >= 1
    target = analyzer90.target_delay(0.58)
    assert analyzer90.chip_quantile(0.58, spares=sol.spares) <= target
    assert analyzer90.chip_quantile(0.58, spares=sol.spares - 1) > target


def test_zero_spares_at_nominal(analyzer90):
    sol = solve_spares(analyzer90, analyzer90.nominal_vdd)
    assert sol.feasible and sol.spares == 0
    assert sol.power_overhead == 0.0
    assert sol.area_overhead == 0.0


def test_spares_grow_as_voltage_drops(analyzer90):
    counts = [solve_spares(analyzer90, v).spares
              for v in (0.52, 0.55, 0.6, 0.65)]
    assert all(a >= b for a, b in zip(counts, counts[1:]))
    assert counts[0] > counts[-1]


def test_saturation_reported(analyzer45):
    sol = solve_spares(analyzer45, 0.5, max_spares=128)
    assert not sol.feasible
    assert sol.spares == 128
    assert ">128" in sol.summary()


def test_custom_target(analyzer90):
    generous = analyzer90.chip_quantile(0.6) * 1.01
    sol = solve_spares(analyzer90, 0.6, target_delay=generous)
    assert sol.spares == 0


def test_continuous_consistent_with_integer(analyzer90):
    cont = continuous_spares(analyzer90, 0.58)
    sol = solve_spares(analyzer90, 0.58)
    # The continuous solve has xtol=1e-4 on alpha, so allow that slack
    # around the integer boundary.
    assert math.ceil(cont - 1e-3) == sol.spares


def test_continuous_saturation_is_inf(analyzer45):
    assert continuous_spares(analyzer45, 0.5, max_spares=128.0) == math.inf


def test_overheads_match_pe_model(analyzer90):
    from repro.simd.diet_soda import DIET_SODA
    sol = solve_spares(analyzer90, 0.55)
    assert sol.power_overhead == pytest.approx(
        DIET_SODA.spare_power_overhead(sol.spares))
    assert sol.area_overhead == pytest.approx(
        DIET_SODA.spare_area_overhead(sol.spares))


def test_negative_max_spares_rejected(analyzer90):
    with pytest.raises(ConfigurationError):
        solve_spares(analyzer90, 0.6, max_spares=-1)
