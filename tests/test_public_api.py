"""Public API surface: exports resolve, errors share the hierarchy."""

import importlib

import pytest

import repro
from repro.errors import (
    CalibrationError,
    ConfigurationError,
    ConvergenceError,
    NetlistError,
    ReproError,
    RoutingError,
    TechnologyError,
    VoltageRangeError,
)

PACKAGES = (
    "repro",
    "repro.core",
    "repro.devices",
    "repro.circuits",
    "repro.simd",
    "repro.sparing",
    "repro.mitigation",
    "repro.energy",
    "repro.analysis",
    "repro.experiments",
)


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{package}.{name} missing"


def test_version_string():
    parts = repro.__version__.split(".")
    assert len(parts) == 3 and all(p.isdigit() for p in parts)


@pytest.mark.parametrize("exc", [
    TechnologyError, VoltageRangeError, CalibrationError, ConvergenceError,
    NetlistError, RoutingError, ConfigurationError,
])
def test_error_hierarchy(exc):
    assert issubclass(exc, ReproError)
    with pytest.raises(ReproError):
        raise exc("boom")


def test_value_error_compatibility():
    """Range/configuration misuse is also catchable as ValueError."""
    assert issubclass(VoltageRangeError, ValueError)
    assert issubclass(ConfigurationError, ValueError)


def test_top_level_convenience():
    analyzer = repro.VariationAnalyzer("90nm", width=4, paths_per_lane=2,
                                       chain_length=5)
    assert analyzer.tech is repro.get_technology("90nm")
    assert "90nm" in repro.available_technologies()


def test_analyzer_docstring_examples_current():
    """The module docstring's quoted numbers track the calibrated cards."""
    analyzer = repro.VariationAnalyzer("90nm")
    assert round(100 * analyzer.chain_variation(0.5), 1) == pytest.approx(
        9.1, abs=0.3)
    assert round(100 * analyzer.performance_drop(0.5), 1) == pytest.approx(
        6.5, abs=0.3)
