"""Gate chains and ring oscillators."""

import numpy as np
import pytest

from repro.circuits.chain import GateChain, RingOscillator, fo4_chain
from repro.errors import ConfigurationError
from repro.units import three_sigma_over_mu


def test_fo4_chain_nominal_delay(tech90):
    chain = fo4_chain(50)
    assert len(chain) == 50
    assert chain.nominal_delay(tech90, 0.6) == pytest.approx(
        50 * tech90.fo4_unit(0.6))


def test_chain_rejects_empty_and_bad_fanout():
    with pytest.raises(ConfigurationError):
        fo4_chain(0)
    with pytest.raises(ConfigurationError):
        GateChain(["inv"], fanout=0.0)


def test_mixed_chain_delay_adds(tech90):
    chain = GateChain(["inv", "nand2", "nor2"], fanout=2.0)
    expected = sum(g.delay(tech90, 0.7, 2.0) for g in chain.gates)
    assert chain.nominal_delay(tech90, 0.7) == pytest.approx(float(expected))


def test_chain_sampling_statistics(tech90, rng):
    chain = fo4_chain(50)
    samples = chain.sample_delays(tech90, 0.6, 4000, rng)
    assert samples.mean() == pytest.approx(
        chain.nominal_delay(tech90, 0.6), rel=0.05)
    # Matches the MonteCarloEngine's chain (same statistical model).
    from repro.core.montecarlo import MonteCarloEngine
    mc = MonteCarloEngine(tech90, seed=4)
    reference = mc.chain_delays(0.6, 50, 4000)
    assert float(three_sigma_over_mu(samples)) == pytest.approx(
        float(three_sigma_over_mu(reference)), rel=0.12)


def test_chain_per_stage_fanout(tech90):
    chain = GateChain(["inv", "inv"], fanout=[1.0, 4.0])
    d1 = chain.gates[0].delay(tech90, 0.8, 1.0)
    d2 = chain.gates[1].delay(tech90, 0.8, 4.0)
    assert chain.nominal_delay(tech90, 0.8) == pytest.approx(float(d1 + d2))


def test_ring_oscillator_frequency(tech90):
    ring = RingOscillator(stages=11, fanout=1.0)
    f = ring.nominal_frequency(tech90, 1.0)
    assert f == pytest.approx(
        1.0 / (2 * ring.chain.nominal_delay(tech90, 1.0)))
    # NTV ring runs much slower.
    assert ring.nominal_frequency(tech90, 0.5) < 0.3 * f


def test_ring_oscillator_validation():
    with pytest.raises(ConfigurationError):
        RingOscillator(stages=4)
    with pytest.raises(ConfigurationError):
        RingOscillator(stages=1)


def test_ring_oscillator_sampling(tech90, rng):
    ring = RingOscillator(stages=11)
    freqs = ring.sample_frequencies(tech90, 0.6, 2000, rng)
    assert np.all(freqs > 0)
    spread = freqs.std() / freqs.mean()
    assert 0.005 < spread < 0.2
