"""Voltage-margin solver."""

import pytest

from repro.errors import ConfigurationError
from repro.mitigation.voltage_margin import solve_voltage_margin


def test_margin_meets_target_exactly(analyzer90):
    sol = solve_voltage_margin(analyzer90, 0.55)
    assert sol.feasible and sol.margin > 0
    assert sol.achieved_delay <= sol.target_delay * (1 + 1e-6)
    # Brent root: the achieved delay should sit right at the target.
    assert sol.achieved_delay == pytest.approx(sol.target_delay, rel=1e-3)


def test_zero_margin_at_nominal(analyzer90):
    sol = solve_voltage_margin(analyzer90, analyzer90.nominal_vdd)
    assert sol.feasible and sol.margin == 0.0
    assert sol.power_overhead == 0.0


def test_margin_grows_as_voltage_drops(analyzer90):
    margins = [solve_voltage_margin(analyzer90, v).margin
               for v in (0.5, 0.6, 0.7)]
    assert margins[0] > margins[1] > margins[2] > 0


def test_advanced_node_needs_bigger_margin(analyzer90, analyzer45):
    m90 = solve_voltage_margin(analyzer90, 0.6).margin_mv
    m45 = solve_voltage_margin(analyzer45, 0.6).margin_mv
    assert m45 > 2 * m90


def test_final_vdd_and_units(analyzer90):
    sol = solve_voltage_margin(analyzer90, 0.6)
    assert sol.final_vdd == pytest.approx(0.6 + sol.margin)
    assert sol.margin_mv == pytest.approx(1e3 * sol.margin)
    assert "mV" in sol.summary()


def test_infeasible_when_bound_too_small(analyzer45):
    sol = solve_voltage_margin(analyzer45, 0.5, max_margin=1e-4)
    assert not sol.feasible
    assert sol.margin == pytest.approx(1e-4)


def test_power_overhead_model(analyzer90):
    from repro.simd.diet_soda import DIET_SODA
    sol = solve_voltage_margin(analyzer90, 0.55)
    assert sol.power_overhead == pytest.approx(
        DIET_SODA.margin_power_overhead(0.55, sol.margin))


def test_bad_max_margin_rejected(analyzer90):
    with pytest.raises(ConfigurationError):
        solve_voltage_margin(analyzer90, 0.6, max_margin=0.0)


def test_margin_precision_sub_millivolt(analyzer90):
    """The deterministic engine should give stable sub-mV solutions."""
    a = solve_voltage_margin(analyzer90, 0.55, xtol=1e-6).margin_mv
    b = solve_voltage_margin(analyzer90, 0.55, xtol=1e-7).margin_mv
    assert a == pytest.approx(b, abs=0.01)
