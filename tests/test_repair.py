"""Test-time repair flow (fault map -> XRAM bypass)."""

import numpy as np
import pytest

from repro.sparing.repair import repair_flow


def test_repair_with_explicit_delays(small_analyzer):
    clock = 1.0
    delays = np.full(18, 0.9)          # width 16 + 2 spares
    delays[[3, 7]] = 1.5               # two faulty lanes
    report = repair_flow(small_analyzer, 0.6, spares=2, clock_period=clock,
                         lane_delays=delays)
    assert report.repaired
    assert report.n_faulty == 2
    assert set(report.faulty_lanes) == {3, 7}
    assert report.meets_timing
    assert 3 not in report.mapping and 7 not in report.mapping
    assert report.effective_delay == pytest.approx(0.9)


def test_irreparable_when_faults_exceed_spares(small_analyzer):
    delays = np.full(17, 0.9)
    delays[[0, 1, 2]] = 1.5
    report = repair_flow(small_analyzer, 0.6, spares=1, clock_period=1.0,
                         lane_delays=delays)
    assert not report.repaired
    assert report.mapping is None
    assert "IRREPARABLE" in report.summary()


def test_local_cluster_burst_fails(small_analyzer):
    delays = np.full(20, 0.9)          # 16 + 4 spares, clusters of 4+1
    delays[[0, 1]] = 1.5               # burst inside cluster 0
    report = repair_flow(small_analyzer, 0.6, spares=4, cluster_size=4,
                         clock_period=1.0, lane_delays=delays)
    assert not report.repaired
    # Global sparing repairs the identical chip.
    report2 = repair_flow(small_analyzer, 0.6, spares=4, clock_period=1.0,
                          lane_delays=delays)
    assert report2.repaired


def test_sampled_flow_end_to_end(small_analyzer):
    report = repair_flow(small_analyzer, 0.55, spares=4, seed=9)
    assert report.clock_period == pytest.approx(
        small_analyzer.target_delay(0.55))
    if report.repaired:
        assert len(report.mapping) == small_analyzer.width
        assert report.effective_delay > 0


def test_healthy_chip_trivial_repair(small_analyzer):
    delays = np.full(16, 0.5)
    report = repair_flow(small_analyzer, 0.6, spares=0, clock_period=1.0,
                         lane_delays=delays)
    assert report.repaired and report.n_faulty == 0
    np.testing.assert_array_equal(report.mapping, np.arange(16))
