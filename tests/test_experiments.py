"""Experiment registry and per-artifact sanity checks (fast mode)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import list_experiments, run_experiment

ALL_IDS = ("fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
           "fig9", "fig10", "fig11", "fig12",
           "table1", "table2", "table3", "table4")
ABLATION_IDS = ("ablation1", "ablation2", "ablation3", "ablation4")


def test_catalogue_complete():
    ids = [e.experiment_id for e in list_experiments()]
    # "tail" has no digits, so it sorts first within the beyond-paper kind.
    assert ids == list(ALL_IDS) + ["tail"] + list(ABLATION_IDS)


def test_unknown_experiment():
    with pytest.raises(ConfigurationError):
        run_experiment("fig99")


@pytest.fixture(scope="module")
def results():
    """Run every experiment once in fast mode and share the results."""
    return {eid: run_experiment(eid, fast=True) for eid in ALL_IDS}


def test_all_render(results):
    for eid, res in results.items():
        text = res.render()
        assert eid in text
        assert res.tables, eid
        for table in res.tables:
            assert table.rows, f"{eid}: empty table"


def test_fig1_chain_averaging(results):
    data = results["fig1"].data
    for s, c in zip(data["single"], data["chain"]):
        assert s > c


def test_fig2_node_ordering_at_055(results):
    data = results["fig2"].data
    v90 = data["90nm"]["pct"][data["90nm"]["vdd"].index(0.55)]
    v22 = data["22nm"]["pct"][data["22nm"]["vdd"].index(0.55)]
    assert v22 > 2 * v90


def test_fig3_max_effect_ordering(results):
    data = results["fig3"].data
    means = dict(zip(data["labels"], data["mean_fo4"]))
    assert (means["critical-path@1V"] < means["1-wide@1V"]
            < means["128-wide@1V"])
    # NTV curves drift right (in FO4 units).
    assert means["128-wide@0.5V"] > means["128-wide@1V"]


def test_fig4_monotone_drop(results):
    data = results["fig4"].data["90nm"]
    voltages = sorted(data)
    drops = [data[v] for v in voltages]
    assert all(a >= b for a, b in zip(drops, drops[1:]))


def test_fig5_spares_tighten_distribution(results):
    data = results["fig5"].data
    p99 = data["p99_fo4"]
    assert p99[0] > p99[-1]
    assert data["solver_spares"] is not None


def test_fig6_margin_recovers_target(results):
    data = results["fig6"].data
    assert data["margin_p99_ns"][0] > data["target_ns"]
    assert data["margin_p99_ns"][20] <= data["target_ns"]
    assert data["margin_mv"] is not None


def test_fig7_winner_flips_with_voltage(results):
    rows45 = results["fig7"].data["45nm"]["rows"]
    by_vdd = {r["vdd"]: r["winner"] for r in rows45}
    assert by_vdd[0.5] == "margining"
    assert by_vdd[0.7] == "duplication"


def test_fig8_grid_monotone(results):
    grid = results["fig8"].data["grid"]
    # More margin -> faster; more spares -> faster.
    assert grid[(0, 0)] > grid[(0, 20)]
    assert grid[(0, 0)] > grid[(32, 0)]


def test_fig9_minimum_below_ntv(results):
    data = results["fig9"].data
    assert data["v_min"] < 0.55
    assert data["boundaries"][0] < data["boundaries"][1]


def test_fig10_inventory_consistent(results):
    data = results["fig10"].data
    areas = sum(m["area"] for m in data["modules"].values())
    powers = sum(m["power"] for m in data["modules"].values())
    assert areas == pytest.approx(1.0)
    assert powers == pytest.approx(1.0)
    assert data["dv_power_fraction"] == pytest.approx(0.43)


def test_fig11_diminishing_returns(results):
    data = results["fig11"].data["90nm"]
    assert data[1] > data[10] > data[50] > data[200]
    # Early averaging is much faster than late averaging.
    early = data[1] - data[10]
    late = data[50] - data[200]
    assert early > 3 * late


def test_fig12_global_beats_local(results):
    policies = results["fig12"].data["policies"]
    global_yield = policies[0]["yield"]
    assert policies[0]["cluster_size"] is None
    for p in policies[1:]:
        assert global_yield >= p["yield"] - 1e-9
    assert results["fig12"].data["demo_mapping"] == [0, 1, 4, 5, 6, 7, 8, 9]


def test_table1_more_spares_at_lower_vdd(results):
    for node, rows in results["table1"].data.items():
        feasible = {v: r["spares"] for v, r in rows.items() if r["feasible"]}
        voltages = sorted(feasible)
        counts = [feasible[v] for v in voltages]
        assert all(a >= b for a, b in zip(counts, counts[1:]))


def test_table2_margins_positive(results):
    for node, rows in results["table2"].data.items():
        for v, r in rows.items():
            assert r["feasible"] and r["margin_mv"] > 0


def test_table3_interior_optimum(results):
    opt = results["table3"].data["optimum"]
    assert opt["spares"] > 0 and opt["margin_mv"] > 0
    points = {p["spares"]: p["power"] for p in results["table3"].data["points"]
              if p["feasible"]}
    assert opt["power"] <= min(points.values()) + 1e-9


def test_table4_drops_match_fig4(results):
    t4 = results["table4"].data["90nm"][0.5]["drop"]
    fig4 = results["fig4"].data["90nm"][0.5] / 100.0
    assert t4 == pytest.approx(fig4, rel=1e-6)
    aligned = results["table4"].data["90nm"][0.5]["aligned_drop"]
    assert aligned >= t4


def test_tail_experiment_cross_validates():
    """IS tail quantile vs analytic order statistics at a shallow tail."""
    from repro.experiments import tail as tail_mod
    saved = dict(tail_mod._CONFIG)
    try:
        tail_mod.configure(q=0.999, n_samples=256)
        res = run_experiment("tail", fast=True)
    finally:
        tail_mod._CONFIG.update(saved)
    assert res.tables and res.tables[0].rows
    for node, row in res.data["nodes"].items():
        # Independent estimators; a shallow tail at 256 weighted samples
        # should still agree within a few percent.
        assert abs(row["rel_err"]) < 0.10, (node, row)
        assert row["ess"] > 10.0, (node, row)
        assert 0.0 <= row["p_fail"] <= 1.0, (node, row)


def test_ablation_experiments_run():
    for eid in ABLATION_IDS:
        res = run_experiment(eid, fast=True)
        assert res.tables and res.tables[0].rows
    decomposition = run_experiment("ablation1", fast=True).data
    assert decomposition["components"]["threshold (all scales)"] > 0.02
    structures = run_experiment("ablation3", fast=True).data
    assert structures["corner_ratio"] < 1.0
