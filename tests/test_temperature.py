"""Temperature behaviour: inverse temperature dependence at NTV."""

import pytest

from repro.devices.temperature import (
    T_REF,
    delay_temperature_sensitivity,
    itd_crossover_voltage,
    with_temperature,
)
from repro.errors import ConfigurationError, ConvergenceError


def test_reference_temperature_is_identity(tech90):
    same = with_temperature(tech90, T_REF)
    assert float(same.fo4_delay(0.6)) == pytest.approx(tech90.fo4_unit(0.6))


def test_hot_silicon_fast_at_ntv(tech90):
    """ITD: heating speeds up near-threshold gates."""
    hot = with_temperature(tech90, 360.0)
    assert float(hot.fo4_delay(0.5)) < tech90.fo4_unit(0.5)


def test_hot_silicon_slow_at_nominal(tech90):
    """Super-threshold: mobility loss dominates, heating slows gates."""
    hot = with_temperature(tech90, 360.0)
    assert float(hot.fo4_delay(1.0)) > tech90.fo4_unit(1.0)


def test_sensitivity_signs(tech90):
    assert delay_temperature_sensitivity(tech90, 0.5) < 0
    assert delay_temperature_sensitivity(tech90, 1.0) > 0


def test_crossover_in_near_threshold_region(tech90):
    crossover = itd_crossover_voltage(tech90)
    assert 0.5 < crossover < 0.95
    # Sensitivity flips sign across the crossover.
    assert delay_temperature_sensitivity(tech90, crossover - 0.05) < 0
    assert delay_temperature_sensitivity(tech90, crossover + 0.05) > 0


def test_crossover_exists_on_every_node(any_tech):
    crossover = itd_crossover_voltage(any_tech)
    assert any_tech.min_vdd < crossover < any_tech.nominal_vdd


def test_no_crossover_raises(tech90):
    with pytest.raises(ConvergenceError):
        itd_crossover_voltage(tech90, v_lo=0.45, v_hi=0.5)


def test_invalid_temperature(tech90):
    with pytest.raises(ConfigurationError):
        with_temperature(tech90, -10.0)
