"""Quantile and bootstrap confidence intervals."""

import numpy as np
import pytest
from scipy.stats import norm

from repro.core.stats import bootstrap_ci, quantile_ci
from repro.errors import ConfigurationError


def test_quantile_ci_brackets_point_estimate(rng):
    samples = rng.normal(0, 1, 5000)
    lo, hi = quantile_ci(samples, 0.99)
    point = np.quantile(samples, 0.99)
    assert lo <= point <= hi
    assert hi > lo


def test_quantile_ci_coverage(rng):
    """The 95 % CI should contain the true quantile ~95 % of the time."""
    true_q99 = norm.ppf(0.99)
    hits = 0
    trials = 300
    for _ in range(trials):
        samples = rng.normal(0, 1, 800)
        lo, hi = quantile_ci(samples, 0.99, confidence=0.95)
        hits += lo <= true_q99 <= hi
    coverage = hits / trials
    assert 0.90 <= coverage <= 1.0


def test_quantile_ci_narrows_with_samples(rng):
    small = quantile_ci(rng.normal(0, 1, 500), 0.99)
    large = quantile_ci(rng.normal(0, 1, 50_000), 0.99)
    assert (large[1] - large[0]) < (small[1] - small[0])


def test_quantile_ci_validation(rng):
    with pytest.raises(ConfigurationError):
        quantile_ci([1.0] * 5, 0.99)
    with pytest.raises(ConfigurationError):
        quantile_ci(rng.normal(0, 1, 100), 1.5)
    with pytest.raises(ConfigurationError):
        quantile_ci(rng.normal(0, 1, 100), 0.5, confidence=0.0)


def test_bootstrap_ci_contains_estimate(rng):
    samples = rng.normal(10, 2, 2000)
    lo, hi = bootstrap_ci(samples, np.mean, n_boot=300, seed=1)
    assert lo <= samples.mean() <= hi
    # Should roughly match the analytic standard error.
    se = samples.std() / np.sqrt(samples.size)
    assert (hi - lo) == pytest.approx(2 * 1.96 * se, rel=0.4)


def test_bootstrap_ci_reproducible(rng):
    samples = rng.normal(0, 1, 500)
    a = bootstrap_ci(samples, np.std, seed=7, n_boot=200)
    b = bootstrap_ci(samples, np.std, seed=7, n_boot=200)
    assert a == b


def test_bootstrap_validation(rng):
    with pytest.raises(ConfigurationError):
        bootstrap_ci([1.0] * 5, np.mean)
    with pytest.raises(ConfigurationError):
        bootstrap_ci(rng.normal(0, 1, 100), np.mean, n_boot=5)


def test_distribution_signoff_ci(analyzer90):
    dist = analyzer90.chip_distribution(0.6, n_samples=3000, seed=4)
    lo, hi = dist.signoff_ci()
    assert lo <= dist.signoff_delay <= hi
    # The deterministic quantile should fall inside the sampling CI.
    deterministic = analyzer90.chip_quantile(0.6)
    assert lo * 0.995 <= deterministic <= hi * 1.005


# -- weighted_quantile --------------------------------------------------------


def test_weighted_quantile_uniform_matches_numpy(rng):
    """Uniform weights must reduce to np.quantile's linear (type-7) rule."""
    from repro.core.stats import weighted_quantile
    samples = rng.normal(0, 1, 1001)
    weights = np.full(samples.size, 0.37)
    for q in (0.01, 0.25, 0.5, 0.9, 0.99, 0.999):
        assert weighted_quantile(samples, q, weights) == pytest.approx(
            float(np.quantile(samples, q)), rel=1e-12)


def test_weighted_quantile_weight_scale_invariant(rng):
    from repro.core.stats import weighted_quantile
    samples = rng.normal(0, 1, 500)
    weights = rng.uniform(0.1, 2.0, 500)
    a = weighted_quantile(samples, 0.95, weights)
    b = weighted_quantile(samples, 0.95, weights * 1e6)
    assert a == pytest.approx(b, rel=1e-12)


def test_weighted_quantile_monotone_and_bounded(rng):
    from repro.core.stats import weighted_quantile
    samples = rng.normal(0, 1, 400)
    weights = rng.uniform(0.1, 2.0, 400)
    qs = np.linspace(0.01, 0.99, 25)
    values = weighted_quantile(samples, qs, weights)
    assert values.shape == qs.shape
    assert np.all(np.diff(values) >= 0)
    assert samples.min() <= values[0] and values[-1] <= samples.max()
    # Scalar q returns a plain float.
    assert isinstance(weighted_quantile(samples, 0.5, weights), float)


def test_weighted_quantile_importance_reweighting(rng):
    """IS weights must recover target-distribution quantiles.

    Draw from a mean-shifted proposal N(1, 1), reweight back to the
    N(0, 1) target with exact likelihood ratios, and check the weighted
    quantiles land on the standard-normal ones.
    """
    from repro.core.stats import weighted_quantile
    z = rng.normal(1.0, 1.0, 20_000)
    log_ratio = -0.5 * z ** 2 + 0.5 * (z - 1.0) ** 2
    weights = np.exp(log_ratio - log_ratio.max())
    assert weighted_quantile(z, 0.5, weights) == pytest.approx(0.0,
                                                               abs=0.06)
    # Phi(1) = 0.8413...: the 84.13 % quantile of N(0, 1) is 1.
    assert weighted_quantile(z, 0.8413447, weights) == pytest.approx(
        1.0, abs=0.08)


def test_weighted_quantile_validation(rng):
    from repro.core.stats import weighted_quantile
    with pytest.raises(ConfigurationError):
        weighted_quantile([], 0.5, [])
    with pytest.raises(ConfigurationError):
        weighted_quantile([1.0, 2.0], 1.5, [1.0, 1.0])
    with pytest.raises(ConfigurationError):
        weighted_quantile([1.0, 2.0], 0.0, [1.0, 1.0])
    with pytest.raises(ConfigurationError):
        weighted_quantile([1.0, 2.0], 0.5, [1.0])
    with pytest.raises(ConfigurationError):
        weighted_quantile([1.0, 2.0], 0.5, [-1.0, 1.0])
    with pytest.raises(ConfigurationError):
        weighted_quantile([1.0, 2.0], 0.5, [0.0, 0.0])
    with pytest.raises(ConfigurationError):
        weighted_quantile([1.0, np.nan], 0.5, [1.0, 1.0])
