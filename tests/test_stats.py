"""Quantile and bootstrap confidence intervals."""

import numpy as np
import pytest
from scipy.stats import norm

from repro.core.stats import bootstrap_ci, quantile_ci
from repro.errors import ConfigurationError


def test_quantile_ci_brackets_point_estimate(rng):
    samples = rng.normal(0, 1, 5000)
    lo, hi = quantile_ci(samples, 0.99)
    point = np.quantile(samples, 0.99)
    assert lo <= point <= hi
    assert hi > lo


def test_quantile_ci_coverage(rng):
    """The 95 % CI should contain the true quantile ~95 % of the time."""
    true_q99 = norm.ppf(0.99)
    hits = 0
    trials = 300
    for _ in range(trials):
        samples = rng.normal(0, 1, 800)
        lo, hi = quantile_ci(samples, 0.99, confidence=0.95)
        hits += lo <= true_q99 <= hi
    coverage = hits / trials
    assert 0.90 <= coverage <= 1.0


def test_quantile_ci_narrows_with_samples(rng):
    small = quantile_ci(rng.normal(0, 1, 500), 0.99)
    large = quantile_ci(rng.normal(0, 1, 50_000), 0.99)
    assert (large[1] - large[0]) < (small[1] - small[0])


def test_quantile_ci_validation(rng):
    with pytest.raises(ConfigurationError):
        quantile_ci([1.0] * 5, 0.99)
    with pytest.raises(ConfigurationError):
        quantile_ci(rng.normal(0, 1, 100), 1.5)
    with pytest.raises(ConfigurationError):
        quantile_ci(rng.normal(0, 1, 100), 0.5, confidence=0.0)


def test_bootstrap_ci_contains_estimate(rng):
    samples = rng.normal(10, 2, 2000)
    lo, hi = bootstrap_ci(samples, np.mean, n_boot=300, seed=1)
    assert lo <= samples.mean() <= hi
    # Should roughly match the analytic standard error.
    se = samples.std() / np.sqrt(samples.size)
    assert (hi - lo) == pytest.approx(2 * 1.96 * se, rel=0.4)


def test_bootstrap_ci_reproducible(rng):
    samples = rng.normal(0, 1, 500)
    a = bootstrap_ci(samples, np.std, seed=7, n_boot=200)
    b = bootstrap_ci(samples, np.std, seed=7, n_boot=200)
    assert a == b


def test_bootstrap_validation(rng):
    with pytest.raises(ConfigurationError):
        bootstrap_ci([1.0] * 5, np.mean)
    with pytest.raises(ConfigurationError):
        bootstrap_ci(rng.normal(0, 1, 100), np.mean, n_boot=5)


def test_distribution_signoff_ci(analyzer90):
    dist = analyzer90.chip_distribution(0.6, n_samples=3000, seed=4)
    lo, hi = dist.signoff_ci()
    assert lo <= dist.signoff_delay <= hi
    # The deterministic quantile should fall inside the sampling CI.
    deterministic = analyzer90.chip_quantile(0.6)
    assert lo * 0.995 <= deterministic <= hi * 1.005
