"""Temperature behaviour of near-threshold operation.

A famous near-threshold effect the super-threshold intuition gets wrong:
*inverse temperature dependence* (ITD).  Heating a chip

* lowers carrier mobility (slower — dominates super-threshold), and
* lowers the threshold voltage (faster — dominates at near/sub-threshold
  where the drive current depends exponentially on ``Vdd - Vth``),

so below a crossover voltage, hot silicon is *faster* than cold silicon.
Sign-off corners must therefore flip from hot-slow to cold-slow at
near-threshold operating points — relevant to the paper's margining
story because the margin must cover the worst *temperature* too.

:func:`with_temperature` derives a card at a new junction temperature
(threshold tempco + mobility power law + thermal-voltage scaling);
:func:`itd_crossover_voltage` locates the crossover.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
from scipy.optimize import brentq

from repro.errors import ConfigurationError, ConvergenceError

__all__ = ["with_temperature", "delay_temperature_sensitivity",
           "itd_crossover_voltage"]

#: Threshold-voltage temperature coefficient (V/K); negative: Vth drops
#: as the junction heats (typical -0.7..-1.2 mV/K for planar CMOS).
VTH_TEMPCO = -0.9e-3
#: Mobility power-law exponent: mu ~ (T/T0)^-1.5.
MOBILITY_EXPONENT = 1.5
#: Reference junction temperature (K).
T_REF = 300.0


def with_temperature(tech, temperature_k: float):
    """A copy of a technology card at a different junction temperature.

    Applies the threshold tempco, scales the thermal voltage (via the
    device model's ``temperature_k``) and folds the mobility degradation
    into the delay scale (delay ~ 1/mu).
    """
    if temperature_k <= 0:
        raise ConfigurationError("temperature must be positive kelvin")
    dt = temperature_k - T_REF
    mosfet = replace(
        tech.mosfet,
        vth0=max(tech.mosfet.vth0 + VTH_TEMPCO * dt, 1e-3),
        temperature_k=temperature_k,
    )
    mobility_factor = (temperature_k / T_REF) ** MOBILITY_EXPONENT
    return replace(
        tech,
        name=f"{tech.name}@{temperature_k:.0f}K",
        mosfet=mosfet,
        fo4_scale=tech.fo4_scale * mobility_factor,
    )


def delay_temperature_sensitivity(tech, vdd: float, dt: float = 10.0) -> float:
    """``d ln(FO4 delay) / dT`` (1/K) by central difference.

    Positive: heating slows the gate (super-threshold behaviour);
    negative: heating speeds it up (ITD, near/sub-threshold behaviour).
    """
    hot = with_temperature(tech, T_REF + dt)
    cold = with_temperature(tech, T_REF - dt)
    return float((np.log(hot.fo4_delay(vdd)) - np.log(cold.fo4_delay(vdd)))
                 / (2.0 * dt))


def itd_crossover_voltage(tech, v_lo: float | None = None,
                          v_hi: float | None = None) -> float:
    """Supply voltage where the delay-temperature sensitivity changes sign.

    Below the crossover hot silicon is fast (cold-slow corner governs);
    above it the usual hot-slow corner governs.
    """
    v_lo = tech.min_vdd if v_lo is None else v_lo
    v_hi = tech.nominal_vdd if v_hi is None else v_hi
    s_lo = delay_temperature_sensitivity(tech, v_lo)
    s_hi = delay_temperature_sensitivity(tech, v_hi)
    if s_lo * s_hi > 0:
        raise ConvergenceError(
            f"no ITD crossover in [{v_lo}, {v_hi}] V "
            f"(sensitivities {s_lo:.2e}, {s_hi:.2e})")
    return float(brentq(lambda v: delay_temperature_sensitivity(tech, v),
                        v_lo, v_hi, xtol=1e-4))
