"""Spatially-correlated within-die variation fields.

The three-scale model in :mod:`repro.devices.variation` abstracts
within-die spatial correlation into a single *per-lane* component.  This
module provides the underlying continuous model — a Gaussian random field
over die coordinates with an exponential correlation kernel

.. math::  \\rho(d) = e^{-d / L_c}

(``L_c`` = correlation length, typically 0.5-2 mm) — and the machinery to
*derive* the per-lane abstraction from it: sampling the field at lane
positions on a floorplan, and splitting the result into the
lane-to-lane-correlated and residual shares.

Used by the validation tests to show that for realistic floorplans
(lane pitch ~50-100 um, correlation length ~1 mm) the per-lane
abstraction reproduces the field statistics, and by the placement study
to justify treating adjacent-lane faults as correlated ("bursty").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["SpatialField", "lane_correlation_matrix",
           "effective_lane_sigma"]


@dataclass(frozen=True)
class SpatialField:
    """A stationary Gaussian random field with exponential correlation.

    Parameters
    ----------
    sigma:
        Point standard deviation of the field (e.g. volts of Vth).
    correlation_length_mm:
        Distance at which correlation falls to 1/e.
    """

    sigma: float
    correlation_length_mm: float

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ConfigurationError("sigma must be non-negative")
        if self.correlation_length_mm <= 0:
            raise ConfigurationError("correlation length must be positive")

    def correlation(self, distance_mm):
        """Correlation coefficient at a separation (array-friendly)."""
        distance_mm = np.asarray(distance_mm, dtype=float)
        return np.exp(-distance_mm / self.correlation_length_mm)

    def covariance_matrix(self, positions_mm) -> np.ndarray:
        """Covariance matrix of the field at ``(N, 2)`` positions."""
        positions = np.asarray(positions_mm, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ConfigurationError("positions must have shape (N, 2)")
        delta = positions[:, None, :] - positions[None, :, :]
        distance = np.hypot(delta[..., 0], delta[..., 1])
        return self.sigma ** 2 * self.correlation(distance)

    def sample(self, positions_mm, n_samples: int,
               rng: np.random.Generator, dtype=None) -> np.ndarray:
        """Draw field realisations at positions: shape (n_samples, N).

        Uses the Cholesky factor of the covariance (with a tiny jitter for
        numerical positive-definiteness).  ``dtype`` casts the result
        (draws and factorisation stay float64, matching the samplers'
        dtype policy: same variates, rounded).
        """
        if n_samples < 1:
            raise ConfigurationError("n_samples must be >= 1")
        cov = self.covariance_matrix(positions_mm)
        n = cov.shape[0]
        if self.sigma == 0:
            return np.zeros((n_samples, n), dtype=dtype)
        jitter = 1e-12 * self.sigma ** 2
        chol = np.linalg.cholesky(cov + jitter * np.eye(n))
        normals = rng.standard_normal((n_samples, n))
        out = normals @ chol.T
        if dtype is not None and out.dtype != dtype:
            out = out.astype(dtype)
        return out


def lane_correlation_matrix(field: SpatialField, floorplan) -> np.ndarray:
    """Lane-to-lane correlation matrix for a floorplan's lane centres."""
    cov = field.covariance_matrix(floorplan.lane_positions_mm())
    if field.sigma == 0:
        return np.eye(cov.shape[0])
    return cov / field.sigma ** 2


def effective_lane_sigma(field: SpatialField, floorplan,
                         n_samples: int = 4000,
                         rng: np.random.Generator | None = None) -> dict:
    """Split a field into the three-scale abstraction's components.

    Samples the field at the floorplan's lane centres and decomposes each
    realisation into a die-common mean and per-lane deviations:

    * ``sigma_die`` — std of the across-die mean (what ``sigma_vth_d2d``
      absorbs on top of lot-level variation);
    * ``sigma_lane`` — std of the per-lane deviation from that mean (what
      ``sigma_vth_lane`` models);
    * ``neighbor_correlation`` — correlation between adjacent lanes'
      deviations (what makes faults "bursty" for local sparing).
    """
    if rng is None:
        rng = np.random.default_rng(0)
    samples = field.sample(floorplan.lane_positions_mm(), n_samples, rng)
    die_mean = samples.mean(axis=1)
    deviation = samples - die_mean[:, None]
    sigma_die = float(die_mean.std())
    sigma_lane = float(deviation.std())
    if deviation.shape[1] > 1 and sigma_lane > 0:
        neighbor = float(np.corrcoef(deviation[:, 0], deviation[:, 1])[0, 1])
    else:
        neighbor = 0.0
    return {
        "sigma_die": sigma_die,
        "sigma_lane": sigma_lane,
        "neighbor_correlation": neighbor,
    }
