"""Digitised numbers from the paper, used as calibration anchors and as the
reference column of EXPERIMENTS.md.

Sources (section / figure / table of the DAC 2012 paper):

* ``FIG1_SINGLE_3SIGMA`` / ``FIG1_CHAIN50_3SIGMA`` — the 3sigma/mu values
  printed on Fig. 1's histograms (90 nm GP, 1000 samples).
* ``CHAIN50_ABS_DELAY_NS`` — Section 3.2: "the delay of a chain of 50 FO4
  inverters operating at 0.5V is 22.05ns ... at 0.6V is 8.99ns" (90 nm).
* ``FIG2_POINTS`` — endpoints quoted in Section 3.1 for Fig. 2 (the 22 nm
  curve: 11 % @ 0.8 V rising to 25 % @ 0.5 V; the 2.5x 90->22 nm ratio at
  0.55 V).
* ``FIG4_PERF_DROP`` — Section 3.2 text: 90 nm drops of 5 / 2.5 / 1.5 % at
  0.5 / 0.55 / 0.6 V, and 18 % @ 0.5 V for 22 nm.
* ``TABLE1`` — required spare counts with area/power overheads.  Entries the
  PDF-to-text conversion garbled (marked ``inferred=True``) are
  reconstructed by inverting the paper's own overhead model
  (area = 0.4516 %/spare, power = 13.7 %*((1+a/128)^1.5 - 1)), which
  reproduces every intact entry to within rounding.
* ``TABLE2`` — required voltage margins (mV) and power overheads (%).
* ``TABLE3`` — combined duplication+margining design points for a
  128-wide @ 600 mV system in 45 nm.
* ``KOGGE_STONE_3SIGMA_05V`` — the 8.4 % @ 0.5 V delay variation of a 64-bit
  Kogge-Stone adder the paper cites from Drego et al. [7] as evidence that
  a 50-FO4 chain is a good critical-path proxy.

Every voltage key is in volts; variation metrics are percent (3sigma/mu);
delays are nanoseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "FIG1_SINGLE_3SIGMA",
    "FIG1_CHAIN50_3SIGMA",
    "CHAIN50_ABS_DELAY_NS",
    "FIG2_POINTS",
    "FIG4_PERF_DROP",
    "TABLE1",
    "TABLE2",
    "TABLE3",
    "KOGGE_STONE_3SIGMA_05V",
    "NOMINAL_VDD",
    "SIMD_WIDTH",
    "PATHS_PER_LANE",
    "CHAIN_LENGTH",
    "SIGNOFF_QUANTILE",
    "AREA_PER_SPARE_PCT",
    "SHUFFLE_POWER_FRACTION_PCT",
    "SHUFFLE_WIDTH_EXPONENT",
    "DV_DOMAIN_POWER_FRACTION",
    "SpareEntry",
    "MarginEntry",
]

# --------------------------------------------------------------------------
# Experimental setup constants (Section 3.2)
# --------------------------------------------------------------------------

#: SIMD width of the studied Diet SODA datapath.
SIMD_WIDTH = 128
#: Critical + near-critical paths assumed per SIMD lane.
PATHS_PER_LANE = 100
#: FO4 inverters per emulated critical path.
CHAIN_LENGTH = 50
#: The paper signs off on the 99 % point of the chip-delay distribution.
SIGNOFF_QUANTILE = 0.99

#: Nominal ("full") supply voltage per node (V).  32/22 nm PTM HP cards are
#: simulated only up to their nominal 0.9/0.8 V (Section 3.1).
NOMINAL_VDD = {"90nm": 1.0, "45nm": 1.0, "32nm": 0.9, "22nm": 0.8}

# --------------------------------------------------------------------------
# Figure 1 (90 nm GP, 1000 samples): 3sigma/mu in percent
# --------------------------------------------------------------------------

FIG1_SINGLE_3SIGMA = {
    1.0: 15.58, 0.9: 15.70, 0.8: 16.29, 0.7: 17.74, 0.6: 22.25, 0.5: 35.49,
}

FIG1_CHAIN50_3SIGMA = {
    1.0: 5.76, 0.9: 5.84, 0.8: 5.96, 0.7: 6.17, 0.6: 6.81, 0.5: 9.43,
}

#: Absolute delay of the 50-FO4 chain in 90 nm (ns), Section 3.2.
CHAIN50_ABS_DELAY_NS = {0.5: 22.05, 0.6: 8.99}

#: Drego et al. [7]: 64-bit Kogge-Stone adder delay variation at 0.5 V (%).
KOGGE_STONE_3SIGMA_05V = 8.4

# --------------------------------------------------------------------------
# Figure 2: chain-of-50 3sigma/mu vs Vdd, textual anchor points (percent)
# --------------------------------------------------------------------------

FIG2_POINTS = {
    # 90 nm curve equals Fig. 1(b).
    "90nm": dict(FIG1_CHAIN50_3SIGMA),
    # Quoted in Section 3.1 for the 22 nm PTM HP curve.
    "22nm": {0.8: 11.0, 0.5: 25.0},
    # "technology scaling from 90nm to 22nm increases delay variation of a
    # chain of 50 FO4 inverters by 2.5x when operating at 0.55V"
    "ratio_22_over_90_at_055": 2.5,
}

# --------------------------------------------------------------------------
# Figure 4: performance drop (%) of the 128-wide datapath vs nominal
# --------------------------------------------------------------------------

FIG4_PERF_DROP = {
    "90nm": {0.5: 5.0, 0.55: 2.5, 0.6: 1.5},
    "22nm": {0.5: 18.0},
}

# --------------------------------------------------------------------------
# Table 1: structural duplication
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SpareEntry:
    """One Table-1 cell: spare count with area/power overhead (percent).

    ``saturated`` marks the ">128" cells; ``inferred`` marks spare counts
    reconstructed from the (intact) power column via the paper's own
    overhead model because the PDF text extraction dropped them.
    """

    spares: int
    area_pct: float
    power_pct: float
    saturated: bool = False
    inferred: bool = False


_SAT = SpareEntry(128, 57.8, 25.0, saturated=True)

TABLE1 = {
    "90nm": {
        0.50: SpareEntry(28, 12.6, 4.6, inferred=False),
        0.55: SpareEntry(6, 2.6, 1.0),
        0.60: SpareEntry(2, 0.9, 0.3),
        0.65: SpareEntry(1, 0.4, 0.2),
        0.70: SpareEntry(1, 0.4, 0.2),
    },
    "45nm": {
        0.50: _SAT,
        0.55: SpareEntry(85, 38.4, 15.3, inferred=True),
        0.60: SpareEntry(26, 11.7, 4.3, inferred=True),
        0.65: SpareEntry(10, 4.5, 1.6, inferred=True),
        0.70: SpareEntry(4, 1.7, 0.6),
    },
    "32nm": {
        0.50: _SAT,
        0.55: _SAT,
        0.60: SpareEntry(48, 21.7, 8.2, inferred=True),
        0.65: SpareEntry(12, 5.4, 1.9, inferred=True),
        0.70: SpareEntry(6, 2.6, 1.0),
    },
    "22nm": {
        0.50: _SAT,
        0.55: SpareEntry(81, 36.6, 14.5, inferred=True),
        0.60: SpareEntry(22, 9.9, 3.6, inferred=True),
        0.65: SpareEntry(7, 3.0, 1.1),
        0.70: SpareEntry(3, 1.3, 0.5),
    },
}

# --------------------------------------------------------------------------
# Table 2: voltage margining
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class MarginEntry:
    """One Table-2 cell: required voltage margin and power overhead."""

    margin_mv: float
    power_pct: float


TABLE2 = {
    "90nm": {
        0.50: MarginEntry(5.8, 1.0),
        0.55: MarginEntry(4.1, 0.6),
        0.60: MarginEntry(2.9, 0.4),
        0.65: MarginEntry(2.2, 0.3),
        0.70: MarginEntry(1.7, 0.2),
    },
    "45nm": {
        0.50: MarginEntry(19.6, 3.3),
        0.55: MarginEntry(18.2, 2.8),
        0.60: MarginEntry(16.2, 2.3),
        0.65: MarginEntry(14.0, 1.8),
        0.70: MarginEntry(12.8, 1.5),
    },
    "32nm": {
        0.50: MarginEntry(12.1, 2.0),
        0.55: MarginEntry(11.1, 1.7),
        0.60: MarginEntry(10.4, 1.5),
        0.65: MarginEntry(8.9, 1.1),
        0.70: MarginEntry(7.7, 0.9),
    },
    "22nm": {
        0.50: MarginEntry(16.4, 2.8),
        0.55: MarginEntry(17.6, 2.7),
        0.60: MarginEntry(11.1, 1.6),
        0.65: MarginEntry(11.5, 1.5),
        0.70: MarginEntry(9.6, 1.1),
    },
}

# --------------------------------------------------------------------------
# Table 3: combined design points, 128-wide @ 600 mV, 45 nm
# (duplications, voltage margin in mV, power overhead in %)
# --------------------------------------------------------------------------

TABLE3 = [
    (26, 0.0, 4.3),
    (8, 5.0, 2.0),
    (2, 10.0, 1.7),
    (1, 15.0, 2.3),
    (0, 17.0, 2.4),
]

# --------------------------------------------------------------------------
# Overhead model constants reverse-engineered from Tables 1 and 2
# (validated against every intact cell; see DESIGN.md Section 4.4)
# --------------------------------------------------------------------------

#: Area overhead of one spare SIMD FU, percent of PE area (57.8 % / 128).
AREA_PER_SPARE_PCT = 57.8 / 128.0
#: SIMD shuffle network (XRAM) fraction of PE power, percent.
SHUFFLE_POWER_FRACTION_PCT = 13.7
#: XRAM/shuffle power grows ~ width^1.5 (crossbar wire dominated).
SHUFFLE_WIDTH_EXPONENT = 1.5
#: Fraction of PE power consumed in the near-threshold (DV) domain, whose
#: supply the margining technique raises.
DV_DOMAIN_POWER_FRACTION = 0.43
