"""Technology cards for the four nodes the paper studies.

Each :class:`TechnologyNode` bundles

* a :class:`~repro.devices.mosfet.TransregionalModel` (the switching device),
* a :class:`~repro.devices.variation.VariationModel` (RDF/LER/die-to-die),
* an absolute FO4 delay scale,
* the node's nominal supply voltage (the paper's "full voltage" baseline).

The numeric card constants below were produced by the least-squares fit in
:mod:`repro.devices.calibration` against the digitised paper anchors in
:mod:`repro.devices.paper_anchors` (Fig. 1 variation curves and absolute
chain delays for 90 nm; Fig. 2 endpoints, Table 1 spare counts and Table 2
voltage margins for the other nodes).  Re-run the fit with::

    python -m repro.devices.calibration

Gate delay model: ``t_FO4(V) = fo4_scale * V / drive(V, dvth)`` times the
multiplicative variation factor, where ``drive`` is the dimensionless
transregional on-current.  ``fo4_scale`` absorbs load capacitance and the
absolute current level.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.devices.mosfet import TransregionalModel
from repro.devices.variation import VariationModel
from repro.errors import TechnologyError, VoltageRangeError

__all__ = [
    "TechnologyNode",
    "TECHNOLOGY_NODES",
    "get_technology",
    "available_technologies",
]


@dataclass(frozen=True)
class TechnologyNode:
    """A calibrated technology card.

    Parameters
    ----------
    name:
        Registry key, e.g. ``"90nm"``.
    process:
        Human-readable process description, e.g. ``"90nm commercial GP"``.
    nominal_vdd:
        Full-voltage baseline (V); also the maximum voltage the card is
        calibrated for.
    min_vdd:
        Lowest supply the card is calibrated for (V).
    mosfet:
        Switching-device I-V model.
    variation:
        Statistical variation model.
    fo4_scale:
        Absolute delay scale (seconds) such that the nominal FO4 delay is
        ``fo4_scale * vdd / mosfet.drive(vdd)``.
    """

    name: str
    process: str
    nominal_vdd: float
    min_vdd: float
    mosfet: TransregionalModel
    variation: VariationModel
    fo4_scale: float

    def __post_init__(self) -> None:
        if self.nominal_vdd <= self.min_vdd:
            raise TechnologyError(
                f"{self.name}: nominal_vdd ({self.nominal_vdd}) must exceed "
                f"min_vdd ({self.min_vdd})")
        if self.fo4_scale <= 0:
            raise TechnologyError(f"{self.name}: fo4_scale must be positive")

    # -- delay -------------------------------------------------------------

    def fo4_delay(self, vdd, dvth=0.0, mult=0.0, dtype=None):
        """FO4 inverter delay in seconds.

        ``dvth`` (V) and ``mult`` (fraction) are variation draws; both
        broadcast against ``vdd`` so Monte-Carlo arrays evaluate in one
        vectorised call.  ``dtype`` selects the evaluation precision
        (float64 default — the Monte-Carlo kernels' dtype policy).  A
        scalar ``mult`` of exactly ``0.0`` skips the multiplier entirely
        (``x * 1.0`` is an IEEE identity, and the scalar-to-array round
        trip is measurable on per-point callers).
        """
        dtype = float if dtype is None else dtype
        vdd = np.asarray(vdd, dtype=dtype)
        drive = self.mosfet.drive(vdd, dvth, dtype=dtype)
        delay = self.fo4_scale * vdd / drive
        if isinstance(mult, (int, float)) and mult == 0.0:
            return delay
        return delay * (1.0 + np.asarray(mult, dtype=dtype))

    def log_fo4_delay(self, vdd, dvth=0.0):
        """``ln`` of the nominal-multiplier FO4 delay (overflow safe)."""
        vdd = np.asarray(vdd, dtype=float)
        return (np.log(self.fo4_scale) + np.log(vdd)
                - self.mosfet.log_drive(vdd, dvth))

    def fo4_unit(self, vdd) -> float:
        """The variation-free FO4 delay at ``vdd`` (seconds).

        This is the unit the paper's Figures 3-5 use on their x axes:
        delays at a given supply are expressed as multiples of the FO4
        delay *at that same supply*.  Calls the drive model directly
        instead of rebuilding the full :meth:`fo4_delay` argument
        handling — this runs once per sweep point in every figure.
        """
        vdd = float(vdd)
        return float(self.fo4_scale * vdd / self.mosfet.drive(vdd))

    def delay_voltage_slope(self, vdd, dv: float = 1e-4) -> float:
        """``-d ln(FO4 delay) / dV`` (1/V): fractional speedup per volt.

        Central difference; this is what voltage margining exploits
        (a few mV of supply buys back the variation tail).
        """
        vdd = float(vdd)
        lo = self.log_fo4_delay(vdd - dv)
        hi = self.log_fo4_delay(vdd + dv)
        return float(-(hi - lo) / (2.0 * dv))

    # -- validation ----------------------------------------------------------

    def validate_vdd(self, vdd, margin: float = 0.05) -> None:
        """Raise :class:`VoltageRangeError` if outside the calibrated range.

        ``margin`` (V) of slack is allowed above nominal / below minimum so
        that voltage-margining searches (e.g. 620 mV on a 600 mV design
        point) remain legal.
        """
        vdd = np.atleast_1d(np.asarray(vdd, dtype=float))
        if np.any(vdd < self.min_vdd - margin) or np.any(vdd > self.nominal_vdd + margin):
            raise VoltageRangeError(
                f"{self.name}: vdd {vdd} outside calibrated range "
                f"[{self.min_vdd}, {self.nominal_vdd}] (+/- {margin})")

    # -- derived cards -------------------------------------------------------

    def with_variation(self, variation: VariationModel) -> "TechnologyNode":
        """A copy of this card with a different variation model (ablations)."""
        return replace(self, variation=variation)


def _make_nodes() -> dict:
    """Construct the calibrated card registry.

    Card constants baked from ``python -m repro.devices.calibration``;
    see that module for the fitting procedure and residuals.
    """
    nodes = {}
    nodes["90nm"] = TechnologyNode(
        name="90nm",
        process="90nm commercial GP (calibrated vs Fig.1, Sec. 3.2 delays, "
                "Tables 1-2)",
        nominal_vdd=1.0,
        min_vdd=0.45,
        mosfet=TransregionalModel(
            vth0=0.2765, n_slope=1.2365, alpha=1.8004, dibl=0.045,
            vth_split=0.1721, strength_p=0.2922),
        variation=VariationModel(
            sigma_vth_wid=0.00674, sigma_vth_lane=0.00125,
            sigma_vth_d2d=0.00042,
            sigma_mult_rand=0.04261, sigma_mult_lane=0.01634,
            sigma_mult_corr=0.00661),
        fo4_scale=9.9998e-10,
    )
    nodes["45nm"] = TechnologyNode(
        name="45nm",
        process="45nm commercial GP (calibrated vs Tables 1-3)",
        nominal_vdd=1.0,
        min_vdd=0.45,
        mosfet=TransregionalModel(
            vth0=0.2456, n_slope=1.2365, alpha=1.8004, dibl=0.060,
            vth_split=0.1485, strength_p=0.2922),
        variation=VariationModel(
            sigma_vth_wid=0.00882, sigma_vth_lane=0.00557,
            sigma_vth_d2d=0.00237,
            sigma_mult_rand=0.04261, sigma_mult_lane=0.01634,
            sigma_mult_corr=0.00661),
        fo4_scale=6.99986e-10,
    )
    nodes["32nm"] = TechnologyNode(
        name="32nm",
        process="32nm PTM HP (calibrated vs Tables 1-2)",
        nominal_vdd=0.9,
        min_vdd=0.45,
        mosfet=TransregionalModel(
            vth0=0.3082, n_slope=1.2365, alpha=1.8004, dibl=0.070,
            vth_split=0.1978, strength_p=0.2922),
        variation=VariationModel(
            sigma_vth_wid=0.01149, sigma_vth_lane=0.00312,
            sigma_vth_d2d=0.00032,
            sigma_mult_rand=0.04261, sigma_mult_lane=0.01634,
            sigma_mult_corr=0.00661),
        fo4_scale=4.8999e-10,
    )
    nodes["22nm"] = TechnologyNode(
        name="22nm",
        process="22nm PTM HP (calibrated vs Fig.2 endpoints, Tables 1-2)",
        nominal_vdd=0.8,
        min_vdd=0.45,
        mosfet=TransregionalModel(
            vth0=0.2477, n_slope=1.2365, alpha=1.8004, dibl=0.080,
            vth_split=0.1180, strength_p=0.2922),
        variation=VariationModel(
            sigma_vth_wid=0.00205, sigma_vth_lane=0.00521,
            sigma_vth_d2d=0.00666,
            sigma_mult_rand=0.04261, sigma_mult_lane=0.01634,
            sigma_mult_corr=0.00661),
        fo4_scale=3.42993e-10,
    )
    return nodes


#: Registry of the four calibrated nodes, keyed by name.
TECHNOLOGY_NODES: dict = _make_nodes()


def available_technologies() -> tuple:
    """Names of the registered technology nodes, scaling order."""
    return tuple(TECHNOLOGY_NODES)


def get_technology(name: str) -> TechnologyNode:
    """Look up a technology card by name (e.g. ``"90nm"``).

    Accepts a few spelling variants (``"90"``, ``"90NM"``).
    """
    key = str(name).strip().lower()
    if not key.endswith("nm"):
        key += "nm"
    try:
        return TECHNOLOGY_NODES[key]
    except KeyError:
        raise TechnologyError(
            f"unknown technology {name!r}; available: "
            f"{', '.join(TECHNOLOGY_NODES)}") from None
