"""Device-level substrate: transistor model, variation sources, technology cards.

This package replaces the paper's HSPICE + foundry/PTM model decks with an
analytic, numpy-vectorised transregional MOSFET model
(:mod:`repro.devices.mosfet`), a statistical variation model
(:mod:`repro.devices.variation`), and four calibrated technology cards
(:mod:`repro.devices.technology`).  The calibration machinery that produced
the card constants is in :mod:`repro.devices.calibration` and the digitised
paper numbers it fits against are in :mod:`repro.devices.paper_anchors`.
"""

from repro.devices.mosfet import TransregionalModel
from repro.devices.variation import (
    VariationModel,
    pelgrom_sigma_vth,
    ler_sigma_vth,
    combine_sigmas,
)
from repro.devices.technology import (
    TechnologyNode,
    get_technology,
    available_technologies,
    TECHNOLOGY_NODES,
)
from repro.devices.corners import (
    CornerCard,
    derive_corner,
    standard_corners,
    corner_vs_statistical,
)
from repro.devices.spatial import (
    SpatialField,
    effective_lane_sigma,
    lane_correlation_matrix,
)

__all__ = [
    "SpatialField",
    "effective_lane_sigma",
    "lane_correlation_matrix",
    "CornerCard",
    "derive_corner",
    "standard_corners",
    "corner_vs_statistical",
    "TransregionalModel",
    "VariationModel",
    "pelgrom_sigma_vth",
    "ler_sigma_vth",
    "combine_sigmas",
    "TechnologyNode",
    "get_technology",
    "available_technologies",
    "TECHNOLOGY_NODES",
]
