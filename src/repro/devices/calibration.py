"""Calibration of the technology cards against the paper's anchors.

The paper's numbers come from HSPICE Monte-Carlo on proprietary foundry
decks (90/45 nm GP) and PTM decks (32/22 nm); we have neither, so each
:class:`~repro.devices.technology.TechnologyNode` is fitted so that the
*published* numbers are reproduced by our analytic model:

* **90 nm (primary fit)** — Fig. 1's single-inverter and 50-FO4-chain
  3sigma/mu at six voltages, the absolute chain delays of Section 3.2
  (22.05 ns @ 0.5 V, 8.99 ns @ 0.6 V), Table 2's voltage margins,
  Table 1's spare counts and Fig. 4's performance drops.  Free parameters:
  device card (vth0, n, alpha), all four variation sigmas, and the
  absolute FO4 scale.
* **45/32/22 nm (secondary fits)** — the multiplicative (voltage-
  independent) variation floor is inherited from the 90 nm fit; the
  remaining five parameters (vth0, n, alpha, sigma_vth_wid,
  sigma_vth_d2d) are fitted to Table 2 margins, Table 1 spare counts,
  and — for 22 nm — the Fig. 2 endpoints and the Fig. 4 drop quoted in
  the text.  Saturated Table-1 cells (">128") become one-sided hinge
  residuals.  The FO4 scale per node follows a fixed 0.7x-per-generation
  delay-scaling convention (it cancels out of every dimensionless anchor;
  it only positions Table 4's absolute nanosecond columns).

Spare-count residuals use the *continuous* spare solver
(:func:`repro.sparing.duplication.continuous_spares`) so the least-squares
objective is smooth.

Run the fit (takes a few minutes) and print updated card constants::

    python -m repro.devices.calibration            # all nodes
    python -m repro.devices.calibration 90nm       # one node
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

import numpy as np
from scipy.optimize import least_squares

from repro.devices.mosfet import TransregionalModel
from repro.devices.paper_anchors import (
    CHAIN50_ABS_DELAY_NS,
    FIG1_CHAIN50_3SIGMA,
    FIG1_SINGLE_3SIGMA,
    FIG2_POINTS,
    FIG4_PERF_DROP,
    NOMINAL_VDD,
    TABLE1,
    TABLE2,
)
from repro.devices.technology import TECHNOLOGY_NODES, TechnologyNode
from repro.devices.variation import VariationModel
from repro.errors import CalibrationError

__all__ = ["CardParameters", "make_card", "fit_primary", "fit_secondary",
           "fit_all"]

#: Saturated spare-count residuals only penalise solutions *below* this.
_SATURATION_FLOOR = 160.0
#: Cap applied to continuous spare counts before log-residuals.
_SPARE_CAP = 400.0
#: Fixed DIBL per node (weakly identifiable; physically motivated ramp).
_DIBL = {"90nm": 0.045, "45nm": 0.060, "32nm": 0.070, "22nm": 0.080}


@dataclass(frozen=True)
class CardParameters:
    """Free parameters of one technology card."""

    vth0: float
    n_slope: float
    alpha: float
    sigma_vth_wid: float
    sigma_vth_lane: float
    sigma_vth_d2d: float
    sigma_mult_rand: float
    sigma_mult_corr: float
    fo4_scale: float
    sigma_mult_lane: float = 0.0
    vth_split: float = 0.0
    strength_p: float = 1.0

    def as_card(self, name: str) -> TechnologyNode:
        return make_card(name, self)

    def format_card(self, name: str) -> str:
        """Python snippet for baking into technology.py."""
        return (
            f'TechnologyNode(\n'
            f'    name="{name}", process="...", '
            f'nominal_vdd={NOMINAL_VDD[name]}, min_vdd=0.45,\n'
            f'    mosfet=TransregionalModel(vth0={self.vth0:.4f}, '
            f'n_slope={self.n_slope:.4f}, alpha={self.alpha:.4f}, '
            f'dibl={_DIBL[name]:.3f},\n'
            f'        vth_split={self.vth_split:.4f}, '
            f'strength_p={self.strength_p:.4f}),\n'
            f'    variation=VariationModel(\n'
            f'        sigma_vth_wid={self.sigma_vth_wid:.5f}, '
            f'sigma_vth_lane={self.sigma_vth_lane:.5f}, '
            f'sigma_vth_d2d={self.sigma_vth_d2d:.5f},\n'
            f'        sigma_mult_rand={self.sigma_mult_rand:.5f}, '
            f'sigma_mult_lane={self.sigma_mult_lane:.5f}, '
            f'sigma_mult_corr={self.sigma_mult_corr:.5f}),\n'
            f'    fo4_scale={self.fo4_scale:.5e})'
        )


def make_card(name: str, p: CardParameters) -> TechnologyNode:
    """Build a throwaway technology card from a parameter set."""
    return TechnologyNode(
        name=name,
        process=f"{name} (calibration candidate)",
        nominal_vdd=NOMINAL_VDD[name],
        min_vdd=0.45,
        mosfet=TransregionalModel(
            vth0=p.vth0, n_slope=p.n_slope, alpha=p.alpha, dibl=_DIBL[name],
            vth_split=p.vth_split, strength_p=p.strength_p),
        variation=VariationModel(
            sigma_vth_wid=p.sigma_vth_wid,
            sigma_vth_lane=p.sigma_vth_lane,
            sigma_vth_d2d=p.sigma_vth_d2d,
            sigma_mult_rand=p.sigma_mult_rand,
            sigma_mult_lane=p.sigma_mult_lane,
            sigma_mult_corr=p.sigma_mult_corr),
        fo4_scale=p.fo4_scale,
    )


# ---------------------------------------------------------------------------
# Residual builders
# ---------------------------------------------------------------------------


def _analyzer(card: TechnologyNode):
    from repro.core.analyzer import VariationAnalyzer
    return VariationAnalyzer(card)


def _spare_residual(analyzer, vdd: float, paper_spares: float,
                    saturated: bool) -> float:
    from repro.sparing.duplication import continuous_spares
    alpha = continuous_spares(analyzer, vdd, max_spares=_SPARE_CAP)
    alpha = min(alpha, _SPARE_CAP)
    if saturated:
        # One-sided: only penalise if clearly *not* saturated.
        if alpha >= _SATURATION_FLOOR:
            return 0.0
        return np.log1p(_SATURATION_FLOOR) - np.log1p(alpha)
    return np.log1p(alpha) - np.log1p(paper_spares)


def _margin_residual(analyzer, vdd: float, paper_mv: float) -> float:
    from repro.mitigation.voltage_margin import solve_voltage_margin
    sol = solve_voltage_margin(analyzer, vdd)
    model_mv = sol.margin_mv if sol.feasible else 1e3 * 0.2
    # Relative error with a 1 mV floor (Table 2 spans 1.7-19.6 mV).
    return (model_mv - paper_mv) / max(1.0, 0.25 * paper_mv)


def _common_residuals(analyzer, node: str, weights: dict) -> list:
    """Margin, spare and drop residuals shared by all node fits."""
    res = []
    for vdd, entry in TABLE2[node].items():
        res.append(weights["margin"] * _margin_residual(analyzer, vdd,
                                                        entry.margin_mv))
    for vdd, entry in TABLE1[node].items():
        res.append(weights["spares"] * _spare_residual(
            analyzer, vdd, entry.spares, entry.saturated))
    for vdd, drop_pct in FIG4_PERF_DROP.get(node, {}).items():
        model = 100.0 * analyzer.performance_drop(vdd)
        res.append(weights["drop"] * (model - drop_pct) / 1.0)
    return res


def _unpack_primary(theta: np.ndarray) -> CardParameters:
    """theta = [vth0, vth_split, n, alpha, strength_p,
    s_wid, s_lane, s_d2d, s_mr, s_ml, s_mc, ln_scale]."""
    return CardParameters(
        vth0=theta[0], vth_split=theta[1], n_slope=theta[2], alpha=theta[3],
        strength_p=theta[4],
        sigma_vth_wid=theta[5], sigma_vth_lane=theta[6],
        sigma_vth_d2d=theta[7], sigma_mult_rand=theta[8],
        sigma_mult_lane=theta[9],
        sigma_mult_corr=theta[10], fo4_scale=float(np.exp(theta[11])))


def primary_residuals(theta: np.ndarray) -> np.ndarray:
    """Residual vector for the 90 nm fit."""
    p = _unpack_primary(theta)
    analyzer = _analyzer(make_card("90nm", p))

    res = []
    # Fig. 1(a): single-inverter 3sigma/mu (percent).
    for vdd, pct in FIG1_SINGLE_3SIGMA.items():
        model = 100.0 * analyzer.chain_variation(vdd, 1)
        res.append((model - pct) / 1.0)
    # Fig. 1(b): chain-of-50 3sigma/mu — weighted up: it drives the
    # architecture-level results.
    for vdd, pct in FIG1_CHAIN50_3SIGMA.items():
        model = 100.0 * analyzer.chain_variation(vdd, 50)
        res.append(3.0 * (model - pct) / 0.5)
    # Section 3.2 absolute chain delays.
    for vdd, ns in CHAIN50_ABS_DELAY_NS.items():
        model_ns = 1e9 * analyzer.chain_mean_delay(vdd, 50)
        res.append(10.0 * np.log(model_ns / ns))
    res.extend(_common_residuals(analyzer, "90nm",
                                 {"margin": 1.0, "spares": 3.0, "drop": 1.0}))
    return np.asarray(res, dtype=float)


def _unpack_secondary(theta: np.ndarray, node: str,
                      inherited: CardParameters) -> CardParameters:
    """theta = [vth0, vth_split, s_wid, s_lane, s_d2d].

    Device shape (n, alpha, strength) and the voltage-flat multiplicative
    floor are inherited from the primary (90 nm) fit — only the threshold
    placement and the Vth-variation magnitudes move with technology.
    """
    return CardParameters(
        vth0=theta[0], vth_split=theta[1],
        n_slope=inherited.n_slope, alpha=inherited.alpha,
        strength_p=inherited.strength_p,
        sigma_vth_wid=theta[2], sigma_vth_lane=theta[3],
        sigma_vth_d2d=theta[4],
        sigma_mult_rand=inherited.sigma_mult_rand,
        sigma_mult_lane=inherited.sigma_mult_lane,
        sigma_mult_corr=inherited.sigma_mult_corr,
        fo4_scale=_scaled_fo4(node, inherited.fo4_scale),
    )


def secondary_residuals(theta: np.ndarray, node: str,
                        inherited: CardParameters) -> np.ndarray:
    """Residual vector for a 45/32/22 nm fit."""
    p = _unpack_secondary(theta, node, inherited)
    analyzer = _analyzer(make_card(node, p))
    res = _common_residuals(analyzer, node,
                            {"margin": 2.0, "spares": 3.0, "drop": 2.0})
    if node == "22nm":
        for vdd, pct in FIG2_POINTS["22nm"].items():
            model = 100.0 * analyzer.chain_variation(vdd, 50)
            res.append(2.0 * (model - pct) / 1.0)
    return np.asarray(res, dtype=float)


def _scaled_fo4(node: str, fo4_90nm: float) -> float:
    """0.7x delay per generation (90 -> 45 -> 32 -> 22 nm)."""
    generations = {"90nm": 0, "45nm": 1, "32nm": 2, "22nm": 3}[node]
    return fo4_90nm * 0.7 ** generations


# ---------------------------------------------------------------------------
# Analytic initial guess (delta method on the Fig. 1 anchors)
# ---------------------------------------------------------------------------


def decompose_fig1_anchors(v_hi: float = 1.0, v_lo: float = 0.5):
    """Split Fig. 1's variation into random/correlated components.

    With ``s`` = single-gate and ``k`` = 50-chain 3sigma/mu (fractions):
    ``s^2 = r^2 + c^2`` and ``k^2 = r^2/50 + c^2`` (random averages along
    the chain, correlated does not), giving the per-gate random (``r``)
    and correlated (``c``) relative delay sigmas at each voltage.
    """
    out = {}
    for vdd in (v_hi, v_lo):
        s = FIG1_SINGLE_3SIGMA[vdd] / 300.0
        k = FIG1_CHAIN50_3SIGMA[vdd] / 300.0
        r2 = (s ** 2 - k ** 2) / (1.0 - 1.0 / 50.0)
        c2 = max(s ** 2 - r2, 1e-8)
        out[vdd] = (np.sqrt(r2), np.sqrt(c2))
    return out


def initial_guess_90nm(vth0: float, vth_split: float, n_slope: float,
                       alpha: float, strength_p: float = 1.0,
                       v_hi: float = 1.0, v_lo: float = 0.5) -> np.ndarray:
    """Delta-method inversion of the Fig. 1 anchors for a device guess.

    Given a candidate device card, the threshold sensitivity ``S(V) =
    d ln(delay)/d Vth`` converts the decomposed relative sigmas into the
    variation parameters:
    ``r(V)^2 = sigma_mr^2 + S(V)^2 sigma_wid^2`` (and likewise for the
    correlated pair).  The FO4 scale comes from the 22.05 ns @ 0.5 V
    chain-delay anchor.
    """
    mosfet = TransregionalModel(vth0=vth0, n_slope=n_slope, alpha=alpha,
                                dibl=_DIBL["90nm"], vth_split=vth_split,
                                strength_p=strength_p)
    s_hi = float(mosfet.delay_vth_sensitivity(v_hi))
    s_lo = float(mosfet.delay_vth_sensitivity(v_lo))
    anchors = decompose_fig1_anchors(v_hi, v_lo)
    (r_hi, c_hi), (r_lo, c_lo) = anchors[v_hi], anchors[v_lo]

    def split(lo: float, hi: float):
        """Solve lo^2 = m^2 + S_lo^2 w^2, hi^2 = m^2 + S_hi^2 w^2 ... with
        lo measured at v_lo (large S) and hi at v_hi (small S)."""
        w2 = (lo ** 2 - hi ** 2) / max(s_lo ** 2 - s_hi ** 2, 1e-12)
        w2 = max(w2, 1e-10)
        m2 = max(hi ** 2 - s_hi ** 2 * w2, 1e-10)
        return np.sqrt(w2), np.sqrt(m2)

    sigma_wid, sigma_mr = split(r_lo, r_hi)
    sigma_corr, sigma_mcorr = split(c_lo, c_hi)
    # Split the correlated components between the lane and die scales;
    # Table 1's small working spare counts imply most of both is
    # lane-level (spareable) rather than die-level.
    sigma_lane = 0.9 * sigma_corr
    sigma_d2d = np.sqrt(max(sigma_corr ** 2 - sigma_lane ** 2, 1e-10))
    sigma_ml = 0.85 * sigma_mcorr
    sigma_mc = np.sqrt(max(sigma_mcorr ** 2 - sigma_ml ** 2, 1e-10))
    target = CHAIN50_ABS_DELAY_NS[0.5] * 1e-9 / 50.0
    fo4_scale = target * float(mosfet.drive(0.5)) / 0.5
    return np.array([vth0, vth_split, n_slope, alpha, strength_p,
                     sigma_wid, sigma_lane, sigma_d2d,
                     sigma_mr, sigma_ml, sigma_mc, np.log(fo4_scale)])


# ---------------------------------------------------------------------------
# Fitters
# ---------------------------------------------------------------------------

_PRIMARY_BOUNDS = (
    np.array([0.15, 0.00, 1.20, 1.00, 0.05, 0.002, 0.000, 0.000, 0.000,
              0.000, 0.000, np.log(1e-12)]),
    np.array([0.50, 0.40, 2.00, 2.50, 5.00, 0.090, 0.050, 0.050, 0.090,
              0.050, 0.060, np.log(1e-9)]),
)

#: Multi-start grid for the primary fit (vth0, vth_split, n, alpha,
#: strength_p).  The paper's Fig. 1 demands a sensitivity knee right at
#: 0.5-0.6 V: an unbalanced inverter whose weak device has its threshold
#: near 0.5 V while the strong device keeps super-threshold behaviour flat.
_PRIMARY_STARTS = (
    (0.30, 0.14, 1.24, 1.77, 0.21),
    (0.30, 0.20, 1.40, 1.80, 1.00),
    (0.25, 0.25, 1.35, 2.00, 1.50),
    (0.35, 0.15, 1.30, 1.60, 0.80),
    (0.28, 0.18, 1.30, 1.90, 0.40),
)


def fit_primary(verbose: bool = True, starts=_PRIMARY_STARTS) -> CardParameters:
    """Fit the 90 nm card (11 free parameters, ~27 anchors).

    Multi-start from delta-method guesses; keeps the lowest-cost optimum.
    """
    best = None
    for vth0, vth_split, n_slope, alpha, strength in starts:
        x0 = initial_guess_90nm(vth0, vth_split, n_slope, alpha, strength)
        x0 = np.clip(x0, _PRIMARY_BOUNDS[0] + 1e-9, _PRIMARY_BOUNDS[1] - 1e-9)
        result = least_squares(primary_residuals, x0, bounds=_PRIMARY_BOUNDS,
                               diff_step=1e-2, xtol=1e-12, ftol=1e-12,
                               verbose=0, max_nfev=800)
        if verbose:
            print(f"start vth0={vth0} split={vth_split} n={n_slope} "
                  f"alpha={alpha} strength={strength}: cost {result.cost:.1f}")
        if best is None or result.cost < best.cost:
            best = result
    if best is None:  # pragma: no cover - defensive
        raise CalibrationError("90nm fit produced no result")
    p = _unpack_primary(best.x)
    if verbose:
        print(f"best cost {best.cost:.2f}")
        print(p.format_card("90nm"))
    return p


def fit_secondary(node: str, inherited: CardParameters,
                  verbose: bool = True) -> CardParameters:
    """Fit a 45/32/22 nm card (5 free parameters)."""
    if node not in ("45nm", "32nm", "22nm"):
        raise CalibrationError(f"secondary fit is for 45/32/22nm, got {node}")
    # Start from the inherited device scaled toward the node's regime, with
    # variation grown per the paper's observation that LER makes advanced
    # nodes worse.
    growth = {"45nm": 1.5, "32nm": 1.8, "22nm": 2.2}[node]
    vth_shift = {"45nm": 0.01, "32nm": 0.02, "22nm": 0.03}[node]
    x0 = np.array([
        inherited.vth0 - vth_shift,
        inherited.vth_split,
        inherited.sigma_vth_wid * growth,
        inherited.sigma_vth_lane * growth,
        inherited.sigma_vth_d2d * growth,
    ])
    bounds = (
        np.array([0.15, 0.00, 0.002, 0.000, 0.000]),
        np.array([0.50, 0.40, 0.120, 0.080, 0.060]),
    )
    x0 = np.clip(x0, bounds[0] + 1e-9, bounds[1] - 1e-9)
    result = least_squares(secondary_residuals, x0, bounds=bounds,
                           args=(node, inherited), diff_step=1e-2,
                           xtol=1e-12, ftol=1e-12,
                           verbose=2 if verbose else 0, max_nfev=400)
    if not result.success and result.status <= 0:
        raise CalibrationError(f"{node} fit failed: {result.message}")
    p = _unpack_secondary(result.x, node, inherited)
    if verbose:
        print(f"{node} cost {result.cost:.2f}")
        print(p.format_card(node))
    return p


def fit_all(verbose: bool = True) -> dict:
    """Fit every node; returns {node: CardParameters}."""
    primary = fit_primary(verbose=verbose)
    cards = {"90nm": primary}
    for node in ("45nm", "32nm", "22nm"):
        cards[node] = fit_secondary(node, primary, verbose=verbose)
    return cards


def card_parameters_of(node: str) -> CardParameters:
    """Extract the baked card constants as a :class:`CardParameters`."""
    card = TECHNOLOGY_NODES[node]
    return CardParameters(
        vth0=card.mosfet.vth0,
        vth_split=card.mosfet.vth_split,
        strength_p=card.mosfet.strength_p,
        n_slope=card.mosfet.n_slope,
        alpha=card.mosfet.alpha,
        sigma_vth_wid=card.variation.sigma_vth_wid,
        sigma_vth_lane=card.variation.sigma_vth_lane,
        sigma_vth_d2d=card.variation.sigma_vth_d2d,
        sigma_mult_rand=card.variation.sigma_mult_rand,
        sigma_mult_lane=card.variation.sigma_mult_lane,
        sigma_mult_corr=card.variation.sigma_mult_corr,
        fo4_scale=card.fo4_scale,
    )


def main(argv=None) -> int:  # pragma: no cover - CLI utility
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        fit_all()
        return 0
    node = argv[0]
    if node == "90nm":
        fit_primary()
    else:
        fit_secondary(node, card_parameters_of("90nm"))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
