r"""Transregional MOSFET on-current model.

The paper evaluates delay variation with HSPICE Monte-Carlo runs on foundry
90/45 nm GP decks and 32/22 nm PTM HP decks.  We replace SPICE with the
EKV-style *transregional* drain-current expression

.. math::

    I_{on}(V)\;\propto\;\Bigl[\ln\bigl(1 + e^{(V - V_{th,eff})/(2 n v_T)}\bigr)\Bigr]^{\alpha}

which interpolates smoothly between the sub-threshold exponential
(:math:`V \ll V_{th}`), the near-threshold transition region the paper
operates in, and a super-threshold power law.  The exponent
:math:`\alpha \in (1, 2]` absorbs velocity saturation: the classic
long-channel EKV form has :math:`\alpha = 2`, a fully velocity-saturated
short-channel device approaches :math:`\alpha = 1`.  DIBL is modelled as a
linear :math:`V_{th}` reduction with drain bias.

Only *ratios* of currents enter gate delays (the absolute current scale is
absorbed into each technology card's delay-scale constant), so the model is
expressed dimensionlessly via :meth:`TransregionalModel.drive`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import VoltageRangeError
from repro.units import THERMAL_VOLTAGE

__all__ = ["TransregionalModel"]


def _softplus(x, dtype=float):
    """Numerically stable ``ln(1 + exp(x))`` for array input.

    Written as ``max(x, 0) + log1p(exp(-|x|))`` rather than ``logaddexp``:
    identical to <1 ulp, but ~2x faster — this sits on the hot path of
    every quadrature kernel build and Monte-Carlo batch.  ``dtype``
    selects the evaluation precision (float64 default).
    """
    x = np.asarray(x, dtype=dtype)
    out = np.empty_like(x)
    np.abs(x, out=out)
    np.negative(out, out=out)
    np.exp(out, out=out)
    np.log1p(out, out=out)
    out += np.maximum(x, 0.0)
    return out


def _sigmoid(x):
    """Numerically stable logistic function for array input."""
    x = np.asarray(x, dtype=float)
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    expx = np.exp(x[~pos])
    out[~pos] = expx / (1.0 + expx)
    return out


@dataclass(frozen=True)
class TransregionalModel:
    """Analytic transregional I-V model for one technology's inverter.

    The model represents the two switching devices of a static CMOS
    inverter.  The pull-down branch has threshold ``vth0``; an optional
    *unbalanced* pull-up branch has threshold ``vth0 + vth_split`` and a
    relative strength ``strength_p``.  Near-threshold operation magnifies
    N/P imbalance: once the supply approaches the weaker device's
    threshold, that device dominates both the delay and its threshold
    sensitivity — the sharp sensitivity knee the paper's Fig. 1 data shows
    between 0.6 V and 0.5 V.  The effective drive is the harmonic mean of
    the two branch drives (average of rise and fall delays).

    Parameters
    ----------
    vth0:
        Zero-bias threshold voltage of the strong branch (V).
    n_slope:
        Sub-threshold slope factor *n* (dimensionless, typically 1.2-1.8).
    alpha:
        Velocity-saturation exponent on the softplus term (1 < alpha <= 2.5).
    dibl:
        Drain-induced barrier lowering coefficient (V of Vth reduction per
        V of drain bias).
    vth_split:
        Extra threshold of the weak branch above ``vth0`` (V); 0 collapses
        the model to a single balanced device.
    strength_p:
        Strong-inversion strength of the weak branch relative to the
        strong branch.
    temperature_k:
        Junction temperature in kelvin; sets the thermal voltage.
    """

    vth0: float
    n_slope: float
    alpha: float = 2.0
    dibl: float = 0.0
    vth_split: float = 0.0
    strength_p: float = 1.0
    temperature_k: float = 300.0

    def __post_init__(self) -> None:
        if self.vth0 <= 0:
            raise VoltageRangeError(f"vth0 must be positive, got {self.vth0}")
        if self.n_slope < 1.0:
            raise VoltageRangeError(f"n_slope must be >= 1, got {self.n_slope}")
        if not 0.5 <= self.alpha <= 3.0:
            raise VoltageRangeError(f"alpha out of sane range (0.5..3): {self.alpha}")
        if self.dibl < 0:
            raise VoltageRangeError(f"dibl must be non-negative, got {self.dibl}")
        if self.vth_split < 0:
            raise VoltageRangeError(
                f"vth_split must be non-negative, got {self.vth_split}")
        if self.strength_p <= 0:
            raise VoltageRangeError(
                f"strength_p must be positive, got {self.strength_p}")

    @property
    def thermal_voltage(self) -> float:
        """Thermal voltage kT/q at the model temperature (V)."""
        return THERMAL_VOLTAGE * self.temperature_k / 300.0

    @property
    def vth_weak(self) -> float:
        """Zero-bias threshold of the weak (pull-up) branch (V)."""
        return self.vth0 + self.vth_split

    def vth_effective(self, vdd, dvth=0.0, dtype=float):
        """Effective strong-branch threshold at ``vdd`` with shift ``dvth``.

        ``dvth`` is the per-device threshold-voltage deviation sampled from
        the variation model (RDF + LER + lane + die).
        """
        vdd = np.asarray(vdd, dtype=dtype)
        return self.vth0 - self.dibl * vdd + np.asarray(dvth, dtype=dtype)

    def _overdrives(self, vdd, dvth=0.0, dtype=float):
        """Normalised overdrives (strong branch, weak branch)."""
        two_n_vt = 2.0 * self.n_slope * self.thermal_voltage
        vdd = np.asarray(vdd, dtype=dtype)
        base = vdd - self.vth_effective(vdd, dvth, dtype=dtype)
        return base / two_n_vt, (base - self.vth_split) / two_n_vt

    def overdrive(self, vdd, dvth=0.0):
        """Normalised strong-branch overdrive ``(Vdd - Vth_eff)/(2 n vT)``."""
        return self._overdrives(vdd, dvth)[0]

    def drive(self, vdd, dvth=0.0, dtype=float):
        """Dimensionless on-current (harmonic mean of the branch drives).

        Broadcasting follows numpy rules, so ``vdd`` may be a scalar and
        ``dvth`` a large Monte-Carlo sample array (or vice versa).
        ``dtype`` selects the evaluation precision (float64 default; the
        kernels' reference path passes float32 under that policy).
        """
        x_n, x_p = self._overdrives(vdd, dvth, dtype=dtype)
        d_n = _softplus(x_n, dtype=dtype) ** self.alpha
        if self.vth_split == 0.0 and self.strength_p == 1.0:
            return d_n
        d_p = self.strength_p * _softplus(x_p, dtype=dtype) ** self.alpha
        return 2.0 * d_n * d_p / (d_n + d_p)

    def log_drive(self, vdd, dvth=0.0):
        """``ln(drive)`` computed without overflow."""
        return np.log(self.drive(vdd, dvth))

    def subthreshold_leakage(self, vdd, dvth=0.0):
        """Dimensionless leakage current at ``Vgs = 0`` (drain at ``vdd``).

        Dominated by the strong (lower-Vth) branch:
        :math:`I_{leak} \\propto e^{-V_{th,eff}/(n v_T)}`, normalised to 1.0
        at ``vth_eff = 0``.
        """
        n_vt = self.n_slope * self.thermal_voltage
        return np.exp(-self.vth_effective(vdd, dvth) / n_vt)

    def delay_vth_sensitivity(self, vdd, dvth=0.0):
        """Analytic :math:`\\partial \\ln(delay) / \\partial V_{th}` (1/V).

        Each branch contributes ``alpha * sigmoid(x) / (2 n vT *
        softplus(x))`` weighted by its share of the total resistance, so
        the weak branch dominates the sensitivity as soon as it dominates
        the delay.  The result grows from roughly ``alpha / (Vdd-Vth)`` in
        super-threshold to ``1/(n vT)`` deep in sub-threshold — the
        amplification mechanism the paper studies.
        """
        two_n_vt = 2.0 * self.n_slope * self.thermal_voltage
        x_n, x_p = self._overdrives(vdd, dvth)
        s_n = self.alpha * _sigmoid(x_n) / (two_n_vt * _softplus(x_n))
        if self.vth_split == 0.0 and self.strength_p == 1.0:
            return s_n
        d_n = _softplus(x_n) ** self.alpha
        d_p = self.strength_p * _softplus(x_p) ** self.alpha
        s_p = self.alpha * _sigmoid(x_p) / (two_n_vt * _softplus(x_p))
        w_n = d_p / (d_n + d_p)     # resistance share of the strong branch
        return s_n * w_n + s_p * (1.0 - w_n)

    def region(self, vdd) -> str:
        """Classify an operating voltage: 'sub', 'near' or 'super' threshold.

        Follows the paper's convention (Section 2 / Appendix A), judged
        against the weaker (delay-dominating) device: sub-threshold for
        ``Vdd < Vth``, near-threshold within about 50 % above ``Vth``,
        super-threshold beyond.
        """
        vdd = float(vdd)
        if vdd <= 0:
            raise VoltageRangeError(f"vdd must be positive, got {vdd}")
        vth = float(self.vth_effective(vdd)) + self.vth_split
        if vdd < vth:
            return "sub"
        if vdd < 1.5 * vth:
            return "near"
        return "super"
