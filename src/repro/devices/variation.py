"""Statistical variation model.

The paper inserts two variation sources into its SPICE decks — threshold
voltage shifts from random dopant fluctuations (RDF) and line-edge roughness
(LER) — both as normal distributions, and observes that uncorrelated
within-die variation averages out along a logic chain while a residual
floor remains (Fig. 1b: a 50-stage chain keeps 5.76 % 3sigma/mu at 1 V,
far above the 15.58 %/sqrt(50) ~ 2.2 % a purely random model would give).

We therefore model *six* components at three spatial scales.  For chip
sample *s*, lane *j* and gate *i*:

* ``dvth_ijs = D_s + L_js + eps_i`` — threshold shift, with a *die-to-die*
  part ``D_s ~ N(0, sigma_vth_d2d)`` shared by every gate on the chip, a
  *per-lane* spatially-correlated part ``L_js ~ N(0, sigma_vth_lane)``
  shared by the gates of one SIMD lane (within-die variation has a spatial
  correlation length of hundreds of microns — paths inside one 16-bit lane
  slice are co-located, different lanes sit far apart), and a *per-gate*
  random part ``eps_i ~ N(0, sigma_vth_wid)`` (RDF + LER);
* the gate delay is additionally multiplied by
  ``(1 + M_s)(1 + m_js)(1 + m_i)`` — die / lane / gate multiplicative
  components (global and local geometry, Leff/tox, mobility).

The threshold components dominate at near-threshold voltages (their delay
impact is amplified by the exponential I-V); the multiplicative components
set the voltage-independent floor visible at nominal voltage.  The
*spatial split* of the correlated variation matters architecturally: a
standalone test chain (Fig. 1b) sees lane+die correlation as one floor,
but only the *lane-level* share produces slow-lane outliers that
structural duplication can replace — the die-level share slows every lane
alike and can only be bought back with supply margin.

Helper functions :func:`pelgrom_sigma_vth` and :func:`ler_sigma_vth` provide
the conventional physical scaling laws used to sanity-check the calibrated
effective sigmas against device sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "VariationModel",
    "GateSamples",
    "DieSamples",
    "pelgrom_sigma_vth",
    "ler_sigma_vth",
    "combine_sigmas",
]


def pelgrom_sigma_vth(avt_mv_um: float, width_um: float, length_um: float) -> float:
    """Pelgrom-law RDF threshold mismatch sigma in volts.

    ``sigma(Vth) = A_vt / sqrt(W * L)`` with the matching coefficient
    ``avt_mv_um`` in the customary mV*um units.
    """
    if width_um <= 0 or length_um <= 0:
        raise ConfigurationError("device W and L must be positive")
    return avt_mv_um * 1e-3 / np.sqrt(width_um * length_um)


def ler_sigma_vth(sigma_ler_nominal_v: float, length_nm: float,
                  reference_length_nm: float = 22.0) -> float:
    """LER-induced threshold sigma in volts, scaled with gate length.

    Line-edge roughness amplitude is roughly constant with scaling, so its
    relative impact grows as the gate length shrinks; we use the simple
    ``sigma ~ (L_ref / L)`` scaling with a reference at 22 nm, matching the
    paper's observation that LER is what makes 32/22 nm markedly worse.
    """
    if length_nm <= 0:
        raise ConfigurationError("gate length must be positive")
    return sigma_ler_nominal_v * (reference_length_nm / length_nm)


def combine_sigmas(*sigmas: float) -> float:
    """Root-sum-square combination of independent normal sigmas."""
    return float(np.sqrt(sum(float(s) ** 2 for s in sigmas)))


def _cast(arr: np.ndarray, dtype) -> np.ndarray:
    """Casting helper for the samplers' dtype policy (no-op by default)."""
    if dtype is None or arr.dtype == dtype:
        return arr
    return arr.astype(dtype)


def _fill_normal(rng: np.random.Generator, out, sigma: float, staging) -> None:
    """Fill ``out`` with ``N(0, sigma)`` draws without allocating.

    ``rng.standard_normal(out=...)`` then an in-place scale — bitwise the
    same as ``rng.normal(0.0, sigma, shape)`` on the same stream.  Zero
    sigma writes zeros without consuming the stream (matching the
    ``sample_*`` convention).  Non-float64 ``out`` draws through the
    float64 ``staging`` buffer so every precision sees the same variates.
    """
    if not sigma:
        out[...] = 0.0
        return
    if out.dtype == np.float64:
        rng.standard_normal(out=out)
        np.multiply(out, sigma, out=out)
        return
    if staging is None or staging.shape != out.shape:
        staging = np.empty(out.shape, dtype=np.float64)
    rng.standard_normal(out=staging)
    np.multiply(staging, sigma, out=staging)
    out[...] = staging


@dataclass(frozen=True)
class GateSamples:
    """Per-gate variation draws: threshold shifts and multiplicative noise."""

    dvth: np.ndarray
    mult: np.ndarray


@dataclass(frozen=True)
class LaneSamples:
    """Per-lane spatially-correlated variation draws."""

    dvth: np.ndarray
    mult: np.ndarray


@dataclass(frozen=True)
class DieSamples:
    """Per-die (chip-sample) correlated variation draws."""

    dvth: np.ndarray
    mult: np.ndarray


_SIGMA_FIELDS = (
    "sigma_vth_wid", "sigma_vth_lane", "sigma_vth_d2d",
    "sigma_mult_rand", "sigma_mult_lane", "sigma_mult_corr",
)


@dataclass(frozen=True)
class VariationModel:
    """Six-component, three-scale variation model (see module docstring).

    All sigmas are standard deviations: threshold components in volts,
    multiplicative components as fractions of the nominal delay.
    """

    sigma_vth_wid: float
    sigma_vth_d2d: float
    sigma_mult_rand: float
    sigma_mult_corr: float
    sigma_vth_lane: float = 0.0
    sigma_mult_lane: float = 0.0

    def __post_init__(self) -> None:
        for field in _SIGMA_FIELDS:
            value = getattr(self, field)
            if value < 0:
                raise ConfigurationError(f"{field} must be non-negative, got {value}")

    # -- sampling ----------------------------------------------------------

    def sample_gates(self, rng: np.random.Generator, shape,
                     size_scale: float = 1.0, dtype=None) -> GateSamples:
        """Draw per-gate (within-die) variation for an array of gates.

        ``size_scale`` scales the *random* threshold sigma by
        ``1/sqrt(size_scale)`` — a gate built from devices ``size_scale``
        times larger than minimum averages its dopant fluctuations
        (Pelgrom scaling).  ``dtype`` casts the returned draws (the
        normals themselves are always generated in float64, so float32
        callers see the same variates rounded — not a different stream).
        """
        if size_scale <= 0:
            raise ConfigurationError("size_scale must be positive")
        sigma_vth = self.sigma_vth_wid / np.sqrt(size_scale)
        dvth = rng.normal(0.0, sigma_vth, size=shape) if sigma_vth else np.zeros(shape)
        mult = (rng.normal(0.0, self.sigma_mult_rand, size=shape)
                if self.sigma_mult_rand else np.zeros(shape))
        return GateSamples(dvth=_cast(dvth, dtype), mult=_cast(mult, dtype))

    def fill_gates(self, rng: np.random.Generator, dvth_out, mult_out,
                   size_scale: float = 1.0, staging=None) -> None:
        """In-place :meth:`sample_gates`: fill preallocated arrays.

        Writes the threshold draws into ``dvth_out`` and the
        multiplicative draws into ``mult_out`` (drawn in that order, via
        ``rng.standard_normal(out=...)`` fills scaled in place) without
        allocating — the zero-copy hot path used by
        :class:`~repro.core.kernels.MonteCarloKernel`.  float64 outputs
        are bit-identical to :meth:`sample_gates` on the same stream.
        For non-float64 outputs pass ``staging``, a float64 buffer of
        the same shape: draws land there and are cast on assignment, so
        every precision consumes identical variates.
        """
        if size_scale <= 0:
            raise ConfigurationError("size_scale must be positive")
        sigma_vth = self.sigma_vth_wid / np.sqrt(size_scale)
        _fill_normal(rng, dvth_out, sigma_vth, staging)
        _fill_normal(rng, mult_out, self.sigma_mult_rand, staging)

    def sample_lanes(self, rng: np.random.Generator, shape,
                     dtype=None, shift: float = 0.0) -> LaneSamples:
        """Draw the per-lane spatially-correlated variation.

        ``shift`` (in units of ``sigma_vth_lane``) adds a deterministic
        mean offset to the threshold draws *after* they leave the
        stream, so a shifted proposal consumes exactly the same variates
        as the nominal one — the seam importance sampling
        (:mod:`repro.core.tailsampling`) builds on.  Shifting a
        zero-sigma component is a configuration error (the likelihood
        ratio would be undefined).
        """
        self._check_shift(shift, self.sigma_vth_lane, "sigma_vth_lane")
        dvth = (rng.normal(0.0, self.sigma_vth_lane, size=shape)
                if self.sigma_vth_lane else np.zeros(shape))
        if shift:
            dvth = dvth + shift * self.sigma_vth_lane
        mult = (rng.normal(0.0, self.sigma_mult_lane, size=shape)
                if self.sigma_mult_lane else np.zeros(shape))
        return LaneSamples(dvth=_cast(dvth, dtype), mult=_cast(mult, dtype))

    def sample_dies(self, rng: np.random.Generator, n_dies: int,
                    dtype=None, shift: float = 0.0) -> DieSamples:
        """Draw the correlated (die-to-die) variation for ``n_dies`` chips.

        ``shift`` mean-shifts the threshold draws by ``shift *
        sigma_vth_d2d`` volts post-draw (same stream, same variates as
        the unshifted run) — see :meth:`sample_lanes`.
        """
        if n_dies <= 0:
            raise ConfigurationError("n_dies must be positive")
        self._check_shift(shift, self.sigma_vth_d2d, "sigma_vth_d2d")
        dvth = (rng.normal(0.0, self.sigma_vth_d2d, size=n_dies)
                if self.sigma_vth_d2d else np.zeros(n_dies))
        if shift:
            dvth = dvth + shift * self.sigma_vth_d2d
        mult = (rng.normal(0.0, self.sigma_mult_corr, size=n_dies)
                if self.sigma_mult_corr else np.zeros(n_dies))
        return DieSamples(dvth=_cast(dvth, dtype), mult=_cast(mult, dtype))

    @staticmethod
    def _check_shift(shift: float, sigma: float, name: str) -> None:
        if shift and not sigma:
            raise ConfigurationError(
                f"cannot mean-shift the {name} component: its sigma is 0 "
                "(the likelihood ratio would be undefined)")
        if not np.isfinite(shift):
            raise ConfigurationError(f"shift must be finite, got {shift}")

    # -- derived views -----------------------------------------------------

    @property
    def sigma_vth_total(self) -> float:
        """Total per-gate threshold sigma (all spatial scales, RSS)."""
        return combine_sigmas(self.sigma_vth_wid, self.sigma_vth_lane,
                              self.sigma_vth_d2d)

    @property
    def sigma_vth_chain_corr(self) -> float:
        """Threshold sigma a co-located test chain sees as *correlated*.

        A standalone chain (Fig. 1b) fits inside one spatial-correlation
        region, so both the lane- and die-level components shift all of its
        gates together.
        """
        return combine_sigmas(self.sigma_vth_lane, self.sigma_vth_d2d)

    @property
    def sigma_mult_chain_corr(self) -> float:
        """Multiplicative sigma a co-located test chain sees as correlated."""
        return combine_sigmas(self.sigma_mult_lane, self.sigma_mult_corr)

    def without_correlated(self) -> "VariationModel":
        """A copy with the lane and die components zeroed (ablation helper)."""
        return replace(self, sigma_vth_d2d=0.0, sigma_mult_corr=0.0,
                       sigma_vth_lane=0.0, sigma_mult_lane=0.0)

    def without_random(self) -> "VariationModel":
        """A copy with the per-gate components zeroed (ablation helper)."""
        return replace(self, sigma_vth_wid=0.0, sigma_mult_rand=0.0)

    def scaled(self, factor: float) -> "VariationModel":
        """A copy with every sigma multiplied by ``factor``."""
        if factor < 0:
            raise ConfigurationError("scale factor must be non-negative")
        return VariationModel(
            sigma_vth_wid=self.sigma_vth_wid * factor,
            sigma_vth_d2d=self.sigma_vth_d2d * factor,
            sigma_mult_rand=self.sigma_mult_rand * factor,
            sigma_mult_corr=self.sigma_mult_corr * factor,
            sigma_vth_lane=self.sigma_vth_lane * factor,
            sigma_mult_lane=self.sigma_mult_lane * factor,
        )
