"""Process corners derived from the statistical variation model.

Classic sign-off uses fixed corners (SS/TT/FF) instead of statistics.
This module derives corner cards from a calibrated technology's
*die-level* distribution — a slow corner is a die whose correlated
threshold and multiplicative draws sit ``n`` sigma slow — enabling the
standard methodology comparison:

* corner STA treats every device as worst-case -> pessimistic vs the
  99 % statistical quantile for wide parallel structures;
* yet corners ignore within-die spread -> optimistic about the max over
  12,800 paths on a *typical* die.

:func:`corner_vs_statistical` quantifies both effects on the calibrated
cards (an analysis the paper implies when arguing for Monte-Carlo).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

__all__ = ["CornerCard", "derive_corner", "standard_corners",
           "corner_vs_statistical"]

#: Conventional corner definitions: name -> die-level sigma count
#: (positive = slow silicon).
STANDARD_CORNER_SIGMAS = {"FF": -3.0, "TT": 0.0, "SS": +3.0}


@dataclass(frozen=True)
class CornerCard:
    """A fixed-corner view of a statistical technology card."""

    name: str
    sigma_count: float
    tech: object                # TechnologyNode with shifted nominals
    dvth_shift: float           # applied die-level threshold shift (V)
    mult_shift: float           # applied die-level delay multiplier - 1

    def fo4_delay(self, vdd):
        """Corner FO4 delay (correlated shifts folded into the card)."""
        return self.tech.fo4_delay(vdd)


def derive_corner(tech, sigma_count: float, name: str | None = None,
                  include_within_die: bool = False) -> CornerCard:
    """Build a corner card ``sigma_count`` die-sigmas from typical.

    The die-level threshold and multiplicative sigmas shift the card's
    nominals; within-die randomness is zeroed (corners are deterministic)
    unless ``include_within_die`` keeps it for hybrid analyses.
    """
    var = tech.variation
    dvth = sigma_count * var.sigma_vth_d2d
    mult = sigma_count * var.sigma_mult_corr
    mosfet = replace(tech.mosfet, vth0=max(tech.mosfet.vth0 + dvth, 1e-3))
    variation = (var.without_correlated() if include_within_die
                 else var.scaled(0.0))
    corner_tech = replace(
        tech,
        name=f"{tech.name}-{name or f'{sigma_count:+.1f}s'}",
        mosfet=mosfet,
        variation=variation,
        fo4_scale=tech.fo4_scale * (1.0 + mult),
    )
    return CornerCard(
        name=name or f"{sigma_count:+.1f}sigma",
        sigma_count=float(sigma_count),
        tech=corner_tech,
        dvth_shift=float(dvth),
        mult_shift=float(mult),
    )


def standard_corners(tech) -> dict:
    """The conventional FF/TT/SS trio for a technology card."""
    return {name: derive_corner(tech, sigmas, name=name)
            for name, sigmas in STANDARD_CORNER_SIGMAS.items()}


def corner_vs_statistical(analyzer, vdd, *, sigma_count: float = 3.0) -> dict:
    """Compare SS-corner sign-off with the statistical 99 % quantile.

    Returns the corner chip delay (every path at the corner — no
    within-die spread, so the chip delay is just the corner path delay),
    the statistical 99 % chip quantile, and their ratio.  Ratios below
    1.0 mean the corner *under*-signs-off the wide SIMD machine (it
    misses the max-of-12,800-paths effect); above 1.0 it is pessimistic.
    """
    if sigma_count <= 0:
        raise ConfigurationError("sigma_count must be positive")
    corner = derive_corner(analyzer.tech, sigma_count, name="SS")
    corner_delay = (float(corner.tech.fo4_delay(vdd))
                    * analyzer.chain_length)
    statistical = analyzer.chip_quantile(vdd)
    return {
        "corner_delay": corner_delay,
        "statistical_delay": statistical,
        "ratio": corner_delay / statistical,
        "corner": corner,
    }
