"""Sign-off-as-a-service: the asyncio HTTP front end.

:class:`SignoffServer` keeps everything expensive warm across requests —
technology cards, per-architecture :class:`~repro.core.analyzer.
VariationAnalyzer` instances (and with them the engine kernel LRUs), one
shared on-disk :class:`~repro.runtime.cache.QuantileCache`, and the
runtime's worker pool — and answers sign-off queries over JSON/HTTP:

=========================== ====== =====================================
route                       method semantics
=========================== ====== =====================================
``/healthz``                GET    liveness + uptime + drain/degrade flags
``/readyz``                 GET    readiness: 503 when draining/degraded
``/metrics``                GET    OpenMetrics text (Prometheus scrape)
``/v1/metrics``             GET    metrics snapshot (latency gauges set)
``/v1/debug/flight``        GET    flight-recorder ring dump
``/v1/chip_quantile``       POST   one point -> scalar quantile
``/v1/chip_quantile_batch`` POST   broadcastable arrays -> value list
``/v1/query``               POST   alias of ``chip_quantile_batch``
``/v1/signoff_sweep``       POST   sweep + nominal baseline, FO4 + drops
``/v1/tail_quantile``       POST   importance-sampled deep-tail estimates
=========================== ====== =====================================

Overload resilience: the dispatcher's adaptive admission control sheds
requests whose estimated queue wait already exceeds their deadline (429
``shed`` with ``Retry-After``), goes cache-hit-only once the queue
saturates (429 ``degraded``), and shed responses are accounted in
``serve.shed_latency_ms`` — never in the served-latency SLO window.  On
SIGTERM the server *drains* instead of cancelling: in-flight solves
finish under the ``drain_timeout_s`` budget while new solve requests
are answered 503 ``draining`` with ``Connection: close``; only then do
the listener, dispatcher and idle connections come down.  Network
faults from the :mod:`~repro.resilience.faultlab` (``conn_reset``,
``slow_read``, ``partial_write``, ``garbled_response``) are injected at
this transport, targeted by request ordinal.

Telemetry: requests carrying an ``X-Repro-Trace: trace_id[/span_id]``
header are answered inside a ``serve.request`` span joined to the
client's trace (the trace id is echoed in the JSON payload for
correlation), latency/QPS/error-rate gauges are computed over a rolling
~60 s window rather than process lifetime, and a flight recorder keeps
the last few hundred hot-path events for ``/v1/debug/flight``, the
SIGUSR2 dump and the shutdown manifest.

Every solve funnels through the :class:`~repro.serve.dispatcher.
MicroBatchDispatcher`, so concurrent clients share batch solves and a
single-flight memo (see that module for the guarantees).  Responses
carry ``values`` (floats, which JSON round-trips bit-exactly) plus
``values_hex`` (``float.hex()``) for byte-for-byte comparisons.

:func:`run_server` is the blocking entry point the CLI target wraps: it
serves until SIGINT/SIGTERM, then drains in-flight batches and returns a
summary dict for the run manifest.
"""

from __future__ import annotations

import asyncio
import contextlib
import json as _json
import signal
import sys
import time
from dataclasses import dataclass

import numpy as np

from repro.core.analyzer import VariationAnalyzer
from repro.devices.technology import available_technologies
from repro.errors import ConfigurationError
from repro.obs.api import build_obs
from repro.obs.flight import NOOP_FLIGHT, FlightRecorder
from repro.obs.metrics import WindowedCounter, WindowedHistogram
from repro.obs.openmetrics import OPENMETRICS_CONTENT_TYPE, render_openmetrics
from repro.runtime import (
    QuantileCache,
    build_runtime,
    release_worker_workspaces,
)
from repro.resilience.faultlab import NETWORK_FAULTS, active_plan, slow_seconds
from repro.runtime.context import activate_runtime
from repro.serve.dispatcher import MicroBatchDispatcher
from repro.core.tailsampling import ShiftProposal
from repro.serve.protocol import (
    BadRequestError,
    DrainingError,
    ServeError,
    TailKey,
    error_response,
    json_response,
    parse_query,
    parse_tail_query,
    parse_trace_header,
    read_request,
    text_response,
)

__all__ = ["ServeConfig", "SignoffServer", "run_server",
           "LATENCY_BUCKETS_MS"]

#: ``serve.latency_ms`` histogram bounds (sub-ms cache hits to slow solves).
LATENCY_BUCKETS_MS = (1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500,
                      5000, 10000)

#: Routes that enqueue solves (gated by draining / admission control).
SOLVE_ROUTES = ("/v1/chip_quantile", "/v1/chip_quantile_batch",
                "/v1/query", "/v1/signoff_sweep", "/v1/tail_quantile")

#: Deterministic non-HTTP bytes sent by an injected ``garbled_response``.
GARBLED_BYTES = b"\x15\x03\x01\x00\x02\x02\x16repro-garbled-response\r\n\r\n"


@dataclass
class ServeConfig:
    """Knobs for one server instance (all validated at construction).

    ``port=0`` lets the OS pick a free port (announced on stdout by
    :func:`run_server` and available as ``SignoffServer.port``).
    ``deadline_ms=None`` defaults each request's deadline to the retry
    policy's ``shard_timeout_s``.  ``backend``/``block_elems`` select
    the Monte-Carlo kernel execution backend and block budget for any
    runtime the server builds itself (a caller-supplied runtime keeps
    its own policies).

    Telemetry knobs: ``window_s`` sizes the rolling window behind the
    live latency/QPS/error-rate gauges; ``slo_availability`` and
    ``slo_latency_ms`` are the SLO targets the burn-rate gauges measure
    against (error budget = ``1 - slo_availability``, shared by the
    latency budget); ``flight_capacity`` bounds the flight-recorder
    ring (0 disables it entirely).

    Resilience knobs: ``shed`` enables adaptive admission control
    (``shed=False`` falls back to the hard max-queue 429);
    ``degraded_ratio`` is the queue saturation at which the server goes
    cache-hit-only; ``drain_timeout_s`` bounds how long a SIGTERM drain
    waits for in-flight solves before failing them.
    """

    host: str = "127.0.0.1"
    port: int = 8437
    max_batch: int = 32
    batch_window_ms: float = 2.0
    max_queue: int = 1024
    deadline_ms: float | None = None
    backend: str = "numpy"
    block_elems: int | None = None
    window_s: float = 60.0
    slo_availability: float = 0.999
    slo_latency_ms: float = 250.0
    flight_capacity: int = 512
    shed: bool = True
    degraded_ratio: float = 0.75
    drain_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        from repro.core.backends import BACKENDS
        if not 0 <= int(self.port) <= 65535:
            raise ConfigurationError(f"port must be in [0, 65535], got {self.port}")
        if int(self.max_batch) < 1:
            raise ConfigurationError(
                f"max_batch must be >= 1, got {self.max_batch}")
        if float(self.batch_window_ms) < 0:
            raise ConfigurationError(
                f"batch_window_ms must be >= 0, got {self.batch_window_ms}")
        if int(self.max_queue) < 1:
            raise ConfigurationError(
                f"max_queue must be >= 1, got {self.max_queue}")
        if self.deadline_ms is not None and float(self.deadline_ms) <= 0:
            raise ConfigurationError(
                f"deadline_ms must be > 0, got {self.deadline_ms}")
        if str(self.backend) not in BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}")
        if self.block_elems is not None and int(self.block_elems) < 1:
            raise ConfigurationError(
                f"block_elems must be >= 1, got {self.block_elems}")
        if float(self.window_s) <= 0:
            raise ConfigurationError(
                f"window_s must be > 0, got {self.window_s}")
        if not 0.0 < float(self.slo_availability) < 1.0:
            raise ConfigurationError(
                "slo_availability must be in (0, 1), got "
                f"{self.slo_availability}")
        if float(self.slo_latency_ms) <= 0:
            raise ConfigurationError(
                f"slo_latency_ms must be > 0, got {self.slo_latency_ms}")
        if int(self.flight_capacity) < 0:
            raise ConfigurationError(
                f"flight_capacity must be >= 0, got {self.flight_capacity}")
        if not 0.0 < float(self.degraded_ratio) <= 1.0:
            raise ConfigurationError(
                f"degraded_ratio must be in (0, 1], got {self.degraded_ratio}")
        if float(self.drain_timeout_s) <= 0:
            raise ConfigurationError(
                f"drain_timeout_s must be > 0, got {self.drain_timeout_s}")


class SignoffServer:
    """One serving instance bound to a runtime (see module docstring)."""

    def __init__(self, config: ServeConfig,
                 runtime=None) -> None:
        self.config = config
        self._owns_runtime = runtime is None
        if runtime is None:
            runtime = build_runtime(jobs=1, metrics=True,
                                    backend=config.backend,
                                    block_elems=config.block_elems)
        if not runtime.obs.metrics.enabled:
            # The dispatcher's coalescing stats double as its accounting;
            # serving without a live registry is never worth the saving.
            runtime.obs = build_obs(trace=runtime.obs.tracer.enabled,
                                    metrics=True)
        self._runtime = runtime
        self.metrics = runtime.obs.metrics
        self.flight = (FlightRecorder(config.flight_capacity)
                       if config.flight_capacity else NOOP_FLIGHT)
        self._win_latency = WindowedHistogram(
            "serve.latency_ms", LATENCY_BUCKETS_MS,
            window_s=config.window_s)
        self._win_requests = WindowedCounter("serve.requests",
                                             window_s=config.window_s)
        self._win_errors = WindowedCounter("serve.errors",
                                           window_s=config.window_s)
        retry = getattr(runtime.sampler, "retry", None) or None
        self._deadline_s = (
            float(config.deadline_ms) / 1000.0
            if config.deadline_ms is not None
            else float((retry.shard_timeout_s if retry is not None
                        else 300.0)))
        self.dispatcher = MicroBatchDispatcher(
            self._solve, self.metrics,
            max_batch=config.max_batch,
            window_s=float(config.batch_window_ms) / 1000.0,
            max_queue=config.max_queue,
            policy=retry,
            on_idle=self._on_idle,
            tracer=runtime.obs.tracer,
            flight=self.flight,
            rolling_window_s=config.window_s,
            shed=config.shed,
            degraded_ratio=config.degraded_ratio)
        self._nodes = frozenset(available_technologies())
        self._cache = QuantileCache()
        self._analyzers: dict = {}
        self._server: asyncio.base_events.Server | None = None
        self._conn_tasks: set = set()
        self._started = time.monotonic()
        self.requests = 0
        self.drained_clean = True
        self._draining = False
        self._active_requests = 0
        self._req_ordinal = 0
        self._faults = getattr(runtime, "faults", None)

    # -- engine plumbing -----------------------------------------------------

    def _analyzer(self, key) -> VariationAnalyzer:
        """The served analyzer for one engine identity (loop thread only)."""
        analyzer = self._analyzers.get(key)
        if analyzer is None:
            analyzer = VariationAnalyzer(
                key.node, width=key.width,
                paths_per_lane=key.paths_per_lane,
                chain_length=key.chain_length,
                quantile_cache=self._cache)
            self._analyzers[key] = analyzer
        return analyzer

    def _on_idle(self) -> None:
        """Release kernel workspaces when the request queue drains.

        A long-lived server's memoised kernels would otherwise keep
        their grow-only workspaces at the high-water mark of the largest
        request ever served.  Runs on the event loop between bursts, so
        there is no solve in flight to race with; the buffers regrow on
        the next batch.  The gauge is set on the server's registry
        directly (no obs context is active on the loop thread).
        """
        freed = release_worker_workspaces()
        if freed:
            self.metrics.counter("serve.idle_releases").inc()
            self.metrics.counter("serve.idle_released_bytes").inc(freed)
            self.metrics.gauge("kernels.workspace_bytes").set(0.0)

    def _solve(self, key, points, ctx=None) -> list:
        """Blocking batch solve; runs on the dispatcher's solver thread.

        ``run_in_executor`` does not propagate contextvars, so the
        server's runtime is re-activated here — the solve sees the same
        pool, fault plan and observability as a CLI run would.  ``ctx``
        is the dispatcher's ``(trace_id, batch_span_id)``: the solve
        span joins the request's trace, and the worker-context payloads
        built inside it carry that trace into the pool workers.
        """
        if isinstance(key, TailKey):
            return self._solve_tail(key, points, ctx)
        analyzer = self._analyzers[key]
        vdds = np.array([p[0] for p in points])
        sps = np.array([p[1] for p in points])
        qs = np.array([p[2] for p in points])
        with activate_runtime(self._runtime):
            with self._runtime.obs.tracer.span(
                    "serve.solve", ctx=ctx, node=key.node,
                    points=len(points)):
                out = analyzer.chip_quantiles(vdds, sps, qs, invariant=True)
        return [float(v) for v in np.atleast_1d(out)]

    def _solve_tail(self, key: TailKey, points, ctx=None) -> list:
        """Batch of importance-sampled tail estimates (solver thread).

        Per-point results are full diagnostic dicts (value, ESS,
        weight-max-ratio, proposal, ...), memoised by the dispatcher
        under ``(TailKey, point)`` like any other solve; the analyzer's
        own memo + disk cache sit underneath, so a restarted server
        re-serves old estimates without re-sampling.  The ``tail.*``
        gauges land on the server's registry via the re-activated
        runtime.
        """
        analyzer = self._analyzers[key.engine]
        proposal = (None if key.shift is None else
                    ShiftProposal.defensive(key.shift,
                                            key.defensive_weight))
        out = []
        with activate_runtime(self._runtime):
            with self._runtime.obs.tracer.span(
                    "serve.tail_solve", ctx=ctx, node=key.node,
                    points=len(points), n_samples=key.n_samples):
                for vdd, spares, q in points:
                    est = analyzer.chip_tail_quantile(
                        vdd, q, spares=spares, n_samples=key.n_samples,
                        proposal=proposal, root_seed=key.root_seed,
                        defensive_weight=key.defensive_weight)
                    out.append(est.as_dict())
        return out

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port)

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the OS's pick)."""
        if self._server is None:
            return int(self.config.port)
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        """True once a graceful drain has begun (readiness fails)."""
        return self._draining

    async def stop(self, *, drain_timeout_s: float | None = None) -> None:
        """Graceful drain then shutdown, bounded by ``drain_timeout_s``.

        The listener stays open for the drain window: in-flight solves
        finish normally while new solve requests are answered 503
        ``draining`` with ``Connection: close`` — so load balancers see
        a clean drain rather than connection-refused.  Whatever is still
        stranded when the budget runs out is failed fast by the
        dispatcher; idle keep-alive connections are cancelled last.
        """
        budget = (float(self.config.drain_timeout_s)
                  if drain_timeout_s is None else float(drain_timeout_s))
        loop = asyncio.get_running_loop()
        deadline = loop.time() + budget
        self._draining = True
        self.flight.record("drain", phase="begin", budget_s=budget)
        while ((self._active_requests or self.dispatcher.queued)
                and loop.time() < deadline):
            await asyncio.sleep(0.005)
        self.drained_clean = not (self._active_requests
                                  or self.dispatcher.queued)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.dispatcher.aclose(
            drain_timeout_s=max(0.0, deadline - loop.time()))
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks),
                                 return_exceptions=True)
        self.flight.record("drain", phase="end", clean=self.drained_clean)
        self._set_summary_gauges()
        if self._owns_runtime:
            self._runtime.close()

    def _set_summary_gauges(self) -> None:
        """Refresh the live gauges from the rolling window.

        The latency percentiles, QPS, error rate and SLO burn rates all
        reflect the last ``window_s`` seconds — a traffic shift moves
        them within one sub-window even on a server that has been up for
        weeks (the cumulative ``serve.latency_ms`` histogram remains in
        the registry for manifests).  Burn rate is consumption of the
        error budget ``1 - slo_availability``: 1.0 means errors (or
        requests slower than ``slo_latency_ms``) are arriving exactly
        fast enough to exhaust the budget, >1 means faster.
        """
        gauge = self.metrics.gauge
        win = self._win_latency
        gauge("serve.latency_p50_ms").set(win.percentile(0.50))
        gauge("serve.latency_p99_ms").set(win.percentile(0.99))
        gauge("serve.coalesce_ratio").set(
            self.dispatcher.rolling_coalesce_ratio)
        gauge("serve.qps").set(self._win_requests.rate())
        requests = self._win_requests.total()
        errors = self._win_errors.total()
        error_rate = errors / requests if requests else 0.0
        gauge("serve.error_rate").set(error_rate)
        budget = 1.0 - self.config.slo_availability
        gauge("serve.slo_availability_target").set(
            self.config.slo_availability)
        gauge("serve.slo_availability_burn_rate").set(error_rate / budget)
        gauge("serve.slo_latency_target_ms").set(self.config.slo_latency_ms)
        gauge("serve.slo_latency_burn_rate").set(
            win.fraction_over(self.config.slo_latency_ms) / budget)
        gauge("serve.uptime_s").set(time.monotonic() - self._started)

    # -- connection handling -------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ServeError as exc:
                    writer.write(error_response(exc, keep_alive=False))
                    await writer.drain()
                    return
                if request is None:
                    return
                method, path, headers, body = request
                ordinal = self._req_ordinal
                self._req_ordinal += 1
                close = headers.get("connection", "").lower() == "close"
                closing = close
                self._active_requests += 1
                try:
                    response = await self._dispatch(method, path, headers,
                                                    body)
                    closing = close or self._draining
                    if closing:
                        response = response.replace(
                            b"Connection: keep-alive",
                            b"Connection: close", 1)
                    fault = self._consume_net_fault(ordinal)
                    if fault is not None:
                        if await self._deliver_faulty(fault, ordinal,
                                                      response, writer):
                            return
                    else:
                        writer.write(response)
                        await writer.drain()
                finally:
                    self._active_requests -= 1
                if closing:
                    return
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.CancelledError):
            pass
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    def _consume_net_fault(self, ordinal: int):
        """The network fault kind firing on this request ordinal, if any."""
        plan = self._faults if self._faults is not None else active_plan()
        if plan is None:
            return None
        for kind in NETWORK_FAULTS:
            if plan.consume(kind, ordinal):
                return kind
        return None

    async def _deliver_faulty(self, kind: str, ordinal: int,
                              response: bytes,
                              writer: asyncio.StreamWriter) -> bool:
        """Deliver (or destroy) one response under an injected fault.

        Returns True when the connection was torn down and the handler
        loop must exit.  The solve itself already ran — so a client
        retry after ``conn_reset`` exercises the dispatcher's memo,
        proving the request is idempotent end to end.
        """
        self.metrics.counter("serve.net_faults").inc()
        self.metrics.counter(f"serve.net_fault.{kind}").inc()
        self.flight.record("net_fault", fault=kind, request=ordinal)
        ledger = getattr(self._runtime, "ledger", None)
        if ledger is not None:
            ledger.record("net_fault_injected", kind=kind, request=ordinal)
        if kind == "conn_reset":
            writer.transport.abort()
            return True
        if kind == "slow_read":
            await asyncio.sleep(slow_seconds())
            writer.write(response)
            await writer.drain()
            return False
        if kind == "partial_write":
            writer.write(response[:max(1, len(response) // 2)])
            with contextlib.suppress(Exception):
                await writer.drain()
            writer.transport.abort()
            return True
        # garbled_response: valid TCP, nonsense HTTP.
        writer.write(GARBLED_BYTES)
        with contextlib.suppress(Exception):
            await writer.drain()
        return True

    async def _dispatch(self, method: str, path: str, headers: dict,
                        body: bytes) -> bytes:
        self.requests += 1
        self.metrics.counter("serve.requests").inc()
        self._win_requests.inc()
        tctx = parse_trace_header(headers.get("x-repro-trace"))
        self.flight.record("admit", path=path, method=method)
        t0 = time.monotonic()
        response: bytes | None = None
        with self._runtime.obs.tracer.span("serve.request", ctx=tctx,
                                           path=path):
            try:
                response = await self._route(method, path, body, tctx)
            except ServeError as exc:
                self.metrics.counter("serve.errors").inc()
                if exc.status >= 500 and exc.code != "draining":
                    self._win_errors.inc()
                response = error_response(exc)
            except Exception as exc:   # noqa: BLE001 - boundary to clients
                self.metrics.counter("serve.errors").inc()
                self._win_errors.inc()
                self.flight.record("fault", path=path,
                                   error=type(exc).__name__)
                response = json_response(500, {"error": "internal",
                                               "message": repr(exc)})
            finally:
                latency_ms = (time.monotonic() - t0) * 1000.0
                status = int(response[9:12]) if response is not None else 500
                if status in (429, 503):
                    # Shed/drain rejections answer in microseconds;
                    # mixing them into the served-latency window would
                    # fake an SLO recovery exactly when the server is
                    # refusing work.  They get their own instruments.
                    self.metrics.counter("serve.shed.responses").inc()
                    self.metrics.histogram(
                        "serve.shed_latency_ms",
                        buckets=LATENCY_BUCKETS_MS).observe(latency_ms)
                else:
                    self.metrics.histogram(
                        "serve.latency_ms",
                        buckets=LATENCY_BUCKETS_MS).observe(latency_ms)
                    self._win_latency.observe(latency_ms)
        return response

    async def _route(self, method: str, path: str, body: bytes,
                     tctx) -> bytes:
        if path == "/healthz":
            if method != "GET":
                return json_response(405, {"error": "method_not_allowed",
                                           "message": "use GET"})
            payload = {"ok": True,
                       "uptime_s": time.monotonic() - self._started,
                       "queued": self.dispatcher.queued,
                       "draining": self._draining,
                       "degraded": self.dispatcher.degraded,
                       "queue_saturation": round(
                           self.dispatcher.saturation, 6)}
            return json_response(200, payload)
        if path == "/readyz":
            if method != "GET":
                return json_response(405, {"error": "method_not_allowed",
                                           "message": "use GET"})
            saturation = round(self.dispatcher.saturation, 6)
            if self._draining:
                return json_response(503, {"ready": False,
                                           "reason": "draining",
                                           "error": "not_ready",
                                           "message": "server is draining"})
            if self.dispatcher.degraded:
                return json_response(503, {"ready": False,
                                           "reason": "degraded",
                                           "error": "not_ready",
                                           "message": "queue saturated",
                                           "queue_saturation": saturation})
            return json_response(200, {"ready": True,
                                       "queue_saturation": saturation})
        if path == "/v1/metrics":
            if method != "GET":
                return json_response(405, {"error": "method_not_allowed",
                                           "message": "use GET"})
            self._set_summary_gauges()
            return json_response(200, self.metrics.as_dict())
        if path == "/metrics":
            if method != "GET":
                return json_response(405, {"error": "method_not_allowed",
                                           "message": "use GET"})
            self._set_summary_gauges()
            return text_response(
                200, render_openmetrics(self.metrics.as_dict()),
                OPENMETRICS_CONTENT_TYPE)
        if path == "/v1/debug/flight":
            if method != "GET":
                return json_response(405, {"error": "method_not_allowed",
                                           "message": "use GET"})
            return json_response(200, self.flight.snapshot())
        if path in SOLVE_ROUTES:
            if method != "POST":
                return json_response(405, {"error": "method_not_allowed",
                                           "message": "use POST"})
            if self._draining:
                exc = DrainingError(
                    "server is draining; retry against another replica")
                exc.retry_after_s = 1.0
                raise exc
            try:
                parsed = _json.loads(body.decode() or "null")
            except (UnicodeDecodeError, _json.JSONDecodeError) as exc:
                raise BadRequestError(
                    f"body is not valid JSON: {exc}") from None
            if path == "/v1/signoff_sweep":
                payload = await self._signoff_sweep(parsed)
            elif path == "/v1/tail_quantile":
                payload = await self._tail_query(parsed)
            else:
                payload = await self._query(
                    parsed, scalar=path == "/v1/chip_quantile")
            if tctx is not None:
                payload["trace_id"] = tctx[0]
            return json_response(200, payload)
        return json_response(404, {"error": "not_found",
                                   "message": f"no route {path!r}"})

    # -- query handlers ------------------------------------------------------

    def _trace_ctx(self):
        """The enclosing request span's ``(trace_id, span_id)``, if live."""
        tracer = self._runtime.obs.tracer
        if not tracer.enabled:
            return None
        return tracer.current_trace_id(), tracer.current_span()

    async def _query(self, body, *, scalar: bool) -> dict:
        key, points = parse_query(body, available_nodes=self._nodes)
        if scalar and len(points) != 1:
            raise BadRequestError(
                "chip_quantile takes exactly one point; use "
                "chip_quantile_batch for arrays")
        self._analyzer(key)
        self.metrics.counter("serve.points").inc(len(points))
        values = await self.dispatcher.resolve(
            key, points, timeout=self._deadline_s,
            trace_ctx=self._trace_ctx())
        payload = {"node": key.node, "n": len(points),
                   "values": values,
                   "values_hex": [float(v).hex() for v in values]}
        if scalar:
            payload["value"] = values[0]
        return payload

    async def _tail_query(self, body) -> dict:
        """``/v1/tail_quantile``: importance-sampled deep-tail estimates.

        Routed through the same dispatcher memo as the deterministic
        quantiles — repeated identical tail runs (same ``TailKey`` and
        point) are answered from memo without re-sampling — and each
        value comes back with its full diagnostics under ``estimates``.
        """
        key, points = parse_tail_query(body, available_nodes=self._nodes)
        self._analyzer(key.engine)
        self.metrics.counter("serve.points").inc(len(points))
        self.metrics.counter("serve.tail_points").inc(len(points))
        estimates = await self.dispatcher.resolve(
            key, points, timeout=self._deadline_s,
            trace_ctx=self._trace_ctx())
        values = [est["value"] for est in estimates]
        payload = {"node": key.node, "n": len(points),
                   "values": values,
                   "values_hex": [float(v).hex() for v in values],
                   "estimates": estimates,
                   "n_samples": key.n_samples,
                   "root_seed": key.root_seed}
        if len(points) == 1:
            payload["value"] = values[0]
        return payload

    async def _signoff_sweep(self, body) -> dict:
        """Sweep + nominal baseline: quantiles, FO4 units, perf drops.

        The nominal full-voltage spare-less point is appended to the
        solve so the paper's ``fo4chipd`` drop metric comes back in one
        round trip (and the baseline point lands in every cache layer).
        """
        key, points = parse_query(body, available_nodes=self._nodes)
        analyzer = self._analyzer(key)
        q = points[0][2]
        baseline = (round(float(analyzer.nominal_vdd), 9), 0.0, q)
        self.metrics.counter("serve.points").inc(len(points) + 1)
        values = await self.dispatcher.resolve(
            key, points + [baseline], timeout=self._deadline_s,
            trace_ctx=self._trace_ctx())
        base_fo4 = values[-1] / analyzer.fo4_unit(baseline[0])
        sweep = values[:-1]
        fo4 = [v / analyzer.fo4_unit(p[0]) for v, p in zip(sweep, points)]
        return {"node": key.node, "n": len(points),
                "values": sweep,
                "values_hex": [float(v).hex() for v in sweep],
                "fo4chipd": fo4,
                "performance_drop": [f / base_fo4 - 1.0 for f in fo4],
                "baseline": {"vdd": baseline[0], "q": q,
                             "value": values[-1], "fo4chipd": base_fo4}}


def _dump_flight(server: SignoffServer) -> None:
    """Print the flight-recorder ring to stderr (the SIGUSR2 handler)."""
    snap = server.flight.snapshot()
    print(f"[serve] flight-recorder dump: {len(snap['events'])} events, "
          f"{snap['dropped']} dropped", file=sys.stderr, flush=True)
    print(_json.dumps(snap, sort_keys=True), file=sys.stderr, flush=True)


async def _serve_until_signalled(config: ServeConfig, runtime) -> dict:
    server = SignoffServer(config, runtime)
    await server.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed = []
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
            installed.append(sig)
        except (NotImplementedError, RuntimeError, ValueError):
            pass   # non-main thread or platform without signal support
    if hasattr(signal, "SIGUSR2"):
        try:
            loop.add_signal_handler(signal.SIGUSR2, _dump_flight, server)
            installed.append(signal.SIGUSR2)
        except (NotImplementedError, RuntimeError, ValueError):
            pass
    port = server.port  # before stop() — closed sockets have no name
    print(f"[serve] listening on {config.host}:{port}", flush=True)
    try:
        await stop.wait()
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)
        print(f"[serve] draining (budget {config.drain_timeout_s}s)",
              flush=True)
        await server.stop()
        print(f"[serve] drained clean={server.drained_clean}", flush=True)
    return {"requests": server.requests,
            "coalesce_ratio": server.dispatcher.coalesce_ratio,
            "port": port,
            "drained_clean": server.drained_clean,
            "flight": (server.flight.snapshot()
                       if server.flight.enabled else None)}


def run_server(config: ServeConfig, runtime=None) -> dict:
    """Serve until SIGINT/SIGTERM; returns a summary for the manifest.

    Must run on the main thread (signal handlers).  The caller owns
    ``runtime`` — its metrics registry holds the final ``serve.*``
    instruments when this returns, ready for the manifest writer.
    """
    return asyncio.run(_serve_until_signalled(config, runtime))
