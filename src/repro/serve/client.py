"""Blocking Python client for the sign-off server (stdlib only).

:class:`ServeClient` wraps :class:`http.client.HTTPConnection` with
keep-alive, one transparent reconnect on a stale pooled connection, and
structured errors: any non-200 response raises
:class:`ServeRequestError` carrying the HTTP status, the server's
machine-readable error code (``overloaded``, ``shed``, ``degraded``,
``draining``, ``deadline_exceeded``, ``bad_request``, ...) and the
``Retry-After`` hint when the server sent one.

Every request — including the plain-text ``/metrics`` scrape — funnels
through one exchange path, so every call ships an ``X-Repro-Trace``
header.  By default the client mints a fresh trace id per request (kept
on :attr:`last_trace_id` and echoed in the server's JSON payload, so a
log line on either side correlates the two).  Hand the constructor a
live :class:`~repro.obs.trace.Tracer` and each request instead runs
inside a ``client.request`` span whose ``(trace_id, span_id)`` ride the
header — the server, dispatcher batch, solve and pool-worker spans all
join that trace, giving one connected end-to-end view per call.

For retries, ``Retry-After`` handling and circuit breaking, use
:class:`~repro.serve.resilient.ResilientServeClient` — this class makes
each exchange once, plus one transparent reconnect when the pooled
socket fails without delivering a response (all serve queries are
idempotent, so the re-send is safe).

>>> with ServeClient("127.0.0.1", 8437) as c:            # doctest: +SKIP
...     c.chip_quantile("22nm", vdd=0.55)
...     c.chip_quantile_batch("22nm", vdd=[0.5, 0.6], q=0.99)
"""

from __future__ import annotations

import http.client
import itertools
import json
import os
import time

__all__ = ["ServeClient", "ServeRequestError"]


class ServeRequestError(Exception):
    """A non-200 response: carries HTTP ``status`` and protocol ``code``.

    ``retry_after`` is the server's ``Retry-After`` hint in seconds
    (``None`` when the response carried none) — resilient clients use
    it as a floor under their own backoff.
    """

    def __init__(self, status: int, code: str, message: str,
                 retry_after: float | None = None) -> None:
        super().__init__(f"[{status}/{code}] {message}")
        self.status = int(status)
        self.code = str(code)
        self.message = str(message)
        self.retry_after = (None if retry_after is None
                            else float(retry_after))


class ServeClient:
    """One keep-alive connection to a :class:`~repro.serve.SignoffServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8437, *,
                 timeout: float = 120.0, tracer=None) -> None:
        self.host = str(host)
        self.port = int(port)
        self.timeout = float(timeout)
        self.tracer = tracer
        self.last_trace_id: str | None = None
        self._conn: http.client.HTTPConnection | None = None
        self._seq = itertools.count()

    # -- transport -----------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def _mint_trace_id(self) -> str:
        return (f"c{os.getpid():x}-{time.time_ns():x}"
                f"-{next(self._seq):x}")

    def _roundtrip(self, method: str, path: str, body, headers):
        """One HTTP exchange -> ``(status, data bytes, response headers)``."""
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
                resp_headers = {k.lower(): v
                                for k, v in response.getheaders()}
                if resp_headers.get("connection", "").lower() == "close":
                    # The server asked to tear the connection down
                    # (draining); don't reuse the pooled socket.
                    self.close()
                return response.status, data, resp_headers
            except (http.client.HTTPException, ConnectionError, OSError):
                # A keep-alive connection the server closed between
                # requests surfaces here; retry once on a fresh socket.
                self.close()
                if attempt:
                    raise

    def _exchange(self, method: str, path: str, payload=None):
        """The single header/trace path every call funnels through.

        Builds the body, attaches ``X-Repro-Trace`` (from the live
        tracer span when one is configured, a minted id otherwise) and
        returns the raw ``(status, data, headers)`` triple.
        """
        body = json.dumps(payload).encode() if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        if self.tracer is not None and getattr(self.tracer, "enabled",
                                               False):
            with self.tracer.span("client.request", path=path):
                trace_id = self.tracer.current_trace_id()
                span_id = self.tracer.current_span()
                headers["X-Repro-Trace"] = f"{trace_id}/{span_id}"
                self.last_trace_id = trace_id
                return self._roundtrip(method, path, body, headers)
        trace_id = self._mint_trace_id()
        headers["X-Repro-Trace"] = trace_id
        self.last_trace_id = trace_id
        return self._roundtrip(method, path, body, headers)

    @staticmethod
    def _retry_after(headers, parsed) -> float | None:
        value = headers.get("retry-after")
        if value is None and isinstance(parsed, dict):
            value = parsed.get("retry_after_s")
        if value is None:
            return None
        try:
            return float(value)
        except (TypeError, ValueError):
            return None

    def _raise_for_status(self, status: int, data: bytes, headers) -> dict:
        """Parse a JSON response, raising :class:`ServeRequestError`."""
        try:
            parsed = json.loads(data.decode() or "null")
        except (json.JSONDecodeError, UnicodeDecodeError):
            parsed = None
        if status != 200:
            retry_after = self._retry_after(headers, parsed)
            if isinstance(parsed, dict):
                raise ServeRequestError(status,
                                        parsed.get("error", "unknown"),
                                        parsed.get("message", ""),
                                        retry_after)
            raise ServeRequestError(status, "unknown",
                                    data[:200].decode("latin-1"),
                                    retry_after)
        if not isinstance(parsed, dict):
            raise ServeRequestError(200, "bad_payload",
                                    "server returned non-object JSON")
        return parsed

    def _request(self, method: str, path: str, payload=None) -> dict:
        status, data, headers = self._exchange(method, path, payload)
        return self._raise_for_status(status, data, headers)

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- queries -------------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def ready(self) -> dict:
        """``GET /readyz``; raises ``ServeRequestError`` (503) when not."""
        return self._request("GET", "/readyz")

    def metrics(self) -> dict:
        return self._request("GET", "/v1/metrics")

    def openmetrics(self) -> str:
        """The ``GET /metrics`` OpenMetrics exposition as text."""
        status, data, headers = self._exchange("GET", "/metrics")
        if status != 200:
            raise ServeRequestError(status, "unknown",
                                    data[:200].decode("latin-1"),
                                    self._retry_after(headers, None))
        return data.decode("utf-8")

    def flight(self) -> dict:
        """The server's flight-recorder snapshot (``/v1/debug/flight``)."""
        return self._request("GET", "/v1/debug/flight")

    def chip_quantile(self, node: str, vdd: float, q: float = 0.99,
                      spares: float = 0.0, **arch) -> float:
        """One sign-off quantile (seconds); ``arch`` forwards width etc."""
        payload = dict(node=node, vdd=vdd, q=q, spares=spares, **arch)
        return float(self._request(
            "POST", "/v1/chip_quantile", payload)["value"])

    def chip_quantile_batch(self, node: str, vdd, q=0.99, spares=0.0,
                            **arch) -> list:
        """Broadcastable point arrays -> list of quantiles (seconds)."""
        payload = dict(node=node, vdd=vdd, q=q, spares=spares, **arch)
        return [float(v) for v in self._request(
            "POST", "/v1/chip_quantile_batch", payload)["values"]]

    def query(self, node: str, vdd, q=0.99, spares=0.0, **arch) -> dict:
        """Raw batch response: ``values`` plus ``values_hex`` for
        byte-for-byte comparisons against a local solve."""
        payload = dict(node=node, vdd=vdd, q=q, spares=spares, **arch)
        return self._request("POST", "/v1/query", payload)

    def signoff_sweep(self, node: str, vdd, q: float = 0.99,
                      spares: float = 0.0, **arch) -> dict:
        """Full sweep response: values, fo4chipd, performance_drop, baseline."""
        payload = dict(node=node, vdd=vdd, q=q, spares=spares, **arch)
        return self._request("POST", "/v1/signoff_sweep", payload)

    def tail_quantile(self, node: str, vdd, q=0.9999, spares=0.0,
                      **options) -> dict:
        """Importance-sampled deep-tail quantiles (``/v1/tail_quantile``).

        ``options`` forwards the architecture knobs (width, ...) plus the
        estimator knobs ``n_samples``, ``root_seed``, ``shift`` and
        ``defensive_weight``.  Returns the raw response: ``values`` /
        ``values_hex`` plus per-point ``estimates`` dicts carrying the
        ESS / weight-max-ratio / shift diagnostics (and scalar ``value``
        for a single point).
        """
        payload = dict(node=node, vdd=vdd, q=q, spares=spares, **options)
        return self._request("POST", "/v1/tail_quantile", payload)
