"""Bare server entry point: ``python -m repro.serve [--port N] ...``.

A thin alias for ``python -m repro.experiments serve`` for deployments
that only need the server (no experiment registry import, no manifest
plumbing).  Flags mirror the CLI target's serve group.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.backends import BACKENDS
from repro.errors import ConfigurationError
from repro.runtime import build_runtime
from repro.serve.server import ServeConfig, run_server


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve sign-off quantile queries over JSON/HTTP.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8437)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for large batch solves")
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--batch-window-ms", type=float, default=2.0)
    parser.add_argument("--max-queue", type=int, default=1024)
    parser.add_argument("--deadline-ms", type=float, default=None)
    parser.add_argument("--backend", choices=BACKENDS, default="numpy",
                        help="Monte-Carlo kernel execution backend")
    parser.add_argument("--block-elems", type=int, default=None, metavar="N",
                        help="kernel internal block budget (elements, >= 1)")
    args = parser.parse_args(argv)
    try:
        config = ServeConfig(
            host=args.host, port=args.port, max_batch=args.max_batch,
            batch_window_ms=args.batch_window_ms, max_queue=args.max_queue,
            deadline_ms=args.deadline_ms, backend=args.backend,
            block_elems=args.block_elems)
        runtime = build_runtime(jobs=args.jobs, metrics=True,
                                backend=args.backend,
                                block_elems=args.block_elems)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        summary = run_server(config, runtime)
    finally:
        runtime.close()
    print(f"[serve] handled {summary['requests']} requests, "
          f"coalesce ratio {summary['coalesce_ratio']:.2f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
