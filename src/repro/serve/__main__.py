"""Bare server entry point: ``python -m repro.serve [--port N] ...``.

A thin alias for ``python -m repro.experiments serve`` for deployments
that only need the server (no experiment registry import).  Flags mirror
the CLI target's serve group, including the telemetry set: ``--trace``
writes the request/batch/solve spans as Chrome trace JSON on shutdown,
``--metrics`` writes a run manifest (with the flight-recorder snapshot
attached), and the SLO/window/flight knobs configure the live gauges.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core.backends import BACKENDS, backend_manifest
from repro.errors import ConfigurationError
from repro.obs.manifest import build_manifest, cache_file_state, write_manifest
from repro.obs.trace import write_chrome_trace
from repro.resilience import parse_faults
from repro.runtime import build_runtime
from repro.serve.server import ServeConfig, run_server


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve sign-off quantile queries over JSON/HTTP.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8437)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for large batch solves")
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--batch-window-ms", type=float, default=2.0)
    parser.add_argument("--max-queue", type=int, default=1024)
    parser.add_argument("--deadline-ms", type=float, default=None)
    parser.add_argument("--backend", choices=BACKENDS, default="numpy",
                        help="Monte-Carlo kernel execution backend")
    parser.add_argument("--block-elems", type=int, default=None, metavar="N",
                        help="kernel internal block budget (elements, >= 1)")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="write request/batch/solve spans as Chrome "
                             "trace JSON on shutdown")
    parser.add_argument("--metrics", metavar="FILE", default=None,
                        help="write the run manifest (metrics + flight "
                             "recorder) on shutdown")
    parser.add_argument("--window-s", type=float, default=60.0,
                        help="rolling window behind the live gauges")
    parser.add_argument("--slo-availability", type=float, default=0.999,
                        help="availability SLO target in (0, 1)")
    parser.add_argument("--slo-latency-ms", type=float, default=250.0,
                        help="latency SLO target (ms)")
    parser.add_argument("--flight-capacity", type=int, default=512,
                        help="flight-recorder ring size (0 disables)")
    parser.add_argument("--no-shed", action="store_true",
                        help="disable adaptive admission control (hard "
                             "max-queue 429s only)")
    parser.add_argument("--degraded-ratio", type=float, default=0.75,
                        help="queue saturation beyond which the server "
                             "answers cache-hit-only, in (0, 1]")
    parser.add_argument("--drain-timeout-s", type=float, default=30.0,
                        help="SIGTERM drain budget for in-flight solves")
    parser.add_argument("--inject-faults", default=None, metavar="SPEC",
                        help="deterministic fault plan for chaos testing "
                             "(e.g. solver_nan:0 or conn_reset:1)")
    args = parser.parse_args(argv)
    try:
        config = ServeConfig(
            host=args.host, port=args.port, max_batch=args.max_batch,
            batch_window_ms=args.batch_window_ms, max_queue=args.max_queue,
            deadline_ms=args.deadline_ms, backend=args.backend,
            block_elems=args.block_elems, window_s=args.window_s,
            slo_availability=args.slo_availability,
            slo_latency_ms=args.slo_latency_ms,
            flight_capacity=args.flight_capacity,
            shed=not args.no_shed, degraded_ratio=args.degraded_ratio,
            drain_timeout_s=args.drain_timeout_s)
        runtime = build_runtime(jobs=args.jobs, metrics=True,
                                trace=bool(args.trace),
                                backend=args.backend,
                                block_elems=args.block_elems,
                                faults=parse_faults(args.inject_faults))
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cache_before = cache_file_state()
    t0 = time.perf_counter()
    try:
        summary = run_server(config, runtime)
        if args.trace:
            write_chrome_trace(args.trace, runtime.obs.tracer)
        if args.metrics:
            write_manifest(args.metrics, build_manifest(
                targets=["serve"], fast=False, jobs=args.jobs,
                root_seed=0, profiler=runtime.profiler,
                metrics=runtime.obs.metrics, cache_before=cache_before,
                cache_after=cache_file_state(),
                elapsed_wall_s=time.perf_counter() - t0,
                trace_file=args.trace, faults=args.inject_faults,
                resilience=runtime.ledger.as_dict(),
                backends=backend_manifest(args.backend),
                flight=summary.get("flight")))
    finally:
        runtime.close()
    print(f"[serve] handled {summary['requests']} requests, "
          f"coalesce ratio {summary['coalesce_ratio']:.2f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
