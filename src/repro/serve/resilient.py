"""Retrying, circuit-breaking client for hostile networks.

:class:`ResilientServeClient` wraps every :class:`~repro.serve.client.
ServeClient` exchange in a bounded retry loop driven by the same
:class:`~repro.resilience.policy.RetryPolicy` the runtime uses for
shard retries — so client backoff is deterministic (CRC32 jitter, no
RNG state) and tunable with one knob set.

What retries, and what never does:

* **Retryable**: 429 (``overloaded`` / ``shed`` / ``degraded``), 503
  (``draining``), and transport failures where no response arrived —
  connection reset, garbled non-HTTP bytes, truncated response, socket
  timeout.  All serve queries are idempotent (pure functions of the
  query point, memoised server-side), so re-sending is always safe.
* **Never retried**: any response the server *did* deliver with a
  non-retryable status — 400, 404, 405, 408, 500 — and, critically,
  any 2xx: a ``bad_payload`` error after a 200 means the server
  answered and the answer is wrong, which a retry cannot fix.

Each sleep honours the server's ``Retry-After`` hint as a floor under
the policy's exponential backoff.  A consecutive-failure circuit
breaker sits in front of the loop: after ``breaker_threshold``
retryable failures in a row the circuit opens and calls fail fast with
:class:`CircuitOpenError` (no socket touched) until ``breaker_reset_s``
elapses, when one half-open probe is let through — success closes the
circuit, failure re-opens it.  State changes land on the
``serve.breaker_state`` gauge (0 closed / 1 half-open / 2 open) and
retries on ``serve.retry.attempts`` / ``serve.retry.giveups``.

``sleep`` and ``clock`` are injectable so tests drive the breaker and
backoff schedule without real time passing.
"""

from __future__ import annotations

import http.client
import itertools
import time

from repro.obs.metrics import NOOP_METRICS
from repro.resilience.policy import RetryPolicy
from repro.serve.client import ServeClient, ServeRequestError

__all__ = ["ResilientServeClient", "CircuitOpenError",
           "RETRYABLE_STATUSES", "BREAKER_CLOSED", "BREAKER_HALF_OPEN",
           "BREAKER_OPEN"]

#: HTTP statuses that are safe and useful to retry (always rejections
#: the server made *instead of* doing work).
RETRYABLE_STATUSES = (429, 503)

#: ``serve.breaker_state`` gauge values.
BREAKER_CLOSED, BREAKER_HALF_OPEN, BREAKER_OPEN = 0, 1, 2

#: Transport failures with no response delivered (safe to re-send).
_TRANSPORT_ERRORS = (http.client.HTTPException, ConnectionError, OSError)


class CircuitOpenError(Exception):
    """Fail-fast rejection while the client's circuit breaker is open."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


class ResilientServeClient(ServeClient):
    """A :class:`ServeClient` that survives overload and flaky networks.

    Parameters beyond :class:`ServeClient`'s:

    policy:
        :class:`~repro.resilience.policy.RetryPolicy` supplying the
        attempt bound (``max_retries``) and the deterministic-jitter
        backoff schedule.
    breaker_threshold:
        Consecutive retryable failures (across requests) that open the
        circuit.
    breaker_reset_s:
        Seconds the circuit stays open before one half-open probe.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` for the
        ``serve.retry.*`` / ``serve.breaker_state`` instruments.
    sleep / clock:
        Injectable ``time.sleep`` / ``time.monotonic`` for tests.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8437, *,
                 timeout: float = 120.0, tracer=None,
                 policy: RetryPolicy | None = None,
                 breaker_threshold: int = 5,
                 breaker_reset_s: float = 5.0,
                 metrics=None, sleep=time.sleep,
                 clock=time.monotonic) -> None:
        super().__init__(host, port, timeout=timeout, tracer=tracer)
        if int(breaker_threshold) < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {breaker_threshold}")
        if float(breaker_reset_s) <= 0:
            raise ValueError(
                f"breaker_reset_s must be > 0, got {breaker_reset_s}")
        self.policy = policy or RetryPolicy()
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_reset_s = float(breaker_reset_s)
        self._metrics = metrics if metrics is not None else NOOP_METRICS
        self._sleep = sleep
        self._clock = clock
        self._backoff_seq = itertools.count()
        self._consecutive_failures = 0
        self._breaker_state = BREAKER_CLOSED
        self._open_until = 0.0
        self.retries = 0
        self.giveups = 0

    # -- circuit breaker -----------------------------------------------------

    @property
    def breaker_state(self) -> int:
        """0 closed, 1 half-open, 2 open (see module constants)."""
        return self._breaker_state

    def _set_breaker(self, state: int) -> None:
        self._breaker_state = state
        self._metrics.gauge("serve.breaker_state").set(float(state))

    def _breaker_gate(self) -> None:
        """Admit (or fail fast) one attempt through the breaker."""
        if self._breaker_state != BREAKER_OPEN:
            return
        remaining = self._open_until - self._clock()
        if remaining <= 0:
            self._set_breaker(BREAKER_HALF_OPEN)
            return
        raise CircuitOpenError(
            f"circuit breaker open after {self._consecutive_failures} "
            f"consecutive failures; probe in {remaining:.3f}s",
            retry_after=remaining)

    def _breaker_success(self) -> None:
        self._consecutive_failures = 0
        if self._breaker_state != BREAKER_CLOSED:
            self._set_breaker(BREAKER_CLOSED)

    def _breaker_failure(self) -> None:
        self._consecutive_failures += 1
        half_open_failed = self._breaker_state == BREAKER_HALF_OPEN
        if (half_open_failed
                or self._consecutive_failures >= self.breaker_threshold):
            self._open_until = self._clock() + self.breaker_reset_s
            if self._breaker_state != BREAKER_OPEN:
                self._set_breaker(BREAKER_OPEN)

    # -- retry loop ----------------------------------------------------------

    def _request(self, method: str, path: str, payload=None) -> dict:
        seq = next(self._backoff_seq)
        last: Exception | None = None
        for attempt in range(self.policy.max_retries + 1):
            self._breaker_gate()
            retry_after = None
            try:
                result = super()._request(method, path, payload)
            except ServeRequestError as exc:
                if exc.status not in RETRYABLE_STATUSES:
                    # The server answered — including any 2xx with a
                    # bad payload.  Retrying cannot change the answer,
                    # and it is not the transport's fault: the breaker
                    # stays untouched.
                    raise
                self._breaker_failure()
                last = exc
                retry_after = exc.retry_after
            except _TRANSPORT_ERRORS as exc:
                self._breaker_failure()
                last = exc
            else:
                self._breaker_success()
                return result
            if attempt < self.policy.max_retries:
                self.retries += 1
                self._metrics.counter("serve.retry.attempts").inc()
                delay = self.policy.backoff_s(seq, attempt + 1)
                if retry_after is not None:
                    delay = max(delay, float(retry_after))
                self._sleep(delay)
        self.giveups += 1
        self._metrics.counter("serve.retry.giveups").inc()
        raise last
