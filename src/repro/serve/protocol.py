"""Wire protocol for the sign-off server: JSON over minimal HTTP/1.1.

The server speaks just enough HTTP for ``curl``, :class:`~http.client`
and any stock load balancer: request line + headers + ``Content-Length``
body, keep-alive connections, JSON request and response bodies.  Framing
lives here (:func:`read_request` / :func:`json_response`) together with
request validation (:func:`parse_query`) and the structured error
hierarchy every handler maps onto an HTTP status:

========================  ======  ==================================
error                     status  meaning
========================  ======  ==================================
:class:`BadRequestError`  400     malformed body / invalid points
:class:`DeadlineError`    408     per-request deadline expired
:class:`PayloadTooLarge`  413     body above :data:`MAX_BODY_BYTES`
:class:`OverloadedError`  429     dispatcher queue full (backpressure)
:class:`ShedError`        429     admission control: queue wait would
                                  already exceed the request deadline
:class:`DegradedError`    429     saturated server is cache-hit-only
:class:`SolverError`      500     solve failed after retries
:class:`DrainingError`    503     server draining for shutdown
========================  ======  ==================================

Every error response body is ``{"error": <code>, "message": <text>}``
so clients can branch on a stable machine-readable code rather than
scraping messages.  Shed-class errors (429/503) may carry a
``retry_after_s`` hint, rendered both in the JSON payload and as a
standard ``Retry-After`` response header so stock clients and load
balancers back off correctly.

Distributed-trace propagation rides one request header,
``X-Repro-Trace: <trace_id>[/<parent_span_id>]``, parsed by
:func:`parse_trace_header`.  Ids are restricted to a conservative
charset and length so arbitrary client input never lands raw in traces
or logs; anything malformed is ignored rather than rejected — tracing
must never fail a request.
"""

from __future__ import annotations

import asyncio
import json
import math
import re
from typing import NamedTuple

__all__ = [
    "MAX_BODY_BYTES", "MAX_POINTS", "MAX_TAIL_SAMPLES", "TRACE_HEADER",
    "EngineKey", "TailKey",
    "ServeError", "BadRequestError", "DeadlineError", "PayloadTooLarge",
    "OverloadedError", "ShedError", "DegradedError", "DrainingError",
    "SolverError", "parse_query", "parse_tail_query", "parse_trace_header",
    "read_request", "json_response", "text_response", "error_response",
]

#: Request header carrying ``trace_id[/parent_span_id]``.
TRACE_HEADER = "X-Repro-Trace"

_TRACE_TOKEN = re.compile(r"^[A-Za-z0-9._\-]{1,128}$")

#: Hard cap on a request body; a full-size batch of 4096 points is ~200 KiB.
MAX_BODY_BYTES = 1 << 20

#: Hard cap on query points per request (after broadcasting).
MAX_POINTS = 4096

#: Hard cap on weighted samples per tail-estimate request (each point is
#: a Monte-Carlo run, not a cache-friendly deterministic solve).
MAX_TAIL_SAMPLES = 1_000_000

#: Largest |mean shift| a tail query may request, in sigma units
#: (mirrors :data:`repro.core.tailsampling.MAX_SHIFT`).
_MAX_TAIL_SHIFT = 8.0

#: Architecture defaults mirror the paper (128 lanes x 100 paths x 50 FO4).
_ARCH_DEFAULTS = {"width": 128, "paths_per_lane": 100, "chain_length": 50}

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 408: "Request Timeout",
            413: "Payload Too Large", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable"}


class EngineKey(NamedTuple):
    """One served engine identity: a node plus its architecture shape.

    Queries coalesce only within an :class:`EngineKey` — points for
    different nodes or architectures can never share a batch solve.
    """

    node: str
    width: int
    paths_per_lane: int
    chain_length: int


class TailKey(NamedTuple):
    """One importance-sampled tail-run identity.

    Tail queries coalesce (and memoise) only when the engine *and* every
    run parameter match — ``n_samples``, ``root_seed`` and the proposal
    spec are part of the estimate's value, not mere tuning.  ``shift``
    is ``None`` for the adaptive search, else an explicit d2d mean shift
    in sigma units.
    """

    engine: EngineKey
    n_samples: int
    root_seed: int
    shift: float | None
    defensive_weight: float

    @property
    def node(self) -> str:
        """Dispatcher instrumentation labels batches by node."""
        return self.engine.node


class ServeError(Exception):
    """Base for protocol-level failures; carries HTTP status + stable code.

    ``retry_after_s`` (``None`` unless set) is the server's back-off
    hint: rendered as a ``Retry-After`` header and in the JSON payload.
    """

    status = 500
    code = "internal"
    retry_after_s: float | None = None

    def payload(self) -> dict:
        out = {"error": self.code, "message": str(self)}
        if self.retry_after_s is not None:
            out["retry_after_s"] = self.retry_after_s
        return out


class BadRequestError(ServeError):
    status = 400
    code = "bad_request"


class DeadlineError(ServeError):
    status = 408
    code = "deadline_exceeded"


class PayloadTooLarge(ServeError):
    status = 413
    code = "payload_too_large"


class OverloadedError(ServeError):
    status = 429
    code = "overloaded"


class ShedError(ServeError):
    """Admission control: the queue's estimated wait already exceeds
    this request's deadline, so it is rejected before consuming a slot."""

    status = 429
    code = "shed"


class DegradedError(ServeError):
    """Saturated server answering cache-hit-only; cold points rejected."""

    status = 429
    code = "degraded"


class DrainingError(ServeError):
    """Server draining for shutdown; retry against another instance."""

    status = 503
    code = "draining"


class SolverError(ServeError):
    status = 500
    code = "solver_failed"


def _as_float_list(body: dict, field: str, default, n: int | None):
    """One broadcastable numeric field -> list of finite floats.

    Scalars broadcast against the longest field; lists must agree on
    length.  Returns ``(values, n)`` with ``n`` the running broadcast
    length (``None`` while only scalars have been seen).
    """
    raw = body.get(field, default)
    if raw is None:
        raise BadRequestError(f"missing required field {field!r}")
    if isinstance(raw, bool):
        raise BadRequestError(f"{field} must be numeric, got a bool")
    if isinstance(raw, (int, float)):
        return [float(raw)], n
    if isinstance(raw, (list, tuple)):
        if not raw:
            raise BadRequestError(f"{field} must not be an empty list")
        if len(raw) > MAX_POINTS:
            raise BadRequestError(
                f"{field} has {len(raw)} points, limit {MAX_POINTS}")
        vals = []
        for v in raw:
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                raise BadRequestError(f"{field} must contain only numbers")
            vals.append(float(v))
        if n is not None and n != 1 and len(vals) not in (1, n):
            raise BadRequestError(
                f"{field} has length {len(vals)}, expected {n}")
        return vals, max(n or 1, len(vals))
    raise BadRequestError(f"{field} must be a number or list of numbers")


def _parse_engine(body: dict, available_nodes) -> EngineKey:
    """Node + architecture fields of one query body -> :class:`EngineKey`."""
    if not isinstance(body, dict):
        raise BadRequestError("request body must be a JSON object")
    node = body.get("node")
    if not isinstance(node, str):
        raise BadRequestError("missing required string field 'node'")
    if node not in available_nodes:
        raise BadRequestError(
            f"unknown node {node!r}; available: {sorted(available_nodes)}")
    arch = {}
    for field, default in _ARCH_DEFAULTS.items():
        raw = body.get(field, default)
        if isinstance(raw, bool) or not isinstance(raw, int) or raw < 1:
            raise BadRequestError(f"{field} must be a positive integer")
        arch[field] = raw
    return EngineKey(node, arch["width"], arch["paths_per_lane"],
                     arch["chain_length"])


def _parse_points(body: dict, *, q_default: float) -> list:
    """Broadcast vdd/q/spares fields into rounded ``(vdd, spares, q)``."""
    n = None
    vdds, n = _as_float_list(body, "vdd", None, n)
    qs, n = _as_float_list(body, "q", q_default, n)
    sps, n = _as_float_list(body, "spares", 0.0, n)
    n = n or 1
    if n > MAX_POINTS:
        raise BadRequestError(f"{n} query points, limit {MAX_POINTS}")

    def bcast(vals):
        return vals * n if len(vals) == 1 else vals

    points = []
    for v, q, s in zip(bcast(vdds), bcast(qs), bcast(sps)):
        if not (v == v and 0.0 < v < 10.0):   # NaN fails v == v
            raise BadRequestError(f"vdd must be in (0, 10) volts, got {v}")
        if not 0.0 < q < 1.0:
            raise BadRequestError(f"q must be in (0, 1), got {q}")
        if not 0.0 <= s < 1e9:
            raise BadRequestError(f"spares must be >= 0, got {s}")
        points.append((round(v, 9), round(s, 9), round(q, 12)))
    return points


def parse_query(body: dict, *, available_nodes) -> tuple:
    """Validate one query body into ``(EngineKey, points)``.

    ``points`` is a list of ``(vdd, spares, q)`` tuples rounded exactly
    like :meth:`~repro.core.analyzer.VariationAnalyzer._point_key`, so
    equal queries from different clients coalesce to one solve and one
    memo entry.  Broadcasting follows numpy: scalar fields stretch to the
    longest list field.
    """
    key = _parse_engine(body, available_nodes)
    return key, _parse_points(body, q_default=0.99)


def _scalar_field(body: dict, field: str, default, *, integer: bool):
    """One optional scalar numeric field, type-checked (no broadcasting)."""
    raw = body.get(field, default)
    if raw is None:
        return None
    if isinstance(raw, bool) or not isinstance(raw, (int, float)):
        raise BadRequestError(f"{field} must be a number")
    if integer:
        if not isinstance(raw, int):
            raise BadRequestError(f"{field} must be an integer")
        return int(raw)
    value = float(raw)
    if value != value or value in (float("inf"), float("-inf")):
        raise BadRequestError(f"{field} must be finite")
    return value


def parse_tail_query(body: dict, *, available_nodes) -> tuple:
    """Validate one tail-estimate body into ``(TailKey, points)``.

    Points are ``(vdd, spares, q)`` exactly like :func:`parse_query`
    (``q`` defaults to 0.9999 — this is the deep-tail endpoint); the run
    parameters — ``n_samples``, ``root_seed``, optional explicit
    ``shift`` (sigma units; omitted = adaptive search) and
    ``defensive_weight`` — become part of the :class:`TailKey`, so only
    runs with identical parameters share memo entries.
    """
    engine = _parse_engine(body, available_nodes)
    points = _parse_points(body, q_default=0.9999)
    n_samples = _scalar_field(body, "n_samples", 4096, integer=True)
    if not 2 <= n_samples <= MAX_TAIL_SAMPLES:
        raise BadRequestError(
            f"n_samples must be in [2, {MAX_TAIL_SAMPLES}], got {n_samples}")
    root_seed = _scalar_field(body, "root_seed", 0, integer=True)
    if root_seed < 0:
        raise BadRequestError(f"root_seed must be >= 0, got {root_seed}")
    shift = _scalar_field(body, "shift", None, integer=False)
    if shift is not None and abs(shift) > _MAX_TAIL_SHIFT:
        raise BadRequestError(
            f"shift must satisfy |s| <= {_MAX_TAIL_SHIFT} sigma, got {shift}")
    weight = _scalar_field(body, "defensive_weight", 0.1, integer=False)
    if not 0.0 <= weight < 1.0:
        raise BadRequestError(
            f"defensive_weight must be in [0, 1), got {weight}")
    return TailKey(engine, n_samples, root_seed, shift, weight), points


def parse_trace_header(value: str | None):
    """``X-Repro-Trace`` header value -> ``(trace_id, parent_span_id)``.

    ``parent_span_id`` is ``None`` when the client sent only a trace id.
    Returns ``None`` (ignore, don't fail) for missing or malformed
    values.
    """
    if not value:
        return None
    trace_id, _, parent = value.partition("/")
    if not _TRACE_TOKEN.match(trace_id):
        return None
    if parent and not _TRACE_TOKEN.match(parent):
        parent = ""
    return trace_id, parent or None


async def read_request(reader: asyncio.StreamReader):
    """Read one HTTP request; ``None`` on a cleanly closed connection.

    Returns ``(method, path, headers, body_bytes)`` with header names
    lower-cased.  Raises :class:`BadRequestError` on malformed framing
    and :class:`PayloadTooLarge` on oversized bodies.
    """
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not line:
        return None
    parts = line.decode("latin-1").split()
    if len(parts) != 3:
        raise BadRequestError("malformed request line")
    method, path = parts[0].upper(), parts[1]
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise BadRequestError("malformed header line")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise BadRequestError("invalid Content-Length") from None
    if length < 0:
        raise BadRequestError("invalid Content-Length")
    if length > MAX_BODY_BYTES:
        raise PayloadTooLarge(
            f"body of {length} bytes exceeds limit {MAX_BODY_BYTES}")
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


def json_response(status: int, payload: dict, *, keep_alive: bool = True,
                  extra_headers: dict | None = None) -> bytes:
    """Serialise one JSON response with correct framing headers."""
    body = json.dumps(payload).encode()
    reason = _REASONS.get(status, "Unknown")
    extras = "".join(f"{k}: {v}\r\n"
                     for k, v in (extra_headers or {}).items())
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"{extras}"
            f"\r\n")
    return head.encode("latin-1") + body


def text_response(status: int, text: str, content_type: str, *,
                  keep_alive: bool = True) -> bytes:
    """Serialise one plain-text response (the OpenMetrics scrape path)."""
    body = text.encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n")
    return head.encode("latin-1") + body


def error_response(exc: ServeError, *, keep_alive: bool = True) -> bytes:
    extra = None
    if exc.retry_after_s is not None:
        # RFC 9110 Retry-After takes whole seconds; round up, floor 1.
        extra = {"Retry-After": max(1, math.ceil(exc.retry_after_s))}
    return json_response(exc.status, exc.payload(), keep_alive=keep_alive,
                         extra_headers=extra)
