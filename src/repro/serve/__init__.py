"""Sign-off-as-a-service: keep the solver hot, coalesce queries across clients.

The batched quantile solver only pays off when many queries share one
call; this package recovers that batching for *interactive* use.  A
long-lived :class:`SignoffServer` (stdlib asyncio, JSON over HTTP) keeps
technology cards, engine kernel LRUs and the on-disk
:class:`~repro.runtime.cache.QuantileCache` warm, and a
:class:`~repro.serve.dispatcher.MicroBatchDispatcher` coalesces
concurrent clients' ``(vdd, spares, q)`` points into single
bit-identical batch solves — with single-flight stampede protection,
bounded-queue backpressure (429), adaptive load shedding and a
cache-hit-only degraded mode (429 with ``Retry-After``), per-request
deadlines (408) and graceful SIGTERM drain (503 ``draining``).
:class:`ResilientServeClient` layers deterministic-jitter retries,
``Retry-After`` honouring and a circuit breaker on top of the plain
:class:`ServeClient`.

Start one from the CLI::

    python -m repro.experiments serve --port 8437 --jobs 4

and query it with ``curl`` or :class:`ServeClient`.
"""

from __future__ import annotations

from repro.serve.client import ServeClient, ServeRequestError
from repro.serve.dispatcher import MicroBatchDispatcher
from repro.serve.protocol import (
    TRACE_HEADER,
    BadRequestError,
    DeadlineError,
    DegradedError,
    DrainingError,
    EngineKey,
    OverloadedError,
    PayloadTooLarge,
    ServeError,
    ShedError,
    SolverError,
    TailKey,
    parse_trace_header,
)
from repro.serve.resilient import CircuitOpenError, ResilientServeClient
from repro.serve.server import ServeConfig, SignoffServer, run_server

__all__ = [
    "ServeClient",
    "ResilientServeClient",
    "CircuitOpenError",
    "ServeRequestError",
    "ServeConfig",
    "SignoffServer",
    "MicroBatchDispatcher",
    "run_server",
    "EngineKey",
    "TailKey",
    "TRACE_HEADER",
    "parse_trace_header",
    "ServeError",
    "BadRequestError",
    "DeadlineError",
    "DegradedError",
    "DrainingError",
    "OverloadedError",
    "PayloadTooLarge",
    "ShedError",
    "SolverError",
]
