"""Sign-off-as-a-service: keep the solver hot, coalesce queries across clients.

The batched quantile solver only pays off when many queries share one
call; this package recovers that batching for *interactive* use.  A
long-lived :class:`SignoffServer` (stdlib asyncio, JSON over HTTP) keeps
technology cards, engine kernel LRUs and the on-disk
:class:`~repro.runtime.cache.QuantileCache` warm, and a
:class:`~repro.serve.dispatcher.MicroBatchDispatcher` coalesces
concurrent clients' ``(vdd, spares, q)`` points into single
bit-identical batch solves — with single-flight stampede protection,
bounded-queue backpressure (429) and per-request deadlines (408).

Start one from the CLI::

    python -m repro.experiments serve --port 8437 --jobs 4

and query it with ``curl`` or :class:`ServeClient`.
"""

from __future__ import annotations

from repro.serve.client import ServeClient, ServeRequestError
from repro.serve.dispatcher import MicroBatchDispatcher
from repro.serve.protocol import (
    TRACE_HEADER,
    BadRequestError,
    DeadlineError,
    EngineKey,
    OverloadedError,
    PayloadTooLarge,
    ServeError,
    SolverError,
    parse_trace_header,
)
from repro.serve.server import ServeConfig, SignoffServer, run_server

__all__ = [
    "ServeClient",
    "ServeRequestError",
    "ServeConfig",
    "SignoffServer",
    "MicroBatchDispatcher",
    "run_server",
    "EngineKey",
    "TRACE_HEADER",
    "parse_trace_header",
    "ServeError",
    "BadRequestError",
    "DeadlineError",
    "OverloadedError",
    "PayloadTooLarge",
    "SolverError",
]
