"""Micro-batching dispatcher: coalesce concurrent queries into batch solves.

Scalar sign-off solves cost ~5-10 ms each while the batched solver
amortises kernel construction and polishes all roots simultaneously
(4-7x per ``BENCH_quantile.json``) — but only if many points share one
call.  :class:`MicroBatchDispatcher` recovers that batching across
*clients*: every in-flight ``(vdd, spares, q)`` point lands in a
per-:class:`~repro.serve.protocol.EngineKey` bucket that is flushed into
one ``chip_quantile_batch`` call when it reaches ``max_batch`` points or
when the oldest point has waited ``window_s`` (whichever first).

Correctness guarantees, in order of subtlety:

- **Bit-identical coalescing.**  Batches are solved with the engine's
  ``cluster=False`` mode (``invariant=True`` at the analyzer), under
  which every root is a pure function of its own query point.  Grouping
  queries from unrelated clients therefore returns exactly the bits a
  direct per-point call would — coalescing is an invisible optimisation,
  not an approximation.
- **Single-flight.**  A point already being solved is joined, never
  re-enqueued: N clients racing on a cold key trigger one solve
  (``serve.singleflight_joins`` counts the stampede that didn't happen).
- **Backpressure.**  At most ``max_queue`` unsolved points may be
  pending; beyond that new points are rejected with
  :class:`~repro.serve.protocol.OverloadedError` (HTTP 429) instead of
  growing an unbounded queue.
- **Deadlines.**  :meth:`resolve` bounds its wait with the request
  deadline; expiry raises :class:`~repro.serve.protocol.DeadlineError`
  (HTTP 408).  Waits are :func:`asyncio.shield`-ed so one client's
  timeout never cancels a solve other clients are still waiting on.
- **Retries.**  Batch solves reuse the runtime's
  :class:`~repro.resilience.policy.RetryPolicy`: transient failures are
  retried up to ``max_retries`` times with the policy's deterministic
  jittered backoff before the whole bucket fails with
  :class:`~repro.serve.protocol.SolverError`.

The solve itself runs on a single dedicated thread (the engine LRUs are
not thread-safe) with the server's runtime activated, so pool fan-out,
fault recovery and cache layers all behave exactly as in CLI runs.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor

from repro.resilience.policy import RetryPolicy
from repro.serve.protocol import (
    DeadlineError,
    OverloadedError,
    ServeError,
    SolverError,
)

__all__ = ["MicroBatchDispatcher", "BATCH_SIZE_BUCKETS", "MEMO_LIMIT"]

#: Bucket bounds for the ``serve.batch_size`` histogram.
BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)

#: In-dispatcher memo entries (point values, ~100 B each) before eviction.
MEMO_LIMIT = 65536


class MicroBatchDispatcher:
    """Coalesces point queries into batched solves on the event loop.

    Parameters
    ----------
    solve_fn:
        Blocking ``(EngineKey, [(vdd, spares, q), ...]) -> [float, ...]``
        executed on the dispatcher's solver thread.  Must be
        batch-composition invariant (see module docstring).
    metrics:
        The server's :class:`~repro.obs.metrics.MetricsRegistry`.
    max_batch:
        Flush a bucket as soon as it holds this many points.
    window_s:
        Flush a bucket this long after its first point arrived even if
        under ``max_batch`` (the latency cost of coalescing).
    max_queue:
        Pending-point bound; beyond it :meth:`resolve` rejects with 429.
    policy:
        :class:`~repro.resilience.policy.RetryPolicy` for solve retries.
    on_idle:
        Optional zero-argument callback fired (on the event loop) each
        time a batch settles and no points remain queued — the hook a
        long-lived server uses to release kernel workspaces between
        request bursts instead of pinning its peak footprint forever.
        Exceptions from the callback are swallowed (idle housekeeping
        must never fail a request).
    """

    def __init__(self, solve_fn, metrics, *, max_batch: int = 32,
                 window_s: float = 0.002, max_queue: int = 1024,
                 policy: RetryPolicy | None = None,
                 on_idle=None) -> None:
        self._solve_fn = solve_fn
        self._metrics = metrics
        self._on_idle = on_idle
        self.max_batch = int(max_batch)
        self.window_s = float(window_s)
        self.max_queue = int(max_queue)
        self.policy = policy or RetryPolicy()
        self._pending: dict = {}      # EngineKey -> [(point, future), ...]
        self._timers: dict = {}       # EngineKey -> TimerHandle
        self._inflight: dict = {}     # (EngineKey, point) -> future
        self._memo: OrderedDict = OrderedDict()
        self._queued = 0
        self._batch_seq = 0
        self._points_batched = 0
        self._batches = 0
        self._tasks: set = set()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-solve")
        self._closed = False

    # -- public API ----------------------------------------------------------

    async def resolve(self, key, points, *, timeout: float) -> list:
        """Values for ``points`` (in order), coalescing with other callers.

        Raises :class:`OverloadedError` when the queue bound would be
        exceeded and :class:`DeadlineError` when ``timeout`` (seconds)
        expires first; an expired caller never cancels the underlying
        solve, so late joiners still complete.
        """
        futures = [self._lookup(key, point) for point in points]
        try:
            return await asyncio.wait_for(
                asyncio.gather(*(asyncio.shield(f) for f in futures)),
                timeout)
        except asyncio.TimeoutError:
            self._metrics.counter("serve.deadline_misses").inc()
            raise DeadlineError(
                f"deadline of {timeout:g}s expired with "
                f"{sum(not f.done() for f in futures)} of {len(futures)} "
                f"points unsolved") from None

    def flush(self) -> None:
        """Dispatch every pending bucket now (shutdown / tests)."""
        for key in list(self._pending):
            self._flush(key)

    async def drain(self) -> None:
        """Flush and wait for all in-flight batch tasks to finish."""
        self.flush()
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    async def aclose(self) -> None:
        """Drain outstanding work, then release the solver thread."""
        self._closed = True
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()
        await self.drain()
        self._executor.shutdown(wait=True)

    @property
    def coalesce_ratio(self) -> float:
        """Mean points per dispatched batch (1.0 = no coalescing)."""
        return self._points_batched / self._batches if self._batches else 0.0

    @property
    def queued(self) -> int:
        return self._queued

    # -- enqueue side (event-loop thread only) -------------------------------

    def _lookup(self, key, point) -> asyncio.Future:
        """Future for one point: memo hit, in-flight join, or enqueue."""
        loop = asyncio.get_running_loop()
        k = (key, point)
        value = self._memo.get(k)
        if value is not None:
            self._memo.move_to_end(k)
            self._metrics.counter("serve.memo_hits").inc()
            fut = loop.create_future()
            fut.set_result(value)
            return fut
        fut = self._inflight.get(k)
        if fut is not None:
            self._metrics.counter("serve.singleflight_joins").inc()
            return fut
        if self._queued >= self.max_queue:
            self._metrics.counter("serve.rejected").inc()
            raise OverloadedError(
                f"{self._queued} points queued (limit {self.max_queue})")
        fut = loop.create_future()
        # Consume the exception even if every waiter timed out, so failed
        # batches never surface as "exception was never retrieved" noise.
        fut.add_done_callback(lambda f: f.cancelled() or f.exception())
        self._inflight[k] = fut
        self._queued += 1
        self._metrics.gauge("serve.queue_depth").set(self._queued)
        bucket = self._pending.setdefault(key, [])
        bucket.append((point, fut))
        if len(bucket) >= self.max_batch:
            self._flush(key)
        elif len(bucket) == 1 and not self._closed:
            self._timers[key] = loop.call_later(
                self.window_s, self._flush, key)
        return fut

    def _flush(self, key) -> None:
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        bucket = self._pending.pop(key, None)
        if not bucket:
            return
        self._batches += 1
        self._points_batched += len(bucket)
        self._metrics.counter("serve.batches").inc()
        self._metrics.histogram(
            "serve.batch_size", buckets=BATCH_SIZE_BUCKETS).observe(
                len(bucket))
        self._metrics.gauge("serve.coalesce_ratio").set(self.coalesce_ratio)
        task = asyncio.get_running_loop().create_task(
            self._run_batch(key, bucket))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    # -- solve side ----------------------------------------------------------

    async def _run_batch(self, key, bucket) -> None:
        points = [point for point, _ in bucket]
        try:
            values = await self._solve_with_retry(key, points)
            if len(values) != len(points):
                raise SolverError(
                    f"solver returned {len(values)} values for "
                    f"{len(points)} points")
        except ServeError as exc:
            self._fail_bucket(key, bucket, exc)
            self._maybe_idle()
            return
        except Exception as exc:   # noqa: BLE001 - boundary to clients
            self._fail_bucket(
                key, bucket, SolverError(f"batch solve failed: {exc!r}"))
            self._maybe_idle()
            return
        for (point, fut), value in zip(bucket, values):
            self._settle(key, point)
            k = (key, point)
            self._memo[k] = value
            self._memo.move_to_end(k)
            while len(self._memo) > MEMO_LIMIT:
                self._memo.popitem(last=False)
            if not fut.done():
                fut.set_result(value)
        self._maybe_idle()

    def _maybe_idle(self) -> None:
        """Fire ``on_idle`` once the queue has fully drained."""
        if self._queued == 0 and self._on_idle is not None:
            try:
                self._on_idle()
            except Exception:   # noqa: BLE001 - housekeeping only
                pass

    async def _solve_with_retry(self, key, points) -> list:
        seq = self._batch_seq
        self._batch_seq += 1
        loop = asyncio.get_running_loop()
        last: Exception | None = None
        for attempt in range(self.policy.max_retries + 1):
            if attempt:
                self._metrics.counter("serve.solver_retries").inc()
                await asyncio.sleep(self.policy.backoff_s(seq, attempt))
            try:
                return await loop.run_in_executor(
                    self._executor, self._solve_fn, key, points)
            except Exception as exc:   # noqa: BLE001 - retried below
                last = exc
        self._metrics.counter("serve.solver_failures").inc()
        raise SolverError(
            f"batch of {len(points)} points failed after "
            f"{self.policy.max_retries + 1} attempts: {last!r}")

    def _fail_bucket(self, key, bucket, exc: ServeError) -> None:
        for point, fut in bucket:
            self._settle(key, point)
            if not fut.done():
                fut.set_exception(exc)

    def _settle(self, key, point) -> None:
        self._inflight.pop((key, point), None)
        self._queued -= 1
        self._metrics.gauge("serve.queue_depth").set(self._queued)
