"""Micro-batching dispatcher: coalesce concurrent queries into batch solves.

Scalar sign-off solves cost ~5-10 ms each while the batched solver
amortises kernel construction and polishes all roots simultaneously
(4-7x per ``BENCH_quantile.json``) — but only if many points share one
call.  :class:`MicroBatchDispatcher` recovers that batching across
*clients*: every in-flight ``(vdd, spares, q)`` point lands in a
per-:class:`~repro.serve.protocol.EngineKey` bucket that is flushed into
one ``chip_quantile_batch`` call when it reaches ``max_batch`` points or
when the oldest point has waited ``window_s`` (whichever first).

Correctness guarantees, in order of subtlety:

- **Bit-identical coalescing.**  Batches are solved with the engine's
  ``cluster=False`` mode (``invariant=True`` at the analyzer), under
  which every root is a pure function of its own query point.  Grouping
  queries from unrelated clients therefore returns exactly the bits a
  direct per-point call would — coalescing is an invisible optimisation,
  not an approximation.
- **Single-flight.**  A point already being solved is joined, never
  re-enqueued: N clients racing on a cold key trigger one solve
  (``serve.singleflight_joins`` counts the stampede that didn't happen).
- **Backpressure.**  At most ``max_queue`` unsolved points may be
  pending; beyond that new points are rejected with
  :class:`~repro.serve.protocol.OverloadedError` (HTTP 429) instead of
  growing an unbounded queue.
- **Adaptive admission control.**  With ``shed=True`` the dispatcher
  keeps an EWMA of per-point solve cost and rejects a request *on
  arrival* when the queue's estimated wait already exceeds the
  request's deadline (:class:`~repro.serve.protocol.ShedError`, HTTP
  429 with ``Retry-After``) — a request doomed to a 408 never occupies
  a queue slot or triggers a wasted solve.  Once queue saturation
  crosses ``degraded_ratio`` the dispatcher goes *degraded*:
  memo hits and in-flight joins still answer (cache-hit-only), cold
  points are rejected with :class:`~repro.serve.protocol.DegradedError`
  until the queue recedes.  Rejections are sub-millisecond by
  construction and are counted under ``serve.shed.*``, never in the
  served-latency SLO window.
- **Deadlines.**  :meth:`resolve` bounds its wait with the request
  deadline; expiry raises :class:`~repro.serve.protocol.DeadlineError`
  (HTTP 408).  Waits are :func:`asyncio.shield`-ed so one client's
  timeout never cancels a solve other clients are still waiting on.
- **Retries.**  Batch solves reuse the runtime's
  :class:`~repro.resilience.policy.RetryPolicy`: transient failures are
  retried up to ``max_retries`` times with the policy's deterministic
  jittered backoff before the whole bucket fails with
  :class:`~repro.serve.protocol.SolverError`.

The solve itself runs on a single dedicated thread (the engine LRUs are
not thread-safe) with the server's runtime activated, so pool fan-out,
fault recovery and cache layers all behave exactly as in CLI runs.

Telemetry: when built with a live tracer the dispatcher records one
``serve.batch`` span per flushed bucket, parented under the *first*
coalesced request's span and carrying ``links`` to every request span it
fans in from — the join point that keeps a coalesced batch part of each
client's distributed trace.  The batch's ``(trace_id, batch_span_id)``
context is handed to ``solve_fn`` so the solve span (and from there the
pool workers) continue the same trace.  A
:class:`~repro.obs.flight.FlightRecorder`, when attached, receives
structured ``coalesce`` / ``flush`` / ``solve`` / ``retry`` / ``fault``
/ ``deadline_miss`` / ``backpressure_reject`` events on the same paths.
"""

from __future__ import annotations

import asyncio
import inspect
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor

from repro.obs.flight import NOOP_FLIGHT
from repro.obs.metrics import WindowedCounter
from repro.obs.trace import NOOP_TRACER
from repro.resilience.policy import RetryPolicy
from repro.serve.protocol import (
    DeadlineError,
    DegradedError,
    DrainingError,
    OverloadedError,
    ServeError,
    ShedError,
    SolverError,
)

__all__ = ["MicroBatchDispatcher", "BATCH_SIZE_BUCKETS", "MEMO_LIMIT"]

#: Bucket bounds for the ``serve.batch_size`` histogram.
BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)

#: In-dispatcher memo entries (point values, ~100 B each) before eviction.
MEMO_LIMIT = 65536


class MicroBatchDispatcher:
    """Coalesces point queries into batched solves on the event loop.

    Parameters
    ----------
    solve_fn:
        Blocking ``(EngineKey, [(vdd, spares, q), ...]) -> [float, ...]``
        executed on the dispatcher's solver thread.  Must be
        batch-composition invariant (see module docstring).  May accept
        a third ``ctx`` argument — the batch's ``(trace_id,
        batch_span_id)`` — to continue the distributed trace into the
        solve; two-argument solvers keep working unchanged.
    metrics:
        The server's :class:`~repro.obs.metrics.MetricsRegistry`.
    max_batch:
        Flush a bucket as soon as it holds this many points.
    window_s:
        Flush a bucket this long after its first point arrived even if
        under ``max_batch`` (the latency cost of coalescing).
    max_queue:
        Pending-point bound; beyond it :meth:`resolve` rejects with 429.
    policy:
        :class:`~repro.resilience.policy.RetryPolicy` for solve retries.
    on_idle:
        Optional zero-argument callback fired (on the event loop) each
        time a batch settles and no points remain queued — the hook a
        long-lived server uses to release kernel workspaces between
        request bursts instead of pinning its peak footprint forever.
        Exceptions from the callback are swallowed (idle housekeeping
        must never fail a request).
    tracer:
        Optional :class:`~repro.obs.trace.Tracer` for batch spans
        (defaults to the shared no-op).
    flight:
        Optional :class:`~repro.obs.flight.FlightRecorder` for hot-path
        events (defaults to the shared no-op).
    rolling_window_s:
        Width of the rolling window behind ``rolling_coalesce_ratio``
        (and the ``serve.coalesce_ratio`` gauge).
    shed:
        Enable adaptive admission control (see module docstring).  Off,
        only the hard ``max_queue`` bound rejects — the pre-shedding
        baseline the overload benchmark compares against.
    degraded_ratio:
        Queue-saturation fraction (of ``max_queue``) beyond which the
        dispatcher answers cache-hit-only.
    """

    def __init__(self, solve_fn, metrics, *, max_batch: int = 32,
                 window_s: float = 0.002, max_queue: int = 1024,
                 policy: RetryPolicy | None = None,
                 on_idle=None, tracer=None, flight=None,
                 rolling_window_s: float = 60.0, shed: bool = True,
                 degraded_ratio: float = 0.75) -> None:
        self._solve_fn = solve_fn
        self._metrics = metrics
        self._on_idle = on_idle
        self._tracer = tracer if tracer is not None else NOOP_TRACER
        self._flight = flight if flight is not None else NOOP_FLIGHT
        try:
            n_params = len(inspect.signature(solve_fn).parameters)
        except (TypeError, ValueError):
            n_params = 2
        self._solve_takes_ctx = n_params >= 3
        self.max_batch = int(max_batch)
        self.window_s = float(window_s)
        self.max_queue = int(max_queue)
        self.shed = bool(shed)
        self.degraded_ratio = float(degraded_ratio)
        self._ewma_point_s: float | None = None
        self.policy = policy or RetryPolicy()
        self._win_batches = WindowedCounter("serve.batches",
                                            window_s=rolling_window_s)
        self._win_points = WindowedCounter("serve.points_batched",
                                           window_s=rolling_window_s)
        self._pending: dict = {}      # EngineKey -> [(point, future), ...]
        self._timers: dict = {}       # EngineKey -> TimerHandle
        self._inflight: dict = {}     # (EngineKey, point) -> future
        self._memo: OrderedDict = OrderedDict()
        self._queued = 0
        self._batch_seq = 0
        self._points_batched = 0
        self._batches = 0
        self._tasks: set = set()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-solve")
        self._closed = False

    # -- public API ----------------------------------------------------------

    async def resolve(self, key, points, *, timeout: float,
                      trace_ctx=None) -> list:
        """Values for ``points`` (in order), coalescing with other callers.

        ``trace_ctx`` is the requesting span's ``(trace_id, span_id)``;
        batches fanning this request in link back to it.  Raises
        :class:`OverloadedError` when the queue bound would be exceeded,
        :class:`ShedError` / :class:`DegradedError` when adaptive
        admission control rejects on arrival, and
        :class:`DeadlineError` when ``timeout`` (seconds) expires
        first; an expired caller never cancels the underlying solve, so
        late joiners still complete.
        """
        self._admit(key, points, timeout)
        futures = [self._lookup(key, point, trace_ctx) for point in points]
        try:
            return await asyncio.wait_for(
                asyncio.gather(*(asyncio.shield(f) for f in futures)),
                timeout)
        except asyncio.TimeoutError:
            self._metrics.counter("serve.deadline_misses").inc()
            unsolved = sum(not f.done() for f in futures)
            self._flight.record("deadline_miss", node=key.node,
                                n=len(futures), unsolved=unsolved,
                                timeout_s=float(timeout))
            raise DeadlineError(
                f"deadline of {timeout:g}s expired with "
                f"{unsolved} of {len(futures)} "
                f"points unsolved") from None

    def _admit(self, key, points, timeout: float) -> None:
        """Adaptive admission control: reject doomed work on arrival.

        Only points that would actually *enqueue a solve* are gated —
        memo hits and single-flight joins cost nothing and always
        answer, which is exactly the degraded mode's cache-hit-only
        contract.  Rejections carry a ``Retry-After`` hint derived from
        the estimated time to drain the current queue.
        """
        if not self.shed:
            return
        new = [p for p in points
               if (key, p) not in self._memo
               and (key, p) not in self._inflight]
        if not new:
            return
        est = self.estimated_wait_s(len(new))
        self._metrics.gauge("serve.estimated_wait_s").set(est)
        if self.degraded:
            self._metrics.counter("serve.shed.degraded").inc()
            self._flight.record("shed", node=key.node, reason="degraded",
                                n=len(new), queued=self._queued)
            exc = DegradedError(
                f"server saturated ({self._queued}/{self.max_queue} "
                f"points queued); cold points rejected, cache hits "
                f"still served")
            exc.retry_after_s = max(1.0, self.estimated_wait_s())
            raise exc
        if est > float(timeout):
            self._metrics.counter("serve.shed.deadline").inc()
            self._flight.record("shed", node=key.node, reason="deadline",
                                n=len(new), queued=self._queued)
            exc = ShedError(
                f"estimated queue wait {est:.3f}s exceeds request "
                f"deadline {float(timeout):g}s; rejected before "
                f"queueing")
            exc.retry_after_s = max(1.0, est - float(timeout))
            raise exc

    def estimated_wait_s(self, extra_points: int = 0) -> float:
        """Estimated seconds before ``extra_points`` new points solve.

        The per-point cost is an EWMA over recent batch solves; before
        any batch has settled the estimate is 0 (cold servers always
        admit).
        """
        if self._ewma_point_s is None:
            return 0.0
        return (self._queued + int(extra_points)) * self._ewma_point_s

    @property
    def solve_ewma_s(self) -> float | None:
        """EWMA per-point solve cost (``None`` until a batch settles)."""
        return self._ewma_point_s

    @property
    def saturation(self) -> float:
        """Queue fullness in [0, 1]: pending points over ``max_queue``."""
        return self._queued / self.max_queue

    @property
    def degraded(self) -> bool:
        """True when shedding is on and saturation crossed the ratio."""
        return self.shed and self.saturation >= self.degraded_ratio

    def flush(self) -> None:
        """Dispatch every pending bucket now (shutdown / tests)."""
        for key in list(self._pending):
            self._flush(key)

    async def drain(self) -> None:
        """Flush and wait for all in-flight batch tasks to finish."""
        self.flush()
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    async def aclose(self, drain_timeout_s: float | None = None) -> None:
        """Drain outstanding work, then release the solver thread.

        With ``drain_timeout_s`` set the drain is *bounded*: solves
        still unfinished when the budget expires have their waiters
        failed with :class:`~repro.serve.protocol.DrainingError` and
        the solver thread is abandoned rather than joined, so a wedged
        solve can never hold shutdown hostage.
        """
        self._closed = True
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()
        if drain_timeout_s is None:
            await self.drain()
            self._executor.shutdown(wait=True)
            return
        self.flush()
        deadline = asyncio.get_running_loop().time() + float(drain_timeout_s)
        while self._tasks:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                break
            await asyncio.wait(list(self._tasks), timeout=remaining)
        if self._tasks or self._queued:
            self._metrics.counter("serve.drain_timeouts").inc()
            self._flight.record("drain", ok=False, queued=self._queued,
                                tasks=len(self._tasks))
            exc = DrainingError(
                f"drain budget of {drain_timeout_s:g}s exhausted with "
                f"{self._queued} points in flight")
            exc.retry_after_s = 1.0
            for fut in list(self._inflight.values()):
                if not fut.done():
                    fut.set_exception(exc)
            for task in list(self._tasks):
                task.cancel()
            self._executor.shutdown(wait=False, cancel_futures=True)
        else:
            self._flight.record("drain", ok=True)
            self._executor.shutdown(wait=True)

    @property
    def coalesce_ratio(self) -> float:
        """Mean points per dispatched batch (1.0 = no coalescing)."""
        return self._points_batched / self._batches if self._batches else 0.0

    @property
    def rolling_coalesce_ratio(self) -> float:
        """Mean points per batch over the rolling window (0 when idle)."""
        batches = self._win_batches.total()
        return self._win_points.total() / batches if batches else 0.0

    @property
    def queued(self) -> int:
        return self._queued

    # -- enqueue side (event-loop thread only) -------------------------------

    def _lookup(self, key, point, trace_ctx=None) -> asyncio.Future:
        """Future for one point: memo hit, in-flight join, or enqueue."""
        loop = asyncio.get_running_loop()
        k = (key, point)
        value = self._memo.get(k)
        if value is not None:
            self._memo.move_to_end(k)
            self._metrics.counter("serve.memo_hits").inc()
            self._flight.record("coalesce", node=key.node, source="memo")
            fut = loop.create_future()
            fut.set_result(value)
            return fut
        fut = self._inflight.get(k)
        if fut is not None:
            self._metrics.counter("serve.singleflight_joins").inc()
            self._flight.record("coalesce", node=key.node,
                                source="inflight")
            return fut
        if self._queued >= self.max_queue:
            self._metrics.counter("serve.rejected").inc()
            self._flight.record("backpressure_reject", node=key.node,
                                queued=self._queued, limit=self.max_queue)
            raise OverloadedError(
                f"{self._queued} points queued (limit {self.max_queue})")
        fut = loop.create_future()
        # Consume the exception even if every waiter timed out, so failed
        # batches never surface as "exception was never retrieved" noise.
        fut.add_done_callback(lambda f: f.cancelled() or f.exception())
        self._inflight[k] = fut
        self._queued += 1
        self._metrics.gauge("serve.queue_depth").set(self._queued)
        bucket = self._pending.setdefault(key, [])
        bucket.append((point, fut, trace_ctx))
        if len(bucket) >= self.max_batch:
            self._flush(key)
        elif len(bucket) == 1 and not self._closed:
            self._timers[key] = loop.call_later(
                self.window_s, self._flush, key)
        return fut

    def _flush(self, key) -> None:
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        bucket = self._pending.pop(key, None)
        if not bucket:
            return
        self._batches += 1
        self._points_batched += len(bucket)
        self._win_batches.inc()
        self._win_points.inc(len(bucket))
        self._metrics.counter("serve.batches").inc()
        self._metrics.histogram(
            "serve.batch_size", buckets=BATCH_SIZE_BUCKETS).observe(
                len(bucket))
        # The rolling (not lifetime-cumulative) ratio, so the gauge
        # tracks what coalescing is doing for current traffic.
        self._metrics.gauge("serve.coalesce_ratio").set(
            self.rolling_coalesce_ratio)
        self._flight.record("flush", node=key.node, n=len(bucket))
        task = asyncio.get_running_loop().create_task(
            self._run_batch(key, bucket))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    # -- solve side ----------------------------------------------------------

    async def _run_batch(self, key, bucket) -> None:
        points = [point for point, _, _ in bucket]
        # One fan-in link per distinct request span: a multi-point request
        # contributes the same ctx once per point, so dedupe in order.
        ctxs = list(dict.fromkeys(
            c for _, _, c in bucket if c is not None))
        # The batch span fans in every coalesced request: parented under
        # the first request's span (so its trace stays connected), with
        # links naming all of them.  Its id is minted up front so the
        # solve — and, through it, the pool workers — can parent under
        # it while the span itself is only recorded once the batch
        # settles.
        batch_span = self._tracer.new_span_id()
        solve_ctx = (ctxs[0][0] if ctxs else None, batch_span)
        ts = time.time() * 1e6
        t0 = time.perf_counter()
        ok = True
        try:
            values = await self._solve_with_retry(key, points, solve_ctx)
            if len(values) != len(points):
                raise SolverError(
                    f"solver returned {len(values)} values for "
                    f"{len(points)} points")
        except ServeError as exc:
            ok = False
            self._record_batch_span(key, bucket, ctxs, batch_span, ts, t0,
                                    ok=False)
            self._fail_bucket(key, bucket, exc)
            self._maybe_idle()
            return
        except Exception as exc:   # noqa: BLE001 - boundary to clients
            ok = False
            self._record_batch_span(key, bucket, ctxs, batch_span, ts, t0,
                                    ok=False)
            self._fail_bucket(
                key, bucket, SolverError(f"batch solve failed: {exc!r}"))
            self._maybe_idle()
            return
        finally:
            self._flight.record("solve", node=key.node, n=len(points),
                                ok=ok, wall_s=time.perf_counter() - t0)
        # Admission control's cost model: EWMA of amortised per-point
        # solve time, updated only from successful batches.
        per_point = (time.perf_counter() - t0) / len(points)
        self._ewma_point_s = (
            per_point if self._ewma_point_s is None
            else 0.3 * per_point + 0.7 * self._ewma_point_s)
        self._record_batch_span(key, bucket, ctxs, batch_span, ts, t0,
                                ok=True)
        for (point, fut, _), value in zip(bucket, values):
            self._settle(key, point)
            k = (key, point)
            self._memo[k] = value
            self._memo.move_to_end(k)
            while len(self._memo) > MEMO_LIMIT:
                self._memo.popitem(last=False)
            if not fut.done():
                fut.set_result(value)
        self._maybe_idle()

    def _record_batch_span(self, key, bucket, ctxs, batch_span, ts, t0,
                           *, ok: bool) -> None:
        if not self._tracer.enabled:
            return
        self._tracer.add_span(
            "serve.batch", ts=ts, dur_s=time.perf_counter() - t0,
            ctx=(ctxs[0] if ctxs else None), span_id=batch_span,
            links=[{"trace_id": c[0], "span_id": c[1]} for c in ctxs],
            node=key.node, n=len(bucket), ok=ok)

    def _maybe_idle(self) -> None:
        """Fire ``on_idle`` once the queue has fully drained."""
        if self._queued == 0 and self._on_idle is not None:
            try:
                self._on_idle()
            except Exception:   # noqa: BLE001 - housekeeping only
                pass

    async def _solve_with_retry(self, key, points, ctx=None) -> list:
        seq = self._batch_seq
        self._batch_seq += 1
        loop = asyncio.get_running_loop()
        last: Exception | None = None
        for attempt in range(self.policy.max_retries + 1):
            if attempt:
                self._metrics.counter("serve.solver_retries").inc()
                self._flight.record("retry", node=key.node, n=len(points),
                                    attempt=attempt,
                                    error=type(last).__name__)
                await asyncio.sleep(self.policy.backoff_s(seq, attempt))
            try:
                if self._solve_takes_ctx:
                    return await loop.run_in_executor(
                        self._executor, self._solve_fn, key, points, ctx)
                return await loop.run_in_executor(
                    self._executor, self._solve_fn, key, points)
            except Exception as exc:   # noqa: BLE001 - retried below
                last = exc
        self._metrics.counter("serve.solver_failures").inc()
        self._flight.record("fault", node=key.node, n=len(points),
                            attempts=self.policy.max_retries + 1,
                            error=type(last).__name__)
        raise SolverError(
            f"batch of {len(points)} points failed after "
            f"{self.policy.max_retries + 1} attempts: {last!r}")

    def _fail_bucket(self, key, bucket, exc: ServeError) -> None:
        for point, fut, _ in bucket:
            self._settle(key, point)
            if not fut.done():
                fut.set_exception(exc)

    def _settle(self, key, point) -> None:
        self._inflight.pop((key, point), None)
        self._queued -= 1
        self._metrics.gauge("serve.queue_depth").set(self._queued)
