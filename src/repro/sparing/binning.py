"""Frequency binning: a yield-economics view of structural duplication.

The paper sizes spares against a single pass/fail target.  Real product
lines *bin*: every chip ships at the fastest frequency grade it meets,
and slow silicon is sold cheaper rather than scrapped.  This module
extends the sparing analysis with that lens — how does a spare budget
move the bin population, and what is its expected relative value?

Bins are defined by period grades relative to the sign-off target
(grade 1.00 = full speed, 1.05 = 5 % slower, ...); a chip lands in the
fastest grade whose period covers its 99 %-confidence delay sample.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["FrequencyBin", "BinningResult", "bin_chips", "spare_binning_study"]

#: Default period grades relative to the target (1.00 = full speed).
DEFAULT_GRADES = (1.00, 1.05, 1.10, 1.20)


@dataclass(frozen=True)
class FrequencyBin:
    """One frequency grade."""

    grade: float          # period multiplier vs target (1.0 = full speed)
    count: int
    fraction: float

    @property
    def relative_value(self) -> float:
        """Value model: price scales with delivered throughput."""
        return 1.0 / self.grade


@dataclass(frozen=True)
class BinningResult:
    """Bin population for one (voltage, spares) configuration."""

    technology: str
    vdd: float
    spares: int
    target_delay: float
    bins: tuple
    scrap_fraction: float
    n_chips: int

    @property
    def full_speed_yield(self) -> float:
        """Fraction of chips meeting the full-speed grade."""
        return self.bins[0].fraction

    @property
    def expected_value(self) -> float:
        """Expected per-chip value (full-speed chip = 1.0, scrap = 0)."""
        return sum(b.fraction * b.relative_value for b in self.bins)

    def summary(self) -> str:
        grades = ", ".join(f"{b.grade:.2f}x: {100 * b.fraction:.1f} %"
                           for b in self.bins)
        return (f"{self.technology}@{self.vdd:.2f}V +{self.spares} spares: "
                f"[{grades}] scrap {100 * self.scrap_fraction:.1f} % -> "
                f"E[value] {self.expected_value:.3f}")


def bin_chips(analyzer, vdd, *, spares: int = 0, grades=DEFAULT_GRADES,
              n_chips: int = 10_000, rng=None,
              seed: int | None = 0) -> BinningResult:
    """Bin a Monte-Carlo chip population by achievable frequency grade.

    Chips slower than the slowest grade are scrapped.
    """
    grades = tuple(sorted(float(g) for g in grades))
    if not grades or grades[0] < 1.0 - 1e-12:
        raise ConfigurationError(
            "grades must be >= 1.0 period multipliers (1.0 = full speed)")
    if rng is None:
        rng = np.random.default_rng(seed)
    target = analyzer.target_delay(vdd)
    delays = analyzer.engine.sample_chips(vdd, n_chips, rng, spares=spares)

    bins = []
    assigned = np.zeros(n_chips, dtype=bool)
    for grade in grades:
        hit = (delays <= grade * target) & ~assigned
        assigned |= hit
        bins.append(FrequencyBin(grade=grade, count=int(hit.sum()),
                                 fraction=float(hit.mean())))
    return BinningResult(
        technology=analyzer.tech.name,
        vdd=float(vdd),
        spares=int(spares),
        target_delay=float(target),
        bins=tuple(bins),
        scrap_fraction=float((~assigned).mean()),
        n_chips=int(n_chips),
    )


def spare_binning_study(analyzer, vdd, *, spare_options=(0, 2, 4, 8, 16),
                        grades=DEFAULT_GRADES, n_chips: int = 10_000,
                        seed: int | None = 0) -> list:
    """Bin populations across spare budgets (value of redundancy).

    The same seed is reused per budget so configurations see matched
    statistics; expected value is monotone in the spare budget.
    """
    return [bin_chips(analyzer, vdd, spares=int(s), grades=grades,
                      n_chips=n_chips, seed=seed)
            for s in spare_options]
