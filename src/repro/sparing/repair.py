"""Test-time repair flow: fault map -> XRAM bypass configuration.

This is the operational counterpart of the sizing analysis: given one
manufactured chip (a sampled lane-delay vector), screen the lanes against
the target clock, derive the XRAM shuffle configuration that routes the
logical SIMD lanes onto healthy physical FUs (paper Fig. 12c), and report
the post-repair chip delay.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import RoutingError
from repro.simd.datapath import SIMDDatapath

__all__ = ["RepairReport", "repair_flow"]


@dataclass(frozen=True)
class RepairReport:
    """Outcome of the repair flow on one chip sample."""

    repaired: bool
    n_faulty: int
    faulty_lanes: tuple
    mapping: np.ndarray | None
    effective_delay: float | None
    clock_period: float
    meets_timing: bool

    def summary(self) -> str:
        if not self.repaired:
            return (f"IRREPARABLE: {self.n_faulty} faulty lanes "
                    f"{list(self.faulty_lanes)[:8]}...")
        status = "PASS" if self.meets_timing else "FAIL"
        return (f"repaired {self.n_faulty} faulty lanes; post-repair delay "
                f"{1e9 * self.effective_delay:.3f} ns vs clock "
                f"{1e9 * self.clock_period:.3f} ns -> {status}")


def repair_flow(analyzer, vdd, *, spares: int,
                cluster_size: int | None = None,
                clock_period: float | None = None,
                rng=None, seed: int | None = 0,
                lane_delays=None) -> RepairReport:
    """Run the full test-and-repair flow on one sampled chip.

    Parameters
    ----------
    analyzer:
        A :class:`~repro.core.analyzer.VariationAnalyzer`.
    vdd:
        Operating voltage (V).
    spares:
        Spare lanes manufactured.
    cluster_size:
        ``None`` for global (XRAM) sparing, else the local cluster size.
    clock_period:
        Screening clock (seconds); defaults to the mitigation target.
    lane_delays:
        Optional pre-measured lane delays (length ``width + spares``);
        sampled from the calibrated statistics when omitted.
    """
    if clock_period is None:
        clock_period = analyzer.target_delay(vdd)
    if lane_delays is None:
        if rng is None:
            rng = np.random.default_rng(seed)
        lane_delays = analyzer.engine.sample_lane_matrix(
            vdd, 1, rng, spares=spares)[0]

    datapath = SIMDDatapath(analyzer.width, spares=spares,
                            cluster_size=cluster_size)
    datapath.load_delays(lane_delays)
    faulty = datapath.test(clock_period)
    faulty_ids = tuple(l.index for l in faulty)

    try:
        mapping = datapath.repair()
    except RoutingError:
        return RepairReport(
            repaired=False, n_faulty=len(faulty_ids), faulty_lanes=faulty_ids,
            mapping=None, effective_delay=None,
            clock_period=float(clock_period), meets_timing=False)

    effective = datapath.effective_delay()
    return RepairReport(
        repaired=True,
        n_faulty=len(faulty_ids),
        faulty_lanes=faulty_ids,
        mapping=mapping,
        effective_delay=float(effective),
        clock_period=float(clock_period),
        meets_timing=bool(effective <= clock_period),
    )
