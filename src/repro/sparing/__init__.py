"""Structural duplication: spare-lane sizing, placement and repair.

Implements Section 4.1 and Appendix D of the paper: how many spare SIMD
lanes are needed to restore nominal-voltage timing sign-off at a
near-threshold operating point (:mod:`repro.sparing.duplication`), whether
to place them globally (XRAM) or locally (clusters)
(:mod:`repro.sparing.placement`), and the test-time repair flow that turns
a fault map into an XRAM bypass configuration
(:mod:`repro.sparing.repair`).
"""

from repro.sparing.duplication import (
    SpareSolution,
    solve_spares,
    continuous_spares,
)
from repro.sparing.placement import (
    PlacementResult,
    repair_probability,
    compare_placements,
)
from repro.sparing.repair import RepairReport, repair_flow
from repro.sparing.binning import (
    BinningResult,
    FrequencyBin,
    bin_chips,
    spare_binning_study,
)

__all__ = [
    "BinningResult",
    "FrequencyBin",
    "bin_chips",
    "spare_binning_study",
    "SpareSolution",
    "solve_spares",
    "continuous_spares",
    "PlacementResult",
    "repair_probability",
    "compare_placements",
    "RepairReport",
    "repair_flow",
]
