"""Spare placement: global (XRAM) vs local (clustered) sparing.

Paper Appendix D: Synctium assigns one spare per cluster of four lanes —
cheap routing, but a cluster with two slow lanes is unrepairable.  Global
sparing through the XRAM crossbar can absorb *any* fault pattern of up to
``spares`` lanes, including bursts.  This module quantifies that gap as a
repair probability (yield) under the calibrated delay statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["PlacementResult", "repair_probability", "compare_placements"]


@dataclass(frozen=True)
class PlacementResult:
    """Repair-yield estimate for one placement policy."""

    policy: str
    spares: int
    cluster_size: int | None
    clock_period: float
    repair_probability: float
    mean_faulty_lanes: float
    n_chips: int

    def summary(self) -> str:
        return (f"{self.policy:<22s} spares={self.spares:<3d} "
                f"yield={100 * self.repair_probability:6.2f} %  "
                f"(mean faults/chip {self.mean_faulty_lanes:.2f})")


def _fault_matrix(analyzer, vdd, spares: int, clock_period: float,
                  n_chips: int, rng) -> np.ndarray:
    """Boolean (n_chips, width+spares) matrix of timing-faulty lanes."""
    delays = analyzer.engine.sample_lane_matrix(vdd, n_chips, rng,
                                                spares=spares)
    return delays > clock_period


def repair_probability(analyzer, vdd, *, spares: int,
                       cluster_size: int | None = None,
                       clock_period: float | None = None,
                       n_chips: int = 4000, rng=None,
                       seed: int | None = 0) -> PlacementResult:
    """Monte-Carlo repair yield of a placement policy.

    Parameters
    ----------
    analyzer:
        A :class:`~repro.core.analyzer.VariationAnalyzer`.
    vdd:
        Operating voltage (V).
    spares:
        Total spare lanes.
    cluster_size:
        ``None`` for global sparing; otherwise lanes are grouped into
        ``width / cluster_size`` clusters with ``spares / n_clusters``
        spares each (must divide evenly), and a chip is repairable only if
        *every* cluster can cover its own faults.
    clock_period:
        Timing threshold that defines a faulty lane; defaults to the
        paper's mitigation target delay at ``vdd``.
    """
    if spares < 0:
        raise ConfigurationError("spares must be >= 0")
    if rng is None:
        rng = np.random.default_rng(seed)
    if clock_period is None:
        clock_period = analyzer.target_delay(vdd)

    width = analyzer.width
    faults = _fault_matrix(analyzer, vdd, spares, clock_period, n_chips, rng)

    if cluster_size is None:
        ok = faults.sum(axis=1) <= spares
        policy = "global (XRAM)"
    else:
        if cluster_size < 1 or width % cluster_size:
            raise ConfigurationError(
                f"cluster_size {cluster_size} must divide width {width}")
        n_clusters = width // cluster_size
        if spares % n_clusters:
            raise ConfigurationError(
                f"{spares} spares do not spread evenly over {n_clusters} clusters")
        spares_per_cluster = spares // n_clusters
        group = cluster_size + spares_per_cluster
        # Physical layout: each cluster holds its primaries plus its spares;
        # lanes are statistically exchangeable so contiguous grouping is
        # representative.
        per_cluster = faults.reshape(n_chips, n_clusters, group).sum(axis=2)
        ok = (per_cluster <= spares_per_cluster).all(axis=1)
        policy = f"local (1 per {cluster_size}b cluster)" \
            if spares_per_cluster == 1 else f"local ({spares_per_cluster} per cluster)"

    return PlacementResult(
        policy=policy,
        spares=spares,
        cluster_size=cluster_size,
        clock_period=float(clock_period),
        repair_probability=float(ok.mean()),
        mean_faulty_lanes=float(faults.sum(axis=1).mean()),
        n_chips=int(n_chips),
    )


def compare_placements(analyzer, vdd, *, spares: int,
                       cluster_sizes=(4, 8, 16, 32),
                       clock_period: float | None = None,
                       n_chips: int = 4000, seed: int | None = 0) -> list:
    """Global vs local repair yields at matched spare budgets (Fig. 12).

    Only cluster sizes whose implied spare distribution is integral are
    evaluated.  The same random stream is re-seeded per policy so that
    policies see identical fault statistics.
    """
    results = [repair_probability(analyzer, vdd, spares=spares,
                                  cluster_size=None,
                                  clock_period=clock_period,
                                  n_chips=n_chips, seed=seed)]
    width = analyzer.width
    for size in cluster_sizes:
        if width % size:
            continue
        n_clusters = width // size
        if spares % n_clusters:
            continue
        results.append(repair_probability(
            analyzer, vdd, spares=spares, cluster_size=size,
            clock_period=clock_period, n_chips=n_chips, seed=seed))
    return results
