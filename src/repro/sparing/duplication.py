"""Spare-lane sizing (structural duplication, paper Section 4.1 / Table 1).

The paper adds ``alpha`` spare SIMD functional units to the 128-wide
datapath; at test time the ``alpha`` slowest lanes are dropped (their FUs
power-gated) and the XRAM routes around them.  ``alpha`` is sized so the
99 % point of the resulting chip-delay distribution at the near-threshold
operating voltage matches the 99 % point of the *unduplicated* chip at
nominal voltage (both expressed in FO4 units — the ``target delay``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq

from repro.errors import ConfigurationError, ConvergenceError
from repro.simd.diet_soda import DIET_SODA, DietSodaPE

__all__ = ["SpareSolution", "solve_spares", "continuous_spares"]


@dataclass(frozen=True)
class SpareSolution:
    """Result of a spare-sizing run.

    ``feasible`` is False when even ``max_spares`` spares cannot reach the
    target (the paper's ">128" table cells): correlated die-to-die
    variation slows *every* lane of a slow die, which no amount of lane
    redundancy can repair.
    """

    technology: str
    vdd: float
    spares: int
    feasible: bool
    target_delay: float
    achieved_delay: float
    area_overhead: float
    power_overhead: float
    max_spares: int

    def summary(self) -> str:
        spare_txt = (str(self.spares) if self.feasible
                     else f">{self.max_spares}")
        return (f"{self.technology}@{self.vdd:.2f}V: {spare_txt} spares "
                f"(area +{100 * self.area_overhead:.1f} %, "
                f"power +{100 * self.power_overhead:.1f} %)")


def solve_spares(analyzer, vdd, *, target_delay: float | None = None,
                 max_spares: int = 128, pe: DietSodaPE = DIET_SODA) -> SpareSolution:
    """Minimum integer spare count restoring the nominal-voltage sign-off.

    Parameters
    ----------
    analyzer:
        A :class:`~repro.core.analyzer.VariationAnalyzer`.
    vdd:
        Near-threshold operating voltage (V).
    target_delay:
        Sign-off target in seconds; defaults to the paper's definition
        (``FO4(vdd) * fo4chipd@FV``, see
        :meth:`~repro.core.analyzer.VariationAnalyzer.target_delay`).
    max_spares:
        Saturation bound (paper: 128 — doubling the datapath).
    pe:
        Processing element used for overhead accounting.

    Notes
    -----
    The 99 % chip delay is monotone non-increasing in the spare count, so
    a bracketed binary search over integers finds the minimum exactly.
    """
    if max_spares < 0:
        raise ConfigurationError("max_spares must be >= 0")
    if target_delay is None:
        target_delay = analyzer.target_delay(vdd)

    def achieved(alpha: int) -> float:
        return analyzer.chip_quantile(vdd, spares=alpha)

    # Both saturation endpoints in one batched solve on the shared kernel.
    a_zero, a_max = np.atleast_1d(analyzer.chip_quantiles(
        vdd, spares=np.array([0.0, float(max_spares)])))
    if a_zero <= target_delay:
        return _solution(analyzer, vdd, 0, True, target_delay, a_zero,
                         pe, max_spares)
    if a_max > target_delay:
        return _solution(analyzer, vdd, max_spares, False, target_delay,
                         a_max, pe, max_spares)

    lo, hi = 0, max_spares           # achieved(lo) > target >= achieved(hi)
    best = a_max                     # achieved(hi), maintained with hi
    while hi - lo > 1:
        mid = (lo + hi) // 2
        value = achieved(mid)
        if value <= target_delay:
            hi, best = mid, value
        else:
            lo = mid
    return _solution(analyzer, vdd, hi, True, target_delay, best,
                     pe, max_spares)


def continuous_spares(analyzer, vdd, *, target_delay: float | None = None,
                      max_spares: float = 512.0) -> float:
    """Real-valued spare count solving ``q99(vdd, alpha) == target``.

    Uses the continuous order-statistic CDF (regularised incomplete beta);
    returns ``math.inf`` when saturated.  This is the smooth objective the
    calibration fitter matches against the paper's Table 1, avoiding
    integer-jump discontinuities in the least-squares residuals.
    """
    if target_delay is None:
        target_delay = analyzer.target_delay(vdd)

    def gap(alpha: float) -> float:
        return analyzer.chip_quantile(vdd, spares=alpha) - target_delay

    if gap(0.0) <= 0.0:
        return 0.0
    if gap(float(max_spares)) > 0.0:
        return math.inf
    try:
        return brentq(gap, 0.0, float(max_spares), xtol=1e-4)
    except ValueError as exc:  # pragma: no cover - defensive
        raise ConvergenceError(f"continuous spare solve failed: {exc}") from exc


def _solution(analyzer, vdd, spares: int, feasible: bool, target: float,
              achieved: float, pe: DietSodaPE, max_spares: int) -> SpareSolution:
    return SpareSolution(
        technology=analyzer.tech.name,
        vdd=float(vdd),
        spares=int(spares),
        feasible=feasible,
        target_delay=float(target),
        achieved_delay=float(achieved),
        area_overhead=pe.spare_area_overhead(spares),
        power_overhead=pe.spare_power_overhead(spares),
        max_spares=int(max_spares),
    )
