"""Duplication vs margining power comparison (paper Fig. 7).

Structural duplication wins where variation is small (few spares, and the
widened shuffle network is cheap), voltage margining wins where variation
is large (the exponential delay-voltage slope means a small supply bump
absorbs a big tail, while spare counts explode).  The crossover voltage
per node is the design guideline the paper draws from Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mitigation.voltage_margin import solve_voltage_margin
from repro.simd.diet_soda import DIET_SODA, DietSodaPE
from repro.sparing.duplication import solve_spares

__all__ = ["TechniqueComparison", "compare_techniques", "crossover_voltage"]


@dataclass(frozen=True)
class TechniqueComparison:
    """Power overheads of both techniques at one operating point."""

    technology: str
    vdd: float
    duplication_spares: int
    duplication_feasible: bool
    duplication_power: float
    margin_mv: float
    margin_feasible: bool
    margining_power: float

    @property
    def winner(self) -> str:
        """Which technique costs less power (feasibility first)."""
        if self.duplication_feasible and not self.margin_feasible:
            return "duplication"
        if self.margin_feasible and not self.duplication_feasible:
            return "margining"
        return ("duplication"
                if self.duplication_power <= self.margining_power
                else "margining")

    def summary(self) -> str:
        dup = (f"{self.duplication_spares} spares "
               f"(+{100 * self.duplication_power:.2f} %)"
               if self.duplication_feasible else "infeasible")
        mar = (f"{self.margin_mv:.1f} mV (+{100 * self.margining_power:.2f} %)"
               if self.margin_feasible else "infeasible")
        return (f"{self.technology}@{self.vdd:.2f}V: duplication {dup} | "
                f"margining {mar} -> {self.winner}")


def compare_techniques(analyzer, vdd, *, pe: DietSodaPE = DIET_SODA,
                       max_spares: int = 128) -> TechniqueComparison:
    """Evaluate both techniques against the same sign-off target."""
    dup = solve_spares(analyzer, vdd, max_spares=max_spares, pe=pe)
    mar = solve_voltage_margin(analyzer, vdd, pe=pe)
    return TechniqueComparison(
        technology=analyzer.tech.name,
        vdd=float(vdd),
        duplication_spares=dup.spares,
        duplication_feasible=dup.feasible,
        duplication_power=dup.power_overhead,
        margin_mv=mar.margin_mv,
        margin_feasible=mar.feasible,
        margining_power=mar.power_overhead,
    )


def crossover_voltage(analyzer, voltages, *, pe: DietSodaPE = DIET_SODA):
    """Estimate where margining starts beating duplication.

    Scans ``voltages`` (ascending) and returns the highest voltage at
    which margining is the winner, or ``None`` if duplication wins
    everywhere in the range.
    """
    crossover = None
    for vdd in sorted(float(v) for v in voltages):
        comparison = compare_techniques(analyzer, vdd, pe=pe)
        if comparison.winner == "margining":
            crossover = vdd
    return crossover
