"""Variation-mitigation techniques (paper Section 4).

* :mod:`repro.mitigation.voltage_margin` — supply-voltage margining
  (Section 4.2 / Table 2 / Fig. 6).
* :mod:`repro.mitigation.frequency_margin` — clock-period margining
  (Section 4.3 / Table 4).
* :mod:`repro.mitigation.combined` — joint duplication + margining design
  points (Section 4.4 / Table 3 / Fig. 8).
* :mod:`repro.mitigation.compare` — duplication-vs-margining power
  comparison (Fig. 7).
"""

from repro.mitigation.voltage_margin import MarginSolution, solve_voltage_margin
from repro.mitigation.frequency_margin import (
    FrequencyMarginSolution,
    solve_frequency_margin,
    memory_aligned_period,
)
from repro.mitigation.combined import (
    CombinedDesignPoint,
    required_margin_for_spares,
    enumerate_combinations,
    optimize_combination,
)
from repro.mitigation.compare import TechniqueComparison, compare_techniques
from repro.mitigation.body_bias import (
    BodyBiasSolution,
    solve_body_bias,
    compare_with_margining,
)
from repro.mitigation.error_tolerance import (
    ReplayModel,
    optimal_clock,
    simd_vs_scalar,
)

__all__ = [
    "ReplayModel",
    "optimal_clock",
    "simd_vs_scalar",
    "BodyBiasSolution",
    "solve_body_bias",
    "compare_with_margining",
    "MarginSolution",
    "solve_voltage_margin",
    "FrequencyMarginSolution",
    "solve_frequency_margin",
    "memory_aligned_period",
    "CombinedDesignPoint",
    "required_margin_for_spares",
    "enumerate_combinations",
    "optimize_combination",
    "TechniqueComparison",
    "compare_techniques",
]
