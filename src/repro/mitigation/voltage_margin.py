"""Supply-voltage margining (paper Section 4.2 / Table 2 / Fig. 6).

Near threshold, delay falls exponentially with supply voltage, so a few
millivolts of design-time margin can absorb the whole variation tail.
The required margin ``V_M`` is the smallest supply increase such that the
99 % chip delay at ``vdd + V_M`` drops below the target delay — where the
target is the chip's nominal-voltage FO4 sign-off scaled to ``vdd``
(see :meth:`~repro.core.analyzer.VariationAnalyzer.target_delay`).

Note the asymmetry that makes this technique work: the *target* is
defined at ``vdd`` (the architecture still presents itself as a
``vdd``-class design point to the energy budget), while the *chip* runs at
``vdd + V_M``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq

from repro.errors import ConfigurationError, ConvergenceError
from repro.simd.diet_soda import DIET_SODA, DietSodaPE

__all__ = ["MarginSolution", "solve_voltage_margin"]


@dataclass(frozen=True)
class MarginSolution:
    """Result of a voltage-margin search."""

    technology: str
    vdd: float
    margin: float
    feasible: bool
    target_delay: float
    achieved_delay: float
    power_overhead: float

    @property
    def final_vdd(self) -> float:
        """The supply the chip actually runs at."""
        return self.vdd + self.margin

    @property
    def margin_mv(self) -> float:
        return 1e3 * self.margin

    def summary(self) -> str:
        return (f"{self.technology}@{self.vdd:.2f}V: margin "
                f"{self.margin_mv:.1f} mV -> {1e3 * self.final_vdd:.1f} mV "
                f"(power +{100 * self.power_overhead:.1f} %)")


def solve_voltage_margin(analyzer, vdd, *, target_delay: float | None = None,
                         max_margin: float = 0.2,
                         pe: DietSodaPE = DIET_SODA,
                         xtol: float = 1e-5) -> MarginSolution:
    """Smallest supply margin meeting the sign-off target.

    Parameters
    ----------
    analyzer:
        A :class:`~repro.core.analyzer.VariationAnalyzer`.
    vdd:
        Design operating voltage (V).
    target_delay:
        Sign-off target (seconds); defaults to the paper's definition.
    max_margin:
        Search bound (V); the solve is infeasible beyond it.
    xtol:
        Voltage tolerance of the root search (10 uV default — Table 2
        quotes margins to 0.1 mV).

    Notes
    -----
    The 99 % chip delay is continuous and strictly decreasing in supply
    voltage, so the margin is the unique root of
    ``q99(vdd + m) - target``; a bracketed Brent search finds it to
    microvolt precision (the deterministic quantile engine is noise-free,
    which is what makes millivolt-scale answers meaningful).
    """
    if max_margin <= 0:
        raise ConfigurationError("max_margin must be positive")
    if target_delay is None:
        target_delay = analyzer.target_delay(vdd)

    def gap(margin: float) -> float:
        return analyzer.chip_quantile(vdd + margin) - target_delay

    # Both bracket endpoints in one batched solve (they share the cached
    # CDF kernel); the achieved delays are reused below instead of being
    # re-queried per return path.
    q_lo, q_hi = np.atleast_1d(analyzer.chip_quantiles(
        np.array([vdd + 0.0, vdd + max_margin])))
    if q_lo - target_delay <= 0.0:
        return _solution(analyzer, vdd, 0.0, True, target_delay, q_lo, pe)
    if q_hi - target_delay > 0.0:
        return _solution(analyzer, vdd, max_margin, False, target_delay,
                         q_hi, pe)
    try:
        margin = brentq(gap, 0.0, max_margin, xtol=xtol)
    except ValueError as exc:  # pragma: no cover - defensive
        raise ConvergenceError(f"margin search failed: {exc}") from exc
    # brentq returns a point within xtol of the root, possibly on the
    # infeasible side; step onto the meeting side so the returned margin
    # is guaranteed sufficient.  Track the achieved delay alongside so the
    # final point is never solved twice.
    achieved = gap(margin) + target_delay
    for _ in range(4):
        if achieved - target_delay <= 0.0:
            break
        margin = min(margin + xtol, max_margin)
        achieved = gap(margin) + target_delay
    return _solution(analyzer, vdd, margin, True, target_delay, achieved, pe)


def _solution(analyzer, vdd, margin: float, feasible: bool, target: float,
              achieved: float, pe: DietSodaPE) -> MarginSolution:
    return MarginSolution(
        technology=analyzer.tech.name,
        vdd=float(vdd),
        margin=float(margin),
        feasible=feasible,
        target_delay=float(target),
        achieved_delay=float(achieved),
        power_overhead=pe.margin_power_overhead(vdd, margin),
    )
