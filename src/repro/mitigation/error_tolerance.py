"""Timing-error tolerance (stall/replay) — the rejected alternative.

The paper opens Section 4 by arguing *against* error-tolerant operation
for wide SIMD: "an error encountered in one SIMD lane would cause the
other SIMD lanes to stall, flush, and execute the same operations
again", and cites Synctium's observation of a significant performance
drop as single-stage error probabilities increase.  This module
quantifies that argument with the calibrated statistics:

* the per-cycle timing-error probability at a clock period ``T`` is the
  tail of the (lane/chip) delay distribution beyond ``T``;
* a replay mechanism charges ``penalty`` cycles per error event;
* in an ``N``-wide SIMD machine *any* lane's error stalls all lanes, so
  the event rate is the chip-level tail — it grows ~``N``-fold over a
  scalar pipeline's for the same per-lane error rate.

:func:`optimal_clock` finds the throughput-maximising (Razor-style)
overclocking point; :func:`simd_vs_scalar` shows the SIMD optimum is far
more conservative — the quantitative form of the paper's argument.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.chip_delay import ChipDelayEngine
from repro.errors import ConfigurationError

__all__ = ["ReplayModel", "optimal_clock", "simd_vs_scalar"]

#: Default pipeline flush + re-execute cost in cycles.
DEFAULT_PENALTY_CYCLES = 10.0


@dataclass
class ReplayModel:
    """Stall/flush/replay error tolerance on a SIMD datapath.

    Parameters
    ----------
    analyzer:
        A :class:`~repro.core.analyzer.VariationAnalyzer`.
    penalty_cycles:
        Cycles lost per timing-error event (flush + re-execute).
    """

    analyzer: object
    penalty_cycles: float = DEFAULT_PENALTY_CYCLES

    def __post_init__(self) -> None:
        if self.penalty_cycles <= 0:
            raise ConfigurationError("penalty_cycles must be positive")
        self._engines: dict = {}

    def _engine(self, width: int) -> ChipDelayEngine:
        if width < 1:
            raise ConfigurationError("width must be >= 1")
        engine = self._engines.get(width)
        if engine is None:
            base = self.analyzer.engine
            engine = ChipDelayEngine(
                self.analyzer.tech, width=width,
                paths_per_lane=base.paths_per_lane,
                chain_length=base.chain_length)
            self._engines[width] = engine
        return engine

    def error_probability(self, vdd: float, clock: float,
                          width: int | None = None) -> float:
        """Per-cycle probability that *any* of ``width`` lanes errs.

        This is the tail of the width-wide chip-delay distribution beyond
        the clock period — correlations across lanes (die/lane scales)
        included.
        """
        if clock <= 0:
            raise ConfigurationError("clock must be positive")
        width = self.analyzer.width if width is None else int(width)
        return float(1.0 - self._engine(width).chip_cdf(vdd, clock))

    def effective_throughput(self, vdd: float, clock: float,
                             width: int | None = None) -> float:
        """Useful operations per second under replay.

        ``width / clock`` ideal rate, derated by the replay stall factor
        ``1 / (1 + penalty * p_error)``.
        """
        width = self.analyzer.width if width is None else int(width)
        p_err = self.error_probability(vdd, clock, width)
        return (width / clock) / (1.0 + self.penalty_cycles * p_err)


def optimal_clock(model: ReplayModel, vdd: float, width: int | None = None,
                  n_grid: int = 120) -> dict:
    """Throughput-optimal clock period under replay (Razor-style).

    Scans clock periods from well inside the safe region down into the
    error-prone region and returns the best point plus the safe
    (99.9 %-quantile) reference.
    """
    width = model.analyzer.width if width is None else int(width)
    engine = model._engine(width)
    safe = engine.chip_quantile(vdd, 0.999)
    median = engine.chip_quantile(vdd, 0.5)
    clocks = np.linspace(0.90 * median, 1.05 * safe, n_grid)
    throughputs = np.array([model.effective_throughput(vdd, float(t), width)
                            for t in clocks])
    best = int(np.argmax(throughputs))
    return {
        "clock": float(clocks[best]),
        "throughput": float(throughputs[best]),
        "safe_clock": float(safe),
        "safe_throughput": model.effective_throughput(vdd, float(safe),
                                                      width),
        "overclock_gain": float(throughputs[best])
        / model.effective_throughput(vdd, float(safe), width) - 1.0,
        "error_probability": model.error_probability(
            vdd, float(clocks[best]), width),
    }


def simd_vs_scalar(analyzer, vdd: float,
                   penalty_cycles: float = DEFAULT_PENALTY_CYCLES) -> dict:
    """The paper's Section-4 argument, quantified.

    Compares a scalar pipeline (1 lane) against the 128-wide SIMD
    machine at the *same* per-lane error probability: the SIMD machine's
    any-lane event rate, its throughput derate, and how much more
    conservatively it must be clocked to reach the same derate.
    """
    model = ReplayModel(analyzer, penalty_cycles=penalty_cycles)
    width = analyzer.width

    # Clock both at the scalar pipeline's 99% point.
    scalar_clock = model._engine(1).chip_quantile(vdd, 0.99)
    p_scalar = model.error_probability(vdd, scalar_clock, width=1)
    p_simd = model.error_probability(vdd, scalar_clock, width=width)

    derate_scalar = 1.0 / (1.0 + penalty_cycles * p_scalar)
    derate_simd = 1.0 / (1.0 + penalty_cycles * p_simd)

    # How much slower must the SIMD clock be for the same event rate?
    simd_engine = model._engine(width)
    matched_clock = simd_engine.chip_quantile(vdd, 1.0 - p_scalar)
    return {
        "scalar_clock": float(scalar_clock),
        "p_scalar": p_scalar,
        "p_simd": p_simd,
        "amplification": p_simd / max(p_scalar, 1e-30),
        "throughput_derate_scalar": derate_scalar,
        "throughput_derate_simd": derate_simd,
        "matched_clock": float(matched_clock),
        "clock_slowdown_for_parity": float(matched_clock / scalar_clock - 1.0),
    }
