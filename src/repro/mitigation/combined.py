"""Combined structural duplication + voltage margining (Section 4.4).

For a given spare budget ``alpha``, some residual margin ``V_M(alpha)``
is still required to reach the sign-off target; the total power overhead
is the sum of the shuffle-widening cost (spares) and the supply-scaling
cost (margin).  The paper's Table 3 shows the trade-off curve has an
interior optimum (2 spares + 10 mV beats either pure technique at
45 nm / 600 mV).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq

from repro.errors import ConfigurationError
from repro.simd.diet_soda import DIET_SODA, DietSodaPE

__all__ = [
    "CombinedDesignPoint",
    "required_margin_for_spares",
    "enumerate_combinations",
    "optimize_combination",
]


@dataclass(frozen=True)
class CombinedDesignPoint:
    """One (spares, margin) design point with its cost breakdown."""

    technology: str
    vdd: float
    spares: int
    margin: float
    feasible: bool
    spare_power_overhead: float
    margin_power_overhead: float
    area_overhead: float

    @property
    def power_overhead(self) -> float:
        return self.spare_power_overhead + self.margin_power_overhead

    @property
    def margin_mv(self) -> float:
        return 1e3 * self.margin

    def summary(self) -> str:
        return (f"{self.spares:3d} spares + {self.margin_mv:5.1f} mV -> "
                f"power +{100 * self.power_overhead:.2f} % "
                f"(spares {100 * self.spare_power_overhead:.2f} %, "
                f"margin {100 * self.margin_power_overhead:.2f} %)")


def required_margin_for_spares(analyzer, vdd, spares: int, *,
                               target_delay: float | None = None,
                               max_margin: float = 0.2,
                               xtol: float = 1e-5) -> float | None:
    """Residual voltage margin needed on top of ``spares`` spare lanes.

    Returns ``None`` when even ``max_margin`` cannot close the gap.
    """
    if spares < 0:
        raise ConfigurationError("spares must be >= 0")
    if target_delay is None:
        target_delay = analyzer.target_delay(vdd)

    def gap(margin: float) -> float:
        return analyzer.chip_quantile(vdd + margin, spares=spares) - target_delay

    # Bracket endpoints solved as one two-point batch on the shared kernel.
    q_lo, q_hi = np.atleast_1d(analyzer.chip_quantiles(
        np.array([vdd + 0.0, vdd + max_margin]), spares=float(spares)))
    if q_lo - target_delay <= 0.0:
        return 0.0
    if q_hi - target_delay > 0.0:
        return None
    margin = float(brentq(gap, 0.0, max_margin, xtol=xtol))
    # Guarantee the meeting side of the root (brentq tolerance slack).
    for _ in range(4):
        if gap(margin) <= 0.0:
            break
        margin = min(margin + xtol, max_margin)
    return margin


def evaluate_point(analyzer, vdd, spares: int, *,
                   target_delay: float | None = None,
                   max_margin: float = 0.2,
                   pe: DietSodaPE = DIET_SODA) -> CombinedDesignPoint:
    """Size the margin for a spare budget and price the combination."""
    margin = required_margin_for_spares(
        analyzer, vdd, spares, target_delay=target_delay,
        max_margin=max_margin)
    feasible = margin is not None
    margin = margin if feasible else max_margin
    return CombinedDesignPoint(
        technology=analyzer.tech.name,
        vdd=float(vdd),
        spares=int(spares),
        margin=float(margin),
        feasible=feasible,
        spare_power_overhead=pe.spare_power_overhead(spares),
        margin_power_overhead=pe.margin_power_overhead(vdd, margin),
        area_overhead=pe.spare_area_overhead(spares),
    )


def enumerate_combinations(analyzer, vdd, spare_counts, *,
                           target_delay: float | None = None,
                           pe: DietSodaPE = DIET_SODA) -> list:
    """Evaluate a list of spare budgets (Table 3 rows)."""
    return [evaluate_point(analyzer, vdd, int(s), target_delay=target_delay,
                           pe=pe)
            for s in spare_counts]


def optimize_combination(analyzer, vdd, *, max_spares: int = 64,
                         target_delay: float | None = None,
                         pe: DietSodaPE = DIET_SODA) -> CombinedDesignPoint:
    """Minimum-power (spares, margin) combination.

    Sweeps integer spare budgets from 0 upward.  The margin component
    decreases and the spare component increases monotonically with
    ``alpha``, so the total is unimodal; the sweep stops once the total
    overhead has risen for several consecutive budgets past the incumbent.
    """
    best = None
    rising = 0
    for spares in range(max_spares + 1):
        point = evaluate_point(analyzer, vdd, spares,
                               target_delay=target_delay, pe=pe)
        if not point.feasible:
            continue
        if best is None or point.power_overhead < best.power_overhead:
            best = point
            rising = 0
        else:
            rising += 1
            if rising >= 4:
                break
    if best is None:
        raise ConfigurationError(
            f"no feasible combination up to {max_spares} spares at "
            f"{analyzer.tech.name}@{vdd}V")
    return best
