"""Clock-frequency margining (paper Section 4.3 / Appendix E, Table 4).

Instead of fixing the variation tail, simply stretch the clock period
until the 99 % chip delay fits: the *variation-aware* clock period
``T_va-clk`` is the 99 % chip delay itself, and the performance penalty is
``T_va-clk / T_clk - 1`` relative to the designed period (the paper's
Fig. 4 drop).  Two practical caveats the paper raises are modelled:

* at advanced nodes the required stretch approaches 20 %, which usually
  violates real-time constraints; and
* the SIMD clock must stay an integer multiple of the (full-voltage)
  memory clock to avoid cross-domain synchronisers, quantising the
  achievable periods (:func:`memory_aligned_period`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "FrequencyMarginSolution",
    "solve_frequency_margin",
    "solve_frequency_margins",
    "memory_aligned_period",
]


@dataclass(frozen=True)
class FrequencyMarginSolution:
    """One Table-4 row: designed vs variation-aware clock period."""

    technology: str
    vdd: float
    t_clk: float          # designed period, seconds
    t_va_clk: float       # variation-aware period, seconds
    memory_period: float | None = None
    t_va_clk_aligned: float | None = None

    @property
    def performance_drop(self) -> float:
        """Fractional throughput loss of running at ``t_va_clk``."""
        return self.t_va_clk / self.t_clk - 1.0

    @property
    def aligned_performance_drop(self) -> float | None:
        """Drop after quantising to the memory clock (None if unaligned)."""
        if self.t_va_clk_aligned is None:
            return None
        return self.t_va_clk_aligned / self.t_clk - 1.0

    def summary(self) -> str:
        base = (f"{self.technology}@{self.vdd:.2f}V: Tclk="
                f"{1e9 * self.t_clk:.2f} ns, Tva-clk="
                f"{1e9 * self.t_va_clk:.2f} ns "
                f"(drop {100 * self.performance_drop:.1f} %)")
        if self.t_va_clk_aligned is not None:
            base += (f"; memory-aligned {1e9 * self.t_va_clk_aligned:.2f} ns "
                     f"(drop {100 * self.aligned_performance_drop:.1f} %)")
        return base


def memory_aligned_period(t_va_clk: float, memory_period: float) -> float:
    """Smallest multiple of the memory clock period covering ``t_va_clk``.

    The paper: "the SIMD datapath clock period has to be multiples of the
    memory clock period to avoid complex synchronization".
    """
    if t_va_clk <= 0 or memory_period <= 0:
        raise ConfigurationError("periods must be positive")
    return memory_period * math.ceil(t_va_clk / memory_period - 1e-12)


def solve_frequency_margin(analyzer, vdd, *,
                           memory_period: float | None = None
                           ) -> FrequencyMarginSolution:
    """Compute one Table-4 row for an operating voltage.

    ``t_clk`` is the designed period — the chip's target delay at ``vdd``
    (nominal-voltage FO4 sign-off scaled to ``vdd``); ``t_va_clk`` is the
    99 % chip delay including near-threshold variation.  If
    ``memory_period`` is given, the variation-aware period is additionally
    quantised to the memory clock grid.
    """
    t_clk = analyzer.target_delay(vdd)
    t_va = analyzer.chip_quantile(vdd)
    aligned = (memory_aligned_period(t_va, memory_period)
               if memory_period is not None else None)
    return FrequencyMarginSolution(
        technology=analyzer.tech.name,
        vdd=float(vdd),
        t_clk=float(t_clk),
        t_va_clk=float(t_va),
        memory_period=memory_period,
        t_va_clk_aligned=aligned,
    )


def solve_frequency_margins(analyzer, vdds, *,
                            memory_period: float | None = None) -> list:
    """Table-4 rows for a whole sweep of operating voltages.

    All 99 % chip delays behind the sweep are resolved with one batched
    :meth:`~repro.core.analyzer.VariationAnalyzer.chip_quantiles` call;
    the per-voltage :func:`solve_frequency_margin` constructions below it
    are then pure cache hits.
    """
    vdds = [float(v) for v in np.atleast_1d(np.asarray(vdds, dtype=float))]
    if vdds:
        analyzer.chip_quantiles(np.array(vdds))
    return [solve_frequency_margin(analyzer, vdd,
                                   memory_period=memory_period)
            for vdd in vdds]
