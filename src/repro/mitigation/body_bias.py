"""Adaptive body biasing (ABB) — an extension beyond the paper's three
techniques.

The paper's related work (EVAL, Sarangi et al.) trades variation-induced
errors against power with adaptive body bias / adaptive supply voltage;
this module adds forward body bias (FBB) as a fourth knob next to the
paper's duplication/margining/frequency trio:

* FBB lowers every device threshold by ``body_coefficient * v_bb``
  (body-effect coefficient ~0.1-0.2 V/V for the planar nodes studied),
  which speeds the datapath much like a supply margin does;
* the cost is exponential sub-threshold leakage growth,
  ``exp(dVth / (n vT))``, charged to the leakage share of the
  near-threshold domain's power.

Because threshold shifts act *inside* the exponential sensitivity region,
FBB is most effective exactly where margining is — the comparison
(:func:`compare_with_margining`) shows which knob is cheaper for a given
leakage share.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from scipy.optimize import brentq

from repro.core.analyzer import VariationAnalyzer
from repro.errors import ConfigurationError
from repro.simd.diet_soda import DIET_SODA, DietSodaPE

__all__ = ["BodyBiasSolution", "solve_body_bias", "compare_with_margining"]

#: Default body-effect coefficient (V of Vth reduction per V of FBB).
DEFAULT_BODY_COEFFICIENT = 0.15
#: Forward-bias safety limit before junction leakage explodes (V).
MAX_FORWARD_BIAS = 0.5
#: Leakage share of the DV domain's power at the operating point.
DEFAULT_LEAKAGE_SHARE = 0.15


@dataclass(frozen=True)
class BodyBiasSolution:
    """Result of a forward-body-bias search."""

    technology: str
    vdd: float
    v_bb: float                 # applied forward body bias (V)
    dvth: float                 # resulting threshold reduction (V)
    feasible: bool
    target_delay: float
    achieved_delay: float
    power_overhead: float

    @property
    def v_bb_mv(self) -> float:
        return 1e3 * self.v_bb

    def summary(self) -> str:
        return (f"{self.technology}@{self.vdd:.2f}V: FBB "
                f"{self.v_bb_mv:.1f} mV (dVth {1e3 * self.dvth:.1f} mV) "
                f"-> power +{100 * self.power_overhead:.2f} %")


def _biased_analyzer(analyzer: VariationAnalyzer, dvth: float):
    """Analyzer whose devices have their thresholds shifted by ``-dvth``."""
    mosfet = replace(analyzer.tech.mosfet,
                     vth0=analyzer.tech.mosfet.vth0 - dvth)
    tech = replace(analyzer.tech, mosfet=mosfet)
    return VariationAnalyzer(tech, width=analyzer.width,
                             paths_per_lane=analyzer.paths_per_lane,
                             chain_length=analyzer.chain_length,
                             signoff_quantile=analyzer.signoff_quantile)


def leakage_overhead(analyzer, dvth: float,
                     leakage_share: float = DEFAULT_LEAKAGE_SHARE,
                     pe: DietSodaPE = DIET_SODA) -> float:
    """Fractional PE power overhead of a threshold reduction ``dvth``.

    Sub-threshold leakage multiplies by ``exp(dvth / (n vT))``; the
    overhead charges that growth to the leakage share of the DV domain.
    """
    if dvth < 0:
        raise ConfigurationError("dvth must be >= 0 (forward bias)")
    n_vt = analyzer.tech.mosfet.n_slope * analyzer.tech.mosfet.thermal_voltage
    import math
    growth = math.exp(dvth / n_vt) - 1.0
    return pe.dv_power_fraction * leakage_share * growth


def solve_body_bias(analyzer, vdd, *, target_delay: float | None = None,
                    body_coefficient: float = DEFAULT_BODY_COEFFICIENT,
                    max_bias: float = MAX_FORWARD_BIAS,
                    leakage_share: float = DEFAULT_LEAKAGE_SHARE,
                    pe: DietSodaPE = DIET_SODA,
                    xtol: float = 1e-5) -> BodyBiasSolution:
    """Smallest forward body bias meeting the sign-off target at ``vdd``.

    Mirrors :func:`repro.mitigation.voltage_margin.solve_voltage_margin`
    but actuates the threshold instead of the supply.
    """
    if not 0.0 < body_coefficient < 1.0:
        raise ConfigurationError("body_coefficient must be in (0, 1)")
    if target_delay is None:
        target_delay = analyzer.target_delay(vdd)

    def achieved(v_bb: float) -> float:
        biased = _biased_analyzer(analyzer, body_coefficient * v_bb)
        return biased.chip_quantile(vdd)

    def gap(v_bb: float) -> float:
        return achieved(v_bb) - target_delay

    if gap(0.0) <= 0.0:
        return BodyBiasSolution(analyzer.tech.name, float(vdd), 0.0, 0.0,
                                True, target_delay, achieved(0.0), 0.0)
    if gap(max_bias) > 0.0:
        return BodyBiasSolution(
            analyzer.tech.name, float(vdd), max_bias,
            body_coefficient * max_bias, False, target_delay,
            achieved(max_bias),
            leakage_overhead(analyzer, body_coefficient * max_bias,
                             leakage_share, pe))
    v_bb = brentq(gap, 0.0, max_bias, xtol=xtol)
    for _ in range(4):
        if gap(v_bb) <= 0.0:
            break
        v_bb = min(v_bb + xtol, max_bias)
    dvth = body_coefficient * v_bb
    return BodyBiasSolution(
        analyzer.tech.name, float(vdd), float(v_bb), float(dvth), True,
        float(target_delay), float(achieved(v_bb)),
        leakage_overhead(analyzer, dvth, leakage_share, pe))


def compare_with_margining(analyzer, vdd, *,
                           leakage_share: float = DEFAULT_LEAKAGE_SHARE,
                           pe: DietSodaPE = DIET_SODA) -> dict:
    """Power-overhead comparison: forward body bias vs supply margining."""
    from repro.mitigation.voltage_margin import solve_voltage_margin
    abb = solve_body_bias(analyzer, vdd, leakage_share=leakage_share, pe=pe)
    margin = solve_voltage_margin(analyzer, vdd, pe=pe)
    if abb.feasible and (not margin.feasible
                         or abb.power_overhead < margin.power_overhead):
        winner = "body-bias"
    else:
        winner = "margining"
    return {
        "body_bias": abb,
        "margining": margin,
        "winner": winner,
    }
