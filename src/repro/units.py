"""Unit helpers.

The library computes internally in SI units (volts, seconds, watts).  The
paper, however, reports voltages in millivolts, delays in nanoseconds or
"FO4 units", and overheads in percent.  These helpers make conversions
explicit at API boundaries instead of scattering magic constants.
"""

from __future__ import annotations

import numpy as np

#: Boltzmann constant times unit charge at room temperature (300 K), volts.
THERMAL_VOLTAGE = 0.02585

# ---------------------------------------------------------------------------
# Voltage
# ---------------------------------------------------------------------------


def mv(value):
    """Convert millivolts to volts (``mv(500) == 0.5``)."""
    return np.asarray(value, dtype=float) / 1e3 if np.ndim(value) else float(value) / 1e3


def to_mv(volts):
    """Convert volts to millivolts."""
    return np.asarray(volts, dtype=float) * 1e3 if np.ndim(volts) else float(volts) * 1e3


# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------


def ps(value):
    """Convert picoseconds to seconds."""
    return np.asarray(value, dtype=float) * 1e-12 if np.ndim(value) else float(value) * 1e-12


def ns(value):
    """Convert nanoseconds to seconds."""
    return np.asarray(value, dtype=float) * 1e-9 if np.ndim(value) else float(value) * 1e-9


def to_ps(seconds):
    """Convert seconds to picoseconds."""
    return np.asarray(seconds, dtype=float) * 1e12 if np.ndim(seconds) else float(seconds) * 1e12


def to_ns(seconds):
    """Convert seconds to nanoseconds."""
    return np.asarray(seconds, dtype=float) * 1e9 if np.ndim(seconds) else float(seconds) * 1e9


# ---------------------------------------------------------------------------
# Ratios
# ---------------------------------------------------------------------------


def percent(fraction):
    """Convert a fraction to percent (``percent(0.05) == 5.0``)."""
    return np.asarray(fraction, dtype=float) * 100.0 if np.ndim(fraction) else float(fraction) * 100.0


def from_percent(value):
    """Convert percent to a fraction (``from_percent(5.0) == 0.05``)."""
    return np.asarray(value, dtype=float) / 100.0 if np.ndim(value) else float(value) / 100.0


def three_sigma_over_mu(samples, axis=None):
    """The paper's variation metric: ``3 * std / mean`` as a *fraction*.

    ``samples`` may be any array-like of delay samples.  Uses the
    population standard deviation (ddof=0), matching how distribution
    spread is quoted for Monte-Carlo ensembles.
    """
    samples = np.asarray(samples, dtype=float)
    mean = samples.mean(axis=axis)
    std = samples.std(axis=axis)
    return 3.0 * std / mean
