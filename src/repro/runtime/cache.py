"""Persistent memo cache for deterministic chip-delay quantiles.

``ChipDelayEngine.chip_quantile`` is a pure function of the technology
card, the architecture parameters and the quadrature orders — yet every
process recomputed it from scratch (a bracketing search plus a Brent solve,
each iteration a full Gauss-Hermite CDF evaluation).  ``python -m
repro.experiments all`` alone re-derives the same sign-off quantiles for
fig4/fig7/table1-4 across runs.

:class:`QuantileCache` memoises those solves on disk so a deterministic
number is never paid for twice, across processes and across runs:

* **Location** — ``$REPRO_CACHE_DIR/quantiles.json`` when the
  ``REPRO_CACHE_DIR`` environment variable is set, else
  ``~/.cache/repro/quantiles.json``.  Set ``REPRO_CACHE_DISABLE=1`` to turn
  the cache off entirely (every ``get`` misses, ``put`` is a no-op).
* **Key** — technology node name + a fingerprint of the full calibrated
  card (so re-calibration invalidates old entries), the architecture
  (width / paths-per-lane / chain-length), the three quadrature orders,
  and the query point (vdd, q, spares).
* **Exactness** — values are stored as ``float.hex()`` strings, so a cache
  hit returns the *exact bytes* of the original solve, not a decimal
  round-trip approximation.

**Crash safety** (the resilience contract): every entry is stored as
``[hex_value, crc32_checksum]`` under a format-version stamp; writes go
through a temp file + ``fsync`` + ``os.replace`` so a killed run can never
leave a truncated file; and concurrent multi-process writers are
serialised with an advisory ``flock`` on a ``.lock`` sidecar.  On read, a
bit-flipped entry fails its checksum and is *quarantined* — dropped,
counted (``resilience.cache.quarantined``), recorded in the fault ledger,
and transparently recomputed by the caller; an unparseable file is moved
aside to ``<path>.quarantined`` (``resilience.cache.file_quarantined``)
and the run continues with an empty cache.  Corruption is never fatal.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import zlib
from contextlib import contextmanager

from repro.obs.api import counter as _obs_counter
from repro.obs.api import current_obs
from repro.resilience.faultlab import active_plan
from repro.resilience.ledger import current_ledger

try:
    import fcntl
except ImportError:                      # non-POSIX: locks degrade to no-ops
    fcntl = None

__all__ = ["QuantileCache", "technology_fingerprint",
           "ENV_CACHE_DIR", "ENV_CACHE_DISABLE"]

#: Environment variable overriding the cache directory.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Environment variable disabling the persistent cache ("1"/"true"/...).
ENV_CACHE_DISABLE = "REPRO_CACHE_DISABLE"

#: Format version; v2 added per-entry checksums.  Files with any other
#: stamp read as empty (recomputed, then overwritten in v2 form).
_FILE_VERSION = 2

_fingerprints: dict = {}


def _cache_disabled() -> bool:
    return os.environ.get(ENV_CACHE_DISABLE, "").strip().lower() in (
        "1", "true", "yes", "on")


def default_cache_dir() -> str:
    """The directory quantile caches live in (honours ``REPRO_CACHE_DIR``)."""
    override = os.environ.get(ENV_CACHE_DIR)
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def technology_fingerprint(tech) -> str:
    """A short stable hash of a calibrated technology card.

    Hashes every numeric constant of the card (device model, variation
    model, delay scale), so any re-calibration produces a different
    fingerprint and silently invalidates stale cache entries.
    """
    cached = _fingerprints.get(tech)
    if cached is None:
        payload = json.dumps(dataclasses.asdict(tech), sort_keys=True,
                             default=repr)
        cached = hashlib.sha256(payload.encode()).hexdigest()[:16]
        _fingerprints[tech] = cached
    return cached


def _entry_checksum(key: str, hex_value: str) -> str:
    """CRC32 over key and value, hex-encoded; keyed so swapped entries fail."""
    return format(zlib.crc32(f"{key}={hex_value}".encode()) & 0xFFFFFFFF,
                  "08x")


@contextmanager
def _advisory_lock(path: str):
    """Exclusive advisory flock on ``path + '.lock'`` (no-op off POSIX).

    Serialises the read-merge-write cycle of concurrent multi-process
    runs; lock failures degrade to the old merge-on-write behaviour
    rather than blocking the run.
    """
    if fcntl is None:
        yield
        return
    try:
        fd = os.open(path + ".lock", os.O_CREAT | os.O_RDWR, 0o644)
    except OSError:
        yield
        return
    try:
        fcntl.flock(fd, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
    finally:
        os.close(fd)


class QuantileCache:
    """On-disk memo for deterministic chip-delay quantiles.

    Parameters
    ----------
    path:
        Cache file; defaults to ``<cache dir>/quantiles.json`` (see module
        docstring for the directory resolution rules).
    enabled:
        Force the cache on/off; defaults to the ``REPRO_CACHE_DISABLE``
        environment variable.
    """

    def __init__(self, path: str | None = None,
                 enabled: bool | None = None) -> None:
        if path is None:
            path = os.path.join(default_cache_dir(), "quantiles.json")
        self.path = str(path)
        self.enabled = (not _cache_disabled()) if enabled is None else bool(enabled)
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        self._entries: dict | None = None   # lazy-loaded

    # -- keys ---------------------------------------------------------------

    @staticmethod
    def make_key(tech, *, width: int, paths_per_lane: int, chain_length: int,
                 quad_within: int, quad_corr_vth: int, quad_corr_mult: int,
                 vdd: float, q: float, spares: float) -> str:
        """The canonical cache key for one deterministic quantile."""
        return ":".join((
            tech.name, technology_fingerprint(tech),
            f"w{int(width)}", f"p{int(paths_per_lane)}",
            f"c{int(chain_length)}",
            f"gh{int(quad_within)}-{int(quad_corr_vth)}-{int(quad_corr_mult)}",
            f"v{float(vdd)!r}", f"q{float(q)!r}", f"s{float(spares)!r}",
        ))

    # -- persistence ----------------------------------------------------------

    def _quarantine_file(self) -> None:
        """Move an unparseable cache file aside; never fatal."""
        target = self.path + ".quarantined"
        try:
            os.replace(self.path, target)
        except OSError:
            target = None
        self.quarantined += 1
        _obs_counter("resilience.cache.file_quarantined").inc()
        current_ledger().record("cache_file_quarantined", path=self.path,
                                moved_to=target)

    @staticmethod
    def _valid_entry(key, rec) -> bool:
        """True when ``rec`` is a checksummed entry that verifies for ``key``."""
        if not (isinstance(rec, (list, tuple)) and len(rec) == 2
                and isinstance(rec[0], str) and isinstance(rec[1], str)):
            return False
        try:
            float.fromhex(rec[0])
        except (TypeError, ValueError):
            return False
        return _entry_checksum(key, rec[0]) == rec[1]

    def _read_file(self, record: bool = True) -> dict:
        """Validated entries from disk; corruption quarantines, never raises.

        ``record=False`` suppresses quarantine counting for the re-read
        inside :meth:`put_many` (the damage was already reported when the
        entries were first loaded).
        """
        try:
            with open(self.path, encoding="utf-8") as fh:
                payload = json.load(fh)
            if not isinstance(payload, dict):
                raise ValueError("cache payload is not an object")
        except OSError:
            return {}
        except ValueError:
            if record:
                self._quarantine_file()
            return {}
        if payload.get("version") != _FILE_VERSION:
            return {}
        raw = payload.get("entries", {})
        if not isinstance(raw, dict):
            if record:
                self._quarantine_file()
            return {}
        self._inject_corruption(raw)
        entries = {}
        bad = 0
        for key, rec in raw.items():
            if self._valid_entry(key, rec):
                entries[key] = [rec[0], rec[1]]
            else:
                bad += 1
        if bad and record:
            self.quarantined += bad
            _obs_counter("resilience.cache.quarantined").inc(bad)
            current_ledger().record("cache_entry_quarantined",
                                    path=self.path, entries=bad)
        return entries

    @staticmethod
    def _inject_corruption(raw: dict) -> None:
        """Fault lab: corrupt the target-th entry (sorted) before validation."""
        plan = active_plan()
        if plan is None or not raw:
            return
        targets = plan.pending("cache_corrupt")
        if not targets:
            return
        keys = sorted(raw)
        for target in targets:
            if plan.consume("cache_corrupt", target):
                raw[keys[target % len(keys)]] = ["<corrupted-by-faultlab>",
                                                 "00000000"]

    def _load(self) -> dict:
        if self._entries is None:
            self._entries = self._read_file() if self.enabled else {}
        return self._entries

    def _write(self) -> None:
        directory = os.path.dirname(self.path) or "."
        tmp = None
        try:
            os.makedirs(directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump({"version": _FILE_VERSION,
                           "entries": self._entries}, fh, indent=0)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        except OSError:
            # A read-only cache dir degrades to in-memory behaviour.
            if tmp is not None:
                try:
                    os.remove(tmp)
                except OSError:
                    pass

    # -- access ---------------------------------------------------------------

    def get(self, key: str) -> float | None:
        """The memoised value for ``key``, or ``None`` on a miss."""
        return self.get_many((key,))[0]

    def get_many(self, keys) -> list:
        """Memoised values for ``keys`` in order, ``None`` per miss.

        One lookup pass for a whole batch of query points — the disk file
        is read (at most) once regardless of the batch size, so partial
        hits cost the same as a single :meth:`get`.  Unreadable or
        corrupt entries were already quarantined at load time, so they
        simply read as misses here.
        """
        keys = list(keys)
        if not self.enabled:
            self.misses += len(keys)
            _obs_counter("quantile_cache.misses").inc(len(keys))
            return [None] * len(keys)
        entries = self._load()
        out = []
        hits = 0
        for key in keys:
            stored = entries.get(key)
            value = None
            if stored is not None:
                try:
                    value = float.fromhex(stored[0])
                except (TypeError, ValueError, IndexError):
                    value = None
            if value is None:
                self.misses += 1
            else:
                self.hits += 1
                hits += 1
            out.append(value)
        _obs_counter("quantile_cache.hits").inc(hits)
        _obs_counter("quantile_cache.misses").inc(len(keys) - hits)
        return out

    def put(self, key: str, value: float) -> None:
        """Memoise ``value`` under ``key`` (write-through, merge-on-write)."""
        self.put_many(((key, value),))

    def put_many(self, items) -> None:
        """Memoise many ``(key, value)`` pairs in one merged atomic write.

        The read-merge-write cycle runs under an advisory file lock, so
        concurrent multi-process runs serialise their merges and can only
        ever lose a duplicate solve, never an entry.
        """
        items = list(items)
        if not self.enabled or not items:
            return
        with _advisory_lock(self.path):
            # Merge with whatever landed on disk since we loaded (already
            # reported corruption is not re-counted).  Precedence matters
            # under concurrency: the fresh on-disk read wins over this
            # instance's stale in-memory copy for every key we are not
            # writing ourselves — a concurrent writer's newer entry must
            # never be shadowed by a value we loaded before it ran.
            merged = dict(self._load())
            merged.update(self._read_file(record=False))
            for key, value in items:
                hex_value = float(value).hex()
                merged[key] = [hex_value, _entry_checksum(key, hex_value)]
            self._entries = merged
            self._write()
        metrics = current_obs().metrics
        metrics.counter("quantile_cache.writes").inc(len(items))
        if metrics.enabled:
            try:
                metrics.gauge("quantile_cache.file_bytes").set(
                    os.path.getsize(self.path))
                metrics.gauge("quantile_cache.entries").set(len(merged))
            except OSError:
                pass

    def clear(self) -> None:
        """Drop every entry (memory and disk)."""
        self._entries = {}
        if self.enabled:
            with _advisory_lock(self.path):
                self._write()

    def __len__(self) -> int:
        return len(self._load())
