"""Sharded, process-parallel Monte-Carlo sampling.

The paper's statistics are embarrassingly parallel — chips are iid draws —
so both sampling engines shard perfectly.  :class:`ParallelSampler` splits
a request for ``n`` chips into fixed-size shards, derives one independent
random stream per shard with :meth:`numpy.random.SeedSequence.spawn`, and
fans the shards out over a :class:`concurrent.futures.ProcessPoolExecutor`.

**Reproducibility contract**: the shard plan and every shard's stream
depend only on ``(root_seed, shard_size, n)`` — never on the worker count —
so for a given root seed the concatenated output is *bit-identical* whether
it was computed with ``jobs=1`` (fully in-process) or ``jobs=32``.  The
sharded stream intentionally differs from the legacy single-``Generator``
serial stream: it is a new, self-consistent stream keyed by the root seed.

Workers memoise their :class:`~repro.core.chip_delay.ChipDelayEngine`
instances per (card, architecture) so the Gauss-Hermite tabulations are
paid once per process, not once per shard.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.core.chip_delay import ChipDelayEngine
from repro.core.montecarlo import MonteCarloEngine
from repro.errors import ConfigurationError
from repro.runtime.context import current_runtime

__all__ = ["ParallelSampler", "plan_shards", "shard_seeds",
           "DEFAULT_SHARD_SIZE"]

#: Default chips per shard; part of the reproducibility key.
DEFAULT_SHARD_SIZE = 256


def plan_shards(n: int, shard_size: int = DEFAULT_SHARD_SIZE) -> list:
    """Split ``n`` samples into deterministic shard sizes.

    The plan depends only on ``(n, shard_size)`` — the worker count never
    changes what is computed, only where.
    """
    if n < 1:
        raise ConfigurationError(f"sample count must be >= 1, got {n}")
    if shard_size < 1:
        raise ConfigurationError(f"shard_size must be >= 1, got {shard_size}")
    full, rest = divmod(int(n), int(shard_size))
    return [int(shard_size)] * full + ([rest] if rest else [])


def shard_seeds(root_seed, n_shards: int) -> list:
    """One independent :class:`~numpy.random.SeedSequence` per shard."""
    return np.random.SeedSequence(root_seed).spawn(n_shards)


# -- worker side --------------------------------------------------------------

_WORKER_ENGINES: dict = {}


def _chip_engine(tech, width: int, paths_per_lane: int,
                 chain_length: int) -> ChipDelayEngine:
    """Per-process engine memo (quadrature tabulations are expensive)."""
    key = (tech, width, paths_per_lane, chain_length)
    engine = _WORKER_ENGINES.get(key)
    if engine is None:
        engine = ChipDelayEngine(tech, width=width,
                                 paths_per_lane=paths_per_lane,
                                 chain_length=chain_length)
        _WORKER_ENGINES[key] = engine
    return engine


def _system_delays_shard(task: dict) -> np.ndarray:
    """One shard of per-gate Monte-Carlo chip delays (runs in a worker)."""
    rng = np.random.default_rng(task["seed"])
    engine = MonteCarloEngine(task["tech"], rng=rng)
    return engine.system_delays(
        task["vdd"], width=task["width"],
        paths_per_lane=task["paths_per_lane"],
        chain_length=task["chain_length"], n_chips=task["n"],
        spares=task["spares"], batch_size=task["batch_size"])


def _sample_chips_shard(task: dict) -> np.ndarray:
    """One shard of analytic chip-delay samples (runs in a worker)."""
    rng = np.random.default_rng(task["seed"])
    engine = _chip_engine(task["tech"], task["width"],
                          task["paths_per_lane"], task["chain_length"])
    return engine.sample_chips(task["vdd"], task["n"], rng,
                               spares=task["spares"])


# -- driver side ---------------------------------------------------------------


class ParallelSampler:
    """Shards iid chip sampling across a process pool.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` means one per CPU, ``1`` runs every
        shard in-process (no pool) while keeping the sharded stream.
    shard_size:
        Chips per shard.  Part of the reproducibility key: changing it
        changes the random stream, changing ``jobs`` never does.
    profiler:
        Optional explicit :class:`~repro.runtime.profile.Profiler`; when
        absent, stages are recorded on the active runtime's profiler.
    """

    def __init__(self, jobs: int | None = None, *,
                 shard_size: int = DEFAULT_SHARD_SIZE,
                 profiler=None) -> None:
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        if shard_size < 1:
            raise ConfigurationError(
                f"shard_size must be >= 1, got {shard_size}")
        self.jobs = int(jobs)
        self.shard_size = int(shard_size)
        self.profiler = profiler
        self._executor: ProcessPoolExecutor | None = None

    # -- pool lifecycle ------------------------------------------------------

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        return self._executor

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ParallelSampler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- execution ----------------------------------------------------------

    def _record(self, name: str, wall_s: float, samples: int) -> None:
        profiler = self.profiler
        if profiler is None:
            runtime = current_runtime()
            profiler = runtime.profiler if runtime is not None else None
        if profiler is not None:
            profiler.record(name, wall_s, samples)

    def _run(self, fn, tasks: list, stage: str, n_samples: int) -> np.ndarray:
        start = time.perf_counter()
        if self.jobs == 1 or len(tasks) == 1:
            parts = [fn(task) for task in tasks]
        else:
            parts = list(self._pool().map(fn, tasks))
        out = np.concatenate(parts) if len(parts) > 1 else parts[0]
        self._record(stage, time.perf_counter() - start, n_samples)
        return out

    def _tasks(self, n: int, root_seed, common: dict) -> list:
        counts = plan_shards(n, self.shard_size)
        seeds = shard_seeds(root_seed, len(counts))
        return [dict(common, n=count, seed=seed)
                for count, seed in zip(counts, seeds)]

    # -- public sampling API -------------------------------------------------

    def system_delays(self, tech, vdd, *, width: int, paths_per_lane: int,
                      chain_length: int, n_chips: int, spares: int = 0,
                      batch_size: int = 64, root_seed=0) -> np.ndarray:
        """Sharded :meth:`MonteCarloEngine.system_delays` (seconds).

        Bit-identical for a given ``(root_seed, shard_size, batch_size)``
        regardless of ``jobs``.
        """
        tasks = self._tasks(n_chips, root_seed, dict(
            tech=tech, vdd=float(vdd), width=int(width),
            paths_per_lane=int(paths_per_lane),
            chain_length=int(chain_length), spares=int(spares),
            batch_size=int(batch_size)))
        return self._run(_system_delays_shard, tasks,
                         "sampler.system_delays", n_chips)

    def sample_chips(self, tech, vdd, *, n_samples: int, width: int = 128,
                     paths_per_lane: int = 100, chain_length: int = 50,
                     spares: int = 0, root_seed=0) -> np.ndarray:
        """Sharded :meth:`ChipDelayEngine.sample_chips` (seconds).

        Bit-identical for a given ``(root_seed, shard_size)`` regardless
        of ``jobs``.
        """
        tasks = self._tasks(n_samples, root_seed, dict(
            tech=tech, vdd=float(vdd), width=int(width),
            paths_per_lane=int(paths_per_lane),
            chain_length=int(chain_length), spares=int(spares)))
        return self._run(_sample_chips_shard, tasks,
                         "sampler.sample_chips", n_samples)
