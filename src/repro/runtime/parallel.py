"""Sharded, process-parallel Monte-Carlo sampling and quantile solving.

The paper's statistics are embarrassingly parallel — chips are iid draws —
so both sampling engines shard perfectly.  :class:`ParallelSampler` splits
a request for ``n`` chips into fixed-size shards, derives one independent
random stream per shard with :meth:`numpy.random.SeedSequence.spawn`, and
fans the shards out over a :class:`concurrent.futures.ProcessPoolExecutor`.
Deterministic sign-off solves shard just as well:
:meth:`ParallelSampler.solve_quantiles` fans fixed-size chunks of
``(vdd, q, spares)`` query points out to the same pool, each worker running
:meth:`~repro.core.chip_delay.ChipDelayEngine.chip_quantile_batch` on its
chunk.

**Reproducibility contract**: the shard plan and every shard's stream
depend only on ``(root_seed, shard_size, n)`` — never on the worker count —
so for a given root seed the concatenated output is *bit-identical* whether
it was computed with ``jobs=1`` (fully in-process) or ``jobs=32``.  The
sharded stream intentionally differs from the legacy single-``Generator``
serial stream: it is a new, self-consistent stream keyed by the root seed.
Quantile chunks likewise depend only on the query order and the chunk
size, never on ``jobs``.

**Observability**: when an :class:`~repro.obs.api.Observability` context is
active, every shard dispatched to the pool carries the parent's
``(trace_id, span id)``; the worker runs its own tracer/metrics, wraps the
shard in a span, and serialises both back with the result (the same
hand-back pattern as :meth:`Profiler.as_dict`).  The parent absorbs the
span batches — Perfetto shows one track per worker pid — folds the metric
snapshots in, and derives a ``sampler.worker_utilization`` gauge from the
shard busy times.  With observability off, tasks carry no context and
workers skip collection entirely.

**Shared-memory transport**: pool results above ``shm_min_bytes`` skip the
pickle round trip.  The parent preallocates one
:class:`multiprocessing.shared_memory.SharedMemory` segment per dispatch,
sized for the whole run, and every shard task carries its slice spec
(segment name, byte offset, length, dtype); workers write their result
arrays straight into the segment and return a tiny marker instead of the
array.  The parent assembles the output from a single view of the segment
and unlinks it in a ``finally`` — crash/hang recovery is unaffected
because re-dispatched shards simply rewrite their slice, and the serial
fallback strips the spec and hands arrays back directly (any shard that
never reported through the segment is patched from its pickled result).
Transported bytes are counted on the ``sampler.shm_bytes`` metric.

**Fault tolerance**: pool dispatch runs under a
:class:`~repro.resilience.policy.RetryPolicy`.  Shards that raise are
retried with exponential backoff (deterministic jitter); a progress
deadline detects hung workers, whose pool is terminated and re-spawned
with the unfinished shards *reassigned* to the fresh workers; a crashed
worker (``BrokenProcessPool``) triggers the same respawn path; and when
respawns are exhausted the dispatcher degrades to in-process serial
execution of the remaining shards.  Because every shard is a pure
function of its task dict (the stream is ``SeedSequence``-derived), a
recovered run is **bit-identical** to a fault-free one regardless of
which worker — or which process — ultimately executes each shard.  Retry
exhaustion raises :class:`~repro.errors.ShardExecutionError` naming the
failed shards.  Every recovery emits ``resilience.*`` counters and fault
ledger events (:func:`repro.resilience.ledger.current_ledger`).

Workers memoise their :class:`~repro.core.chip_delay.ChipDelayEngine`
instances per (card, architecture, quadrature) so the Gauss-Hermite
tabulations are paid once per process, not once per shard.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.core.chip_delay import ChipDelayEngine
from repro.core.kernels import MonteCarloKernel
from repro.core.montecarlo import MonteCarloEngine
from repro.errors import ConfigurationError, ShardExecutionError
from repro.obs.api import Observability, activate_obs, current_obs
from repro.resilience.faultlab import active_plan, fire_shard_faults
from repro.resilience.ledger import current_ledger
from repro.resilience.policy import RetryPolicy
from repro.runtime.context import current_runtime

__all__ = ["ParallelSampler", "plan_shards", "shard_seeds",
           "release_worker_workspaces",
           "DEFAULT_SHARD_SIZE", "DEFAULT_QUANTILE_CHUNK",
           "DEFAULT_SHM_MIN_BYTES"]

#: Default chips per shard; part of the reproducibility key.
DEFAULT_SHARD_SIZE = 256

#: Result payloads at least this large ride the shared-memory transport
#: instead of pickle; smaller ones aren't worth a segment's syscalls.
DEFAULT_SHM_MIN_BYTES = 1 << 16

#: Default query points per quantile-solve chunk.  Small enough that a
#: fig4-style per-node sweep (~12 points) still fans out across workers;
#: part of the solve partition (changing it regroups spline clusters and
#: can move results at the solver's ~1e-12 tolerance floor — changing
#: ``jobs`` never does).
DEFAULT_QUANTILE_CHUNK = 8

#: Shard-size histogram bucket bounds (samples per shard).
_SHARD_BUCKETS = (16, 32, 64, 128, 256, 512, 1024, 4096)


def plan_shards(n: int, shard_size: int = DEFAULT_SHARD_SIZE) -> list:
    """Split ``n`` samples into deterministic shard sizes.

    The plan depends only on ``(n, shard_size)`` — the worker count never
    changes what is computed, only where.
    """
    if n < 1:
        raise ConfigurationError(f"sample count must be >= 1, got {n}")
    if shard_size < 1:
        raise ConfigurationError(f"shard_size must be >= 1, got {shard_size}")
    full, rest = divmod(int(n), int(shard_size))
    return [int(shard_size)] * full + ([rest] if rest else [])


def shard_seeds(root_seed, n_shards: int) -> list:
    """One independent :class:`~numpy.random.SeedSequence` per shard."""
    return np.random.SeedSequence(root_seed).spawn(n_shards)


# -- shared-memory transport --------------------------------------------------


def _attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker ownership.

    Attaching registers the segment with the (shared)
    :mod:`multiprocessing.resource_tracker` on Pythons without the
    ``track=`` parameter (< 3.13); the tracker would then unlink the
    parent-owned segment behind the parent's back, and concurrent
    workers registering/unregistering the same name race in the tracker
    process.  Suppress the registration instead (workers execute one
    shard at a time, so the swap is safe).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _shm_write(spec: dict, arr: np.ndarray) -> dict:
    """Write one shard's result into its segment slice; return the marker.

    The numpy view over the segment buffer must be dropped before
    ``close()`` (an exported buffer makes the mmap close raise
    ``BufferError``).
    """
    shm = _attach_shm(spec["name"])
    try:
        view = np.ndarray((spec["n"],), dtype=np.dtype(spec["dtype"]),
                          buffer=shm.buf, offset=spec["offset"])
        view[:] = arr
        del view
    finally:
        shm.close()
    return {"__shm__": int(spec["n"])}


def _is_shm_marker(item) -> bool:
    return isinstance(item, dict) and "__shm__" in item


# -- worker side --------------------------------------------------------------

_WORKER_ENGINES: dict = {}
_WORKER_KERNELS: dict = {}


def _mc_kernel(tech, precision: str, backend: str = "numpy",
               block_elems: int | None = None) -> MonteCarloKernel:
    """Per-process Monte-Carlo kernel memo (workspaces amortise across shards)."""
    key = (tech, precision, backend, block_elems)
    kernel = _WORKER_KERNELS.get(key)
    if kernel is None:
        kernel = MonteCarloKernel(tech, precision=precision,
                                  backend=backend, block_elems=block_elems)
        _WORKER_KERNELS[key] = kernel
    return kernel


def release_worker_workspaces() -> int:
    """Drop every memoised kernel's workspaces in this process.

    The kernels stay memoised (their compiled/backed state is cheap);
    only the grow-only evaluation buffers are released, and they regrow
    on the next shard.  Long-lived servers call this when the request
    queue drains idle, and the sampler's serial fallback calls it after
    each in-process shard, so one oversized request does not pin its
    peak workspace footprint forever.  Returns the number of bytes
    freed and zeroes the ``kernels.workspace_bytes`` gauge.
    """
    freed = 0
    for kernel in _WORKER_KERNELS.values():
        freed += kernel.workspace_nbytes
        kernel.release_workspaces()
    if freed:
        current_obs().metrics.gauge("kernels.workspace_bytes").set(0.0)
    return freed


def _chip_engine(tech, width: int, paths_per_lane: int,
                 chain_length: int, quads=None) -> ChipDelayEngine:
    """Per-process engine memo (quadrature tabulations are expensive)."""
    key = (tech, width, paths_per_lane, chain_length, quads)
    engine = _WORKER_ENGINES.get(key)
    if engine is None:
        kwargs = {}
        if quads is not None:
            kwargs = dict(quad_within=quads[0], quad_corr_vth=quads[1],
                          quad_corr_mult=quads[2])
        engine = ChipDelayEngine(tech, width=width,
                                 paths_per_lane=paths_per_lane,
                                 chain_length=chain_length, **kwargs)
        _WORKER_ENGINES[key] = engine
    return engine


def _task_attrs(task: dict) -> dict:
    """JSON-safe span attributes describing one shard task."""
    attrs = {"node": task["tech"].name, "shard": task.get("shard", 0),
             "n": task["n"]}
    if "vdd" in task:
        attrs["vdd"] = task["vdd"]
    return attrs


def _run_shard(core, task: dict):
    """Run one shard, honouring the task's serialised obs context.

    With no context attached (observability off, or the shard runs
    in-process where the parent's context is already live) this is a
    plain call.  Otherwise the worker rebuilds a child
    :class:`Observability`, spans the shard, and hands spans + metrics +
    busy time back alongside the result.
    """
    faults = task.get("faults")
    if faults:
        fire_shard_faults(faults, task.get("shard"))
    ctx = task.get("obs")
    shm_spec = task.get("shm")
    if not ctx:
        out = core(task)
        return _shm_write(shm_spec, out) if shm_spec else out
    obs = Observability.for_worker(ctx)
    name = (ctx.get("stage") or "sampler") + ".shard"
    start = time.perf_counter()
    with activate_obs(obs), obs.tracer.span(name, **_task_attrs(task)):
        out = core(task)
        if shm_spec:
            out = _shm_write(shm_spec, out)
    return {"result": out, "obs": obs.export(),
            "busy_s": time.perf_counter() - start}


def _system_delays_core(task: dict) -> np.ndarray:
    """One shard of per-gate Monte-Carlo chip delays."""
    rng = np.random.default_rng(task["seed"])
    kernel = _mc_kernel(task["tech"], task.get("precision", "float64"),
                        task.get("backend", "numpy"),
                        task.get("block_elems"))
    engine = MonteCarloEngine(task["tech"], rng=rng, kernel=kernel)
    return engine.system_delays(
        task["vdd"], width=task["width"],
        paths_per_lane=task["paths_per_lane"],
        chain_length=task["chain_length"], n_chips=task["n"],
        spares=task["spares"], batch_size=task["batch_size"])


def _weighted_delays_core(task: dict) -> np.ndarray:
    """One shard of importance-sampled chip delays plus log-weights.

    The transport layout is one flat float64 array per shard —
    ``[delays; logw]``, each half ``task["chips"]`` long — so weights
    ride the existing shared-memory segment next to the delays and the
    whole recovery ladder (retry, respawn, serial fallback) applies
    unchanged.  The driver unpacks the halves by the shard plan.
    """
    from repro.core.tailsampling import ShiftProposal
    rng = np.random.default_rng(task["seed"])
    kernel = _mc_kernel(task["tech"], task.get("precision", "float64"),
                        task.get("backend", "numpy"),
                        task.get("block_elems"))
    engine = MonteCarloEngine(task["tech"], rng=rng, kernel=kernel)
    chips = int(task["chips"])
    delays, logw = engine.weighted_system_delays(
        task["vdd"], width=task["width"],
        paths_per_lane=task["paths_per_lane"],
        chain_length=task["chain_length"], n_chips=chips,
        proposal=ShiftProposal.from_dict(task["proposal"]),
        spares=task["spares"], batch_size=task["batch_size"])
    out = np.empty(2 * chips, dtype=np.float64)
    out[:chips] = delays
    out[chips:] = logw
    return out


def _sample_chips_core(task: dict) -> np.ndarray:
    """One shard of analytic chip-delay samples."""
    rng = np.random.default_rng(task["seed"])
    engine = _chip_engine(task["tech"], task["width"],
                          task["paths_per_lane"], task["chain_length"])
    return engine.sample_chips(task["vdd"], task["n"], rng,
                               spares=task["spares"])


def _quantile_chunk_core(task: dict) -> np.ndarray:
    """One chunk of deterministic ``(vdd, q, spares)`` quantile solves."""
    engine = _chip_engine(task["tech"], task["width"],
                          task["paths_per_lane"], task["chain_length"],
                          quads=task.get("quads"))
    return np.atleast_1d(engine.chip_quantile_batch(
        np.asarray(task["vdds"], dtype=float),
        np.asarray(task["qs"], dtype=float),
        np.asarray(task["spares"], dtype=float),
        cluster=task.get("cluster", True)))


def _system_delays_shard(task: dict):
    """Pool entry point for :func:`_system_delays_core` (runs in a worker)."""
    return _run_shard(_system_delays_core, task)


def _weighted_delays_shard(task: dict):
    """Pool entry point for :func:`_weighted_delays_core` (runs in a worker)."""
    return _run_shard(_weighted_delays_core, task)


def _sample_chips_shard(task: dict):
    """Pool entry point for :func:`_sample_chips_core` (runs in a worker)."""
    return _run_shard(_sample_chips_core, task)


def _quantile_chunk_shard(task: dict):
    """Pool entry point for :func:`_quantile_chunk_core` (runs in a worker)."""
    return _run_shard(_quantile_chunk_core, task)


# -- driver side ---------------------------------------------------------------


class ParallelSampler:
    """Shards iid chip sampling and batched solves across a process pool.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` means one per CPU, ``1`` runs every
        shard in-process (no pool) while keeping the sharded stream.
    shard_size:
        Chips per shard.  Part of the reproducibility key: changing it
        changes the random stream, changing ``jobs`` never does.
    profiler:
        Optional explicit :class:`~repro.runtime.profile.Profiler`; when
        absent, stages are recorded on the active runtime's profiler.
    retry:
        The :class:`~repro.resilience.policy.RetryPolicy` governing shard
        retries, the hung-worker deadline and pool respawns; defaults to
        the standard policy (generous timeout, 2 retries).
    shm_min_bytes:
        Minimum total result payload (bytes) for a pool dispatch to ride
        the shared-memory transport instead of pickle; ``0`` forces
        shared memory for every dispatch (tests), a huge value disables
        it.  Pure transport — results are bit-identical either way.
    """

    def __init__(self, jobs: int | None = None, *,
                 shard_size: int = DEFAULT_SHARD_SIZE,
                 profiler=None, retry: RetryPolicy | None = None,
                 shm_min_bytes: int = DEFAULT_SHM_MIN_BYTES) -> None:
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        if shard_size < 1:
            raise ConfigurationError(
                f"shard_size must be >= 1, got {shard_size}")
        if shm_min_bytes < 0:
            raise ConfigurationError(
                f"shm_min_bytes must be >= 0, got {shm_min_bytes}")
        self.jobs = int(jobs)
        self.shard_size = int(shard_size)
        self.profiler = profiler
        self.retry = RetryPolicy() if retry is None else retry
        self.shm_min_bytes = int(shm_min_bytes)
        self._executor: ProcessPoolExecutor | None = None

    # -- pool lifecycle ------------------------------------------------------

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        return self._executor

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def _kill_pool(self) -> None:
        """Terminate the pool hard — hung or crashed workers included.

        ``shutdown`` alone cannot reclaim a worker stuck in an infinite
        loop, so the watchdog terminates the worker processes directly
        before discarding the executor.
        """
        executor = self._executor
        self._executor = None
        if executor is None:
            return
        for proc in list(getattr(executor, "_processes", {}).values()):
            try:
                proc.terminate()
            except Exception:
                pass
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    def __enter__(self) -> "ParallelSampler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- execution ----------------------------------------------------------

    def _record(self, name: str, wall_s: float, samples: int) -> None:
        profiler = self.profiler
        if profiler is None:
            runtime = current_runtime()
            profiler = runtime.profiler if runtime is not None else None
        if profiler is not None:
            profiler.record(name, wall_s, samples)

    def _run(self, fn, tasks: list, stage: str, n_samples: int,
             result_dtype=np.float64) -> np.ndarray:
        obs = current_obs()
        start = time.perf_counter()
        busy_s = 0.0
        if self.jobs == 1 or len(tasks) == 1:
            # In-process: the parent's obs context is already live, so
            # shards span directly onto it (no hand-back round trip).
            parts = []
            for task in tasks:
                with obs.tracer.span(stage + ".shard", **_task_attrs(task)):
                    parts.append(fn(task))
        else:
            parts, busy_s = self._run_pool(fn, tasks, stage, obs,
                                           result_dtype)
        out = np.concatenate(parts) if len(parts) > 1 else parts[0]
        elapsed = time.perf_counter() - start
        self._record(stage, elapsed, n_samples)
        metrics = obs.metrics
        metrics.counter("sampler.shards").inc(len(tasks))
        metrics.counter("sampler.samples").inc(n_samples)
        if metrics.enabled:
            hist = metrics.histogram("sampler.shard_samples",
                                     buckets=_SHARD_BUCKETS)
            for task in tasks:
                hist.observe(task["n"])
            if busy_s > 0.0 and elapsed > 0.0:
                metrics.gauge("sampler.worker_utilization").set(
                    min(1.0, busy_s / (self.jobs * elapsed)))
        return out

    # -- fault-tolerant pool dispatch ----------------------------------------

    def _shard_id(self, tasks: list, i: int):
        return tasks[i].get("shard", i)

    def _submit_round(self, fn, tasks: list, pending, ctx, plan) -> dict:
        """Submit every pending shard to the pool; returns future -> index.

        Tasks are copied per attempt so observability context and fault
        payloads never leak across retries; the fault plan is consumed at
        dispatch time (deterministic order), which is what keeps injected
        faults one-shot across retries and pool respawns.
        """
        pool = self._pool()
        futures: dict = {}
        for i in sorted(pending):
            task = dict(tasks[i])
            if ctx:
                task["obs"] = ctx
            if plan is not None:
                faults = plan.shard_faults(self._shard_id(tasks, i))
                if faults:
                    task["faults"] = faults
            futures[pool.submit(fn, task)] = i
        return futures

    def _respawn(self, reason: str, stage: str, tasks: list, pending,
                 respawns: int, obs, ledger) -> int:
        """Kill the (crashed/hung) pool and stand up a fresh one."""
        respawns += 1
        reassigned = sorted(self._shard_id(tasks, i) for i in pending)
        with obs.tracer.span("resilience.pool_respawn", stage=stage,
                             reason=reason, reassigned=len(pending)):
            self._kill_pool()
        obs.metrics.counter("resilience.pool_respawns").inc()
        obs.metrics.counter("resilience.reassignments").inc(len(pending))
        ledger.record("pool_respawn", stage=stage, reason=reason,
                      respawn=respawns, reassigned=reassigned)
        time.sleep(min(self.retry.backoff_cap_s,
                       self.retry.backoff_base_s * respawns))
        return respawns

    def _serial_fallback(self, fn, tasks: list, stage: str, pending,
                         results: list, obs, ledger) -> None:
        """Last resort: run the remaining shards in-process, serially.

        The shards are pure functions of their task dicts, so this
        preserves bit-identical results even when the pool is
        unrecoverable; fault payloads never attach here (a crash
        injection must not take down the driver).
        """
        shards = [self._shard_id(tasks, i) for i in sorted(pending)]
        obs.metrics.counter("resilience.serial_fallbacks").inc()
        ledger.record("serial_fallback", stage=stage, shards=shards)
        with obs.tracer.span("resilience.serial_fallback", stage=stage,
                             shards=len(shards)):
            for i in sorted(pending):
                task = {k: v for k, v in tasks[i].items()
                        if k not in ("obs", "faults", "shm")}
                with obs.tracer.span(stage + ".shard", **_task_attrs(task)):
                    results[i] = fn(task)
                # The fallback runs in the driver process, whose memoised
                # kernels would otherwise pin shard-sized workspaces for
                # the rest of the run — release after every shard.
                release_worker_workspaces()
        pending.clear()

    def _open_shm(self, tasks: list, result_dtype, metrics):
        """Create one result segment for the dispatch, if worth it.

        Attaches each shard's slice spec to its task dict (workers write
        straight into the segment; the serial fallback strips the spec).
        Returns the segment or ``None`` (payload under the threshold, or
        shared memory unavailable on this platform).
        """
        dtype = np.dtype(result_dtype)
        total = sum(task["n"] for task in tasks)
        nbytes = total * dtype.itemsize
        # Zero-byte payloads must ride the pickle path: SharedMemory
        # rejects size=0, so shm_min_bytes=0 plus an empty dispatch would
        # otherwise raise ValueError before the first shard runs.
        if nbytes == 0 or nbytes < self.shm_min_bytes:
            return None
        try:
            segment = shared_memory.SharedMemory(create=True, size=nbytes)
        except Exception:
            return None
        offset = 0
        for task in tasks:
            task["shm"] = {"name": segment.name, "offset": offset,
                           "n": int(task["n"]), "dtype": dtype.str}
            offset += int(task["n"]) * dtype.itemsize
        metrics.counter("sampler.shm_bytes").inc(nbytes)
        return segment

    def _assemble_shm(self, segment, tasks: list, results: list,
                      result_dtype) -> np.ndarray:
        """Gather shard results from the segment into one output array.

        One bulk copy of the whole segment, then any shard that did not
        report through the transport (serial fallback, in-process retry)
        is patched from its directly-returned array.
        """
        dtype = np.dtype(result_dtype)
        total = sum(task["n"] for task in tasks)
        out = np.empty(total, dtype=dtype)
        view = np.ndarray((total,), dtype=dtype, buffer=segment.buf)
        out[:] = view
        del view
        pos = 0
        for task, item in zip(tasks, results):
            if not _is_shm_marker(item):
                out[pos:pos + int(task["n"])] = item
            pos += int(task["n"])
        return out

    def _run_pool(self, fn, tasks: list, stage: str, obs,
                  result_dtype=np.float64) -> tuple:
        """Dispatch shards across the pool, with shared-memory results.

        Payloads above ``shm_min_bytes`` go through one preallocated
        :class:`~multiprocessing.shared_memory.SharedMemory` segment
        (workers write slices keyed by shard, the parent assembles);
        the segment is unlinked on every exit path — success, shard
        failure, crash/hang recovery — so chaos runs never leak ``/dev/shm``
        entries.  Returns ``(parts, busy_s)`` with parts in shard order.
        """
        segment = self._open_shm(tasks, result_dtype, obs.metrics)
        if segment is None:
            return self._dispatch(fn, tasks, stage, obs)
        try:
            results, busy_s = self._dispatch(fn, tasks, stage, obs)
            out = self._assemble_shm(segment, tasks, results, result_dtype)
            return [out], busy_s
        finally:
            segment.close()
            segment.unlink()

    def _dispatch(self, fn, tasks: list, stage: str, obs) -> tuple:
        """Run every shard through the pool with the full recovery ladder.

        Retry-with-backoff for shard exceptions; a progress deadline
        (``retry.shard_timeout_s``) as hung-worker watchdog; pool
        termination + respawn with reassignment for crashes and hangs;
        in-process serial execution once respawns are exhausted.  Returns
        ``(parts, busy_s)`` with parts in shard order (parts are shm
        markers for shards that reported through the transport).
        """
        policy = self.retry
        plan = active_plan()
        ledger = current_ledger()
        metrics = obs.metrics
        ctx = obs.worker_context(stage) if obs.enabled else None
        n = len(tasks)
        results: list = [None] * n
        busy_s = 0.0
        attempts = [0] * n
        exhausted: dict = {}             # index -> last error repr
        pending = set(range(n))
        respawns = 0
        while pending:
            if respawns > policy.max_pool_respawns:
                self._serial_fallback(fn, tasks, stage, pending, results,
                                      obs, ledger)
                break
            try:
                futures = self._submit_round(fn, tasks, pending, ctx, plan)
            except BrokenProcessPool:
                respawns = self._respawn("broken_on_submit", stage, tasks,
                                         pending, respawns, obs, ledger)
                continue
            hung = False
            broken = False
            retry_idx: list = []
            not_done = set(futures)
            while not_done:
                done, not_done = wait(not_done,
                                      timeout=policy.shard_timeout_s)
                if not done:
                    hung = True
                    break
                for fut in done:
                    i = futures[fut]
                    exc = fut.exception()
                    if exc is None:
                        item = fut.result()
                        if isinstance(item, dict) and "obs" in item:
                            obs.merge_export(item["obs"])
                            busy_s += item["busy_s"]
                            item = item["result"]
                        results[i] = item
                        pending.discard(i)
                    elif isinstance(exc, BrokenProcessPool):
                        broken = True
                    else:
                        attempts[i] += 1
                        shard = self._shard_id(tasks, i)
                        if attempts[i] > policy.max_retries:
                            pending.discard(i)
                            exhausted[i] = repr(exc)
                            metrics.counter(
                                "resilience.retries_exhausted").inc()
                            ledger.record("shard_retries_exhausted",
                                          stage=stage, shard=shard,
                                          attempts=attempts[i],
                                          error=repr(exc))
                        else:
                            retry_idx.append(i)
                            metrics.counter("resilience.retries").inc()
                            ledger.record("shard_retry", stage=stage,
                                          shard=shard, attempt=attempts[i],
                                          error=repr(exc))
            if hung:
                stuck = sorted(self._shard_id(tasks, futures[f])
                               for f in not_done)
                metrics.counter("resilience.shard_timeouts").inc(len(stuck))
                ledger.record("hung_worker_timeout", stage=stage,
                              timeout_s=policy.shard_timeout_s,
                              shards=stuck)
                respawns = self._respawn("hung_worker", stage, tasks,
                                         pending, respawns, obs, ledger)
                continue
            if broken:
                ledger.record("worker_crash_detected", stage=stage,
                              pending=[self._shard_id(tasks, i)
                                       for i in sorted(pending)])
                respawns = self._respawn("worker_crash", stage, tasks,
                                         pending, respawns, obs, ledger)
                continue
            if retry_idx:
                time.sleep(max(
                    policy.backoff_s(self._shard_id(tasks, i), attempts[i])
                    for i in retry_idx))
        if exhausted:
            shards = [self._shard_id(tasks, i) for i in sorted(exhausted)]
            causes = [exhausted[i] for i in sorted(exhausted)]
            ledger.record("shards_failed", stage=stage, shards=shards)
            raise ShardExecutionError(
                f"{len(shards)} shard(s) of stage {stage!r} failed after "
                f"{policy.max_retries} retries: shards {shards} "
                f"(last errors: {causes})",
                shards=shards, causes=causes)
        return results, busy_s

    def _tasks(self, n: int, root_seed, common: dict) -> list:
        counts = plan_shards(n, self.shard_size)
        seeds = shard_seeds(root_seed, len(counts))
        return [dict(common, n=count, seed=seed, shard=i)
                for i, (count, seed) in enumerate(zip(counts, seeds))]

    # -- public sampling API -------------------------------------------------

    def system_delays(self, tech, vdd, *, width: int, paths_per_lane: int,
                      chain_length: int, n_chips: int, spares: int = 0,
                      batch_size: int = 64, root_seed=0,
                      precision: str = "float64",
                      backend: str = "numpy",
                      block_elems: int | None = None) -> np.ndarray:
        """Sharded :meth:`MonteCarloEngine.system_delays` (seconds).

        Bit-identical for a given ``(root_seed, shard_size)`` regardless
        of ``jobs`` (and of ``batch_size`` — the engine spawns per-chip
        streams).  ``precision`` selects the kernels' dtype policy;
        ``backend`` their execution backend (the ``threaded`` backend
        keeps bit-identity and composes with process sharding — threads
        inside each worker, shards across workers) and ``block_elems``
        their internal block budget.  Backend names travel in the task
        dicts and resolve *inside* each worker, so a missing optional
        backend degrades per-process with a warning.
        """
        tasks = self._tasks(n_chips, root_seed, dict(
            tech=tech, vdd=float(vdd), width=int(width),
            paths_per_lane=int(paths_per_lane),
            chain_length=int(chain_length), spares=int(spares),
            batch_size=int(batch_size), precision=str(precision),
            backend=str(backend),
            block_elems=None if block_elems is None else int(block_elems)))
        return self._run(_system_delays_shard, tasks,
                         "sampler.system_delays", n_chips,
                         result_dtype=np.dtype(precision))

    def weighted_system_delays(self, tech, vdd, *, width: int,
                               paths_per_lane: int, chain_length: int,
                               n_chips: int, proposal, spares: int = 0,
                               batch_size: int = 64, root_seed=0,
                               precision: str = "float64",
                               backend: str = "numpy",
                               block_elems: int | None = None) -> tuple:
        """Sharded :meth:`MonteCarloEngine.weighted_system_delays`.

        Returns ``(delays, logw)``, both float64 and ``n_chips`` long.
        Same reproducibility contract as :meth:`system_delays` — the
        shard plan and per-shard streams depend only on ``(root_seed,
        shard_size, n_chips)``, so a tail estimate is bit-identical at
        ``jobs=1`` and ``jobs=32`` and survives the recovery ladder.
        Each shard transports one flat ``[delays; logw]`` float64 array
        (2x the shard's chip count), so the likelihood-ratio weights
        ride the shared-memory segment next to the delays.
        """
        proposal.validate_for(tech.variation)
        counts = plan_shards(n_chips, self.shard_size)
        seeds = shard_seeds(root_seed, len(counts))
        common = dict(tech=tech, vdd=float(vdd), width=int(width),
                      paths_per_lane=int(paths_per_lane),
                      chain_length=int(chain_length), spares=int(spares),
                      batch_size=int(batch_size), precision=str(precision),
                      backend=str(backend),
                      block_elems=None if block_elems is None
                      else int(block_elems),
                      proposal=proposal.as_dict())
        tasks = [dict(common, n=2 * count, chips=int(count), seed=seed,
                      shard=i)
                 for i, (count, seed) in enumerate(zip(counts, seeds))]
        flat = self._run(_weighted_delays_shard, tasks,
                         "sampler.weighted_delays", n_chips,
                         result_dtype=np.float64)
        delays = np.empty(n_chips, dtype=np.float64)
        logw = np.empty(n_chips, dtype=np.float64)
        pos = fpos = 0
        for count in counts:
            delays[pos:pos + count] = flat[fpos:fpos + count]
            logw[pos:pos + count] = flat[fpos + count:fpos + 2 * count]
            pos += count
            fpos += 2 * count
        return delays, logw

    def sample_chips(self, tech, vdd, *, n_samples: int, width: int = 128,
                     paths_per_lane: int = 100, chain_length: int = 50,
                     spares: int = 0, root_seed=0) -> np.ndarray:
        """Sharded :meth:`ChipDelayEngine.sample_chips` (seconds).

        Bit-identical for a given ``(root_seed, shard_size)`` regardless
        of ``jobs``.
        """
        tasks = self._tasks(n_samples, root_seed, dict(
            tech=tech, vdd=float(vdd), width=int(width),
            paths_per_lane=int(paths_per_lane),
            chain_length=int(chain_length), spares=int(spares)))
        return self._run(_sample_chips_shard, tasks,
                         "sampler.sample_chips", n_samples)

    # -- public solving API --------------------------------------------------

    def solve_quantiles(self, tech, vdds, qs, spares, *, width: int = 128,
                        paths_per_lane: int = 100, chain_length: int = 50,
                        quads=None,
                        chunk_size: int = DEFAULT_QUANTILE_CHUNK,
                        cluster: bool = True) -> np.ndarray:
        """Deterministic chip-delay quantiles, chunk-sharded over the pool.

        ``vdds``/``qs``/``spares`` are equal-length 1-D point arrays;
        every ``chunk_size`` consecutive points become one worker task
        running :meth:`ChipDelayEngine.chip_quantile_batch` (workers
        memoise engines, so the Gauss-Hermite tabulations amortise across
        chunks).  The partition depends only on the query order and
        ``chunk_size``, never on ``jobs``, so results are reproducible
        for a fixed chunking.  ``quads`` optionally pins the three
        quadrature orders ``(within, corr_vth, corr_mult)``.
        ``cluster=False`` forwards the engine's batch-composition-invariant
        per-point solve, making results independent of the chunking too.
        """
        vdds = np.asarray(vdds, dtype=float).ravel()
        qs = np.asarray(qs, dtype=float).ravel()
        spares = np.asarray(spares, dtype=float).ravel()
        if not (vdds.size == qs.size == spares.size):
            raise ConfigurationError(
                "solve_quantiles needs equal-length vdd/q/spares arrays")
        if chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}")
        common = dict(tech=tech, width=int(width),
                      paths_per_lane=int(paths_per_lane),
                      chain_length=int(chain_length),
                      quads=tuple(int(q) for q in quads) if quads else None,
                      cluster=bool(cluster))
        tasks = []
        for i, start in enumerate(range(0, vdds.size, int(chunk_size))):
            sl = slice(start, start + int(chunk_size))
            tasks.append(dict(common, vdds=vdds[sl].tolist(),
                              qs=qs[sl].tolist(),
                              spares=spares[sl].tolist(),
                              n=int(vdds[sl].size), shard=i))
        return self._run(_quantile_chunk_shard, tasks,
                         "sampler.solve_quantiles", int(vdds.size))
