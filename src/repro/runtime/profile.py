"""Lightweight runtime observability.

:class:`Profiler` accumulates per-stage wall time, call and sample
counters.  It is deliberately tiny: the runtime layer wraps its hot spots
(`sampling shards, quantile solves, cache lookups, whole experiments`) in
:meth:`Profiler.stage` blocks, and ``python -m repro.experiments --profile``
renders the aggregate at the end of the run.

Counters survive process boundaries: a worker serialises its profiler with
:meth:`Profiler.as_dict` and the parent folds it back in with
:meth:`Profiler.merge` — this is how ``--jobs N --profile`` reports stages
executed inside pool workers.

:mod:`repro.obs` extends this aggregate view with span tracing, a
metrics registry and run manifests (and re-exports :class:`Profiler`);
the same stage names appear as spans when ``--trace`` is on, and the
manifest embeds :meth:`Profiler.as_dict` verbatim.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = ["StageStats", "Profiler"]


@dataclass
class StageStats:
    """Aggregate counters for one named runtime stage."""

    name: str
    calls: int = 0
    wall_s: float = 0.0
    samples: int = 0

    def add(self, wall_s: float, samples: int = 0) -> None:
        self.calls += 1
        self.wall_s += float(wall_s)
        self.samples += int(samples)

    @property
    def samples_per_s(self) -> float:
        return self.samples / self.wall_s if self.wall_s > 0 else 0.0


class Profiler:
    """Accumulates :class:`StageStats`, keyed by stage name."""

    def __init__(self) -> None:
        self._stages: dict = {}

    def record(self, name: str, wall_s: float, samples: int = 0) -> None:
        """Fold one timed call into the ``name`` stage."""
        stage = self._stages.get(name)
        if stage is None:
            stage = self._stages[name] = StageStats(name=name)
        stage.add(wall_s, samples)

    @contextmanager
    def stage(self, name: str, samples: int = 0):
        """Time a ``with`` block as one call of stage ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - start, samples)

    def stages(self) -> list:
        """All stages, slowest first."""
        return sorted(self._stages.values(), key=lambda s: -s.wall_s)

    def as_dict(self) -> dict:
        """Serialisable snapshot (for crossing process boundaries)."""
        return {s.name: {"calls": s.calls, "wall_s": s.wall_s,
                         "samples": s.samples}
                for s in self._stages.values()}

    def merge(self, snapshot: dict) -> None:
        """Fold an :meth:`as_dict` snapshot (e.g. from a worker) in."""
        for name, rec in snapshot.items():
            stage = self._stages.get(name)
            if stage is None:
                stage = self._stages[name] = StageStats(name=name)
            stage.calls += int(rec["calls"])
            stage.wall_s += float(rec["wall_s"])
            stage.samples += int(rec["samples"])

    def render(self) -> str:
        """Aligned text report of every stage (slowest first)."""
        headers = ("stage", "calls", "wall (s)", "samples", "samples/s")
        rows = [headers]
        for s in self.stages():
            rows.append((s.name, str(s.calls), f"{s.wall_s:.3f}",
                         str(s.samples),
                         f"{s.samples_per_s:.0f}" if s.samples else "-"))
        widths = [max(len(r[i]) for r in rows) for i in range(len(headers))]
        lines = ["runtime profile", "---------------"]
        for i, row in enumerate(rows):
            lines.append("  ".join(
                c.ljust(w) if j == 0 else c.rjust(w)
                for j, (c, w) in enumerate(zip(row, widths))))
            if i == 0:
                lines.append("  ".join("=" * w for w in widths))
        return "\n".join(lines)
