"""The active runtime: worker pool + profiler threaded through the stack.

The experiment registry and :class:`~repro.core.analyzer.VariationAnalyzer`
sit several layers apart, and forcing every runner signature to carry a
``runtime=`` argument would churn the whole experiments package.  Instead a
:class:`ReproRuntime` is *activated* for the duration of a run
(:func:`activate_runtime`), and the layers below consult
:func:`current_runtime` — the analyzer routes ensemble sampling through the
active :class:`~repro.runtime.parallel.ParallelSampler` and records its hot
stages on the active profiler via :func:`profiled_stage`.

A :class:`contextvars.ContextVar` keeps activations re-entrant and safe
under nested/concurrent use (each pool worker simply has no active runtime
unless it activates its own).
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

from repro.obs.api import NOOP_OBS, Observability, activate_obs
from repro.resilience.faultlab import install_faults
from repro.resilience.ledger import FaultLedger, activate_ledger
from repro.runtime.profile import Profiler

__all__ = ["ReproRuntime", "current_runtime", "activate_runtime",
           "profiled_stage"]

_ACTIVE: ContextVar = ContextVar("repro_runtime", default=None)


@dataclass
class ReproRuntime:
    """One run's execution context.

    Parameters
    ----------
    jobs:
        Worker-process budget (1 = fully in-process).
    profile:
        Whether the CLI should render the profiler at the end.
    sampler:
        A :class:`~repro.runtime.parallel.ParallelSampler` (or ``None`` for
        a serial runtime); typed loosely to keep this module import-light.
    profiler:
        Stage counters shared by every layer of the run.
    obs:
        The run's :class:`~repro.obs.api.Observability` (tracer +
        metrics); defaults to the shared no-op context, so
        instrumentation below stays free unless the CLI asked for
        ``--trace`` / ``--metrics`` / ``--profile``.
    ledger:
        The run's :class:`~repro.resilience.ledger.FaultLedger` — every
        fault and recovery event lands here and is embedded in the run
        manifest.
    faults:
        Optional :class:`~repro.resilience.faultlab.FaultPlan` installed
        for the duration of the run (``--inject-faults``).
    precision:
        Monte-Carlo dtype policy for the run (``"float64"`` default,
        ``"float32"`` for bandwidth-bound validation sweeps); consumed
        by :meth:`~repro.core.analyzer.VariationAnalyzer.monte_carlo`
        and the sampler's MC shards — see :mod:`repro.core.kernels`.
    backend:
        Kernel execution backend for the run's Monte-Carlo shards
        (``"numpy"`` default, ``"threaded"``, ``"numba"``, ``"cupy"``)
        — see :mod:`repro.core.backends`.  Plumbed exactly like
        ``precision``: the analyzer and the sampler's MC shards pick it
        up from the active runtime.
    block_elems:
        Per-workspace element budget for the kernels' internal blocking
        (``None`` = kernel default); the tuning knob per backend.
    """

    jobs: int = 1
    profile: bool = False
    sampler: object = None
    profiler: Profiler = field(default_factory=Profiler)
    obs: Observability = field(default_factory=lambda: NOOP_OBS)
    ledger: FaultLedger = field(default_factory=FaultLedger)
    faults: object = None
    precision: str = "float64"
    backend: str = "numpy"
    block_elems: int | None = None

    def close(self) -> None:
        if self.sampler is not None:
            self.sampler.close()


def current_runtime() -> ReproRuntime | None:
    """The runtime activated for the current context, if any."""
    return _ACTIVE.get()


@contextmanager
def activate_runtime(runtime: ReproRuntime):
    """Make ``runtime`` the :func:`current_runtime` inside the block.

    The runtime's observability context, fault ledger and (optional)
    fault plan are activated alongside it, so
    :func:`repro.obs.api.counter` / :func:`~repro.obs.api.span` sites
    resolve to the run's instruments and every recovery event lands on
    the run's ledger.
    """
    token = _ACTIVE.set(runtime)
    try:
        with activate_obs(runtime.obs or NOOP_OBS), \
                activate_ledger(runtime.ledger), \
                install_faults(runtime.faults):
            yield runtime
    finally:
        _ACTIVE.reset(token)


@contextmanager
def profiled_stage(name: str, samples: int = 0):
    """Record the block on the active runtime's profiler (no-op otherwise).

    When the runtime carries a live tracer the block also becomes a span
    of the same name, so ``--profile`` aggregates and ``--trace``
    timelines stay consistent.
    """
    runtime = _ACTIVE.get()
    if runtime is None:
        yield
        return
    obs = runtime.obs or NOOP_OBS
    with runtime.profiler.stage(name, samples), \
            obs.tracer.span(name, samples=samples):
        yield
