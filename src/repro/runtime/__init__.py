"""Execution runtime: parallel sharded sampling, persistent quantile
cache, and lightweight profiling.

The statistics layer (:mod:`repro.core`) stays pure and serial; this
package supplies the *how fast* — see :class:`ParallelSampler` for
reproducible process-parallel sampling, :class:`QuantileCache` for the
on-disk memo of deterministic sign-off quantiles, and
:class:`ReproRuntime` / :func:`activate_runtime` for threading a worker
pool and profiler through the experiment registry
(``python -m repro.experiments --jobs N --profile``).
"""

from __future__ import annotations

from repro.runtime.cache import (
    ENV_CACHE_DIR,
    ENV_CACHE_DISABLE,
    QuantileCache,
    technology_fingerprint,
)
from repro.runtime.context import (
    ReproRuntime,
    activate_runtime,
    current_runtime,
    profiled_stage,
)
from repro.runtime.parallel import (
    DEFAULT_SHARD_SIZE,
    DEFAULT_SHM_MIN_BYTES,
    ParallelSampler,
    plan_shards,
    release_worker_workspaces,
    shard_seeds,
)
from repro.runtime.profile import Profiler, StageStats

__all__ = [
    "ParallelSampler",
    "QuantileCache",
    "ReproRuntime",
    "Profiler",
    "StageStats",
    "activate_runtime",
    "current_runtime",
    "profiled_stage",
    "build_runtime",
    "plan_shards",
    "release_worker_workspaces",
    "shard_seeds",
    "technology_fingerprint",
    "DEFAULT_SHARD_SIZE",
    "DEFAULT_SHM_MIN_BYTES",
    "ENV_CACHE_DIR",
    "ENV_CACHE_DISABLE",
]


def build_runtime(jobs: int = 1, profile: bool = False,
                  trace: bool = False, metrics: bool = False,
                  retry=None, faults=None,
                  precision: str = "float64",
                  backend: str = "numpy",
                  block_elems: int | None = None) -> ReproRuntime:
    """A ready-to-activate runtime with a sampler sized to ``jobs``.

    ``trace`` turns on span collection (``--trace FILE``); ``metrics``
    turns on the counter/gauge/histogram registry (``--metrics FILE``).
    ``--profile`` implies the metrics registry so the cache and solver
    counters can be rendered alongside the stage table.  ``retry`` is an
    optional :class:`~repro.resilience.policy.RetryPolicy` for the
    sampler's fault-tolerant dispatcher, and ``faults`` an optional
    :class:`~repro.resilience.faultlab.FaultPlan` installed while the
    runtime is active (``--inject-faults``).  ``precision`` sets the
    run's Monte-Carlo dtype policy (``--mc-precision``), ``backend``
    the kernel execution backend (``--backend``; validated against
    :data:`~repro.core.backends.BACKENDS`) and ``block_elems`` the
    kernels' internal block budget (``--block-elems``; must be >= 1).
    """
    from repro.core.backends import BACKENDS
    from repro.errors import ConfigurationError
    from repro.obs.api import build_obs

    jobs = int(jobs)
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    backend = str(backend)
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"backend must be one of {BACKENDS}, got {backend!r}")
    if block_elems is not None:
        block_elems = int(block_elems)
        if block_elems < 1:
            raise ConfigurationError(
                f"block_elems must be >= 1, got {block_elems}")
    runtime = ReproRuntime(
        jobs=jobs, profile=bool(profile),
        obs=build_obs(trace=bool(trace),
                      metrics=bool(metrics or profile or trace)),
        faults=faults, precision=str(precision),
        backend=backend, block_elems=block_elems)
    runtime.sampler = ParallelSampler(jobs,
                                      profiler=runtime.profiler,
                                      retry=retry)
    return runtime
