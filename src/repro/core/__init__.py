"""Core engines: the paper's primary contribution as a reusable library.

* :mod:`repro.core.moments` — exact gate-delay moments by Gauss-Hermite
  quadrature and Cornish-Fisher path quantiles.
* :mod:`repro.core.chip_delay` — the analytic order-statistics engine for
  lane/chip delay distributions of an N-wide SIMD datapath (with spares).
* :mod:`repro.core.montecarlo` — the brute-force per-gate Monte-Carlo
  engine (the paper's method; used directly for the circuit-level figures
  and as cross-validation for the analytic engine).
* :mod:`repro.core.kernels` — fused zero-allocation evaluation kernels
  behind the Monte-Carlo engine (workspace reuse, float64/float32 dtype
  policy).
* :mod:`repro.core.backends` — pluggable kernel execution backends
  (serial numpy, bit-identical threaded blocks, optional numba/cupy).
* :mod:`repro.core.tailsampling` — importance-sampling estimation of
  high-sigma chip-delay tails (mean-shifted / mixture proposals with
  exact likelihood-ratio weights, adaptive shift search, ESS
  diagnostics).
* :mod:`repro.core.analyzer` — :class:`VariationAnalyzer`, the high-level
  entry point tying a technology card to every paper-level question.
* :mod:`repro.core.results` — typed result containers.
"""

from repro.core.moments import (
    DelayMoments,
    gate_delay_moments,
    chain_moments,
    cornish_fisher_quantile,
    cornish_fisher_cdf,
)
from repro.core.chip_delay import (
    ChipDelayEngine,
    sample_chip_delays,
    chip_delay_quantile,
    chip_delay_cdf,
)
from repro.core.backends import (
    BACKENDS,
    KernelBackend,
    available_backends,
    backend_manifest,
    get_backend,
    resolve_backend,
)
from repro.core.kernels import MonteCarloKernel, WorkspaceArena
from repro.core.montecarlo import MonteCarloEngine
from repro.core.analyzer import VariationAnalyzer
from repro.core.results import DelayDistribution, VariationSweep
from repro.core.stats import bootstrap_ci, quantile_ci, weighted_quantile
from repro.core.tailsampling import (
    ShiftProposal,
    TailEstimate,
    TailSampler,
    effective_sample_size,
    weight_max_ratio,
)

__all__ = [
    "DelayMoments",
    "gate_delay_moments",
    "chain_moments",
    "cornish_fisher_quantile",
    "cornish_fisher_cdf",
    "ChipDelayEngine",
    "sample_chip_delays",
    "chip_delay_quantile",
    "chip_delay_cdf",
    "MonteCarloEngine",
    "MonteCarloKernel",
    "WorkspaceArena",
    "BACKENDS",
    "KernelBackend",
    "available_backends",
    "backend_manifest",
    "get_backend",
    "resolve_backend",
    "VariationAnalyzer",
    "DelayDistribution",
    "VariationSweep",
    "bootstrap_ci",
    "quantile_ci",
    "weighted_quantile",
    "ShiftProposal",
    "TailEstimate",
    "TailSampler",
    "effective_sample_size",
    "weight_max_ratio",
]
