"""Importance-sampling estimation of high-sigma chip-delay tails.

The paper signs off at the 99 % chip quantile; real sign-off wants
99.99 %+ quantiles and per-chip failure probabilities, where naive
Monte-Carlo needs 1e6–1e8 samples.  Following the stochastic-logical-
effort importance-sampling recipe (*Fast Monte Carlo Estimation of
Timing Yield: Importance Sampling with Stochastic Logical Effort*,
PAPERS.md), this module reaches the same tail accuracy with ~1e3–1e4
weighted samples by sampling the *correlated* threshold components from
a shifted proposal and reweighting:

* the chip-delay tail at near-threshold is dominated by the die-to-die
  threshold draw ``D_s`` (it slows every lane at once and its delay
  impact is exponentially amplified), so the proposal mean-shifts ``D_s``
  by ``s * sigma_vth_d2d`` volts — optionally as a K-component normal
  mixture (a defensive component at 0 bounds the weights), optionally
  with an additional per-lane mean shift;
* every shift is applied *after* the draw leaves the chip's own
  :class:`numpy.random.SeedSequence` stream, so a shifted run consumes
  exactly the same variates as the nominal one: the weighted estimator
  inherits the kernel layer's batch-size / worker-count invariance, and
  a zero-shift proposal reproduces plain sampling bit-for-bit;
* each chip comes back with its log-likelihood ratio
  ``log p(x) - log q(x)`` (exact, in standardized units), and the
  self-normalized estimators — :func:`~repro.core.stats.weighted_quantile`
  for tail quantiles, a weighted indicator mean for ``P(delay > t)`` —
  consume the weights together with effective-sample-size (ESS) and
  max-weight diagnostics;
* :meth:`TailSampler.find_shift` runs a coarse cross-entropy /
  moment-matching pilot loop before the production run: each round
  takes the weighted elite fraction of chip delays and moves the shift
  to the weighted mean of their standardized d2d draws, ramping the
  elite threshold toward the target quantile (or failure threshold).

Production runs shard over :class:`~repro.runtime.parallel.
ParallelSampler` (weights ride the shared-memory transport next to the
delays), so a tail estimate is bit-identical at ``jobs=1`` and
``jobs=32`` and survives the full chaos-recovery ladder.  Emits
``tail.*`` metrics (ESS, weight-max-ratio, shift-search rounds) on the
active observability context.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.montecarlo import MonteCarloEngine
from repro.core.kernels import MonteCarloKernel
from repro.core.stats import weighted_quantile
from repro.devices.technology import TechnologyNode, get_technology
from repro.errors import ConfigurationError
from repro.obs.api import counter as _obs_counter
from repro.obs.api import gauge as _obs_gauge
from repro.runtime.context import profiled_stage

__all__ = [
    "ShiftProposal", "TailEstimate", "TailSampler",
    "effective_sample_size", "weight_max_ratio", "normalized_weights",
    "DEFAULT_DEFENSIVE_WEIGHT", "MAX_SHIFT",
]

#: Mixture mass the :meth:`ShiftProposal.defensive` helper leaves on the
#: nominal (zero-shift) component.  Defensive mixing bounds the
#: likelihood ratio at ``1 / defensive_weight`` in the far nominal bulk,
#: which keeps the weight spectrum tame when the shift overshoots.
DEFAULT_DEFENSIVE_WEIGHT = 0.1

#: Largest |mean shift| accepted, in sigma units.  Beyond ~8 sigma the
#: double-precision normal CDF underflows and the estimator is
#: extrapolating anyway.
MAX_SHIFT = 8.0

#: Entropy tag mixed into the pilot streams so the shift search never
#: shares draws with the production shards (which spawn directly from
#: ``SeedSequence(root_seed)``).
_PILOT_STREAM_TAG = 0x7461696C            # "tail"


def normalized_weights(log_weights) -> np.ndarray:
    """Self-normalized weights ``w_i / sum(w)`` from log-likelihood ratios.

    Stable for any offset: the max log-weight is subtracted before
    exponentiation, and common offsets cancel in the normalization.
    """
    lw = np.asarray(log_weights, dtype=float).ravel()
    if lw.size == 0:
        raise ConfigurationError("need at least one log-weight")
    if not np.all(np.isfinite(lw)):
        raise ConfigurationError("log-weights must be finite")
    w = np.exp(lw - lw.max())
    return w / w.sum()


def effective_sample_size(log_weights) -> float:
    """Kish effective sample size ``(sum w)^2 / sum(w^2)``.

    Equals ``n`` for uniform weights and degrades toward 1 as the weight
    spectrum concentrates; the tail estimators surface it as the honest
    "how many samples is this really" diagnostic.
    """
    w = normalized_weights(log_weights)
    return float(1.0 / np.square(w).sum())


def weight_max_ratio(log_weights) -> float:
    """Fraction of the total weight carried by the single heaviest sample.

    ``1/n`` for uniform weights; values near 1 mean the estimate hangs
    off one sample and the proposal needs a smaller shift (or more
    defensive mass).
    """
    w = normalized_weights(log_weights)
    return float(w.max())


@dataclass(frozen=True)
class ShiftProposal:
    """A mean-shifted / mixture-normal proposal on the Vth components.

    ``d2d_shifts`` are the K mixture-component mean shifts applied to
    the die-to-die threshold component, in units of ``sigma_vth_d2d``;
    ``mix_weights`` their probabilities (normalized at construction;
    uniform when omitted).  ``lane_shift`` is an additional pure mean
    shift on every per-lane threshold draw, in units of
    ``sigma_vth_lane``.  Shifts are applied *post-draw*, so the
    underlying standard-normal stream is exactly the nominal one; a
    mixture (K > 1) consumes one extra uniform per chip for component
    selection, drawn before the chip's correlated draws.
    """

    d2d_shifts: tuple = (0.0,)
    mix_weights: tuple = ()
    lane_shift: float = 0.0
    _cum_weights: tuple = field(default=(), repr=False, compare=False)

    def __post_init__(self) -> None:
        shifts = tuple(float(s) for s in np.atleast_1d(self.d2d_shifts))
        if not shifts:
            raise ConfigurationError("d2d_shifts must not be empty")
        for s in shifts:
            if not math.isfinite(s) or abs(s) > MAX_SHIFT:
                raise ConfigurationError(
                    f"d2d shifts must be finite and |s| <= {MAX_SHIFT} "
                    f"sigma, got {s}")
        weights = tuple(float(w) for w in np.atleast_1d(self.mix_weights)) \
            if len(np.atleast_1d(self.mix_weights)) else \
            tuple([1.0 / len(shifts)] * len(shifts))
        if len(weights) != len(shifts):
            raise ConfigurationError(
                f"mix_weights has {len(weights)} entries for "
                f"{len(shifts)} components")
        if any((not math.isfinite(w)) or w <= 0.0 for w in weights):
            raise ConfigurationError(
                "mixture weights must be finite and positive")
        total = sum(weights)
        weights = tuple(w / total for w in weights)
        lane = float(self.lane_shift)
        if not math.isfinite(lane) or abs(lane) > MAX_SHIFT:
            raise ConfigurationError(
                f"lane_shift must be finite and |s| <= {MAX_SHIFT} sigma, "
                f"got {lane}")
        object.__setattr__(self, "d2d_shifts", shifts)
        object.__setattr__(self, "mix_weights", weights)
        object.__setattr__(self, "lane_shift", lane)
        object.__setattr__(self, "_cum_weights",
                           tuple(np.cumsum(weights)[:-1]))

    # -- constructors --------------------------------------------------------

    @classmethod
    def mean_shift(cls, shift: float, lane_shift: float = 0.0
                   ) -> "ShiftProposal":
        """A single-component mean shift (no extra stream consumption)."""
        return cls(d2d_shifts=(float(shift),), lane_shift=lane_shift)

    @classmethod
    def defensive(cls, shift: float,
                  defensive_weight: float = DEFAULT_DEFENSIVE_WEIGHT,
                  lane_shift: float = 0.0) -> "ShiftProposal":
        """A two-component mixture: the shift plus a nominal component.

        ``defensive_weight`` is the mass left on the zero-shift
        component; ``0`` degrades to a pure :meth:`mean_shift`.
        """
        dw = float(defensive_weight)
        if not 0.0 <= dw < 1.0:
            raise ConfigurationError(
                f"defensive_weight must be in [0, 1), got {dw}")
        if dw == 0.0 or float(shift) == 0.0:
            return cls.mean_shift(shift, lane_shift)
        return cls(d2d_shifts=(float(shift), 0.0),
                   mix_weights=(1.0 - dw, dw), lane_shift=lane_shift)

    # -- identity ------------------------------------------------------------

    @property
    def is_mixture(self) -> bool:
        return len(self.d2d_shifts) > 1

    @property
    def has_d2d_shift(self) -> bool:
        return self.is_mixture or self.d2d_shifts[0] != 0.0

    @property
    def is_nominal(self) -> bool:
        """True when sampling under this proposal is plain Monte-Carlo."""
        return not self.has_d2d_shift and self.lane_shift == 0.0

    def fingerprint(self) -> str:
        """Deterministic cache-key fragment naming this proposal exactly."""
        shifts = ",".join(repr(s) for s in self.d2d_shifts)
        weights = ",".join(repr(w) for w in self.mix_weights)
        return f"d2d[{shifts}]w[{weights}]lane[{self.lane_shift!r}]"

    def as_dict(self) -> dict:
        """Plain-data form for shard task dicts / JSON payloads."""
        return {"d2d_shifts": list(self.d2d_shifts),
                "mix_weights": list(self.mix_weights),
                "lane_shift": self.lane_shift}

    @classmethod
    def from_dict(cls, data: dict) -> "ShiftProposal":
        return cls(d2d_shifts=tuple(data["d2d_shifts"]),
                   mix_weights=tuple(data["mix_weights"]),
                   lane_shift=float(data.get("lane_shift", 0.0)))

    def validate_for(self, variation) -> None:
        """Reject shifts on components the variation model zeroes out."""
        if self.has_d2d_shift and not variation.sigma_vth_d2d:
            raise ConfigurationError(
                "proposal shifts the d2d Vth component but sigma_vth_d2d "
                "is 0 (the likelihood ratio would be undefined)")
        if self.lane_shift and not variation.sigma_vth_lane:
            raise ConfigurationError(
                "proposal shifts the lane Vth component but sigma_vth_lane "
                "is 0 (the likelihood ratio would be undefined)")

    # -- sampling hooks (called from the kernel's per-chip loop) -------------

    def pick_component(self, rng) -> int:
        """Choose this chip's mixture component.

        Consumes one uniform from the chip stream *only* for a genuine
        mixture, so single-component proposals leave the stream
        untouched relative to nominal sampling.
        """
        if not self.is_mixture:
            return 0
        return int(np.searchsorted(self._cum_weights, rng.random(),
                                   side="right"))

    def _log_mix_density(self, z: float) -> float:
        """Log proposal density of a standardized d2d value (const-free).

        The ``1/sqrt(2 pi)`` normalizations cancel against the target
        density in the likelihood ratio, so both sides drop them.
        """
        terms = [math.log(w) - 0.5 * (z - s) * (z - s)
                 for w, s in zip(self.mix_weights, self.d2d_shifts)]
        m = max(terms)
        return m + math.log(sum(math.exp(t - m) for t in terms))

    def shift_chip(self, component: int, die_dvth: float, lane_dvth,
                   sigma_d2d: float, sigma_lane: float) -> tuple:
        """Apply this chip's shifts; return ``(shifted_die, log_weight)``.

        ``die_dvth`` is the chip's nominal die-level threshold draw in
        volts; ``lane_dvth`` its per-lane threshold draws (shifted in
        place when ``lane_shift`` is set).  The returned log weight is
        the exact ``log p(x) - log q(x)`` of the shifted components.
        """
        logw = 0.0
        if self.has_d2d_shift:
            shifted = die_dvth + self.d2d_shifts[component] * sigma_d2d
            z = shifted / sigma_d2d
            logw += -0.5 * z * z - self._log_mix_density(z)
            die_dvth = shifted
        s = self.lane_shift
        if s:
            z_lane = lane_dvth / sigma_lane + s
            np.multiply(z_lane, sigma_lane, out=lane_dvth)
            logw += float(np.sum(0.5 * s * s - s * z_lane))
        return die_dvth, logw


@dataclass(frozen=True)
class TailEstimate:
    """One importance-sampled tail estimate plus its diagnostics.

    ``value`` is seconds for a quantile estimate and a probability for a
    failure-rate estimate (``kind`` says which).  ``ess`` is the Kish
    effective sample size of the weighted run, ``weight_max_ratio`` the
    heaviest sample's weight share, ``shift_search_rounds`` how many
    pilot rounds the adaptive search spent (0 for an explicit proposal
    or a cache hit that recorded none).
    """

    value: float
    kind: str
    ess: float
    weight_max_ratio: float
    n_samples: int
    shift_search_rounds: int
    proposal: ShiftProposal
    q: float | None = None
    threshold: float | None = None

    def as_dict(self) -> dict:
        """JSON-ready form (serving payloads, manifests)."""
        out = {"value": float(self.value), "kind": self.kind,
               "ess": float(self.ess),
               "weight_max_ratio": float(self.weight_max_ratio),
               "n_samples": int(self.n_samples),
               "shift_search_rounds": int(self.shift_search_rounds),
               "proposal": self.proposal.as_dict()}
        if self.q is not None:
            out["q"] = float(self.q)
        if self.threshold is not None:
            out["threshold"] = float(self.threshold)
        return out


class TailSampler:
    """Importance-sampling tail estimator over the per-gate MC kernels.

    Binds a technology card to an architecture shape and answers tail
    questions with weighted Monte-Carlo: production runs go through a
    :class:`~repro.runtime.parallel.ParallelSampler` (the handed-in one,
    or a private serial sampler with the standard shard size — either
    way the result depends only on ``(root_seed, shard_size)``, never on
    the worker count), while the adaptive shift search runs small
    in-process pilots on streams derived from ``root_seed`` plus a fixed
    tag, so the chosen proposal — and therefore the whole estimate — is
    deterministic end to end.
    """

    def __init__(self, tech, *, width: int = 128, paths_per_lane: int = 100,
                 chain_length: int = 50, spares: int = 0,
                 batch_size: int = 64, sampler=None,
                 precision: str = "float64", backend: str = "numpy",
                 block_elems: int | None = None) -> None:
        if isinstance(tech, str):
            tech = get_technology(tech)
        if not isinstance(tech, TechnologyNode):
            raise ConfigurationError(
                f"tech must be a TechnologyNode or name, got {type(tech)!r}")
        if width < 1 or paths_per_lane < 1 or chain_length < 1:
            raise ConfigurationError(
                "width, paths_per_lane and chain_length must be >= 1")
        if spares < 0:
            raise ConfigurationError("spares must be >= 0")
        if not tech.variation.sigma_vth_d2d:
            raise ConfigurationError(
                f"{tech.name}: importance sampling needs a nonzero "
                "sigma_vth_d2d component to shift")
        self.tech = tech
        self.width = int(width)
        self.paths_per_lane = int(paths_per_lane)
        self.chain_length = int(chain_length)
        self.spares = int(spares)
        self.batch_size = int(batch_size)
        self.precision = str(precision)
        self.backend = str(backend)
        self.block_elems = block_elems
        self._sampler = sampler
        self._own_sampler = None
        self._pilot_kernel: MonteCarloKernel | None = None

    # -- sampling ------------------------------------------------------------

    def _production_sampler(self):
        if self._sampler is not None:
            return self._sampler
        if self._own_sampler is None:
            from repro.runtime.parallel import ParallelSampler
            self._own_sampler = ParallelSampler(jobs=1)
        return self._own_sampler

    def sample(self, vdd, n_samples: int, proposal: ShiftProposal,
               root_seed=0) -> tuple:
        """Sharded weighted sampling -> ``(delays, logw)`` (float64)."""
        sampler = self._production_sampler()
        return sampler.weighted_system_delays(
            self.tech, vdd, proposal=proposal, width=self.width,
            paths_per_lane=self.paths_per_lane,
            chain_length=self.chain_length, n_chips=int(n_samples),
            spares=self.spares, batch_size=self.batch_size,
            root_seed=root_seed, precision=self.precision,
            backend=self.backend, block_elems=self.block_elems)

    def _pilot(self, vdd, n: int, proposal: ShiftProposal, seed) -> tuple:
        """One in-process pilot -> ``(delays, logw, d2d)``."""
        if self._pilot_kernel is None:
            self._pilot_kernel = MonteCarloKernel(
                self.tech, precision=self.precision, backend=self.backend,
                block_elems=self.block_elems)
        engine = MonteCarloEngine(self.tech,
                                  rng=np.random.default_rng(seed),
                                  kernel=self._pilot_kernel)
        return engine.weighted_system_delays(
            vdd, width=self.width, paths_per_lane=self.paths_per_lane,
            chain_length=self.chain_length, n_chips=int(n),
            spares=self.spares, proposal=proposal,
            batch_size=self.batch_size, return_d2d=True)

    # -- adaptive shift search ----------------------------------------------

    def find_shift(self, vdd, q: float | None = None, *,
                   t_limit: float | None = None, n_pilot: int = 512,
                   max_rounds: int = 5, elite_fraction: float = 0.1,
                   defensive_weight: float = DEFAULT_DEFENSIVE_WEIGHT,
                   root_seed=0) -> tuple:
        """Coarse cross-entropy search -> ``(proposal, rounds)``.

        Each round samples ``n_pilot`` chips under the current proposal,
        takes the weighted elite set — delays above the smaller of the
        target (the ``q`` weighted quantile, or ``t_limit``) and the
        ``1 - elite_fraction`` weighted quantile — and moment-matches
        the shift to the weighted mean of the elites' standardized d2d
        draws.  Stops early once the elite threshold has reached the
        target and the shift has stabilized.  Deterministic in
        ``root_seed`` (pilot streams are tagged so they never overlap
        the production shards).
        """
        if (q is None) == (t_limit is None):
            raise ConfigurationError(
                "find_shift needs exactly one of q / t_limit")
        if q is not None and not 0.0 < q < 1.0:
            raise ConfigurationError(f"q must be in (0, 1), got {q}")
        if t_limit is not None and not t_limit > 0.0:
            raise ConfigurationError(
                f"t_limit must be positive seconds, got {t_limit}")
        if n_pilot < 16:
            raise ConfigurationError(
                f"n_pilot must be >= 16, got {n_pilot}")
        if max_rounds < 1:
            raise ConfigurationError(
                f"max_rounds must be >= 1, got {max_rounds}")
        if not 0.0 < elite_fraction < 0.5:
            raise ConfigurationError(
                f"elite_fraction must be in (0, 0.5), got {elite_fraction}")
        sigma = self.tech.variation.sigma_vth_d2d
        seeds = np.random.SeedSequence(
            [_PILOT_STREAM_TAG, int(root_seed)]).spawn(int(max_rounds))
        shift = 0.0
        rounds = 0
        with profiled_stage("tail.shift_search"):
            for r in range(int(max_rounds)):
                proposal = ShiftProposal.defensive(shift, defensive_weight)
                delays, logw, d2d = self._pilot(vdd, int(n_pilot), proposal,
                                                seeds[r])
                rounds = r + 1
                delays = np.asarray(delays, dtype=float)
                w = normalized_weights(logw)
                gamma_elite = weighted_quantile(
                    delays, 1.0 - elite_fraction, w)
                gamma_target = (float(t_limit) if t_limit is not None
                                else weighted_quantile(delays, q, w))
                gamma = min(gamma_target, gamma_elite)
                elite = delays >= gamma
                elite_mass = float(w[elite].sum())
                if elite_mass <= 0.0:
                    break
                new_shift = float(np.dot(w[elite], d2d[elite] / sigma)
                                  / elite_mass)
                new_shift = min(max(new_shift, 0.0), MAX_SHIFT)
                reached = gamma_elite >= gamma_target
                stable = abs(new_shift - shift) <= 0.05
                shift = new_shift
                if reached and stable:
                    break
        return ShiftProposal.defensive(shift, defensive_weight), rounds

    # -- estimators ----------------------------------------------------------

    def tail_quantile(self, vdd, q: float, *, n_samples: int = 4096,
                      proposal: ShiftProposal | None = None, root_seed=0,
                      n_pilot: int = 512, max_rounds: int = 5,
                      elite_fraction: float = 0.1,
                      defensive_weight: float = DEFAULT_DEFENSIVE_WEIGHT
                      ) -> TailEstimate:
        """Self-normalized weighted ``q`` chip-delay quantile (seconds).

        ``proposal=None`` runs the adaptive shift search first; an
        explicit proposal skips it (rounds = 0).  Bit-reproducible in
        ``root_seed`` and invariant to ``batch_size`` and worker count.
        """
        if not 0.0 < q < 1.0:
            raise ConfigurationError(
                f"quantile must be in (0, 1), got {q}")
        self._check_samples(n_samples)
        rounds = 0
        if proposal is None:
            proposal, rounds = self.find_shift(
                vdd, q, n_pilot=n_pilot, max_rounds=max_rounds,
                elite_fraction=elite_fraction,
                defensive_weight=defensive_weight, root_seed=root_seed)
        with profiled_stage("tail.estimate", int(n_samples)):
            delays, logw = self.sample(vdd, n_samples, proposal, root_seed)
            value = weighted_quantile(np.asarray(delays, dtype=float), q,
                                      np.exp(logw - logw.max()))
        return self._finish(value, "quantile", logw, n_samples, rounds,
                            proposal, q=float(q))

    def failure_probability(self, vdd, t_limit: float | None = None, *,
                            f_clk: float | None = None,
                            n_samples: int = 4096,
                            proposal: ShiftProposal | None = None,
                            root_seed=0, n_pilot: int = 512,
                            max_rounds: int = 5,
                            elite_fraction: float = 0.1,
                            defensive_weight: float =
                            DEFAULT_DEFENSIVE_WEIGHT) -> TailEstimate:
        """Self-normalized ``P(chip delay > t_limit)`` estimate.

        Pass the delay budget directly (``t_limit`` seconds) or as a
        clock target (``f_clk`` Hz, giving ``t_limit = 1 / f_clk``).
        """
        if (t_limit is None) == (f_clk is None):
            raise ConfigurationError(
                "failure_probability needs exactly one of t_limit / f_clk")
        if f_clk is not None:
            if not f_clk > 0.0:
                raise ConfigurationError(
                    f"f_clk must be positive Hz, got {f_clk}")
            t_limit = 1.0 / float(f_clk)
        if not t_limit > 0.0:
            raise ConfigurationError(
                f"t_limit must be positive seconds, got {t_limit}")
        self._check_samples(n_samples)
        rounds = 0
        if proposal is None:
            proposal, rounds = self.find_shift(
                vdd, t_limit=t_limit, n_pilot=n_pilot,
                max_rounds=max_rounds, elite_fraction=elite_fraction,
                defensive_weight=defensive_weight, root_seed=root_seed)
        with profiled_stage("tail.estimate", int(n_samples)):
            delays, logw = self.sample(vdd, n_samples, proposal, root_seed)
            w = normalized_weights(logw)
            value = float(w[np.asarray(delays, dtype=float)
                            > float(t_limit)].sum())
        return self._finish(value, "probability", logw, n_samples, rounds,
                            proposal, threshold=float(t_limit))

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _check_samples(n_samples: int) -> None:
        if n_samples < 2:
            raise ConfigurationError(
                f"n_samples must be >= 2, got {n_samples}")

    def _finish(self, value: float, kind: str, logw, n_samples: int,
                rounds: int, proposal: ShiftProposal, q=None,
                threshold=None) -> TailEstimate:
        ess = effective_sample_size(logw)
        wmr = weight_max_ratio(logw)
        _obs_counter("tail.estimates").inc()
        _obs_gauge("tail.ess").set(ess)
        _obs_gauge("tail.weight_max_ratio").set(wmr)
        if rounds:
            _obs_counter("tail.shift_search_rounds").inc(int(rounds))
        return TailEstimate(value=float(value), kind=kind, ess=ess,
                            weight_max_ratio=wmr, n_samples=int(n_samples),
                            shift_search_rounds=int(rounds),
                            proposal=proposal, q=q, threshold=threshold)
