"""Confidence intervals for Monte-Carlo estimates.

The paper quotes 99 % points of 10,000-sample ensembles without error
bars; these helpers make the sampling uncertainty explicit:

* :func:`quantile_ci` — exact, distribution-free CI for a quantile from
  order statistics (the binomial method): the true ``q`` quantile lies
  between the ``l``-th and ``u``-th order statistics with the stated
  confidence, where ``l``/``u`` are binomial quantiles.
* :func:`bootstrap_ci` — percentile bootstrap for arbitrary statistics
  (used for 3sigma/mu, which mixes two moments).
* :func:`weighted_quantile` — self-normalized quantile of a weighted
  sample (sorted-cumulative-weight interpolation).  This is the
  estimator the importance-sampling tail machinery
  (:mod:`repro.core.tailsampling`) consumes: likelihood-ratio weights go
  in, a tail quantile comes out.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import binom

from repro.errors import ConfigurationError

__all__ = ["quantile_ci", "bootstrap_ci", "weighted_quantile"]


def quantile_ci(samples, q: float, confidence: float = 0.95) -> tuple:
    """Distribution-free confidence interval for the ``q`` quantile.

    Returns ``(lo, hi)`` sample values bracketing the true quantile with
    at least ``confidence`` coverage (exact order-statistics/binomial
    construction; no distributional assumptions).
    """
    samples = np.sort(np.asarray(samples, dtype=float))
    n = samples.size
    if n < 10:
        raise ConfigurationError("need at least 10 samples for a CI")
    if not 0.0 < q < 1.0:
        raise ConfigurationError("q must be in (0, 1)")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must be in (0, 1)")
    alpha = 1.0 - confidence
    lo_rank = int(binom.ppf(alpha / 2.0, n, q))
    hi_rank = int(binom.ppf(1.0 - alpha / 2.0, n, q)) + 1
    lo_rank = max(lo_rank, 0)
    hi_rank = min(hi_rank, n - 1)
    return float(samples[lo_rank]), float(samples[hi_rank])


def weighted_quantile(samples, q, weights):
    """Quantile(s) of a weighted sample (linear interpolation).

    Sorts the samples, accumulates the (non-negative) weights, places
    sorted sample ``i`` at the cumulative position
    ``(C_i - w_i) / (W - w_n)`` (``C_i`` the inclusive cumulative weight,
    ``W`` the total, ``w_n`` the last sorted weight) and interpolates
    linearly — the standard "C = 1" weighted plotting position, which
    reduces *exactly* to ``np.quantile``'s default linear method when all
    weights are equal.  Weights only matter up to a common scale, so
    unnormalized importance weights (or ``exp(logw - logw.max())``) are
    fine.  ``q`` may be a scalar or an array; the result matches its
    shape (scalar in, float out).
    """
    samples = np.asarray(samples, dtype=float).ravel()
    weights = np.asarray(weights, dtype=float).ravel()
    if samples.size < 2:
        raise ConfigurationError("need at least 2 samples for a quantile")
    if weights.shape != samples.shape:
        raise ConfigurationError(
            f"weights shape {weights.shape} does not match samples shape "
            f"{samples.shape}")
    if not np.all(np.isfinite(samples)):
        raise ConfigurationError("samples must be finite")
    if not np.all(np.isfinite(weights)) or np.any(weights < 0):
        raise ConfigurationError("weights must be finite and non-negative")
    total = weights.sum()
    if total <= 0:
        raise ConfigurationError("weights must not all be zero")
    q_arr = np.asarray(q, dtype=float)
    if not np.all((q_arr > 0.0) & (q_arr < 1.0)):
        raise ConfigurationError("q must be in (0, 1)")
    order = np.argsort(samples, kind="stable")
    sorted_samples = samples[order]
    sorted_weights = weights[order]
    cum = np.cumsum(sorted_weights)
    denom = total - sorted_weights[-1]
    if denom <= 0:
        # All weight on the last sorted sample: the CDF is a step there.
        out = np.full(q_arr.shape, sorted_samples[-1])
        return float(out) if q_arr.shape == () else out
    positions = (cum - sorted_weights) / denom
    out = np.interp(q_arr, positions, sorted_samples)
    if q_arr.shape == ():
        return float(out)
    return out


def bootstrap_ci(samples, statistic, *, n_boot: int = 1000,
                 confidence: float = 0.95, rng=None,
                 seed: int | None = 0) -> tuple:
    """Percentile-bootstrap confidence interval for ``statistic(samples)``.

    ``statistic`` maps a 1-D array to a scalar.  Returns ``(lo, hi)``.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.size < 10:
        raise ConfigurationError("need at least 10 samples for a CI")
    if n_boot < 10:
        raise ConfigurationError("n_boot must be >= 10")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must be in (0, 1)")
    if rng is None:
        rng = np.random.default_rng(seed)
    n = samples.size
    estimates = np.empty(n_boot)
    for i in range(n_boot):
        resample = samples[rng.integers(0, n, size=n)]
        estimates[i] = float(statistic(resample))
    alpha = 1.0 - confidence
    lo, hi = np.quantile(estimates, [alpha / 2.0, 1.0 - alpha / 2.0])
    return float(lo), float(hi)
