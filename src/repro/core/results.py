"""Typed result containers shared by the experiments and the public API."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.units import three_sigma_over_mu, to_ns

__all__ = ["DelayDistribution", "VariationSweep"]


@dataclass(frozen=True)
class DelayDistribution:
    """An ensemble of delay samples at one operating point.

    Attributes
    ----------
    samples:
        Delay samples in seconds.
    vdd:
        Supply voltage the ensemble was generated at (V).
    label:
        Human-readable description (e.g. ``"128-wide@0.55V"``).
    fo4_unit:
        The FO4 delay at ``vdd`` (seconds); used to express the ensemble in
        the paper's FO4 units.  ``None`` if not applicable.
    """

    samples: np.ndarray
    vdd: float
    label: str = ""
    fo4_unit: float | None = None

    def __post_init__(self) -> None:
        samples = np.asarray(self.samples, dtype=float)
        if samples.ndim != 1 or samples.size == 0:
            raise ConfigurationError("samples must be a non-empty 1-D array")
        object.__setattr__(self, "samples", samples)

    @property
    def mean(self) -> float:
        return float(self.samples.mean())

    @property
    def std(self) -> float:
        return float(self.samples.std())

    @property
    def three_sigma_over_mu(self) -> float:
        """The paper's variation metric, as a fraction."""
        return float(three_sigma_over_mu(self.samples))

    def percentile(self, q: float) -> float:
        """The ``q`` (0-100) percentile in seconds."""
        return float(np.percentile(self.samples, q))

    @property
    def signoff_delay(self) -> float:
        """The paper's sign-off point: the 99 % delay, seconds."""
        return self.percentile(99.0)

    def signoff_ci(self, confidence: float = 0.95) -> tuple:
        """Distribution-free CI for the 99 % delay (sampling error bars)."""
        from repro.core.stats import quantile_ci
        return quantile_ci(self.samples, 0.99, confidence)

    # -- FO4-unit views ----------------------------------------------------

    def in_fo4_units(self) -> np.ndarray:
        """Samples divided by the FO4 delay at the same supply voltage."""
        if self.fo4_unit is None:
            raise ConfigurationError(
                f"{self.label or 'distribution'} has no fo4_unit attached")
        return self.samples / self.fo4_unit

    @property
    def signoff_fo4(self) -> float:
        """99 % delay in FO4 units."""
        return float(np.percentile(self.in_fo4_units(), 99.0))

    # -- reporting ----------------------------------------------------------

    def histogram(self, bins: int = 40):
        """(counts, bin_edges) over the samples, edges in nanoseconds."""
        counts, edges = np.histogram(to_ns(self.samples), bins=bins)
        return counts, edges

    def summary(self) -> str:
        """One-line summary used by the experiment reports."""
        return (f"{self.label or 'delay':<28s} mean={to_ns(self.mean):8.3f} ns  "
                f"3sigma/mu={100 * self.three_sigma_over_mu:6.2f} %  "
                f"p99={to_ns(self.signoff_delay):8.3f} ns")


@dataclass(frozen=True)
class VariationSweep:
    """A 1-D sweep of a scalar metric against an x axis (e.g. Vdd).

    Used for Fig. 2 (3sigma/mu vs Vdd), Fig. 4 (performance drop vs Vdd),
    Fig. 11 (3sigma/mu vs chain length), ...
    """

    x: np.ndarray
    values: np.ndarray
    x_label: str = "x"
    value_label: str = "value"
    series_label: str = ""

    def __post_init__(self) -> None:
        x = np.asarray(self.x, dtype=float)
        values = np.asarray(self.values, dtype=float)
        if x.shape != values.shape:
            raise ConfigurationError(
                f"sweep axes disagree: {x.shape} vs {values.shape}")
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "values", values)

    def value_at(self, x0: float) -> float:
        """Linear interpolation of the sweep at ``x0``."""
        order = np.argsort(self.x)
        return float(np.interp(x0, self.x[order], self.values[order]))

    def rows(self):
        """Iterate (x, value) pairs in x order."""
        order = np.argsort(self.x)
        for i in order:
            yield float(self.x[i]), float(self.values[i])
