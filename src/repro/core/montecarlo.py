"""Brute-force per-gate Monte-Carlo engine.

This is the paper's actual method (HSPICE Monte-Carlo with per-device
threshold draws), transplanted onto the analytic delay model: every gate of
every path of every lane gets its own threshold and multiplicative draw,
plus the die-level correlated draws.  It is exact with respect to the
statistical model but costs O(chips x lanes x paths x gates); use it for

* the circuit-level figures (Fig. 1/2/11 need only 10^3 samples of <= 200
  gates — trivial), and
* cross-validating the analytic :class:`~repro.core.chip_delay.ChipDelayEngine`
  at reduced architecture scale (see tests/test_cross_validation.py).

Evaluation is delegated to a :class:`~repro.core.kernels.MonteCarloKernel`
(fused in-place ufuncs over preallocated workspaces; ``precision=`` selects
the float64/float32 dtype policy; ``fused=False`` keeps the naive
allocate-per-temporary reference path for parity tests and benchmarks).

Random-stream contract: :meth:`system_delays` and :meth:`lane_delays` give
every chip (or lane sample) its own :class:`numpy.random.SeedSequence`
child, spawned from one entropy draw off the engine stream per call.
Results are therefore **invariant to** ``batch_size`` (and to the kernel's
internal evaluation blocking) — batching is purely a memory knob.
:meth:`chain_delays` keeps the legacy single-stream draw order so
chain-level results for a given seed are unchanged by the kernel rewrite.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels import MonteCarloKernel
from repro.errors import ConfigurationError
from repro.obs.api import counter as _obs_counter

__all__ = ["MonteCarloEngine"]


class MonteCarloEngine:
    """Per-gate-sample Monte-Carlo for a technology node.

    Parameters
    ----------
    tech:
        Technology card.
    seed:
        Seed for the internal :class:`numpy.random.Generator`; pass an
        existing generator via ``rng`` to share a stream.
    precision:
        Dtype policy, ``"float64"`` (default) or ``"float32"`` — see
        :mod:`repro.core.kernels`.
    fused:
        ``False`` selects the kernel's naive reference evaluation path
        (identical draws and results in float64; far more temporaries).
    backend:
        Kernel execution backend (``"numpy"`` default, ``"threaded"``,
        ``"numba"``, ``"cupy"``) — see :mod:`repro.core.backends`.
        Missing optional backends degrade to ``"numpy"`` with a warning.
    block_elems:
        Per-workspace element budget for the kernel's internal blocking
        (``None`` = kernel default); tune per backend.
    kernel:
        Share an existing :class:`~repro.core.kernels.MonteCarloKernel`
        (and its workspaces) instead of building one; must be bound to
        the same technology card.
    """

    def __init__(self, tech, seed: int | None = 0, rng=None,
                 precision: str = "float64", fused: bool = True,
                 backend: str = "numpy", block_elems: int | None = None,
                 kernel: MonteCarloKernel | None = None) -> None:
        self.tech = tech
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        if kernel is None:
            kernel = MonteCarloKernel(tech, precision=precision, fused=fused,
                                      backend=backend,
                                      block_elems=block_elems)
        elif kernel.tech != tech:
            raise ConfigurationError(
                "kernel is bound to a different technology card")
        self.kernel = kernel
        self.precision = kernel.precision
        self.fused = kernel.fused
        self.backend = kernel.backend

    # -- random streams ----------------------------------------------------

    def _spawn_children(self, n: int):
        """Per-sample SeedSequence children for one batched call.

        One entropy draw from the engine stream seeds a call-level
        :class:`~numpy.random.SeedSequence`; its children are handed to
        the kernel one per chip/lane sample, which is what makes batched
        results independent of ``batch_size``.
        """
        entropy = self.rng.integers(0, 2 ** 63, size=4).tolist()
        return np.random.SeedSequence(entropy).spawn(n)

    # -- building blocks --------------------------------------------------

    def gate_delays(self, vdd, n_samples: int, include_die: bool = True):
        """Delays of ``n_samples`` independent single FO4 inverters (seconds).

        Each sample is a separate die (matching the paper's Fig. 1a, where
        each Monte-Carlo sample is an independent SPICE seed).
        """
        return self.chain_delays(vdd, 1, n_samples, include_die=include_die)

    def chain_delays(self, vdd, chain_length: int, n_samples: int,
                     include_die: bool = True):
        """Delays of ``n_samples`` co-located chains of FO4 gates.

        One die draw and one spatial-region (lane-level) draw per sample —
        a standalone test chain fits inside one correlation region; within
        a sample, every gate draws its own within-die variation.  Returns
        seconds, shape ``(n_samples,)``.  ``include_die=False`` drops the
        correlated scales entirely (pure mismatch ablation).
        """
        if chain_length < 1:
            raise ConfigurationError("chain_length must be >= 1")
        if n_samples < 1:
            raise ConfigurationError("n_samples must be >= 1")
        return self.kernel.chain_batch(self.rng, float(vdd), n_samples,
                                       chain_length, include_die=include_die)

    # -- architecture level ------------------------------------------------

    def system_delays(self, vdd, *, width: int, paths_per_lane: int,
                      chain_length: int, n_chips: int, spares: int = 0,
                      batch_size: int = 64):
        """Full per-gate MC of the SIMD chip delay (seconds).

        Memory-bounded by ``batch_size`` chips at a time (the fused
        kernel additionally blocks internally; neither affects the
        result).  The cost is ``n_chips * (width+spares) * paths_per_lane
        * chain_length`` gate evaluations — keep architecture sizes
        modest (this is the validation path; production analysis uses
        :class:`~repro.core.chip_delay.ChipDelayEngine`).
        """
        if width < 1:
            raise ConfigurationError("width must be >= 1")
        if paths_per_lane < 1:
            raise ConfigurationError("paths_per_lane must be >= 1")
        if chain_length < 1:
            raise ConfigurationError("chain_length must be >= 1")
        if n_chips < 1:
            raise ConfigurationError("n_chips must be >= 1")
        if spares < 0:
            raise ConfigurationError("spares must be >= 0")
        if batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {batch_size}")
        n_lanes = width + spares
        vdd = float(vdd)
        _obs_counter("montecarlo.chips").inc(int(n_chips))
        children = self._spawn_children(n_chips)
        out = np.empty(n_chips, dtype=self.kernel.dtype)
        done = 0
        while done < n_chips:
            batch = min(batch_size, n_chips - done)
            rngs = [np.random.default_rng(child)
                    for child in children[done:done + batch]]
            self.kernel.system_batch(rngs, vdd, n_lanes, paths_per_lane,
                                     chain_length, spares,
                                     out[done:done + batch])
            done += batch
        return out

    def weighted_system_delays(self, vdd, *, width: int, paths_per_lane: int,
                               chain_length: int, n_chips: int, proposal,
                               spares: int = 0, batch_size: int = 64,
                               return_d2d: bool = False):
        """Importance-sampled chip delays plus log-likelihood weights.

        Identical stream contract to :meth:`system_delays` — per-chip
        SeedSequence children, so the result is invariant to
        ``batch_size`` and kernel blocking — but each chip's die/lane
        threshold draws are mean-shifted by ``proposal`` (a
        :class:`~repro.core.tailsampling.ShiftProposal`) *after* leaving
        the stream, and the chip's log-likelihood ratio ``log p/q``
        comes back alongside its delay.  Returns ``(delays, logw)``
        (both shape ``(n_chips,)``; ``logw`` is always float64), or
        ``(delays, logw, d2d)`` with the shifted die-level threshold
        draws in volts when ``return_d2d`` is set (the adaptive shift
        search reads them).  A zero-shift single-component proposal
        reproduces :meth:`system_delays` bit-for-bit with zero weights.
        """
        if width < 1:
            raise ConfigurationError("width must be >= 1")
        if paths_per_lane < 1:
            raise ConfigurationError("paths_per_lane must be >= 1")
        if chain_length < 1:
            raise ConfigurationError("chain_length must be >= 1")
        if n_chips < 1:
            raise ConfigurationError("n_chips must be >= 1")
        if spares < 0:
            raise ConfigurationError("spares must be >= 0")
        if batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {batch_size}")
        proposal.validate_for(self.tech.variation)
        n_lanes = width + spares
        vdd = float(vdd)
        _obs_counter("montecarlo.weighted_chips").inc(int(n_chips))
        children = self._spawn_children(n_chips)
        out = np.empty(n_chips, dtype=self.kernel.dtype)
        logw = np.empty(n_chips, dtype=np.float64)
        d2d = np.empty(n_chips, dtype=np.float64) if return_d2d else None
        done = 0
        while done < n_chips:
            batch = min(batch_size, n_chips - done)
            rngs = [np.random.default_rng(child)
                    for child in children[done:done + batch]]
            self.kernel.system_batch(
                rngs, vdd, n_lanes, paths_per_lane, chain_length, spares,
                out[done:done + batch], proposal=proposal,
                logw_out=logw[done:done + batch],
                d2d_out=None if d2d is None else d2d[done:done + batch])
            done += batch
        if return_d2d:
            return out, logw, d2d
        return out, logw

    def lane_delays(self, vdd, *, paths_per_lane: int, chain_length: int,
                    n_samples: int, batch_size: int = 512):
        """Full per-gate MC of single-lane delays (max of P paths), seconds."""
        if paths_per_lane < 1:
            raise ConfigurationError("paths_per_lane must be >= 1")
        if chain_length < 1:
            raise ConfigurationError("chain_length must be >= 1")
        if n_samples < 1:
            raise ConfigurationError("n_samples must be >= 1")
        if batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {batch_size}")
        vdd = float(vdd)
        _obs_counter("montecarlo.lanes").inc(int(n_samples))
        children = self._spawn_children(n_samples)
        out = np.empty(n_samples, dtype=self.kernel.dtype)
        done = 0
        while done < n_samples:
            batch = min(batch_size, n_samples - done)
            rngs = [np.random.default_rng(child)
                    for child in children[done:done + batch]]
            self.kernel.lane_batch(rngs, vdd, paths_per_lane, chain_length,
                                   out[done:done + batch])
            done += batch
        return out
