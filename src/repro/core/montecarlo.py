"""Brute-force per-gate Monte-Carlo engine.

This is the paper's actual method (HSPICE Monte-Carlo with per-device
threshold draws), transplanted onto the analytic delay model: every gate of
every path of every lane gets its own threshold and multiplicative draw,
plus the die-level correlated draws.  It is exact with respect to the
statistical model but costs O(chips x lanes x paths x gates); use it for

* the circuit-level figures (Fig. 1/2/11 need only 10^3 samples of <= 200
  gates — trivial), and
* cross-validating the analytic :class:`~repro.core.chip_delay.ChipDelayEngine`
  at reduced architecture scale (see tests/test_cross_validation.py).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.api import counter as _obs_counter

__all__ = ["MonteCarloEngine"]


class MonteCarloEngine:
    """Per-gate-sample Monte-Carlo for a technology node.

    Parameters
    ----------
    tech:
        Technology card.
    seed:
        Seed for the internal :class:`numpy.random.Generator`; pass an
        existing generator via ``rng`` to share a stream.
    """

    def __init__(self, tech, seed: int | None = 0, rng=None) -> None:
        self.tech = tech
        self.rng = rng if rng is not None else np.random.default_rng(seed)

    # -- building blocks --------------------------------------------------

    def gate_delays(self, vdd, n_samples: int, include_die: bool = True):
        """Delays of ``n_samples`` independent single FO4 inverters (seconds).

        Each sample is a separate die (matching the paper's Fig. 1a, where
        each Monte-Carlo sample is an independent SPICE seed).
        """
        return self.chain_delays(vdd, 1, n_samples, include_die=include_die)

    def chain_delays(self, vdd, chain_length: int, n_samples: int,
                     include_die: bool = True):
        """Delays of ``n_samples`` co-located chains of FO4 gates.

        One die draw and one spatial-region (lane-level) draw per sample —
        a standalone test chain fits inside one correlation region; within
        a sample, every gate draws its own within-die variation.  Returns
        seconds, shape ``(n_samples,)``.  ``include_die=False`` drops the
        correlated scales entirely (pure mismatch ablation).
        """
        if chain_length < 1:
            raise ConfigurationError("chain_length must be >= 1")
        if n_samples < 1:
            raise ConfigurationError("n_samples must be >= 1")
        var = self.tech.variation
        gates = var.sample_gates(self.rng, (n_samples, chain_length))
        if include_die:
            die = var.sample_dies(self.rng, n_samples)
            lane = var.sample_lanes(self.rng, n_samples)
            dvth = gates.dvth + (die.dvth + lane.dvth)[:, None]
            corr_mult = (1.0 + die.mult) * (1.0 + lane.mult)
        else:
            dvth = gates.dvth
            corr_mult = 1.0
        delays = self.tech.fo4_delay(float(vdd), dvth, gates.mult)
        return delays.sum(axis=1) * corr_mult

    # -- architecture level ------------------------------------------------

    def system_delays(self, vdd, *, width: int, paths_per_lane: int,
                      chain_length: int, n_chips: int, spares: int = 0,
                      batch_size: int = 64):
        """Full per-gate MC of the SIMD chip delay (seconds).

        Memory-bounded by ``batch_size`` chips at a time.  The cost is
        ``n_chips * (width+spares) * paths_per_lane * chain_length`` gate
        evaluations — keep architecture sizes modest (this is the
        validation path; production analysis uses
        :class:`~repro.core.chip_delay.ChipDelayEngine`).
        """
        if spares < 0:
            raise ConfigurationError("spares must be >= 0")
        if batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {batch_size}")
        n_lanes = width + spares
        var = self.tech.variation
        vdd = float(vdd)
        _obs_counter("montecarlo.chips").inc(int(n_chips))
        out = np.empty(n_chips, dtype=float)
        done = 0
        while done < n_chips:
            batch = min(batch_size, n_chips - done)
            die = var.sample_dies(self.rng, batch)
            lane = var.sample_lanes(self.rng, (batch, n_lanes))
            gates = var.sample_gates(
                self.rng, (batch, n_lanes, paths_per_lane, chain_length))
            dvth = (gates.dvth + die.dvth[:, None, None, None]
                    + lane.dvth[:, :, None, None])
            delays = self.tech.fo4_delay(vdd, dvth, gates.mult)
            paths = delays.sum(axis=3)          # (batch, lanes, paths)
            lanes = paths.max(axis=2) * (1.0 + lane.mult)
            if spares == 0:
                chip = lanes.max(axis=1)
            else:
                chip = np.partition(lanes, n_lanes - 1 - spares,
                                    axis=1)[:, n_lanes - 1 - spares]
            out[done:done + batch] = chip * (1.0 + die.mult)
            done += batch
        return out

    def lane_delays(self, vdd, *, paths_per_lane: int, chain_length: int,
                    n_samples: int, batch_size: int = 512):
        """Full per-gate MC of single-lane delays (max of P paths), seconds."""
        if batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {batch_size}")
        var = self.tech.variation
        vdd = float(vdd)
        _obs_counter("montecarlo.lanes").inc(int(n_samples))
        out = np.empty(n_samples, dtype=float)
        done = 0
        while done < n_samples:
            batch = min(batch_size, n_samples - done)
            die = var.sample_dies(self.rng, batch)
            lane = var.sample_lanes(self.rng, batch)
            gates = var.sample_gates(
                self.rng, (batch, paths_per_lane, chain_length))
            dvth = gates.dvth + (die.dvth + lane.dvth)[:, None, None]
            delays = self.tech.fo4_delay(vdd, dvth, gates.mult)
            lanes = delays.sum(axis=2).max(axis=1) * (1.0 + lane.mult)
            out[done:done + batch] = lanes * (1.0 + die.mult)
            done += batch
        return out
