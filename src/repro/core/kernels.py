"""Fused zero-allocation Monte-Carlo evaluation kernels.

The brute-force engine in :mod:`repro.core.montecarlo` is exact but
memory-bandwidth bound: one batch of ``sum_over_gates(fo4_delay(vdd,
dvth, mult))`` through the naive :meth:`~repro.devices.technology.
TechnologyNode.fo4_delay` chain materialises ~10 full-size float64
temporaries (threshold combine, overdrives, two softplus expansions,
powers, drive, delay), every one a fresh ``mmap`` that the allocator
must page-in and the GC must tear down again.  :class:`MonteCarloKernel`
replaces that storm with

* **preallocated workspace arenas** — a handful of flat buffers per
  evaluation context (:class:`WorkspaceArena`), grown once and reused
  for every batch, with the whole evaluation expressed as in-place
  ufunc calls (``out=`` everywhere, including the
  ``rng.standard_normal(out=ws)`` draw fills via
  :meth:`~repro.devices.variation.VariationModel.fill_gates`);
* an explicit **dtype policy** (``precision="float64" | "float32"``):
  float32 halves the bandwidth of the bound inner loop for validation
  sweeps.  Both precisions evaluate the *same* normal variates (draws
  are always float64 and cast through a staging buffer), so the float32
  distribution differs from float64 only by rounding — not by sampling
  noise — and quantile-level comparisons stay meaningful at small
  sample counts;
* **per-chip random streams**: every chip (or lane sample) draws from
  its own :class:`numpy.random.SeedSequence` child, which makes results
  invariant to ``batch_size`` — batching becomes a pure memory knob —
  and lets the fused path evaluate in cache-sized internal blocks
  without changing a single bit of the output;
* a **pluggable execution backend** (:mod:`repro.core.backends`):
  because the internal blocks are independent and batch-invariant, the
  block loop is an execution-policy seam.  ``backend="threaded"``
  dispatches blocks across a shared thread pool with one workspace
  arena *per worker thread* writing into disjoint ``out=`` slices —
  bit-identical to serial by construction; optional ``numba``/``cupy``
  backends accelerate the per-path delay-sum chain itself (rtol-gated
  parity) and degrade to ``numpy`` with a warning when not installed.

The float64 fused path is **bit-identical** to the reference path
(``fused=False``), which preserves the naive allocate-per-temporary
evaluation through :meth:`TechnologyNode.fo4_delay` for parity tests
and benchmarking (``benchmarks/bench_montecarlo.py``; per-backend
parity lives in ``benchmarks/bench_backends.py``).  Bit-identity holds
because every fused in-place ufunc replays the exact operation sequence
of the reference chain — only the destinations change.

Observability: kernels emit ``kernels.batches`` / ``kernels.blocks`` /
``kernels.gate_evals`` counters, a ``kernels.workspace_bytes`` gauge
(every arena *including float32 staging buffers*), and a
``kernels.backend.<name>`` marker gauge on the active metrics registry
(no-ops when observability is off).
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.backends import DEFAULT_BACKEND, resolve_backend
from repro.errors import ConfigurationError
from repro.obs.api import counter as _obs_counter
from repro.obs.api import gauge as _obs_gauge

__all__ = ["MonteCarloKernel", "WorkspaceArena", "PRECISIONS",
           "DEFAULT_BLOCK_ELEMS"]

#: Supported dtype-policy names.
PRECISIONS = ("float64", "float32")

#: Default per-workspace budget, in elements, for the fused path's
#: internal blocking.  Each evaluation buffer stays under this size, so
#: a batch over a large architecture is processed a cache-friendly slab
#: of chips at a time; per-chip streams make the split invisible in the
#: output bits.  1M elements (8 MB of float64 per buffer) measures
#: fastest at the fig-4 validation scale — beyond it the working set
#: falls out of cache and throughput drops ~20 %.  The reference path
#: never blocks (it reproduces the pre-kernel whole-batch evaluation).
DEFAULT_BLOCK_ELEMS = 1_000_000


def _softplus_into(x, out):
    """In-place ``ln(1 + exp(x))``, bit-identical to ``mosfet._softplus``.

    Replays the reference operation sequence —
    ``abs → negate → exp → log1p`` then ``+ maximum(x, 0)`` — writing
    into ``out`` and consuming ``x`` (the ``maximum`` lands in ``x``
    instead of a fresh temporary).
    """
    np.abs(x, out=out)
    np.negative(out, out=out)
    np.exp(out, out=out)
    np.log1p(out, out=out)
    np.maximum(x, 0.0, out=x)
    np.add(out, x, out=out)


class WorkspaceArena:
    """Named grow-only buffer pool for one evaluation context.

    A kernel owns one arena per thread that evaluates blocks through it
    (exactly one — the caller's — under the serial backends).  Buffers
    are flat, keyed by name, and only ever grow; :meth:`ws` returns a
    correctly-shaped view.  ``nbytes`` counts *every* buffer, including
    the float64 ``staging`` buffer the float32 dtype policy draws
    through — staging is real resident memory and is accounted like any
    other workspace.
    """

    __slots__ = ("_dtype", "_buffers")

    def __init__(self, dtype) -> None:
        self._dtype = np.dtype(dtype)
        self._buffers: dict = {}

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by this arena's buffers."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def breakdown(self) -> dict:
        """``{buffer name: bytes}`` for accounting tests and gauges."""
        return {name: int(buf.nbytes)
                for name, buf in self._buffers.items()}

    def release(self) -> None:
        """Drop every buffer (they regrow on the next batch)."""
        self._buffers.clear()

    def ws(self, name: str, shape, dtype=None):
        """A reusable buffer view of ``shape`` (grow-only, per name)."""
        dtype = self._dtype if dtype is None else np.dtype(dtype)
        need = 1
        for dim in shape:
            need *= int(dim)
        buf = self._buffers.get(name)
        if buf is None or buf.size < need or buf.dtype != dtype:
            buf = np.empty(need, dtype=dtype)
            self._buffers[name] = buf
        return buf[:need].reshape(shape)


class MonteCarloKernel:
    """Fused evaluation layer for the per-gate Monte-Carlo hot path.

    Parameters
    ----------
    tech:
        Technology card (delay model + variation model).
    precision:
        ``"float64"`` (default; bit-identical to the reference path) or
        ``"float32"`` (~2x bandwidth on the evaluation loop; same
        normal variates, see module docstring).
    fused:
        ``False`` selects the reference path: identical draws, but the
        naive allocate-per-temporary evaluation through
        :meth:`TechnologyNode.fo4_delay` — kept for parity tests and
        as the benchmark baseline.
    block_elems:
        Per-workspace element budget for the fused path's internal
        blocking (see :data:`DEFAULT_BLOCK_ELEMS`); ``None`` selects
        the default.
    backend:
        Execution policy for the independent internal blocks — a name
        from :data:`~repro.core.backends.BACKENDS` or a
        :class:`~repro.core.backends.KernelBackend` instance.  Missing
        optional backends degrade to ``"numpy"`` with a warning.

    Under the serial backends a kernel is **not** thread-safe; share
    one per process (pool workers memoise kernels per card / precision
    / backend), not across concurrent callers.  The ``threaded``
    backend parallelises *inside* a batch call — concurrent worker
    threads each evaluate against their own :class:`WorkspaceArena` —
    but concurrent *batch* calls on one kernel remain unsupported.
    """

    def __init__(self, tech, precision: str = "float64", fused: bool = True,
                 block_elems: int | None = DEFAULT_BLOCK_ELEMS,
                 backend=DEFAULT_BACKEND) -> None:
        if precision not in PRECISIONS:
            raise ConfigurationError(
                f"precision must be one of {PRECISIONS}, got {precision!r}")
        if block_elems is None:
            block_elems = DEFAULT_BLOCK_ELEMS
        if block_elems < 1:
            raise ConfigurationError(
                f"block_elems must be >= 1, got {block_elems}")
        self.tech = tech
        self.precision = str(precision)
        self.fused = bool(fused)
        self.block_elems = int(block_elems)
        self._dtype = np.dtype(precision)
        self._backend = resolve_backend(backend)
        self.backend = self._backend.name
        self._arenas: dict = {}
        self._arena_lock = threading.Lock()

    # -- workspaces ----------------------------------------------------------

    @property
    def dtype(self) -> np.dtype:
        """The evaluation dtype selected by the precision policy."""
        return self._dtype

    def arena(self) -> WorkspaceArena:
        """The calling thread's workspace arena (created on first use).

        Serial backends only ever touch the caller's arena; the
        ``threaded`` backend calls this from each pool worker, giving
        every thread private evaluation buffers with zero locking on
        the hot path.
        """
        key = threading.get_ident()
        arena = self._arenas.get(key)
        if arena is None:
            with self._arena_lock:
                arena = self._arenas.setdefault(
                    key, WorkspaceArena(self._dtype))
        return arena

    @property
    def workspace_nbytes(self) -> int:
        """Total bytes held by every arena (all threads, staging
        included) plus any backend-owned device workspaces."""
        with self._arena_lock:
            arenas = list(self._arenas.values())
        return (sum(arena.nbytes for arena in arenas)
                + int(self._backend.workspace_nbytes))

    def workspace_breakdown(self) -> dict:
        """``{buffer name: total bytes}`` aggregated across arenas.

        The float32 policy's float64 ``staging`` buffer appears as its
        own entry, so the accounting asserted by the tests covers it
        explicitly; ``sum(values)`` equals the host part of
        :attr:`workspace_nbytes`.
        """
        with self._arena_lock:
            arenas = list(self._arenas.values())
        total: dict = {}
        for arena in arenas:
            for name, nbytes in arena.breakdown().items():
                total[name] = total.get(name, 0) + nbytes
        return total

    def release_workspaces(self) -> None:
        """Drop every workspace buffer — all thread arenas and any
        backend device buffers (they regrow on the next batch)."""
        with self._arena_lock:
            arenas = list(self._arenas.values())
            self._arenas.clear()
        for arena in arenas:
            arena.release()
        self._backend.release_workspaces()

    def _alloc(self, arena: WorkspaceArena, name: str, shape, dtype=None):
        """Workspace view (fused) or a fresh allocation (reference)."""
        dtype = self._dtype if dtype is None else np.dtype(dtype)
        if self.fused:
            return arena.ws(name, shape, dtype)
        return np.empty(shape, dtype=dtype)

    # -- drawing -------------------------------------------------------------

    def _cast(self, arr):
        """Correlated draws (always float64) in the evaluation dtype."""
        if self._dtype == np.float64:
            return arr
        return arr.astype(self._dtype)

    def _staging_for(self, arena: WorkspaceArena, shape):
        """float64 staging row for float32 fills (``None`` for float64)."""
        if self._dtype == np.float64:
            return None
        if self.fused:
            return arena.ws("staging", shape, np.float64)
        return np.empty(shape, dtype=np.float64)

    def _draw_correlated(self, rng, lane_shape):
        """One chip's die- and lane-level draws (die first, then lane)."""
        var = self.tech.variation
        die_dvth = rng.normal(0.0, var.sigma_vth_d2d) if var.sigma_vth_d2d else 0.0
        die_mult = rng.normal(0.0, var.sigma_mult_corr) if var.sigma_mult_corr else 0.0
        if lane_shape is None:
            lane_dvth = (rng.normal(0.0, var.sigma_vth_lane)
                         if var.sigma_vth_lane else 0.0)
            lane_mult = (rng.normal(0.0, var.sigma_mult_lane)
                         if var.sigma_mult_lane else 0.0)
        else:
            lane_dvth = (rng.normal(0.0, var.sigma_vth_lane, lane_shape)
                         if var.sigma_vth_lane else np.zeros(lane_shape))
            lane_mult = (rng.normal(0.0, var.sigma_mult_lane, lane_shape)
                         if var.sigma_mult_lane else np.zeros(lane_shape))
        return die_dvth, die_mult, lane_dvth, lane_mult

    # -- fused evaluation core -----------------------------------------------

    def _fused_path_sums(self, arena: WorkspaceArena, vdd: float,
                         dvth, mult, out) -> None:
        """``sum_over_gates(fo4_delay(vdd, dvth, mult))`` along the last axis.

        Consumes ``dvth`` and ``mult`` (both become scratch); writes the
        per-path delay sums into ``out`` (shape ``dvth.shape[:-1]``).
        Bit-identical to
        ``tech.fo4_delay(vdd, dvth, mult).sum(axis=-1)`` in float64: the
        in-place ufunc sequence replays the reference chain operation
        for operation, and the ``np.sum(..., out=...)`` keeps numpy's
        pairwise reduction order.  An accelerator backend may take the
        whole chain instead (:meth:`KernelBackend.path_sums`) — those
        paths are rtol-gated, not bit-exact.
        """
        if self._backend.path_sums(self, float(vdd), dvth, mult, out):
            return
        mos = self.tech.mosfet
        dt = self._dtype.type
        two_n_vt = 2.0 * mos.n_slope * mos.thermal_voltage
        balanced = mos.vth_split == 0.0 and mos.strength_p == 1.0

        a = dvth
        np.add(a, dt(mos.vth0 - mos.dibl * vdd), out=a)     # Vth_eff
        np.subtract(dt(vdd), a, out=a)                      # Vdd - Vth_eff
        sp = arena.ws("sp", a.shape, self._dtype)
        if not balanced:
            xp = arena.ws("xp", a.shape, self._dtype)
            np.subtract(a, dt(mos.vth_split), out=xp)
            np.divide(xp, dt(two_n_vt), out=xp)             # weak overdrive
        np.divide(a, dt(two_n_vt), out=a)                   # strong overdrive
        _softplus_into(a, sp)                               # consumes a
        np.power(sp, dt(mos.alpha), out=sp)                 # d_n
        if not balanced:
            _softplus_into(xp, a)                           # consumes xp
            np.power(a, dt(mos.alpha), out=a)
            np.multiply(a, dt(mos.strength_p), out=a)       # d_p
            np.add(sp, a, out=xp)                           # d_n + d_p
            np.multiply(sp, dt(2.0), out=sp)
            np.multiply(sp, a, out=sp)
            np.divide(sp, xp, out=sp)                       # harmonic drive
        np.divide(dt(self.tech.fo4_scale * vdd), sp, out=sp)
        np.add(mult, dt(1.0), out=mult)
        np.multiply(sp, mult, out=sp)                       # gate delays
        np.sum(sp, axis=-1, out=out)

    def _reference_path_sums(self, vdd: float, dvth, mult):
        """The pre-kernel evaluation: naive chain, fresh temporaries."""
        dtype = None if self._dtype == np.float64 else self._dtype
        return self.tech.fo4_delay(vdd, dvth, mult, dtype=dtype).sum(axis=-1)

    # -- internal blocking ---------------------------------------------------

    def _block_rows(self, total_rows: int, row_elems: int) -> int:
        """Chips per internal evaluation block (fused path only)."""
        if not self.fused:
            return int(total_rows)
        return max(1, min(int(total_rows),
                          self.block_elems // max(1, int(row_elems))))

    def _spans(self, total_rows: int, row_elems: int) -> list:
        """Deterministic ``(start, stop)`` block spans for one batch.

        Depends only on ``(total_rows, row_elems, block_elems, fused)``
        — never on the backend — which is what makes the threaded
        dispatch bit-identical to the serial loop.
        """
        block = self._block_rows(total_rows, row_elems)
        return [(start, min(start + block, int(total_rows)))
                for start in range(0, int(total_rows), block)]

    # -- batch entry points --------------------------------------------------

    def system_batch(self, rngs, vdd: float, n_lanes: int,
                     paths_per_lane: int, chain_length: int, spares: int,
                     out, proposal=None, logw_out=None,
                     d2d_out=None) -> None:
        """Chip delays for ``len(rngs)`` chips, one generator per chip.

        Writes seconds into ``out`` (shape ``(len(rngs),)``).  Per-chip
        draw order: die pair, lane vectors, gate threshold fill, gate
        multiplier fill — so the output depends only on each chip's
        :class:`~numpy.random.SeedSequence` child, never on batch or
        block boundaries (or on which backend thread evaluates the
        block).

        ``proposal`` (a :class:`~repro.core.tailsampling.ShiftProposal`)
        switches the batch to importance sampling: the d2d / lane
        threshold draws are mean-shifted *after* they leave each chip's
        stream (a mixture proposal additionally consumes one uniform per
        chip, drawn first, for component selection), and the per-chip
        log-likelihood-ratio weights land in ``logw_out`` (float64,
        same shape as ``out``).  A single-component proposal changes no
        stream consumption at all, so ``shift=0`` reproduces the plain
        batch bit-for-bit with all-zero weights.  ``d2d_out``
        optionally receives the (shifted) die-level threshold draws in
        volts — the adaptive shift search reads them.
        """
        vdd = float(vdd)
        total = len(rngs)
        row_elems = n_lanes * paths_per_lane * chain_length
        spans = self._spans(total, row_elems)
        if proposal is not None and logw_out is None:
            raise ConfigurationError(
                "system_batch with a proposal needs logw_out")

        def block(arena, start, stop):
            self._system_block(
                arena, rngs[start:stop], vdd, n_lanes, paths_per_lane,
                chain_length, spares, out[start:stop], proposal=proposal,
                logw=None if logw_out is None else logw_out[start:stop],
                d2d=None if d2d_out is None else d2d_out[start:stop])

        self._backend.run_blocks(self, block, spans)
        self._record(total, total * row_elems, len(spans))

    def _system_block(self, arena, rngs, vdd, n_lanes, paths_per_lane,
                      chain_length, spares, out, proposal=None, logw=None,
                      d2d=None) -> None:
        """One internal block of :meth:`system_batch` (thread-confined)."""
        var = self.tech.variation
        nb = len(rngs)
        shape = (nb, n_lanes, paths_per_lane, chain_length)
        a = self._alloc(arena, "dvth", shape)
        m = self._alloc(arena, "mult", shape)
        staging = self._staging_for(arena, shape[1:])
        die_dvth = np.empty(nb)
        die_mult = np.empty(nb)
        lane_dvth = np.empty((nb, n_lanes))
        lane_mult = np.empty((nb, n_lanes))
        for i, rng in enumerate(rngs):
            component = (proposal.pick_component(rng)
                         if proposal is not None else 0)
            (die_dvth[i], die_mult[i],
             lane_dvth[i], lane_mult[i]) = self._draw_correlated(
                rng, (n_lanes,))
            if proposal is not None:
                die_dvth[i], logw[i] = proposal.shift_chip(
                    component, die_dvth[i], lane_dvth[i],
                    var.sigma_vth_d2d, var.sigma_vth_lane)
            var.fill_gates(rng, a[i], m[i], staging=staging)
        if d2d is not None:
            d2d[:] = die_dvth
        if self.fused:
            np.add(a, self._cast(die_dvth)[:, None, None, None], out=a)
            np.add(a, self._cast(lane_dvth)[:, :, None, None], out=a)
            sums = arena.ws("paths", shape[:3], self._dtype)
            self._fused_path_sums(arena, vdd, a, m, sums)
            lanes = arena.ws("lanes", shape[:2], self._dtype)
            np.max(sums, axis=-1, out=lanes)
            np.multiply(lanes, 1.0 + self._cast(lane_mult), out=lanes)
        else:
            a = (a + self._cast(die_dvth)[:, None, None, None]
                 + self._cast(lane_dvth)[:, :, None, None])
            sums = self._reference_path_sums(vdd, a, m)
            lanes = sums.max(axis=2) * (1.0 + self._cast(lane_mult))
        if spares == 0:
            chip = lanes.max(axis=1)
        else:
            kth = n_lanes - 1 - spares
            chip = np.partition(lanes, kth, axis=1)[:, kth]
        out[:] = chip * (1.0 + die_mult)

    def lane_batch(self, rngs, vdd: float, paths_per_lane: int,
                   chain_length: int, out) -> None:
        """Single-lane delays for ``len(rngs)`` samples (seconds).

        Same per-sample stream contract as :meth:`system_batch`, with a
        scalar lane-level draw per sample (a standalone lane sits in one
        spatial-correlation region).
        """
        vdd = float(vdd)
        total = len(rngs)
        row_elems = paths_per_lane * chain_length
        spans = self._spans(total, row_elems)

        def block(arena, start, stop):
            self._lane_block(arena, rngs[start:stop], vdd, paths_per_lane,
                             chain_length, out[start:stop])

        self._backend.run_blocks(self, block, spans)
        self._record(total, total * row_elems, len(spans))

    def _lane_block(self, arena, rngs, vdd, paths_per_lane, chain_length,
                    out) -> None:
        """One internal block of :meth:`lane_batch` (thread-confined)."""
        var = self.tech.variation
        nb = len(rngs)
        shape = (nb, paths_per_lane, chain_length)
        a = self._alloc(arena, "dvth", shape)
        m = self._alloc(arena, "mult", shape)
        staging = self._staging_for(arena, shape[1:])
        die_dvth = np.empty(nb)
        die_mult = np.empty(nb)
        lane_dvth = np.empty(nb)
        lane_mult = np.empty(nb)
        for i, rng in enumerate(rngs):
            (die_dvth[i], die_mult[i],
             lane_dvth[i], lane_mult[i]) = self._draw_correlated(rng, None)
            var.fill_gates(rng, a[i], m[i], staging=staging)
        corr = die_dvth + lane_dvth
        if self.fused:
            np.add(a, self._cast(corr)[:, None, None], out=a)
            sums = arena.ws("paths", shape[:2], self._dtype)
            self._fused_path_sums(arena, vdd, a, m, sums)
        else:
            a = a + self._cast(corr)[:, None, None]
            sums = self._reference_path_sums(vdd, a, m)
        lane = sums.max(axis=1) * (1.0 + self._cast(lane_mult))
        out[:] = lane * (1.0 + die_mult)

    def chain_batch(self, rng, vdd: float, n_samples: int, chain_length: int,
                    include_die: bool = True):
        """Delays of ``n_samples`` co-located FO4 chains (seconds).

        Keeps the legacy single-stream draw order (all gate thresholds,
        all gate multipliers, then die and lane draws from the *same*
        generator), so chain results for a given seed are unchanged by
        the kernel rewrite.  Draws are single-stream and therefore
        serial; the fused *evaluation* still blocks over rows (the
        per-row delay sums are independent), so the threaded backend
        parallelises this path too without moving a bit.
        """
        var = self.tech.variation
        vdd = float(vdd)
        shape = (n_samples, chain_length)
        arena = self.arena()
        a = self._alloc(arena, "dvth", shape)
        m = self._alloc(arena, "mult", shape)
        var.fill_gates(rng, a, m, staging=self._staging_for(arena, shape))
        if include_die:
            die = var.sample_dies(rng, n_samples)
            lane = var.sample_lanes(rng, n_samples)
            corr = die.dvth + lane.dvth
            corr_mult = (1.0 + die.mult) * (1.0 + lane.mult)
        if self.fused:
            if include_die:
                np.add(a, self._cast(corr)[:, None], out=a)
            out = np.empty(n_samples, dtype=self._dtype)
            spans = self._spans(n_samples, chain_length)

            def block(blk_arena, start, stop):
                self._fused_path_sums(blk_arena, vdd, a[start:stop],
                                      m[start:stop], out[start:stop])

            self._backend.run_blocks(self, block, spans)
            if include_die:
                np.multiply(out, self._cast(corr_mult), out=out)
        else:
            spans = [(0, n_samples)]
            if include_die:
                a = a + self._cast(corr)[:, None]
            out = self._reference_path_sums(vdd, a, m)
            if include_die:
                out = out * self._cast(corr_mult)
        self._record(n_samples, n_samples * chain_length, len(spans))
        return out

    # -- observability -------------------------------------------------------

    def _record(self, rows: int, gate_evals: int, blocks: int) -> None:
        """One batch's counters, recorded on the *calling* thread.

        Aggregated per batch (not per block) so worker threads never
        race on the registry; the workspace gauge reflects every arena.
        """
        _obs_counter("kernels.batches").inc()
        _obs_counter("kernels.blocks").inc(int(blocks))
        _obs_counter("kernels.gate_evals").inc(int(gate_evals))
        _obs_gauge("kernels.workspace_bytes").set(self.workspace_nbytes)
        _obs_gauge(f"kernels.backend.{self.backend}").set(1.0)
