"""Pluggable execution backends for the fused Monte-Carlo kernels.

:class:`~repro.core.kernels.MonteCarloKernel` evaluates batches in
independent internal blocks (``block_elems``-sized chip slabs) whose
boundaries — and, thanks to per-chip :class:`numpy.random.SeedSequence`
streams, whose *outputs* — never depend on how the blocks are executed.
That makes the block loop a clean seam for an execution policy, which
this module supplies:

``numpy`` (default)
    The serial in-process loop: every block runs on the calling thread
    against the kernel's main workspace arena.  Bit-exact reference.
``threaded``
    :class:`ThreadedBlocksBackend` — dispatches blocks across a shared
    :class:`~concurrent.futures.ThreadPoolExecutor`.  Each worker thread
    evaluates into its *own* grow-only workspace arena and writes its
    result into a disjoint ``out=`` slice, so no synchronisation is
    needed beyond the pool itself.  Numpy ufuncs and ``Generator`` fills
    release the GIL on large arrays, so blocks genuinely overlap.
    **Bit-identical to the serial path by construction**: block spans
    are computed identically and each chip consumes only its own stream.
    Composes multiplicatively with
    :class:`~repro.runtime.parallel.ParallelSampler` process sharding —
    threads inside one shard sidestep pickling entirely.
``numba``
    Optional-import :class:`NumbaBackend` — a ``prange``-parallel fused
    scalar loop over (row, gate) compiled with ``numba.njit``.  The
    scalar accumulation order differs from numpy's pairwise ``np.sum``,
    so parity is rtol-gated, not bit-exact.
``cupy``
    Optional-import :class:`CupyBackend` — stages each block's draw
    buffers H2D into grow-only *device* workspaces, replays the fused
    ufunc chain on the GPU and copies the per-path sums back D2H.
    rtol-gated (device reduction order differs).

Optional backends degrade to ``numpy`` with a :class:`RuntimeWarning`
when their import is missing (:func:`resolve_backend`), so a config or
CLI that names them never hard-fails on a box without the accelerator.

Instances from :func:`get_backend` are process-wide singletons per
``(name, threads)``, so every kernel selecting ``backend="threaded"``
shares one executor.  Backends hold no per-batch state — the per-thread
arenas live on the *kernel* (see
:meth:`~repro.core.kernels.MonteCarloKernel.arena`) so workspace
accounting and :meth:`release_workspaces` stay kernel-scoped.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.errors import BackendUnavailableError, ConfigurationError
from repro.obs.api import current_obs

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "KernelBackend",
    "NumpyBackend",
    "ThreadedBlocksBackend",
    "NumbaBackend",
    "CupyBackend",
    "get_backend",
    "resolve_backend",
    "available_backends",
    "backend_manifest",
]

#: Registered backend names, in selection-table order.
BACKENDS = ("numpy", "threaded", "numba", "cupy")

#: The serial reference backend every other one is parity-gated against.
DEFAULT_BACKEND = "numpy"


class KernelBackend:
    """Execution policy for a kernel's independent evaluation blocks.

    Subclasses override :meth:`run_blocks` (how the block loop executes)
    and/or :meth:`path_sums` (an accelerated replacement for the fused
    per-path delay-sum chain).  ``bit_parity`` declares whether float64
    results are bit-identical to the ``numpy`` backend — the benchmark
    and tests gate on it.
    """

    name = "base"
    #: float64 results match the serial numpy path bit for bit.
    bit_parity = True

    def run_blocks(self, kernel, fn, spans) -> None:
        """Execute ``fn(arena, start, stop)`` for every span, serially."""
        arena = kernel.arena()
        for start, stop in spans:
            fn(arena, start, stop)

    def path_sums(self, kernel, vdd: float, dvth, mult, out) -> bool:
        """Accelerated ``sum_over_gates(fo4_delay(...))``; ``False`` = not handled.

        A backend returning ``True`` must have written the per-path delay
        sums into ``out`` (shape ``dvth.shape[:-1]``) and may treat
        ``dvth``/``mult`` as consumed scratch, exactly like the numpy
        fused chain.
        """
        return False

    @property
    def workspace_nbytes(self) -> int:
        """Bytes of backend-owned workspaces (device buffers etc.)."""
        return 0

    def release_workspaces(self) -> None:
        """Drop backend-owned workspaces (no-op for host backends)."""

    def describe(self) -> dict:
        """JSON-safe identity for manifests and benchmarks."""
        return {"name": self.name, "bit_parity": bool(self.bit_parity)}


class NumpyBackend(KernelBackend):
    """The serial in-process block loop (the PR-5 behaviour, bit-exact)."""

    name = "numpy"


class ThreadedBlocksBackend(KernelBackend):
    """Fan independent kernel blocks out over a shared thread pool.

    Parameters
    ----------
    threads:
        Pool width; defaults to ``os.cpu_count()``.  ``threads=1``
        short-circuits to the serial loop (useful for A/B timing).

    Every task asks the kernel for the *calling thread's* workspace
    arena, so concurrent blocks never share evaluation buffers; output
    slices are disjoint by span construction.  Emits
    ``kernels.backend_blocks`` / ``kernels.backend_threads`` /
    ``kernels.thread_utilization`` on the active metrics registry.
    """

    name = "threaded"

    def __init__(self, threads: int | None = None) -> None:
        if threads is None:
            threads = os.cpu_count() or 1
        if int(threads) < 1:
            raise ConfigurationError(
                f"threads must be >= 1, got {threads}")
        self.threads = int(threads)
        self._executor: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    def _pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.threads,
                    thread_name_prefix="repro-kernel")
            return self._executor

    def close(self) -> None:
        """Shut the pool down (tests; normally lives for the process)."""
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None

    def run_blocks(self, kernel, fn, spans) -> None:
        if self.threads == 1 or len(spans) <= 1:
            KernelBackend.run_blocks(self, kernel, fn, spans)
            return
        metrics = current_obs().metrics
        timed = metrics.enabled
        busy = [0.0] * len(spans) if timed else None
        t0 = time.perf_counter() if timed else 0.0

        def task(item):
            idx, (start, stop) = item
            if timed:
                b0 = time.perf_counter()
                fn(kernel.arena(), start, stop)
                busy[idx] = time.perf_counter() - b0
            else:
                fn(kernel.arena(), start, stop)

        # list() drains the iterator so worker exceptions propagate here
        # (and land on the sampler's retry ladder, like any shard error).
        list(self._pool().map(task, enumerate(spans)))
        if timed:
            elapsed = time.perf_counter() - t0
            metrics.counter("kernels.backend_blocks").inc(len(spans))
            metrics.gauge("kernels.backend_threads").set(float(self.threads))
            if elapsed > 0.0:
                metrics.gauge("kernels.thread_utilization").set(
                    min(1.0, sum(busy) / (self.threads * elapsed)))

    def describe(self) -> dict:
        out = KernelBackend.describe(self)
        out["threads"] = self.threads
        return out


class NumbaBackend(KernelBackend):
    """``numba.njit(parallel=True)`` fused scalar loop over (path, gate).

    The compiled loop accumulates each path's delay as a scalar running
    sum, which differs from numpy's pairwise ``np.sum`` in association —
    parity against the numpy backend is therefore rtol-gated (~1e-12 in
    float64), never bit-exact.  Blocks themselves run serially; the
    parallelism is the ``prange`` over paths inside each block.
    """

    name = "numba"
    bit_parity = False

    def __init__(self) -> None:
        try:
            import numba
        except ImportError as exc:
            raise BackendUnavailableError(
                f"numba is not installed: {exc}") from exc
        self._numba = numba
        self._compiled = None

    def _fn(self):
        if self._compiled is None:
            numba = self._numba

            @numba.njit(parallel=True, cache=False)
            def _sums(dvth, mult, vdd, vth_eff, two_n_vt, alpha, vth_split,
                      strength_p, scale, balanced, out):
                for r in numba.prange(dvth.shape[0]):
                    acc = 0.0
                    for g in range(dvth.shape[1]):
                        a = vdd - (dvth[r, g] + vth_eff)
                        xs = a / two_n_vt
                        sps = np.log1p(np.exp(-abs(xs))) + max(xs, 0.0)
                        d_n = sps ** alpha
                        if balanced:
                            drive = d_n
                        else:
                            xw = (a - vth_split) / two_n_vt
                            spw = np.log1p(np.exp(-abs(xw))) + max(xw, 0.0)
                            d_p = strength_p * spw ** alpha
                            drive = 2.0 * d_n * d_p / (d_n + d_p)
                        acc += (scale / drive) * (1.0 + mult[r, g])
                    out[r] = acc

            self._compiled = _sums
        return self._compiled

    def path_sums(self, kernel, vdd: float, dvth, mult, out) -> bool:
        mos = kernel.tech.mosfet
        gates = int(dvth.shape[-1])
        rows = int(dvth.size // gates) if gates else 0
        d2 = np.ascontiguousarray(
            dvth.reshape(rows, gates), dtype=np.float64)
        m2 = np.ascontiguousarray(
            mult.reshape(rows, gates), dtype=np.float64)
        sums = np.empty(rows, dtype=np.float64)
        self._fn()(
            d2, m2, float(vdd), float(mos.vth0 - mos.dibl * vdd),
            float(2.0 * mos.n_slope * mos.thermal_voltage),
            float(mos.alpha), float(mos.vth_split), float(mos.strength_p),
            float(kernel.tech.fo4_scale * vdd),
            mos.vth_split == 0.0 and mos.strength_p == 1.0, sums)
        out[...] = sums.reshape(out.shape).astype(out.dtype, copy=False)
        return True


class CupyBackend(KernelBackend):
    """GPU evaluation: staged H2D draws, device ufunc chain, D2H sums.

    Draws stay on the host (per-chip ``SeedSequence`` streams are the
    reproducibility contract); each block's ``dvth``/``mult`` slabs are
    staged into grow-only device workspaces, the fused chain replays on
    the device, and only the per-path sums (``1/chain_length`` of the
    data) come back.  Device reduction order differs from numpy's
    pairwise sum, so parity is rtol-gated.
    """

    name = "cupy"
    bit_parity = False

    def __init__(self) -> None:
        try:
            import cupy
            if cupy.cuda.runtime.getDeviceCount() < 1:
                raise BackendUnavailableError("no CUDA device visible")
        except BackendUnavailableError:
            raise
        except Exception as exc:   # ImportError or CUDA runtime failure
            raise BackendUnavailableError(
                f"cupy/CUDA unavailable: {exc}") from exc
        self._cp = cupy
        self._dev: dict = {}

    # -- device workspaces (grow-only, mirroring WorkspaceArena) ------------

    def _dws(self, name: str, shape, dtype):
        cp = self._cp
        dtype = np.dtype(dtype)
        need = 1
        for dim in shape:
            need *= int(dim)
        buf = self._dev.get(name)
        if buf is None or buf.size < need or buf.dtype != dtype:
            buf = cp.empty(need, dtype=dtype)
            self._dev[name] = buf
        return buf[:need].reshape(shape)

    @property
    def workspace_nbytes(self) -> int:
        return sum(int(buf.nbytes) for buf in self._dev.values())

    def release_workspaces(self) -> None:
        self._dev.clear()

    def path_sums(self, kernel, vdd: float, dvth, mult, out) -> bool:
        cp = self._cp
        mos = kernel.tech.mosfet
        dt = dvth.dtype.type
        two_n_vt = 2.0 * mos.n_slope * mos.thermal_voltage
        balanced = mos.vth_split == 0.0 and mos.strength_p == 1.0
        a = self._dws("dvth", dvth.shape, dvth.dtype)
        m = self._dws("mult", mult.shape, mult.dtype)
        a.set(np.ascontiguousarray(dvth))          # staged H2D
        m.set(np.ascontiguousarray(mult))
        cp.add(a, dt(mos.vth0 - mos.dibl * vdd), out=a)
        cp.subtract(dt(vdd), a, out=a)
        sp = self._dws("sp", a.shape, a.dtype)
        if not balanced:
            xp = self._dws("xp", a.shape, a.dtype)
            cp.subtract(a, dt(mos.vth_split), out=xp)
            cp.divide(xp, dt(two_n_vt), out=xp)
        cp.divide(a, dt(two_n_vt), out=a)
        self._softplus_into(a, sp)
        cp.power(sp, dt(mos.alpha), out=sp)
        if not balanced:
            self._softplus_into(xp, a)
            cp.power(a, dt(mos.alpha), out=a)
            cp.multiply(a, dt(mos.strength_p), out=a)
            cp.add(sp, a, out=xp)
            cp.multiply(sp, dt(2.0), out=sp)
            cp.multiply(sp, a, out=sp)
            cp.divide(sp, xp, out=sp)
        cp.divide(dt(kernel.tech.fo4_scale * vdd), sp, out=sp)
        cp.add(m, dt(1.0), out=m)
        cp.multiply(sp, m, out=sp)
        out[...] = cp.asnumpy(sp.sum(axis=-1))     # D2H: sums only
        return True

    def _softplus_into(self, x, out) -> None:
        cp = self._cp
        cp.abs(x, out=out)
        cp.negative(out, out=out)
        cp.exp(out, out=out)
        cp.log1p(out, out=out)
        cp.maximum(x, 0.0, out=x)
        cp.add(out, x, out=out)


_REGISTRY = {
    "numpy": NumpyBackend,
    "threaded": ThreadedBlocksBackend,
    "numba": NumbaBackend,
    "cupy": CupyBackend,
}

_INSTANCES: dict = {}
_INSTANCES_LOCK = threading.Lock()


def get_backend(name: str, *, threads: int | None = None) -> KernelBackend:
    """The process-wide backend instance for ``(name, threads)``.

    Raises :class:`~repro.errors.ConfigurationError` for unknown names
    and :class:`~repro.errors.BackendUnavailableError` when the
    backend's optional dependency is missing (use
    :func:`resolve_backend` for the warn-and-degrade behaviour).
    ``threads`` only applies to ``"threaded"``.
    """
    name = str(name)
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"backend must be one of {BACKENDS}, got {name!r}")
    key = (name, threads if name == "threaded" else None)
    with _INSTANCES_LOCK:
        inst = _INSTANCES.get(key)
        if inst is None:
            cls = _REGISTRY[name]
            inst = cls(threads=threads) if name == "threaded" else cls()
            _INSTANCES[key] = inst
        return inst


def resolve_backend(spec, *, threads: int | None = None) -> KernelBackend:
    """``spec`` (name or instance) -> a usable backend, degrading safely.

    A :class:`KernelBackend` instance passes through untouched.  A name
    whose optional dependency is missing falls back to ``numpy`` with a
    :class:`RuntimeWarning` — configs naming ``numba``/``cupy`` keep
    solving on boxes without the accelerator.  Unknown names raise
    :class:`~repro.errors.ConfigurationError`.
    """
    if isinstance(spec, KernelBackend):
        return spec
    name = str(spec)
    try:
        return get_backend(name, threads=threads)
    except BackendUnavailableError as exc:
        warnings.warn(
            f"kernel backend {name!r} is unavailable ({exc}); "
            f"falling back to {DEFAULT_BACKEND!r}",
            RuntimeWarning, stacklevel=3)
        return get_backend(DEFAULT_BACKEND)


def available_backends() -> tuple:
    """Backend names whose dependencies import on this box, in order."""
    out = []
    for name in BACKENDS:
        try:
            get_backend(name)
        except BackendUnavailableError:
            continue
        out.append(name)
    return tuple(out)


def backend_manifest(requested, *, threads: int | None = None) -> dict:
    """The ``backends.*`` run-manifest section for one requested backend.

    Resolution warnings are suppressed here — the runtime that actually
    built a kernel already warned once.
    """
    if isinstance(requested, KernelBackend):
        requested = requested.name
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        active = resolve_backend(str(requested), threads=threads)
    section = active.describe()
    return {
        "requested": str(requested),
        "active": section.pop("name"),
        "fallback": active.name != str(requested),
        "available": list(available_backends()),
        **section,
    }
