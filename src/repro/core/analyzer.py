"""High-level variation analysis API.

:class:`VariationAnalyzer` is the single object most users need: it binds a
technology card to the paper's architecture parameters (128 lanes x 100
critical paths x 50-FO4 chains, 99 % sign-off) and answers the paper's
questions directly:

>>> from repro import VariationAnalyzer
>>> a = VariationAnalyzer("90nm")
>>> round(100 * a.chain_variation(0.5), 1)        # Fig. 1(b) @ 0.5 V
9.1
>>> round(100 * a.performance_drop(0.5), 1)       # Fig. 4 @ 0.5 V
6.5

The mitigation packages (:mod:`repro.sparing`, :mod:`repro.mitigation`)
consume an analyzer rather than raw technology cards, so every technique is
evaluated against the same baseline definitions.
"""

from __future__ import annotations

import numpy as np

from repro.core.chip_delay import ChipDelayEngine
from repro.core.montecarlo import MonteCarloEngine
from repro.core.results import DelayDistribution
from repro.core.tailsampling import (DEFAULT_DEFENSIVE_WEIGHT, ShiftProposal,
                                     TailEstimate, TailSampler)
from repro.devices.technology import TechnologyNode, get_technology
from repro.errors import ConfigurationError, ShardExecutionError
from repro.obs.api import counter as _obs_counter
from repro.obs.api import gauge as _obs_gauge
from repro.resilience.ledger import current_ledger
from repro.runtime.cache import QuantileCache, technology_fingerprint
from repro.runtime.context import current_runtime, profiled_stage

__all__ = ["VariationAnalyzer"]

#: Minimum uncached query points before a batch solve fans out across an
#: active parallel runtime's worker pool (below this the pool round trip
#: costs more than the solve).
_MIN_PARALLEL_SOLVE = 8


class VariationAnalyzer:
    """Paper-level analysis of one technology node.

    Parameters
    ----------
    tech:
        A :class:`~repro.devices.technology.TechnologyNode` or a node name
        (``"90nm"``, ...).
    width, paths_per_lane, chain_length:
        Architecture model parameters; defaults follow the paper
        (Section 3.2).
    signoff_quantile:
        The chip-delay quantile performance is judged at (paper: 0.99).
    quantile_cache:
        Persistent memo for deterministic quantiles; defaults to the
        standard on-disk :class:`~repro.runtime.cache.QuantileCache`
        (``~/.cache/repro``, overridable via ``REPRO_CACHE_DIR`` and
        disabled by ``REPRO_CACHE_DISABLE``).
    """

    def __init__(self, tech, *, width: int = 128, paths_per_lane: int = 100,
                 chain_length: int = 50, signoff_quantile: float = 0.99,
                 quantile_cache: QuantileCache | None = None) -> None:
        if isinstance(tech, str):
            tech = get_technology(tech)
        if not isinstance(tech, TechnologyNode):
            raise ConfigurationError(
                f"tech must be a TechnologyNode or name, got {type(tech)!r}")
        if not 0.0 < signoff_quantile < 1.0:
            raise ConfigurationError("signoff_quantile must be in (0, 1)")
        self.tech = tech
        self.signoff_quantile = float(signoff_quantile)
        self.engine = ChipDelayEngine(
            tech, width=width, paths_per_lane=paths_per_lane,
            chain_length=chain_length)
        self.quantile_cache = (QuantileCache() if quantile_cache is None
                               else quantile_cache)
        self._signoff_cache: dict = {}
        self._tail_cache: dict = {}

    # -- basic properties ----------------------------------------------------

    @property
    def width(self) -> int:
        return self.engine.width

    @property
    def paths_per_lane(self) -> int:
        return self.engine.paths_per_lane

    @property
    def chain_length(self) -> int:
        return self.engine.chain_length

    @property
    def nominal_vdd(self) -> float:
        return self.tech.nominal_vdd

    def fo4_unit(self, vdd) -> float:
        """Variation-free FO4 delay at ``vdd`` (seconds)."""
        return self.tech.fo4_unit(vdd)

    def monte_carlo(self, seed: int | None = 0,
                    precision: str | None = None,
                    backend: str | None = None,
                    block_elems: int | None = None) -> MonteCarloEngine:
        """A per-gate Monte-Carlo engine sharing this analyzer's card.

        ``precision``, ``backend`` and ``block_elems`` default to the
        active runtime's policies (``--mc-precision`` / ``--backend`` /
        ``--block-elems``), or float64 on the serial numpy backend
        without one.
        """
        runtime = current_runtime()
        if precision is None:
            precision = (runtime.precision if runtime is not None
                         else "float64")
        if backend is None:
            backend = runtime.backend if runtime is not None else "numpy"
        if block_elems is None and runtime is not None:
            block_elems = runtime.block_elems
        return MonteCarloEngine(self.tech, seed=seed, precision=precision,
                                backend=backend, block_elems=block_elems)

    # -- circuit level ---------------------------------------------------------

    def chain_variation(self, vdd, n_gates: int | None = None) -> float:
        """Analytic 3sigma/mu (fraction) of an FO4 chain delay (Fig. 1b/2/11)."""
        return float(self.engine.chain_statistics(vdd, n_gates).three_sigma_over_mu)

    def chain_mean_delay(self, vdd, n_gates: int | None = None) -> float:
        """Mean chain delay in seconds (Section 3.2 absolute anchors)."""
        return float(self.engine.chain_statistics(vdd, n_gates).mean)

    # -- architecture level -----------------------------------------------------

    @staticmethod
    def _validate_point(q: float, spares) -> None:
        """Reject malformed query points before any cache is consulted.

        The engine would catch these eventually, but only after the memo
        and disk layers had been probed — and a bad point must never risk
        landing in (or colliding with) a cache key.
        """
        if not 0.0 < float(q) < 1.0:
            raise ConfigurationError(
                f"quantile must be in (0, 1), got {q}")
        s = float(spares)
        if not np.isfinite(s) or s < 0.0:
            raise ConfigurationError(
                f"spares must be finite and >= 0, got {spares}")

    def _point_key(self, vdd, spares, q):
        """In-process memo key ``(vdd, spares, q)`` for one query point.

        Spares are keyed on the *rounded float* (not ``int``): the engine
        supports fractional sparing, and truncation would silently collide
        ``spares=1.5`` with ``spares=1`` in both cache layers.
        """
        q_eff = self.signoff_quantile if q is None else float(q)
        return (round(float(vdd), 9), round(float(spares), 9),
                round(q_eff, 12))

    def _disk_key(self, key) -> str:
        """The persistent-cache key for an in-process ``_point_key``."""
        engine = self.engine
        return QuantileCache.make_key(
            self.tech, width=engine.width,
            paths_per_lane=engine.paths_per_lane,
            chain_length=engine.chain_length,
            quad_within=engine.quad_within,
            quad_corr_vth=engine.quad_corr_vth,
            quad_corr_mult=engine.quad_corr_mult,
            vdd=key[0], q=key[2], spares=key[1])

    def chip_quantile(self, vdd, spares: float = 0, q: float | None = None) -> float:
        """Deterministic chip-delay quantile in seconds.

        ``q`` defaults to the analyzer's sign-off quantile (99 %).  Results
        are memoised twice: in-process (a dict keyed by the rounded query
        point, so ``q=None`` and an explicit ``q=signoff_quantile`` share
        an entry) and on disk via :attr:`quantile_cache`, so repeated runs
        never re-pay a deterministic solve.
        """
        q_eff = self.signoff_quantile if q is None else float(q)
        self._validate_point(q_eff, spares)
        key = self._point_key(vdd, spares, q)
        cached = self._signoff_cache.get(key)
        if cached is not None:
            return cached
        disk_key = self._disk_key(key)
        value = self.quantile_cache.get(disk_key)
        if value is None:
            with profiled_stage("analyzer.quantile_solve"):
                value = self.engine.chip_quantile(vdd, q_eff, spares=spares)
            self.quantile_cache.put(disk_key, value)
        else:
            with profiled_stage("analyzer.quantile_cache_hit"):
                pass
        self._signoff_cache[key] = value
        return value

    def _solve_batch(self, solve_keys, *, invariant: bool = False) -> np.ndarray:
        """Solve uncached ``(vdd, spares, q)`` points in one batch.

        When a parallel runtime is active and the batch is big enough,
        the solve goes through
        :meth:`~repro.runtime.parallel.ParallelSampler.solve_quantiles`
        *regardless of the worker count*: the fixed-size chunk partition
        is part of the solver's reproducibility key, so routing through
        the sampler even at ``jobs=1`` keeps a serial baseline
        bit-identical to a pooled (or chaos-recovered) run.  Without a
        runtime the solve runs as one in-process batch.  Both paths
        polish every root to the solver's ~1e-12 relative tolerance, and
        a pool whose recovery ladder is exhausted falls back to the
        in-process batch (the solve is deterministic either way).
        """
        vdds = np.array([k[0] for k in solve_keys])
        qs = np.array([k[2] for k in solve_keys])
        sps = np.array([k[1] for k in solve_keys])
        runtime = current_runtime()
        sampler = runtime.sampler if runtime is not None else None
        engine = self.engine
        if (sampler is not None
                and len(solve_keys) >= _MIN_PARALLEL_SOLVE):
            try:
                return sampler.solve_quantiles(
                    self.tech, vdds, qs, sps, width=engine.width,
                    paths_per_lane=engine.paths_per_lane,
                    chain_length=engine.chain_length,
                    quads=(engine.quad_within, engine.quad_corr_vth,
                           engine.quad_corr_mult),
                    cluster=not invariant)
            except ShardExecutionError as exc:
                # The pool's recovery ladder is exhausted; the solve is
                # deterministic either way, so finish it in-process.
                _obs_counter("resilience.analyzer.pool_solve_failures").inc()
                current_ledger().record("analyzer_pool_solve_failed",
                                        shards=list(exc.shards),
                                        points=len(solve_keys))
        return np.atleast_1d(engine.chip_quantile_batch(
            vdds, qs, sps, cluster=not invariant))

    def chip_quantiles(self, vdd, spares: float = 0, q=None, *,
                       invariant: bool = False) -> np.ndarray:
        """Batched deterministic chip-delay quantiles (seconds).

        ``vdd``, ``spares`` and ``q`` broadcast together; the result has
        the broadcast shape (scalar inputs return a plain float).  The
        whole batch shares one pass through both cache layers — one
        in-process memo sweep, one :meth:`QuantileCache.get_many` disk
        lookup — and every remaining miss is solved in a single
        :meth:`ChipDelayEngine.chip_quantile_batch` call, so partial hits
        only pay for the points that are genuinely new.  Values agree
        bit-for-bit with what :meth:`chip_quantile` caches.

        ``invariant=True`` solves misses with the engine's
        batch-composition-invariant mode (``cluster=False``): each root is
        then a pure function of its own query point, so any grouping of
        the same queries — across calls, clients, or chunk boundaries —
        returns bit-identical values.  The serving dispatcher coalesces
        unrelated clients' queries under this mode.
        """
        q_eff = self.signoff_quantile if q is None else q
        vdd_b, sp_b, q_b = np.broadcast_arrays(
            np.asarray(vdd, dtype=float), np.asarray(spares, dtype=float),
            np.asarray(q_eff, dtype=float))
        shape = vdd_b.shape
        if not np.all((q_b > 0.0) & (q_b < 1.0)):
            raise ConfigurationError("quantile must be in (0, 1)")
        if not np.all(np.isfinite(sp_b) & (sp_b >= 0.0)):
            raise ConfigurationError("spares must be finite and >= 0")
        keys = [self._point_key(v, s, qq) for v, s, qq in
                zip(vdd_b.ravel(), sp_b.ravel(), q_b.ravel())]
        out = np.empty(len(keys))
        missing: dict = {}          # unique missed key -> output positions
        for i, key in enumerate(keys):
            cached = self._signoff_cache.get(key)
            if cached is not None:
                out[i] = cached
            else:
                missing.setdefault(key, []).append(i)
        _obs_counter("analyzer.memo_hits").inc(len(keys) - len(missing))
        if missing:
            ukeys = list(missing)
            disk_vals = self.quantile_cache.get_many(
                self._disk_key(k) for k in ukeys)
            solve_keys = [k for k, v in zip(ukeys, disk_vals) if v is None]
            solved: dict = {}
            if solve_keys:
                with profiled_stage("analyzer.quantile_solve_batch",
                                    len(solve_keys)):
                    values = np.atleast_1d(
                        self._solve_batch(solve_keys, invariant=invariant))
                solved = dict(zip(solve_keys, (float(v) for v in values)))
                self.quantile_cache.put_many(
                    (self._disk_key(k), v) for k, v in solved.items())
            for key, disk_val in zip(ukeys, disk_vals):
                value = solved[key] if disk_val is None else disk_val
                self._signoff_cache[key] = value
                out[missing[key]] = value
        if shape == ():
            return float(out[0])
        return out.reshape(shape)

    # -- high-sigma tails ----------------------------------------------------

    def _tail_key(self, kind: str, vdd, spares, target, n_samples,
                  root_seed, spec: str) -> str:
        """Persistent-cache key for one importance-sampled tail estimate.

        ``target`` (the quantile, or the failure threshold in seconds)
        goes in by exact ``repr`` — thresholds live at the 1e-9 scale,
        where the quantile keys' decimal rounding would collapse distinct
        points.  ``spec`` names the proposal exactly (an explicit
        proposal's fingerprint, or the adaptive search's parameters), and
        ``n_samples``/``root_seed`` complete the run identity.
        """
        return ":".join((
            self.tech.name, technology_fingerprint(self.tech),
            f"w{self.width}", f"p{self.paths_per_lane}",
            f"c{self.chain_length}", "tail", kind,
            f"v{float(vdd)!r}", f"s{float(spares)!r}",
            f"t{float(target)!r}", f"n{int(n_samples)}",
            f"r{int(root_seed)}", spec))

    def _tail_sampler(self, spares: int) -> TailSampler:
        """A tail sampler wired to the active runtime's policies.

        Sharding goes through the runtime's :class:`ParallelSampler`
        when one is active (the estimate is jobs-invariant either way);
        precision/backend/blocking follow the runtime like
        :meth:`monte_carlo`.
        """
        runtime = current_runtime()
        return TailSampler(
            self.tech, width=self.width,
            paths_per_lane=self.paths_per_lane,
            chain_length=self.chain_length, spares=spares,
            sampler=runtime.sampler if runtime is not None else None,
            precision=(runtime.precision if runtime is not None
                       else "float64"),
            backend=runtime.backend if runtime is not None else "numpy",
            block_elems=runtime.block_elems if runtime is not None else None)

    _TAIL_FIELDS = ("value", "ess", "wmr", "rounds", "shift")

    def _tail_estimate(self, kind: str, vdd, target: float, *, spares,
                       n_samples, proposal, root_seed, n_pilot, max_rounds,
                       defensive_weight) -> TailEstimate:
        """Shared memoised path behind both tail estimators.

        Estimates are memoised like quantiles — in-process dict plus the
        on-disk :class:`QuantileCache` — but each estimate persists five
        float entries under suffixed keys (value, ESS, weight-max-ratio,
        search rounds, found shift), so a disk hit restores the full
        diagnostics and the adaptively-found proposal, not just the
        number.  ``tail.*`` gauges are (re-)emitted on hits so a serving
        process's metrics reflect the last estimate either way.
        """
        spares = int(spares)
        if spares < 0:
            raise ConfigurationError(f"spares must be >= 0, got {spares}")
        if n_samples < 2:
            raise ConfigurationError(
                f"n_samples must be >= 2, got {n_samples}")
        spec = (proposal.fingerprint() if proposal is not None else
                f"auto[{int(n_pilot)}x{int(max_rounds)}"
                f"x{float(defensive_weight)!r}]")
        key = self._tail_key(kind, vdd, spares, target, n_samples,
                             root_seed, spec)
        memo = self._tail_cache.get(key)
        if memo is not None:
            self._tail_hit(memo)
            return memo
        cached = self.quantile_cache.get_many(
            f"{key}:{f}" for f in self._TAIL_FIELDS)
        if (all(v is not None for v in cached[:4])
                and (proposal is not None or cached[4] is not None)):
            prop = (proposal if proposal is not None else
                    ShiftProposal.defensive(cached[4],
                                            float(defensive_weight)))
            est = TailEstimate(
                value=cached[0], kind=kind, ess=cached[1],
                weight_max_ratio=cached[2], n_samples=int(n_samples),
                shift_search_rounds=int(cached[3]), proposal=prop,
                q=target if kind == "quantile" else None,
                threshold=target if kind == "probability" else None)
            self._tail_cache[key] = est
            self._tail_hit(est)
            return est
        sampler = self._tail_sampler(spares)
        with profiled_stage("analyzer.tail_solve", int(n_samples)):
            if kind == "quantile":
                est = sampler.tail_quantile(
                    vdd, target, n_samples=n_samples, proposal=proposal,
                    root_seed=root_seed, n_pilot=n_pilot,
                    max_rounds=max_rounds,
                    defensive_weight=defensive_weight)
            else:
                est = sampler.failure_probability(
                    vdd, t_limit=target, n_samples=n_samples,
                    proposal=proposal, root_seed=root_seed,
                    n_pilot=n_pilot, max_rounds=max_rounds,
                    defensive_weight=defensive_weight)
        self.quantile_cache.put_many(zip(
            (f"{key}:{f}" for f in self._TAIL_FIELDS),
            (est.value, est.ess, est.weight_max_ratio,
             float(est.shift_search_rounds),
             float(est.proposal.d2d_shifts[0]))))
        self._tail_cache[key] = est
        return est

    @staticmethod
    def _tail_hit(est: TailEstimate) -> None:
        _obs_counter("analyzer.tail_memo_hits").inc()
        _obs_gauge("tail.ess").set(float(est.ess))
        _obs_gauge("tail.weight_max_ratio").set(float(est.weight_max_ratio))

    def chip_tail_quantile(self, vdd, q: float, *, spares: float = 0,
                           n_samples: int = 4096,
                           proposal: ShiftProposal | None = None,
                           root_seed: int = 0, n_pilot: int = 512,
                           max_rounds: int = 5,
                           defensive_weight: float =
                           DEFAULT_DEFENSIVE_WEIGHT) -> TailEstimate:
        """High-sigma chip-delay quantile by importance sampling.

        Where :meth:`chip_quantile` inverts the analytic CDF (exact for
        the compositional model), this estimates the ``q`` quantile of
        the *per-gate Monte-Carlo* chip delay — the reference the
        analytic model is validated against — at tail depths brute-force
        MC cannot reach: ``n_samples`` of a few thousand resolve the
        99.99 % point that would otherwise need 1e6+ chips.  Returns a
        :class:`~repro.core.tailsampling.TailEstimate` (value in seconds
        plus ESS / max-weight / search diagnostics).  ``proposal=None``
        runs the adaptive shift search; estimates are deterministic in
        ``root_seed`` and memoised like quantiles (memo + disk, keyed by
        the full run identity including the proposal spec).
        """
        if not 0.0 < float(q) < 1.0:
            raise ConfigurationError(
                f"quantile must be in (0, 1), got {q}")
        return self._tail_estimate(
            "quantile", vdd, float(q), spares=spares, n_samples=n_samples,
            proposal=proposal, root_seed=root_seed, n_pilot=n_pilot,
            max_rounds=max_rounds, defensive_weight=defensive_weight)

    def chip_failure_probability(self, vdd, t_limit: float | None = None, *,
                                 f_clk: float | None = None,
                                 spares: float = 0, n_samples: int = 4096,
                                 proposal: ShiftProposal | None = None,
                                 root_seed: int = 0, n_pilot: int = 512,
                                 max_rounds: int = 5,
                                 defensive_weight: float =
                                 DEFAULT_DEFENSIVE_WEIGHT) -> TailEstimate:
        """``P(chip delay > t_limit)`` by importance sampling.

        Pass the budget as seconds (``t_limit``) or as a clock target
        (``f_clk`` Hz, i.e. ``t_limit = 1/f_clk``).  Same machinery,
        caching and diagnostics as :meth:`chip_tail_quantile`.
        """
        if (t_limit is None) == (f_clk is None):
            raise ConfigurationError(
                "chip_failure_probability needs exactly one of "
                "t_limit / f_clk")
        if f_clk is not None:
            if not f_clk > 0.0:
                raise ConfigurationError(
                    f"f_clk must be positive Hz, got {f_clk}")
            t_limit = 1.0 / float(f_clk)
        if not t_limit > 0.0:
            raise ConfigurationError(
                f"t_limit must be positive seconds, got {t_limit}")
        return self._tail_estimate(
            "probability", vdd, float(t_limit), spares=spares,
            n_samples=n_samples, proposal=proposal, root_seed=root_seed,
            n_pilot=n_pilot, max_rounds=max_rounds,
            defensive_weight=defensive_weight)

    def chip_quantile_fo4(self, vdd, spares: float = 0, q: float | None = None) -> float:
        """Chip-delay quantile expressed in FO4 units at the same ``vdd``.

        This is the paper's ``fo4chipd`` metric.
        """
        return self.chip_quantile(vdd, spares, q) / self.fo4_unit(vdd)

    def nominal_signoff_fo4(self) -> float:
        """``fo4chipd`` of the spare-less chip at nominal (full) voltage."""
        return self.chip_quantile_fo4(self.nominal_vdd)

    def performance_drop(self, vdd, spares: float = 0) -> float:
        """Fractional performance drop vs the full-voltage baseline (Fig. 4).

        ``(fo4chipd@NTV - fo4chipd@FV) / fo4chipd@FV``: by normalising both
        sides to the FO4 delay at their own supply, the metric isolates the
        *variation-induced* slowdown from the ~10x absolute near-threshold
        slowdown.
        """
        return (self.chip_quantile_fo4(vdd, spares)
                / self.nominal_signoff_fo4() - 1.0)

    def performance_drops(self, vdds, spares: float = 0) -> np.ndarray:
        """Vectorised :meth:`performance_drop` over a supply sweep (Fig. 4).

        All sign-off quantiles behind the sweep are resolved through one
        :meth:`chip_quantiles` batch, so a whole Fig.-4 column costs a
        single kernelised solve instead of one scalar root-find per
        voltage.  Each element equals the scalar method exactly for
        cached points.
        """
        vdds = np.asarray(vdds, dtype=float)
        flat = np.atleast_1d(vdds).ravel()
        quantiles = np.atleast_1d(self.chip_quantiles(flat, spares))
        fo4 = np.array([self.fo4_unit(v) for v in flat])
        drops = (quantiles / fo4) / self.nominal_signoff_fo4() - 1.0
        if vdds.shape == ():
            return float(drops[0])
        return drops.reshape(vdds.shape)

    def target_delay(self, vdd) -> float:
        """The mitigation target delay at ``vdd`` (seconds), Section 4.2.

        The chip delay the architecture *would* have at ``vdd`` if its
        FO4-unit delay matched the full-voltage baseline:
        ``FO4(vdd) * fo4chipd@FV``.  Both duplication and margining are
        sized to bring the 99 % chip delay under this target.
        """
        return self.fo4_unit(vdd) * self.nominal_signoff_fo4()

    # -- ensembles ----------------------------------------------------------------

    def chip_distribution(self, vdd, *, spares: int = 0, n_samples: int = 10_000,
                          seed: int | None = 0, rng=None,
                          label: str | None = None) -> DelayDistribution:
        """Sampled chip-delay ensemble (Figs. 3, 5, 6).

        When a parallel runtime is active (``--jobs N`` with N > 1) and no
        explicit ``rng`` was passed, sampling shards across the runtime's
        worker pool via :class:`~repro.runtime.parallel.ParallelSampler`;
        the sharded stream is reproducible in ``seed`` but differs from
        the serial single-generator stream.
        """
        runtime = current_runtime()
        if (rng is None and runtime is not None
                and runtime.sampler is not None and runtime.sampler.jobs > 1):
            samples = runtime.sampler.sample_chips(
                self.tech, vdd, n_samples=n_samples, width=self.width,
                paths_per_lane=self.paths_per_lane,
                chain_length=self.chain_length, spares=spares,
                root_seed=seed)
        else:
            if rng is None:
                rng = np.random.default_rng(seed)
            with profiled_stage("analyzer.sample_chips", n_samples):
                samples = self.engine.sample_chips(vdd, n_samples, rng,
                                                   spares=spares)
        if label is None:
            spare_txt = f"+{spares}-spares" if spares else ""
            label = f"{self.width}-wide{spare_txt}@{vdd:g}V"
        return DelayDistribution(samples=samples, vdd=float(vdd), label=label,
                                 fo4_unit=self.fo4_unit(vdd))

    def lane_distribution(self, vdd, *, n_samples: int = 10_000,
                          seed: int | None = 0, rng=None) -> DelayDistribution:
        """Sampled one-lane (1-wide) delay ensemble (Fig. 3)."""
        if rng is None:
            rng = np.random.default_rng(seed)
        samples = self.engine.sample_lanes(vdd, n_samples, rng)
        return DelayDistribution(samples=samples, vdd=float(vdd),
                                 label=f"1-wide@{vdd:g}V",
                                 fo4_unit=self.fo4_unit(vdd))

    def path_distribution(self, vdd, *, n_samples: int = 10_000,
                          seed: int | None = 0, rng=None) -> DelayDistribution:
        """Sampled critical-path delay ensemble (Fig. 3)."""
        if rng is None:
            rng = np.random.default_rng(seed)
        samples = self.engine.sample_paths(vdd, n_samples, rng)
        return DelayDistribution(samples=samples, vdd=float(vdd),
                                 label=f"critical-path@{vdd:g}V",
                                 fo4_unit=self.fo4_unit(vdd))
