"""High-level variation analysis API.

:class:`VariationAnalyzer` is the single object most users need: it binds a
technology card to the paper's architecture parameters (128 lanes x 100
critical paths x 50-FO4 chains, 99 % sign-off) and answers the paper's
questions directly:

>>> from repro import VariationAnalyzer
>>> a = VariationAnalyzer("90nm")
>>> round(100 * a.chain_variation(0.5), 1)        # Fig. 1(b) @ 0.5 V
9.1
>>> round(100 * a.performance_drop(0.5), 1)       # Fig. 4 @ 0.5 V
6.5

The mitigation packages (:mod:`repro.sparing`, :mod:`repro.mitigation`)
consume an analyzer rather than raw technology cards, so every technique is
evaluated against the same baseline definitions.
"""

from __future__ import annotations

import numpy as np

from repro.core.chip_delay import ChipDelayEngine
from repro.core.montecarlo import MonteCarloEngine
from repro.core.results import DelayDistribution
from repro.devices.technology import TechnologyNode, get_technology
from repro.errors import ConfigurationError

__all__ = ["VariationAnalyzer"]


class VariationAnalyzer:
    """Paper-level analysis of one technology node.

    Parameters
    ----------
    tech:
        A :class:`~repro.devices.technology.TechnologyNode` or a node name
        (``"90nm"``, ...).
    width, paths_per_lane, chain_length:
        Architecture model parameters; defaults follow the paper
        (Section 3.2).
    signoff_quantile:
        The chip-delay quantile performance is judged at (paper: 0.99).
    """

    def __init__(self, tech, *, width: int = 128, paths_per_lane: int = 100,
                 chain_length: int = 50, signoff_quantile: float = 0.99) -> None:
        if isinstance(tech, str):
            tech = get_technology(tech)
        if not isinstance(tech, TechnologyNode):
            raise ConfigurationError(
                f"tech must be a TechnologyNode or name, got {type(tech)!r}")
        if not 0.0 < signoff_quantile < 1.0:
            raise ConfigurationError("signoff_quantile must be in (0, 1)")
        self.tech = tech
        self.signoff_quantile = float(signoff_quantile)
        self.engine = ChipDelayEngine(
            tech, width=width, paths_per_lane=paths_per_lane,
            chain_length=chain_length)
        self._signoff_cache: dict = {}

    # -- basic properties ----------------------------------------------------

    @property
    def width(self) -> int:
        return self.engine.width

    @property
    def paths_per_lane(self) -> int:
        return self.engine.paths_per_lane

    @property
    def chain_length(self) -> int:
        return self.engine.chain_length

    @property
    def nominal_vdd(self) -> float:
        return self.tech.nominal_vdd

    def fo4_unit(self, vdd) -> float:
        """Variation-free FO4 delay at ``vdd`` (seconds)."""
        return self.tech.fo4_unit(vdd)

    def monte_carlo(self, seed: int | None = 0) -> MonteCarloEngine:
        """A per-gate Monte-Carlo engine sharing this analyzer's card."""
        return MonteCarloEngine(self.tech, seed=seed)

    # -- circuit level ---------------------------------------------------------

    def chain_variation(self, vdd, n_gates: int | None = None) -> float:
        """Analytic 3sigma/mu (fraction) of an FO4 chain delay (Fig. 1b/2/11)."""
        return float(self.engine.chain_statistics(vdd, n_gates).three_sigma_over_mu)

    def chain_mean_delay(self, vdd, n_gates: int | None = None) -> float:
        """Mean chain delay in seconds (Section 3.2 absolute anchors)."""
        return float(self.engine.chain_statistics(vdd, n_gates).mean)

    # -- architecture level -----------------------------------------------------

    def chip_quantile(self, vdd, spares: int = 0, q: float | None = None) -> float:
        """Deterministic chip-delay quantile in seconds.

        ``q`` defaults to the analyzer's sign-off quantile (99 %).
        """
        key = (round(float(vdd), 9), int(spares),
               self.signoff_quantile if q is None else float(q))
        cached = self._signoff_cache.get(key)
        if cached is None:
            cached = self.engine.chip_quantile(vdd, key[2], spares=spares)
            self._signoff_cache[key] = cached
        return cached

    def chip_quantile_fo4(self, vdd, spares: int = 0, q: float | None = None) -> float:
        """Chip-delay quantile expressed in FO4 units at the same ``vdd``.

        This is the paper's ``fo4chipd`` metric.
        """
        return self.chip_quantile(vdd, spares, q) / self.fo4_unit(vdd)

    def nominal_signoff_fo4(self) -> float:
        """``fo4chipd`` of the spare-less chip at nominal (full) voltage."""
        return self.chip_quantile_fo4(self.nominal_vdd)

    def performance_drop(self, vdd, spares: int = 0) -> float:
        """Fractional performance drop vs the full-voltage baseline (Fig. 4).

        ``(fo4chipd@NTV - fo4chipd@FV) / fo4chipd@FV``: by normalising both
        sides to the FO4 delay at their own supply, the metric isolates the
        *variation-induced* slowdown from the ~10x absolute near-threshold
        slowdown.
        """
        return (self.chip_quantile_fo4(vdd, spares)
                / self.nominal_signoff_fo4() - 1.0)

    def target_delay(self, vdd) -> float:
        """The mitigation target delay at ``vdd`` (seconds), Section 4.2.

        The chip delay the architecture *would* have at ``vdd`` if its
        FO4-unit delay matched the full-voltage baseline:
        ``FO4(vdd) * fo4chipd@FV``.  Both duplication and margining are
        sized to bring the 99 % chip delay under this target.
        """
        return self.fo4_unit(vdd) * self.nominal_signoff_fo4()

    # -- ensembles ----------------------------------------------------------------

    def chip_distribution(self, vdd, *, spares: int = 0, n_samples: int = 10_000,
                          seed: int | None = 0, rng=None,
                          label: str | None = None) -> DelayDistribution:
        """Sampled chip-delay ensemble (Figs. 3, 5, 6)."""
        if rng is None:
            rng = np.random.default_rng(seed)
        samples = self.engine.sample_chips(vdd, n_samples, rng, spares=spares)
        if label is None:
            spare_txt = f"+{spares}-spares" if spares else ""
            label = f"{self.width}-wide{spare_txt}@{vdd:g}V"
        return DelayDistribution(samples=samples, vdd=float(vdd), label=label,
                                 fo4_unit=self.fo4_unit(vdd))

    def lane_distribution(self, vdd, *, n_samples: int = 10_000,
                          seed: int | None = 0, rng=None) -> DelayDistribution:
        """Sampled one-lane (1-wide) delay ensemble (Fig. 3)."""
        if rng is None:
            rng = np.random.default_rng(seed)
        samples = self.engine.sample_lanes(vdd, n_samples, rng)
        return DelayDistribution(samples=samples, vdd=float(vdd),
                                 label=f"1-wide@{vdd:g}V",
                                 fo4_unit=self.fo4_unit(vdd))

    def path_distribution(self, vdd, *, n_samples: int = 10_000,
                          seed: int | None = 0, rng=None) -> DelayDistribution:
        """Sampled critical-path delay ensemble (Fig. 3)."""
        if rng is None:
            rng = np.random.default_rng(seed)
        samples = self.engine.sample_paths(vdd, n_samples, rng)
        return DelayDistribution(samples=samples, vdd=float(vdd),
                                 label=f"critical-path@{vdd:g}V",
                                 fo4_unit=self.fo4_unit(vdd))
