"""Analytic chip-delay engine for wide SIMD datapaths.

Implements the paper's architecture model (Section 3.2):

* one *critical path* = chain of ``chain_length`` FO4 inverters;
* one *lane* = the slowest of ``paths_per_lane`` iid critical paths;
* the *chip* = the slowest of ``width`` lanes — or, with ``spares`` extra
  lanes whose slowest ``spares`` members are dropped at test time
  (structural duplication, Section 4.1), the ``(spares+1)``-th largest of
  ``width + spares`` lane delays.

Statistically the hierarchy mirrors the three-scale variation model of
:class:`~repro.devices.variation.VariationModel`: gates inside a path see
iid within-die draws; the paths of one lane share that lane's
spatially-correlated draw; all lanes share the die's draw.  The engine
conditions on the two correlated scales with Gauss-Hermite quadrature and
treats the within-die scale analytically (path cumulants + Cornish-Fisher).

Two evaluation styles are provided:

* **Deterministic** CDF/quantile (:meth:`ChipDelayEngine.chip_cdf`,
  :meth:`ChipDelayEngine.chip_quantile`): noise-free, so millivolt-scale
  voltage-margin searches are well posed, and fractional spare counts are
  supported through the regularised-incomplete-beta order-statistic form.
  Every CDF evaluation runs on a per-``vdd`` *conditioned kernel* — the
  path moments at the (die x lane) threshold-offset grid plus the
  multiplicative scale/weight tensors — held in a bounded LRU cache, so
  repeated evaluations at one supply point pay only the broadcasted
  Cornish-Fisher inversion and two weighted contractions.
* **Batched** quantile solving (:meth:`ChipDelayEngine.chip_quantile_batch`):
  solves many ``(vdd, q, spares)`` query points simultaneously — kernels
  for all distinct supply points are built in one vectorized pass, a
  cheap low-order-quadrature presolve brackets every root tightly, and a
  vectorized Chandrupatla (inverse-quadratic/bisection hybrid) iteration
  polishes all roots at full quadrature order in a handful of batched
  CDF sweeps.
* **Sampling** (:meth:`ChipDelayEngine.sample_chips` and friends): draws
  ensembles for the paper's histogram figures via inverse-transform
  sampling — equivalent to per-gate Monte-Carlo up to the Edgeworth
  approximation of the 50-gate path sum, at ~10^4x less work.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np
from scipy.interpolate import CubicSpline
from scipy.optimize import brentq
from scipy.special import betainc, log_ndtr, ndtri

from repro.core.moments import (
    DelayMoments,
    _skew_coefficient,
    chain_moments,
    cornish_fisher_cdf,
    cornish_fisher_quantile,
    gate_delay_moments,
    hermite_nodes,
)
from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    SolverNumericalError,
)
from repro.obs.api import counter as _obs_counter
from repro.obs.api import histogram as _obs_histogram
from repro.resilience.faultlab import active_plan
from repro.resilience.ledger import current_ledger

__all__ = [
    "ChipDelayEngine",
    "sample_chip_delays",
    "chip_delay_quantile",
    "chip_delay_cdf",
]

#: Bound on the per-engine kernel / offset-moment caches (entries are a few
#: KB each; voltage sweeps touch tens of supply points, not thousands).
_KERNEL_CACHE_SIZE = 256

#: Batched-solver tuning.  Query points sharing (q, spares) and differing
#: only in vdd form a *sweep cluster*: every ``_ANCHOR_STRIDE``-th member is
#: solved from scratch and the rest start from a log-space cubic spline of
#: the anchor roots (the quantile-vs-vdd curve is smooth, so the spline is
#: accurate to ~1e-4 relative — 2-3 secant sweeps from convergence).
_ANCHOR_STRIDE = 3
_CLUSTER_MIN = 8
#: Secant acceptance: the extrapolated iterate's error is ~ C * d_k * d_{k-1}
#: (relative step sizes) with C = |F''/2F'| * root under ~50 for every
#: calibrated card; 200 adds a 4x safety factor.
_SECANT_C = 200.0
_SECANT_TOL = 1e-11


def _grid(sigma: float, order: int):
    """Gauss-Hermite nodes/weights for N(0, sigma); trivial grid if zero."""
    if sigma <= 0:
        return np.zeros(1), np.ones(1)
    z, w = hermite_nodes(order)
    return sigma * z, w


class _OffsetMoments:
    """Path-delay moments as a function of the correlated Vth offset.

    The correlated (lane + die) threshold offset enters the path moments
    through a smooth one-dimensional map, so we tabulate the three chain
    cumulants on a dense offset grid once per supply voltage and
    interpolate; this makes per-(chip, lane) moment lookups O(1).
    """

    def __init__(self, tech, vdd: float, chain_length: int,
                 quad_within: int, span_sigma: float, n_grid: int = 257) -> None:
        self.vdd = float(vdd)
        if span_sigma <= 0:
            grid = np.zeros(1)
        else:
            half = 8.0 * span_sigma
            grid = np.linspace(-half, half, n_grid)
        gate = gate_delay_moments(tech, self.vdd, grid, n_points=quad_within)
        path = chain_moments(gate, chain_length)
        self._grid = grid
        self._mean = np.atleast_1d(path.mean)
        self._var = np.atleast_1d(path.var)
        self._third = np.atleast_1d(path.third)

    def __call__(self, offsets) -> DelayMoments:
        offsets = np.asarray(offsets, dtype=float)
        if self._grid.size == 1:
            shape = offsets.shape
            return DelayMoments(
                mean=np.broadcast_to(self._mean[0], shape).copy(),
                var=np.broadcast_to(self._var[0], shape).copy(),
                third=np.broadcast_to(self._third[0], shape).copy(),
            )
        return DelayMoments(
            mean=np.interp(offsets, self._grid, self._mean),
            var=np.interp(offsets, self._grid, self._var),
            third=np.interp(offsets, self._grid, self._third),
        )


@dataclass(frozen=True)
class _CorrelatedGrids:
    """Quadrature grids over the die- and lane-level variation."""

    die_dvth: np.ndarray
    die_dvth_w: np.ndarray
    die_mult: np.ndarray
    die_mult_w: np.ndarray
    lane_dvth: np.ndarray
    lane_dvth_w: np.ndarray
    lane_mult: np.ndarray
    lane_mult_w: np.ndarray


@dataclass(frozen=True)
class _KernelLevel:
    """The ``x``-independent geometry of one quadrature resolution.

    ``offsets`` are the correlated (die + lane) threshold offsets, shape
    ``(J, A)``; ``scale`` the multiplicative factors ``(1+M)(1+m_l)`` on the
    ``(K, B)`` grid; ``lane_w``/``die_w`` the separable quadrature weights.
    All four are independent of ``vdd``, ``x`` and ``spares``.
    """

    offsets: np.ndarray   # (J, A)
    scale: np.ndarray     # (K, B)
    lane_w: np.ndarray    # (A, B)
    die_w: np.ndarray     # (J, K)


class _CdfKernel:
    """Per-``vdd`` conditioned CDF kernel: path moments at every offset.

    Holds the chain mean / std / skew coefficient evaluated at the fine
    ``(J, A)`` offset grid and at the coarse presolve grid, plus a bracket
    anchor ``ref`` (the median conditioned path mean).  Everything here
    depends only on ``vdd`` — a CDF evaluation reduces to one broadcasted
    Cornish-Fisher inversion against these tensors.
    """

    __slots__ = ("vdd", "mean", "std", "a6", "coarse_mean", "coarse_std",
                 "coarse_a6", "ref")

    def __init__(self, vdd, mean, std, a6, coarse_mean, coarse_std,
                 coarse_a6, ref):
        self.vdd = vdd
        self.mean = mean
        self.std = std
        self.a6 = a6                    # clipped skewness / 6
        self.coarse_mean = coarse_mean
        self.coarse_std = coarse_std
        self.coarse_a6 = coarse_a6
        self.ref = ref


def _chandrupatla(f, lo, hi, flo, fhi, rtol, maxiter: int = 120):
    """Vectorized Chandrupatla root finder (IQI/bisection hybrid).

    Solves ``f = 0`` for every query point simultaneously.  ``f(x, idx)``
    must evaluate the objective at points ``x`` for query indices ``idx``
    (both 1-D of equal length) — only still-active points are evaluated
    each iteration.  ``(lo, hi)`` must bracket per point:
    ``flo <= 0 <= fhi``.  Terminates each point once its bracket shrinks
    below ``2 * rtol * |root|``.
    """
    lo = np.asarray(lo, dtype=float)
    hi = np.asarray(hi, dtype=float)
    n = lo.size
    a = hi.copy()
    fa = np.asarray(fhi, dtype=float).copy()
    b = lo.copy()
    fb = np.asarray(flo, dtype=float).copy()
    c = b.copy()
    fc = fb.copy()
    t = np.full(n, 0.5)
    root = np.where(np.abs(fa) < np.abs(fb), a, b)
    active = np.ones(n, dtype=bool)
    for end, fend in ((lo, fb), (hi, fa)):
        exact = fend == 0.0
        root[exact] = end[exact]
        active[exact] = False
    for _ in range(maxiter):
        idx = np.flatnonzero(active)
        if idx.size == 0:
            return root
        xt = a[idx] + t[idx] * (b[idx] - a[idx])
        ft = f(xt, idx)
        same = np.sign(ft) == np.sign(fa[idx])
        ci = np.where(same, a[idx], b[idx])
        fci = np.where(same, fa[idx], fb[idx])
        bi = np.where(same, b[idx], a[idx])
        fbi = np.where(same, fb[idx], fa[idx])
        ai, fai = xt, ft
        a[idx], fa[idx] = ai, fai
        b[idx], fb[idx] = bi, fbi
        c[idx], fc[idx] = ci, fci

        use_a = np.abs(fai) < np.abs(fbi)
        xm = np.where(use_a, ai, bi)
        fm = np.where(use_a, fai, fbi)
        root[idx] = xm
        tol = 2.0 * rtol * np.abs(xm)
        with np.errstate(divide="ignore", invalid="ignore"):
            tlim = tol / np.abs(bi - ci)
            done = (fm == 0.0) | (tlim > 0.5) | ~np.isfinite(tlim)
            # Inverse-quadratic step where the bracket geometry allows it,
            # bisection otherwise (Chandrupatla's acceptance test).
            xi = (ai - bi) / (ci - bi)
            phi = (fai - fbi) / (fci - fbi)
            iqi = (phi ** 2 < xi) & ((1.0 - phi) ** 2 < 1.0 - xi)
            t_iqi = (fai / (fbi - fai) * fci / (fbi - fci)
                     + (ci - ai) / (bi - ai) * fai / (fci - fai)
                     * fbi / (fci - fbi))
            t_new = np.where(iqi & np.isfinite(t_iqi), t_iqi, 0.5)
            t_new = np.clip(t_new, tlim, 1.0 - tlim)
        t[idx] = np.where(np.isfinite(t_new), t_new, 0.5)
        active[idx[done]] = False
    if active.any():
        raise ConvergenceError(
            "batched chip-delay quantile root-finding did not converge")
    return root


def _expand_bracket(f, lo, hi, flo, fhi):
    """Geometrically expand per-point brackets until ``flo <= 0 <= fhi``."""
    for _ in range(80):
        need = np.flatnonzero(fhi < 0.0)
        if need.size == 0:
            break
        hi[need] *= 1.25
        fhi[need] = f(hi[need], need)
    for _ in range(80):
        need = np.flatnonzero(flo > 0.0)
        if need.size == 0:
            break
        lo[need] *= 0.8
        flo[need] = f(lo[need], need)
    if (fhi < 0.0).any() or (flo > 0.0).any():
        raise ConvergenceError("could not bracket the chip-delay quantile")


def _clusters(vdds, qs, sps):
    """Partition query points into anchors and spline-seeded sweep members.

    Points sharing ``(q, spares)`` with at least ``_CLUSTER_MIN`` distinct
    supply voltages form a cluster; every ``_ANCHOR_STRIDE``-th member (plus
    the endpoints) is an *anchor*.  Returns ``(anchors, jobs)`` where each
    job is ``(anchor_indices, member_indices)`` ordered by vdd.
    """
    groups: dict = {}
    for i, (q, s) in enumerate(zip(qs, sps)):
        groups.setdefault((q, s), []).append(i)
    anchors: list = []
    jobs = []
    for members in groups.values():
        if len(members) < _CLUSTER_MIN:
            anchors.extend(members)
            continue
        members = sorted(members, key=lambda i: vdds[i])
        picked = sorted(set(range(0, len(members), _ANCHOR_STRIDE))
                        | {len(members) - 1})
        picked_set = set(picked)
        anchors.extend(members[i] for i in picked)
        jobs.append((
            np.array([members[i] for i in picked]),
            np.array([members[i] for i in range(len(members))
                      if i not in picked_set]),
        ))
    return np.array(sorted(anchors), dtype=int), jobs


class _PointsEval:
    """Batched chip-CDF evaluator for a fixed set of heterogeneous points.

    Precomputes the x-independent broadcast tensors once per solve, so each
    sweep over the ``(N, J, K, A, B)`` tensor spends the minimum number of
    elementwise passes: the Cornish-Fisher z-argument is the affine map
    ``w = x * t1 - t0`` of the query delay, the citardauq discriminant one
    multiply-add, and both quadrature contractions are BLAS matvecs.  The
    citardauq inversion is applied unconditionally (exact as the skew
    coefficient -> 0) and the max-of-P-paths power uses the
    ``exp(P * log_ndtr)`` fusion.
    """

    __slots__ = ("width", "paths", "t1", "t0", "a4", "w_lo", "w_hi",
                 "lane_w", "die_w", "qs", "sps", "invariant")

    def __init__(self, engine, level, mean, std, a6, qs, sps, *,
                 invariant: bool = False):
        inv_s = 1.0 / std                                    # (N, J, A)
        self.t1 = (inv_s[:, :, None, :, None]
                   / level.scale[None, None, :, None, :])
        self.t0 = (mean * inv_s - a6)[:, :, None, :, None]
        self.a4 = (4.0 * a6)[:, :, None, :, None]
        self.lane_w = level.lane_w.ravel()
        self.die_w = level.die_w.ravel()
        self.width = engine.width
        self.paths = engine.paths_per_lane
        self.qs = qs
        self.sps = sps
        self.invariant = bool(invariant)
        # Saturation thresholds: outside [z_lo, z_hi] the max-of-P-paths CDF
        # Phi(z)^P is 0 or 1 to <1e-15 absolute, so only the (typically
        # 10-30 %) in-band elements pay the log-ndtr call.  Mapped to the
        # pre-inversion variable w = z + a z^2 (monotone), per element.
        z_lo = float(ndtri(np.exp(-36.8 / self.paths)))
        z_hi = float(-ndtri(1e-15 / self.paths))
        a = 0.25 * self.a4
        self.w_lo = z_lo + a * (z_lo * z_lo)
        self.w_hi = z_hi + a * (z_hi * z_hi)

    def cdf(self, x, idx):
        """``P(chip delay <= x_i)`` for query subset ``idx`` (1-D, same size)."""
        full = idx.size == self.t0.shape[0]
        t1 = self.t1 if full else self.t1[idx]
        t0 = self.t0 if full else self.t0[idx]
        a4 = self.a4 if full else self.a4[idx]
        w_lo = self.w_lo if full else self.w_lo[idx]
        w_hi = self.w_hi if full else self.w_hi[idx]
        w = x[:, None, None, None, None] * t1
        w -= t0
        hi = w >= w_hi
        mid = w > w_lo
        mid &= ~hi
        f_lane = hi.astype(float)
        wm = w[mid]
        am = np.broadcast_to(a4, w.shape)[mid]
        disc = am * wm
        disc += 1.0
        np.maximum(disc, 0.0, out=disc)
        np.sqrt(disc, out=disc)
        disc += 1.0
        wm *= 2.0
        wm /= disc
        lf = log_ndtr(wm)
        lf *= self.paths
        f_lane[mid] = np.exp(lf, out=lf)
        n, j, k, a, b = f_lane.shape
        flat = f_lane.reshape(n * j * k, a * b)
        if self.invariant:
            # BLAS matvec kernels pick different reduction orders for
            # different row counts, so `flat @ lane_w` is not row-wise
            # bit-stable — a point's root would depend on which other
            # points share the evaluation.  einsum reduces each row with
            # a fixed-order loop over the (constant) column count, making
            # every root a pure function of its own point regardless of
            # batch composition (the serving dispatcher's contract).
            g_lane = np.einsum("rc,c->r", flat, self.lane_w)
        else:
            g_lane = flat @ self.lane_w
        np.clip(g_lane, 0.0, 1.0, out=g_lane)
        g_lane = g_lane.reshape(n, j * k)
        sp = self.sps[idx]
        zero = sp == 0.0
        if zero.all():
            f_chip = g_lane ** self.width
        elif not zero.any():
            f_chip = betainc(self.width, sp[:, None] + 1.0, g_lane)
        else:
            f_chip = np.empty_like(g_lane)
            f_chip[zero] = g_lane[zero] ** self.width
            nz = ~zero
            f_chip[nz] = betainc(self.width, sp[nz, None] + 1.0, g_lane[nz])
        if self.invariant:
            return np.einsum("rc,c->r", f_chip, self.die_w)
        return f_chip @ self.die_w

    def objective(self, x, idx):
        """CDF minus target quantile (the root-finding residual)."""
        return self.cdf(x, idx) - self.qs[idx]


class ChipDelayEngine:
    """Order-statistics delay engine for one technology node.

    Parameters
    ----------
    tech:
        Technology card.
    width:
        SIMD width (active lanes the workload needs), default 128.
    paths_per_lane:
        Critical + near-critical paths per lane, default 100.
    chain_length:
        FO4 inverters per critical path, default 50.
    quad_within:
        Gauss-Hermite order for the within-gate threshold integral.
    quad_corr_vth, quad_corr_mult:
        Gauss-Hermite orders for each correlated threshold /
        multiplicative integral (applied at both the lane and die scales).
    """

    def __init__(self, tech, *, width: int = 128, paths_per_lane: int = 100,
                 chain_length: int = 50, quad_within: int = 48,
                 quad_corr_vth: int = 12, quad_corr_mult: int = 6) -> None:
        if width < 1 or paths_per_lane < 1 or chain_length < 1:
            raise ConfigurationError(
                "width, paths_per_lane and chain_length must all be >= 1")
        self.tech = tech
        self.width = int(width)
        self.paths_per_lane = int(paths_per_lane)
        self.chain_length = int(chain_length)
        self.quad_within = int(quad_within)
        self.quad_corr_vth = int(quad_corr_vth)
        self.quad_corr_mult = int(quad_corr_mult)

        var = tech.variation
        die_dvth, die_dvth_w = _grid(var.sigma_vth_d2d, quad_corr_vth)
        die_mult, die_mult_w = _grid(var.sigma_mult_corr, quad_corr_mult)
        lane_dvth, lane_dvth_w = _grid(var.sigma_vth_lane, quad_corr_vth)
        lane_mult, lane_mult_w = _grid(var.sigma_mult_lane, quad_corr_mult)
        self._grids = _CorrelatedGrids(
            die_dvth, die_dvth_w, die_mult, die_mult_w,
            lane_dvth, lane_dvth_w, lane_mult, lane_mult_w)
        self._fine = self._make_level(self.quad_corr_vth, self.quad_corr_mult)
        # Low-order presolve level: ~20x cheaper per CDF sweep, used only to
        # bracket roots tightly before full-order refinement.
        self._coarse = self._make_level(max(2, self.quad_corr_vth // 2),
                                        max(2, self.quad_corr_mult // 2))
        # Kernel builds evaluate path moments only at the fine offsets; the
        # coarse (presolve-only) moments are interpolated from them, so the
        # sorted fine-offset view is precomputed here.
        self._offset_order = np.argsort(self._fine.offsets, axis=None)
        self._offset_cache: OrderedDict = OrderedDict()
        self._kernel_cache: OrderedDict = OrderedDict()
        # Kernel-LRU economics, always counted (plain int bumps): rendered
        # by --profile via the obs counters and exposed for tests/tools.
        self.kernel_hits = 0
        self.kernel_misses = 0
        self.kernel_evictions = 0

    # -- internals -----------------------------------------------------------

    def _make_level(self, vth_order: int, mult_order: int) -> _KernelLevel:
        var = self.tech.variation
        die_dvth, die_dvth_w = _grid(var.sigma_vth_d2d, vth_order)
        die_mult, die_mult_w = _grid(var.sigma_mult_corr, mult_order)
        lane_dvth, lane_dvth_w = _grid(var.sigma_vth_lane, vth_order)
        lane_mult, lane_mult_w = _grid(var.sigma_mult_lane, mult_order)
        return _KernelLevel(
            offsets=die_dvth[:, None] + lane_dvth[None, :],
            scale=(1.0 + die_mult)[:, None] * (1.0 + lane_mult)[None, :],
            lane_w=lane_dvth_w[:, None] * lane_mult_w[None, :],
            die_w=die_dvth_w[:, None] * die_mult_w[None, :],
        )

    def _offset_moments(self, vdd: float) -> _OffsetMoments:
        key = round(float(vdd), 9)
        out = self._offset_cache.get(key)
        if out is None:
            _obs_counter("offset_cache.misses").inc()
            span = self.tech.variation.sigma_vth_chain_corr
            out = _OffsetMoments(self.tech, vdd, self.chain_length,
                                 self.quad_within, span)
            self._offset_cache[key] = out
            while len(self._offset_cache) > _KERNEL_CACHE_SIZE:
                self._offset_cache.popitem(last=False)
        else:
            _obs_counter("offset_cache.hits").inc()
            self._offset_cache.move_to_end(key)
        return out

    def _ensure_kernels(self, keys) -> None:
        """Build (vectorized, one pass) the CDF kernels for missing vdds.

        ``keys`` are supply voltages already rounded to the cache precision
        (9 decimals, matching ``_offset_cache``).
        """
        requested = list(dict.fromkeys(keys))
        missing = []
        for key in requested:
            if key in self._kernel_cache:
                self._kernel_cache.move_to_end(key)
            else:
                missing.append(key)
        hits = len(requested) - len(missing)
        self.kernel_hits += hits
        _obs_counter("kernel_cache.hits").inc(hits)
        if not missing:
            return
        self.kernel_misses += len(missing)
        _obs_counter("kernel_cache.misses").inc(len(missing))
        offs = self._fine.offsets.ravel()
        vdds = np.asarray(missing, dtype=float)
        gate = gate_delay_moments(self.tech, vdds[:, None], offs[None, :],
                                  n_points=self.quad_within)
        path = chain_moments(gate, self.chain_length)
        mean = np.asarray(path.mean)
        std = np.asarray(path.std)
        a6 = np.asarray(_skew_coefficient(path)) / 6.0
        fine_shape = self._fine.offsets.shape
        coarse_shape = self._coarse.offsets.shape
        # The coarse (presolve) moments are interpolated over the offset
        # axis instead of re-integrated: the presolve only needs ~1e-3 and
        # the grid is dense, so this shaves 20 % off every kernel build.
        order = self._offset_order
        offs_sorted = offs[order]
        coffs = self._coarse.offsets.ravel()
        for i, key in enumerate(missing):
            kernel = _CdfKernel(
                vdd=key,
                mean=mean[i].reshape(fine_shape),
                std=std[i].reshape(fine_shape),
                a6=a6[i].reshape(fine_shape),
                coarse_mean=np.interp(coffs, offs_sorted,
                                      mean[i, order]).reshape(coarse_shape),
                coarse_std=np.interp(coffs, offs_sorted,
                                     std[i, order]).reshape(coarse_shape),
                coarse_a6=np.interp(coffs, offs_sorted,
                                    a6[i, order]).reshape(coarse_shape),
                ref=float(np.median(mean[i])),
            )
            self._kernel_cache[key] = kernel
        # Never evict a kernel the in-flight batch still needs.
        limit = max(_KERNEL_CACHE_SIZE, len(requested))
        while len(self._kernel_cache) > limit:
            self._kernel_cache.popitem(last=False)
            self.kernel_evictions += 1
            _obs_counter("kernel_cache.evictions").inc()

    def _cdf_kernel(self, vdd: float) -> _CdfKernel:
        key = round(float(vdd), 9)
        self._ensure_kernels((key,))
        return self._kernel_cache[key]

    def path_moments(self, vdd, corr_dvth) -> DelayMoments:
        """Path moments conditioned on a correlated (lane+die) Vth offset."""
        return self._offset_moments(float(vdd))(corr_dvth)

    def _check_spares(self, spares) -> None:
        if spares < 0:
            raise ConfigurationError(f"spares must be >= 0, got {spares}")

    def _effective_lanes(self, spares) -> int:
        self._check_spares(spares)
        if int(spares) != spares:
            raise ConfigurationError(
                f"sampling requires an integer spare count, got {spares}")
        return self.width + int(spares)

    # -- deterministic CDF / quantile ----------------------------------------

    def chip_cdf(self, vdd, x, spares: float = 0):
        """P(chip delay <= x) with the ``spares`` slowest lanes dropped.

        ``x`` is in seconds (scalar or array).  ``spares`` may be
        fractional: with ``width + spares`` lanes of which the ``spares``
        slowest are dropped, the conditional CDF given the die is the
        regularised incomplete beta ``I_{G_lane}(width, spares + 1)`` — for
        integer ``spares`` exactly the binomial tail
        ``P(Binom(width+spares, 1-G_lane) <= spares)``, smooth in between
        (used by the calibration fitter and the continuous spare solver).
        """
        self._check_spares(spares)
        kernel = self._cdf_kernel(float(vdd))
        level = self._fine
        x = np.asarray(x, dtype=float)
        x_flat = np.atleast_1d(x).ravel()

        # Axes: (J die_vth, K die_mult, A lane_vth, B lane_mult, X).
        mean = kernel.mean[:, None, :, None, None]
        std = kernel.std[:, None, :, None, None]
        gamma = (6.0 * kernel.a6)[:, None, :, None, None]
        y = x_flat[None, None, None, None, :] / level.scale[None, :, None, :, None]

        moments = DelayMoments(mean=mean, var=std ** 2, third=gamma * std ** 3)
        f_path = cornish_fisher_cdf(moments, y)
        f_lane = f_path ** self.paths_per_lane
        # Average over the lane-level variation -> per-die lane CDF.
        g_lane = np.einsum("jkabx,ab->jkx", f_lane, level.lane_w)
        g_lane = np.clip(g_lane, 0.0, 1.0)
        if spares == 0:
            f_chip = g_lane ** self.width
        else:
            f_chip = betainc(self.width, float(spares) + 1.0, g_lane)
        out = np.einsum("jkx,jk->x", f_chip, level.die_w)
        return out[0] if x.ndim == 0 else out.reshape(x.shape)

    def _secant_polish(self, ev, x0, slope, gidx=None, maxiter: int = 10):
        """Masked vectorized secant iteration at full quadrature order.

        ``x0`` are starting guesses (already within ~1e-2 relative of the
        roots), ``slope`` an approximate CDF derivative for the first
        Newton step.  ``gidx`` maps the local points onto ``ev``'s point
        axis (defaults to all points, in order).  A point is *accepted* at
        the extrapolated iterate once the secant error model
        ``C * d_k * d_{k-1}`` drops below tolerance; points whose steps
        stop contracting are left to the bracketing fallback.  Returns
        ``(root, done, last_iterate, last_step, rounds)`` where ``rounds``
        is the number of secant sweeps executed (for the solver metrics).
        """
        n = x0.size
        all_idx = np.arange(n) if gidx is None else gidx
        f0 = ev.objective(x0, all_idx)
        root = x0.copy()
        done = f0 == 0.0
        ok = np.isfinite(slope) & (slope > 0.0)
        step = np.where(ok, f0 / np.where(ok, slope, 1.0), 0.0)
        np.clip(step, -0.05 * x0, 0.05 * x0, out=step)
        x_prev = x0.copy()
        f_prev = f0.copy()
        x_cur = x0 - step
        d_last = np.abs(step) / x_cur
        active = ~done & ok & (step != 0.0)
        rounds = 0
        for it in range(maxiter):
            idx = np.flatnonzero(active)
            if idx.size == 0:
                break
            rounds += 1
            fc = ev.objective(x_cur[idx], all_idx[idx])
            with np.errstate(divide="ignore", invalid="ignore"):
                sec = (fc * (x_cur[idx] - x_prev[idx])
                       / (fc - f_prev[idx]))
            new = x_cur[idx] - sec
            d_new = np.abs(sec) / np.abs(x_cur[idx])
            exact = fc == 0.0
            accept = exact | (_SECANT_C * d_new * d_last[idx] < _SECANT_TOL) \
                | (d_new < 1e-13)
            # Only bail to the bracketing fallback on genuine divergence
            # (step doubling); non-contracting steps during the first two
            # rounds are the normal oscillation transient after a Newton
            # overshoot (pronounced at the high-variation nodes, where the
            # coarse-model seed is a ~1e-2 start) and resolve on their own.
            diverged = ~np.isfinite(new) | (new <= 0.0)
            if it >= 2:
                diverged |= d_new > 2.0 * d_last[idx]
            accept &= ~diverged
            root[idx[accept]] = np.where(exact[accept], x_cur[idx][accept],
                                         new[accept])
            done[idx[accept]] = True
            active[idx[accept | diverged]] = False
            cont = ~(accept | diverged)
            ci = idx[cont]
            x_prev[ci] = x_cur[ci]
            f_prev[ci] = fc[cont]
            x_cur[ci] = new[cont]
            d_last[ci] = d_new[cont]
        return root, done, x_cur, d_last, rounds

    def _solve_points(self, keys, qs, sps, *, cluster: bool = True):
        """Solve all ``(vdd-key, q, spares)`` points of one chunk at once.

        Anchor points (every ``_ANCHOR_STRIDE``-th member of a voltage
        sweep, plus all non-sweep points) are presolved on the coarse
        quadrature level and polished at full order *first*; the remaining
        sweep members then start from a log-space cubic spline through the
        fully-converged anchor roots.  Splining the fine roots (rather
        than the coarse presolve values) matters at the high-variation
        nodes, where the coarse quadrature's model bias is ~1e-2: the bias
        is smooth in ``vdd``, so the spline absorbs it and members land
        within ~1e-4, finishing in two to three secant rounds.  Any point
        the secant model rejects falls back to bracketed Chandrupatla
        iteration.

        ``cluster=False`` treats every point as its own anchor (no spline
        seeding).  That trades a few extra secant rounds on dense sweeps
        for *batch-composition invariance*: each root then depends only on
        its own ``(vdd, q, spares)`` point, never on which other points
        happen to share the chunk, so any grouping of the same queries
        returns bit-identical values.
        """
        kernels = [self._kernel_cache[k] for k in keys]
        n = len(kernels)
        all_idx = np.arange(n)
        vdds = np.array([k.vdd for k in kernels])
        ref = np.array([k.ref for k in kernels])
        fine = _PointsEval(self, self._fine,
                           np.stack([k.mean for k in kernels]),
                           np.stack([k.std for k in kernels]),
                           np.stack([k.a6 for k in kernels]), qs, sps,
                           invariant=not cluster)
        coarse = _PointsEval(self, self._coarse,
                             np.stack([k.coarse_mean for k in kernels]),
                             np.stack([k.coarse_std for k in kernels]),
                             np.stack([k.coarse_a6 for k in kernels]),
                             qs, sps, invariant=not cluster)

        if cluster:
            anchors, jobs = _clusters(vdds, qs, sps)
        else:
            anchors, jobs = all_idx, []
        _obs_counter("solver.anchor_points").inc(anchors.size)
        _obs_counter("solver.spline_seeded").inc(n - anchors.size)

        def f_anchor(x, pos):
            return coarse.objective(x, anchors[pos])

        lo = 0.4 * ref[anchors]
        hi = 1.6 * ref[anchors]
        pos = np.arange(anchors.size)
        flo = f_anchor(lo, pos)
        fhi = f_anchor(hi, pos)
        _expand_bracket(f_anchor, lo, hi, flo, fhi)
        x0 = np.empty(n)
        x0[anchors] = _chandrupatla(f_anchor, lo, hi, flo, fhi, rtol=1e-6)
        root = np.empty(n)

        def coarse_slope(sub):
            # First-step Newton slope from a coarse finite difference; the
            # coarse pdf tracks the full-order pdf to ~20 %, good enough
            # to shrink the starting error by ~5x before the secant takes
            # over.
            h = 1e-4 * x0[sub]
            fc0 = coarse.objective(x0[sub], sub)
            fc1 = coarse.objective(x0[sub] + h, sub)
            return (fc1 - fc0) / h

        def polish(sub):
            r, done, x_last, d_last, rounds = self._secant_polish(
                fine, x0[sub], coarse_slope(sub), gidx=sub)
            root[sub] = r
            _obs_counter("solver.secant_converged").inc(int(done.sum()))
            _obs_histogram("solver.secant_rounds",
                           buckets=(1, 2, 3, 5, 8, 13, 21)).observe(rounds)
            if done.all():
                return
            bad = np.flatnonzero(~done)
            _obs_counter("solver.chandrupatla_fallback").inc(bad.size)
            rest = sub[bad]

            def f_rest(x, pos):
                return fine.objective(x, rest[pos])

            width = np.clip(8.0 * d_last[bad], 1e-3, 0.5)
            center = np.where(x_last[bad] > 0.0, x_last[bad], x0[rest])
            lo = center * (1.0 - width)
            hi = center * (1.0 + width)
            pos = np.arange(rest.size)
            flo = f_rest(lo, pos)
            fhi = f_rest(hi, pos)
            _expand_bracket(f_rest, lo, hi, flo, fhi)
            root[rest] = _chandrupatla(f_rest, lo, hi, flo, fhi, rtol=4e-13)

        polish(anchors)
        if jobs:
            for a_i, m_i in jobs:
                spline = CubicSpline(vdds[a_i], np.log(root[a_i]))
                x0[m_i] = np.exp(spline(vdds[m_i]))
            polish(np.concatenate([m_i for _, m_i in jobs]))
        return root

    def chip_quantile_batch(self, vdd, q=0.99, spares=0.0, *,
                            chunk_size: int = 64,
                            cluster: bool = True) -> np.ndarray:
        """Quantiles of the chip delay for a batch of query points.

        ``vdd``, ``q`` and ``spares`` broadcast together; the result has
        the broadcast shape (a scalar input returns a numpy scalar shape
        ``()``).  All distinct supply points are kernelised in a single
        vectorized pass and all roots are polished simultaneously; results
        match the scalar :meth:`chip_quantile` to ~1e-12 relative.

        ``cluster=False`` disables the sweep spline seeding so each root
        is a pure function of its own point — bit-identical no matter how
        the queries are batched or chunked (the serving dispatcher relies
        on this to coalesce queries from unrelated clients).
        """
        vdd_b, q_b, sp_b = np.broadcast_arrays(
            np.asarray(vdd, dtype=float), np.asarray(q, dtype=float),
            np.asarray(spares, dtype=float))
        shape = vdd_b.shape
        vdds = vdd_b.ravel()
        qs = q_b.ravel().copy()
        sps = sp_b.ravel().copy()
        if qs.size and not ((qs > 0.0) & (qs < 1.0)).all():
            raise ConfigurationError("quantile must be in (0, 1)")
        if sps.size and (sps < 0).any():
            raise ConfigurationError("spares must be >= 0")
        # Solve each distinct (vdd, q, spares) point once and scatter the
        # roots back — sweeps assembled from overlapping grids often repeat
        # points, and the spline seeding needs distinct voltages anyway.
        seen: dict = {}
        scatter = np.empty(vdds.size, dtype=int)
        ukeys: list = []
        uq: list = []
        usp: list = []
        for i, (v, qv, sv) in enumerate(zip(vdds, qs, sps)):
            point = (round(float(v), 9), float(qv), float(sv))
            j = seen.get(point)
            if j is None:
                j = len(ukeys)
                seen[point] = j
                ukeys.append(point[0])
                uq.append(point[1])
                usp.append(point[2])
            scatter[i] = j
        uq_arr = np.asarray(uq)
        usp_arr = np.asarray(usp)
        self._ensure_kernels(ukeys)
        uout = np.empty(len(ukeys))
        for start in range(0, len(ukeys), int(chunk_size)):
            sl = slice(start, start + int(chunk_size))
            try:
                uout[sl] = self._solve_points(ukeys[sl], uq_arr[sl],
                                              usp_arr[sl], cluster=cluster)
            except (ConvergenceError, FloatingPointError) as exc:
                # Mark the whole chunk for the rescue ladder rather than
                # aborting a multi-chunk batch on one bad cluster.
                uout[sl] = np.nan
                current_ledger().record(
                    "solver_chunk_failed", error=repr(exc),
                    points=int(uout[sl].size))
        self._inject_solver_nan(uout)
        bad = ~np.isfinite(uout) | (uout <= 0.0)
        if bad.any():
            self._rescue_points(uout, np.flatnonzero(bad), ukeys, uq_arr,
                                usp_arr)
        out = uout[scatter]
        if shape == ():
            return float(out[0])
        return out.reshape(shape)

    @staticmethod
    def _inject_solver_nan(uout: np.ndarray) -> None:
        """Fault lab: poison the target-th unique solver point with NaN."""
        plan = active_plan()
        if plan is None or not uout.size:
            return
        for target in plan.pending("solver_nan"):
            if plan.consume("solver_nan", target):
                uout[target % uout.size] = np.nan

    def _rescue_points(self, uout, bad_idx, ukeys, uq_arr, usp_arr) -> None:
        """Recover non-finite batch roots point by point.

        Fallback ladder per point: the scalar Brent reference solver
        (bracketing is far more forgiving than the spline-seeded secant),
        then a fixed-seed direct Monte-Carlo quantile estimate.  A point
        that survives both raises :class:`SolverNumericalError` carrying
        its ``(vdd, q, spares)`` coordinates.
        """
        ledger = current_ledger()
        unrecovered = []
        for i in bad_idx:
            vdd, q, sp = float(ukeys[i]), float(uq_arr[i]), float(usp_arr[i])
            value = np.nan
            try:
                value = self.chip_quantile(vdd, q, sp)
            except (ConvergenceError, FloatingPointError):
                pass
            if np.isfinite(value) and value > 0.0:
                _obs_counter("resilience.solver.fallback_scalar").inc()
                ledger.record("solver_fallback_scalar", vdd=vdd, q=q,
                              spares=sp)
                uout[i] = value
                continue
            value = self._montecarlo_quantile(vdd, q, sp)
            if np.isfinite(value) and value > 0.0:
                _obs_counter("resilience.solver.fallback_montecarlo").inc()
                ledger.record("solver_fallback_montecarlo", vdd=vdd, q=q,
                              spares=sp)
                uout[i] = value
                continue
            unrecovered.append((vdd, q, sp))
        if unrecovered:
            ledger.record("solver_unrecoverable", points=unrecovered)
            raise SolverNumericalError(
                f"chip-quantile solve unrecoverable at {len(unrecovered)} "
                f"point(s): {unrecovered}", points=unrecovered)

    def _montecarlo_quantile(self, vdd: float, q: float, spares: float,
                             *, n_samples: int = 20000,
                             seed: int = 0x5EED) -> float:
        """Last-resort direct Monte-Carlo quantile (fixed seed).

        Noisy (~1/sqrt(n) in the tail) next to the deterministic solvers,
        but depends on nothing beyond sampling — usable even when every
        CDF-based bracketing strategy has failed.  Fractional spares are
        rounded to the nearest integer lane count.
        """
        try:
            rng = np.random.default_rng(seed)
            samples = self.sample_chips(vdd, int(n_samples), rng,
                                        spares=int(round(spares)))
            return float(np.quantile(samples, q))
        except (ValueError, FloatingPointError):
            return float("nan")

    def chip_quantile(self, vdd, q: float = 0.99, spares: float = 0) -> float:
        """The ``q`` quantile of the chip delay distribution, in seconds.

        ``spares`` may be fractional (see :meth:`chip_cdf`).  Scalar
        counterpart of :meth:`chip_quantile_batch`, kept as the reference
        solver: Brent iteration over the kernel-backed :meth:`chip_cdf`.
        """
        if not 0.0 < q < 1.0:
            raise ConfigurationError(f"quantile must be in (0, 1), got {q}")
        _obs_counter("solver.scalar_solves").inc()
        vdd = float(vdd)
        ref = self._cdf_kernel(vdd).ref
        lo = 0.4 * ref
        hi = 1.6 * ref
        for _ in range(80):
            if self.chip_cdf(vdd, hi, spares) > q:
                break
            hi *= 1.25
        else:
            raise ConvergenceError("could not bracket the chip-delay quantile")
        for _ in range(80):
            if self.chip_cdf(vdd, lo, spares) < q:
                break
            lo *= 0.8
        else:
            raise ConvergenceError("could not bracket the chip-delay quantile")
        # xtol is absolute: delays are ~1e-9 s, so it must sit far below the
        # delay scale or it, not rtol, bounds the achieved precision.
        return brentq(lambda x: self.chip_cdf(vdd, x, spares) - q, lo, hi,
                      xtol=1e-24, rtol=1e-12)

    # -- sampling --------------------------------------------------------------

    def sample_paths(self, vdd, n_samples: int, rng: np.random.Generator):
        """Sample critical-path delays (seconds), all variation scales in."""
        var = self.tech.variation
        die = var.sample_dies(rng, n_samples)
        lane = var.sample_lanes(rng, n_samples)
        moments = self.path_moments(float(vdd), die.dvth + lane.dvth)
        u = rng.uniform(1e-12, 1.0 - 1e-12, size=n_samples)
        return (cornish_fisher_quantile(moments, u)
                * (1.0 + lane.mult) * (1.0 + die.mult))

    def sample_lanes(self, vdd, n_samples: int, rng: np.random.Generator):
        """Sample one-lane (slowest-of-P-paths) delays."""
        var = self.tech.variation
        die = var.sample_dies(rng, n_samples)
        lane = var.sample_lanes(rng, n_samples)
        moments = self.path_moments(float(vdd), die.dvth + lane.dvth)
        u = rng.uniform(1e-12, 1.0 - 1e-12, size=n_samples)
        u_max = u ** (1.0 / self.paths_per_lane)
        return (cornish_fisher_quantile(moments, u_max)
                * (1.0 + lane.mult) * (1.0 + die.mult))

    def sample_lane_matrix(self, vdd, n_samples: int, rng: np.random.Generator,
                           spares: int = 0):
        """Sample per-lane delay matrices ``(n_samples, width+spares)``.

        Used by the spare-placement studies, which need to know *which*
        lanes are slow, not just the chip delay.  All variation scales are
        applied; lane identity = column index.
        """
        n_lanes = self._effective_lanes(spares)
        var = self.tech.variation
        die = var.sample_dies(rng, n_samples)
        lane = var.sample_lanes(rng, (n_samples, n_lanes))
        moments = self.path_moments(float(vdd),
                                    die.dvth[:, None] + lane.dvth)
        u = rng.uniform(1e-12, 1.0 - 1e-12, size=(n_samples, n_lanes))
        u_lane = u ** (1.0 / self.paths_per_lane)
        delays = cornish_fisher_quantile(moments, u_lane)
        return delays * (1.0 + lane.mult) * (1.0 + die.mult[:, None])

    def sample_chips(self, vdd, n_samples: int, rng: np.random.Generator,
                     spares: int = 0):
        """Sample chip delays (seconds).

        Each sample draws a die, then ``width + spares`` lanes (each with
        its own correlated draw and max-of-P-paths delay); the chip delay
        is the ``(spares+1)``-th largest lane delay (the ``spares``
        slowest lanes are replaced by spares at test time).
        """
        n_lanes = self._effective_lanes(spares)
        lanes = self.sample_lane_matrix(vdd, n_samples, rng, spares=spares)
        if spares == 0:
            return lanes.max(axis=1)
        return np.partition(lanes, n_lanes - 1 - spares,
                            axis=1)[:, n_lanes - 1 - spares]

    # -- chain statistics -------------------------------------------------------

    def chain_statistics(self, vdd, n_gates: int | None = None) -> DelayMoments:
        """Unconditional moments of an ``n_gates`` co-located chain.

        This models the paper's standalone 50-FO4 test chain (Fig. 1b):
        the chain sits inside one spatial-correlation region, so the lane-
        and die-level components are both fully correlated along it.
        Defaults to the engine's ``chain_length``.
        """
        if n_gates is None:
            n_gates = self.chain_length
        var = self.tech.variation
        sigma_corr = var.sigma_vth_chain_corr
        z, w = _grid(sigma_corr, 33)
        gate = gate_delay_moments(self.tech, float(vdd), z,
                                  n_points=self.quad_within)
        m = chain_moments(gate, n_gates)
        mean = np.atleast_1d(m.mean)
        varr = np.atleast_1d(m.var)
        third = np.atleast_1d(m.third)
        # Raw moments over the correlated threshold offset.
        m1 = float(mean @ w)
        m2 = float((varr + mean ** 2) @ w)
        m3 = float((third + 3.0 * mean * varr + mean ** 3) @ w)
        # Correlated multiplicative factor (1+M)(1+m_l): independent, so the
        # k-th raw moment picks up E[(1+M)^k] E[(1+m_l)^k].
        s2_die = var.sigma_mult_corr ** 2
        s2_lane = var.sigma_mult_lane ** 2
        m2 *= (1.0 + s2_die) * (1.0 + s2_lane)
        m3 *= (1.0 + 3.0 * s2_die) * (1.0 + 3.0 * s2_lane)
        mean_t = m1
        var_t = m2 - m1 ** 2
        third_t = m3 - 3.0 * m1 * m2 + 2.0 * m1 ** 3
        return DelayMoments(mean=np.float64(mean_t), var=np.float64(var_t),
                            third=np.float64(third_t))


# ---------------------------------------------------------------------------
# Functional conveniences
# ---------------------------------------------------------------------------


def sample_chip_delays(tech, vdd, *, n_samples: int = 10_000, width: int = 128,
                       paths_per_lane: int = 100, chain_length: int = 50,
                       spares: int = 0, rng=None, seed: int | None = 0):
    """One-shot chip-delay ensemble (see :class:`ChipDelayEngine`)."""
    engine = ChipDelayEngine(tech, width=width, paths_per_lane=paths_per_lane,
                             chain_length=chain_length)
    if rng is None:
        rng = np.random.default_rng(seed)
    return engine.sample_chips(vdd, n_samples, rng, spares=spares)


def chip_delay_quantile(tech, vdd, q: float = 0.99, *, width: int = 128,
                        paths_per_lane: int = 100, chain_length: int = 50,
                        spares: float = 0) -> float:
    """One-shot deterministic chip-delay quantile (seconds)."""
    engine = ChipDelayEngine(tech, width=width, paths_per_lane=paths_per_lane,
                             chain_length=chain_length)
    return engine.chip_quantile(vdd, q, spares=spares)


def chip_delay_cdf(tech, vdd, x, *, width: int = 128, paths_per_lane: int = 100,
                   chain_length: int = 50, spares: float = 0):
    """One-shot deterministic chip-delay CDF."""
    engine = ChipDelayEngine(tech, width=width, paths_per_lane=paths_per_lane,
                             chain_length=chain_length)
    return engine.chip_cdf(vdd, x, spares=spares)
