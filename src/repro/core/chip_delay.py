"""Analytic chip-delay engine for wide SIMD datapaths.

Implements the paper's architecture model (Section 3.2):

* one *critical path* = chain of ``chain_length`` FO4 inverters;
* one *lane* = the slowest of ``paths_per_lane`` iid critical paths;
* the *chip* = the slowest of ``width`` lanes — or, with ``spares`` extra
  lanes whose slowest ``spares`` members are dropped at test time
  (structural duplication, Section 4.1), the ``(spares+1)``-th largest of
  ``width + spares`` lane delays.

Statistically the hierarchy mirrors the three-scale variation model of
:class:`~repro.devices.variation.VariationModel`: gates inside a path see
iid within-die draws; the paths of one lane share that lane's
spatially-correlated draw; all lanes share the die's draw.  The engine
conditions on the two correlated scales with Gauss-Hermite quadrature and
treats the within-die scale analytically (path cumulants + Cornish-Fisher).

Two evaluation styles are provided:

* **Deterministic** CDF/quantile (:meth:`ChipDelayEngine.chip_cdf`,
  :meth:`ChipDelayEngine.chip_quantile`): noise-free, so millivolt-scale
  voltage-margin searches are well posed, and fractional spare counts are
  supported through the regularised-incomplete-beta order-statistic form.
* **Sampling** (:meth:`ChipDelayEngine.sample_chips` and friends): draws
  ensembles for the paper's histogram figures via inverse-transform
  sampling — equivalent to per-gate Monte-Carlo up to the Edgeworth
  approximation of the 50-gate path sum, at ~10^4x less work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq
from scipy.special import betainc

from repro.core.moments import (
    DelayMoments,
    chain_moments,
    cornish_fisher_cdf,
    cornish_fisher_quantile,
    gate_delay_moments,
    hermite_nodes,
)
from repro.errors import ConfigurationError, ConvergenceError

__all__ = [
    "ChipDelayEngine",
    "sample_chip_delays",
    "chip_delay_quantile",
    "chip_delay_cdf",
]


def _grid(sigma: float, order: int):
    """Gauss-Hermite nodes/weights for N(0, sigma); trivial grid if zero."""
    if sigma <= 0:
        return np.zeros(1), np.ones(1)
    z, w = hermite_nodes(order)
    return sigma * z, w


class _OffsetMoments:
    """Path-delay moments as a function of the correlated Vth offset.

    The correlated (lane + die) threshold offset enters the path moments
    through a smooth one-dimensional map, so we tabulate the three chain
    cumulants on a dense offset grid once per supply voltage and
    interpolate; this makes per-(chip, lane) moment lookups O(1).
    """

    def __init__(self, tech, vdd: float, chain_length: int,
                 quad_within: int, span_sigma: float, n_grid: int = 257) -> None:
        self.vdd = float(vdd)
        if span_sigma <= 0:
            grid = np.zeros(1)
        else:
            half = 8.0 * span_sigma
            grid = np.linspace(-half, half, n_grid)
        gate = gate_delay_moments(tech, self.vdd, grid, n_points=quad_within)
        path = chain_moments(gate, chain_length)
        self._grid = grid
        self._mean = np.atleast_1d(path.mean)
        self._var = np.atleast_1d(path.var)
        self._third = np.atleast_1d(path.third)

    def __call__(self, offsets) -> DelayMoments:
        offsets = np.asarray(offsets, dtype=float)
        if self._grid.size == 1:
            shape = offsets.shape
            return DelayMoments(
                mean=np.broadcast_to(self._mean[0], shape).copy(),
                var=np.broadcast_to(self._var[0], shape).copy(),
                third=np.broadcast_to(self._third[0], shape).copy(),
            )
        return DelayMoments(
            mean=np.interp(offsets, self._grid, self._mean),
            var=np.interp(offsets, self._grid, self._var),
            third=np.interp(offsets, self._grid, self._third),
        )


@dataclass(frozen=True)
class _CorrelatedGrids:
    """Quadrature grids over the die- and lane-level variation."""

    die_dvth: np.ndarray
    die_dvth_w: np.ndarray
    die_mult: np.ndarray
    die_mult_w: np.ndarray
    lane_dvth: np.ndarray
    lane_dvth_w: np.ndarray
    lane_mult: np.ndarray
    lane_mult_w: np.ndarray


class ChipDelayEngine:
    """Order-statistics delay engine for one technology node.

    Parameters
    ----------
    tech:
        Technology card.
    width:
        SIMD width (active lanes the workload needs), default 128.
    paths_per_lane:
        Critical + near-critical paths per lane, default 100.
    chain_length:
        FO4 inverters per critical path, default 50.
    quad_within:
        Gauss-Hermite order for the within-gate threshold integral.
    quad_corr_vth, quad_corr_mult:
        Gauss-Hermite orders for each correlated threshold /
        multiplicative integral (applied at both the lane and die scales).
    """

    def __init__(self, tech, *, width: int = 128, paths_per_lane: int = 100,
                 chain_length: int = 50, quad_within: int = 48,
                 quad_corr_vth: int = 12, quad_corr_mult: int = 6) -> None:
        if width < 1 or paths_per_lane < 1 or chain_length < 1:
            raise ConfigurationError(
                "width, paths_per_lane and chain_length must all be >= 1")
        self.tech = tech
        self.width = int(width)
        self.paths_per_lane = int(paths_per_lane)
        self.chain_length = int(chain_length)
        self.quad_within = int(quad_within)
        self.quad_corr_vth = int(quad_corr_vth)
        self.quad_corr_mult = int(quad_corr_mult)

        var = tech.variation
        die_dvth, die_dvth_w = _grid(var.sigma_vth_d2d, quad_corr_vth)
        die_mult, die_mult_w = _grid(var.sigma_mult_corr, quad_corr_mult)
        lane_dvth, lane_dvth_w = _grid(var.sigma_vth_lane, quad_corr_vth)
        lane_mult, lane_mult_w = _grid(var.sigma_mult_lane, quad_corr_mult)
        self._grids = _CorrelatedGrids(
            die_dvth, die_dvth_w, die_mult, die_mult_w,
            lane_dvth, lane_dvth_w, lane_mult, lane_mult_w)
        self._offset_cache: dict = {}

    # -- internals -----------------------------------------------------------

    def _offset_moments(self, vdd: float) -> _OffsetMoments:
        key = round(float(vdd), 9)
        out = self._offset_cache.get(key)
        if out is None:
            span = self.tech.variation.sigma_vth_chain_corr
            out = _OffsetMoments(self.tech, vdd, self.chain_length,
                                 self.quad_within, span)
            self._offset_cache[key] = out
        return out

    def path_moments(self, vdd, corr_dvth) -> DelayMoments:
        """Path moments conditioned on a correlated (lane+die) Vth offset."""
        return self._offset_moments(float(vdd))(corr_dvth)

    def _check_spares(self, spares) -> None:
        if spares < 0:
            raise ConfigurationError(f"spares must be >= 0, got {spares}")

    def _effective_lanes(self, spares) -> int:
        self._check_spares(spares)
        if int(spares) != spares:
            raise ConfigurationError(
                f"sampling requires an integer spare count, got {spares}")
        return self.width + int(spares)

    # -- deterministic CDF / quantile ----------------------------------------

    def chip_cdf(self, vdd, x, spares: float = 0):
        """P(chip delay <= x) with the ``spares`` slowest lanes dropped.

        ``x`` is in seconds (scalar or array).  ``spares`` may be
        fractional: with ``width + spares`` lanes of which the ``spares``
        slowest are dropped, the conditional CDF given the die is the
        regularised incomplete beta ``I_{G_lane}(width, spares + 1)`` — for
        integer ``spares`` exactly the binomial tail
        ``P(Binom(width+spares, 1-G_lane) <= spares)``, smooth in between
        (used by the calibration fitter and the continuous spare solver).
        """
        self._check_spares(spares)
        g = self._grids
        om = self._offset_moments(float(vdd))
        x = np.asarray(x, dtype=float)
        x_flat = np.atleast_1d(x)

        # Axes: (J die_vth, K die_mult, A lane_vth, B lane_mult, X).
        offsets = g.die_dvth[:, None] + g.lane_dvth[None, :]       # (J, A)
        m = om(offsets)
        mean = m.mean[:, None, :, None, None]
        std = np.sqrt(m.var)[:, None, :, None, None]
        gamma_m = DelayMoments(mean=m.mean, var=m.var, third=m.third)
        gamma = np.asarray(gamma_m.skewness)[:, None, :, None, None]

        scale = ((1.0 + g.die_mult)[None, :, None, None, None]
                 * (1.0 + g.lane_mult)[None, None, None, :, None])
        y = x_flat[None, None, None, None, :] / scale

        moments = DelayMoments(mean=mean, var=std ** 2, third=gamma * std ** 3)
        f_path = cornish_fisher_cdf(moments, y)
        f_lane = f_path ** self.paths_per_lane
        # Average over the lane-level variation -> per-die lane CDF.
        lane_w = (g.lane_dvth_w[None, None, :, None, None]
                  * g.lane_mult_w[None, None, None, :, None])
        g_lane = (f_lane * lane_w).sum(axis=(2, 3))                # (J, K, X)
        g_lane = np.clip(g_lane, 0.0, 1.0)
        if spares == 0:
            f_chip = g_lane ** self.width
        else:
            f_chip = betainc(self.width, float(spares) + 1.0, g_lane)
        die_w = g.die_dvth_w[:, None, None] * g.die_mult_w[None, :, None]
        out = (f_chip * die_w).sum(axis=(0, 1))
        return out[0] if x.ndim == 0 else out.reshape(x.shape)

    def chip_quantile(self, vdd, q: float = 0.99, spares: float = 0) -> float:
        """The ``q`` quantile of the chip delay distribution, in seconds.

        ``spares`` may be fractional (see :meth:`chip_cdf`).
        """
        if not 0.0 < q < 1.0:
            raise ConfigurationError(f"quantile must be in (0, 1), got {q}")
        vdd = float(vdd)
        om = self._offset_moments(vdd)
        ref = float(np.median(np.atleast_1d(om(0.0).mean)))
        lo = 0.4 * ref
        hi = 1.6 * ref
        for _ in range(80):
            if self.chip_cdf(vdd, hi, spares) > q:
                break
            hi *= 1.25
        else:
            raise ConvergenceError("could not bracket the chip-delay quantile")
        for _ in range(80):
            if self.chip_cdf(vdd, lo, spares) < q:
                break
            lo *= 0.8
        else:
            raise ConvergenceError("could not bracket the chip-delay quantile")
        return brentq(lambda x: self.chip_cdf(vdd, x, spares) - q, lo, hi,
                      xtol=1e-16, rtol=1e-12)

    # -- sampling --------------------------------------------------------------

    def sample_paths(self, vdd, n_samples: int, rng: np.random.Generator):
        """Sample critical-path delays (seconds), all variation scales in."""
        var = self.tech.variation
        die = var.sample_dies(rng, n_samples)
        lane = var.sample_lanes(rng, n_samples)
        moments = self.path_moments(float(vdd), die.dvth + lane.dvth)
        u = rng.uniform(1e-12, 1.0 - 1e-12, size=n_samples)
        return (cornish_fisher_quantile(moments, u)
                * (1.0 + lane.mult) * (1.0 + die.mult))

    def sample_lanes(self, vdd, n_samples: int, rng: np.random.Generator):
        """Sample one-lane (slowest-of-P-paths) delays."""
        var = self.tech.variation
        die = var.sample_dies(rng, n_samples)
        lane = var.sample_lanes(rng, n_samples)
        moments = self.path_moments(float(vdd), die.dvth + lane.dvth)
        u = rng.uniform(1e-12, 1.0 - 1e-12, size=n_samples)
        u_max = u ** (1.0 / self.paths_per_lane)
        return (cornish_fisher_quantile(moments, u_max)
                * (1.0 + lane.mult) * (1.0 + die.mult))

    def sample_lane_matrix(self, vdd, n_samples: int, rng: np.random.Generator,
                           spares: int = 0):
        """Sample per-lane delay matrices ``(n_samples, width+spares)``.

        Used by the spare-placement studies, which need to know *which*
        lanes are slow, not just the chip delay.  All variation scales are
        applied; lane identity = column index.
        """
        n_lanes = self._effective_lanes(spares)
        var = self.tech.variation
        die = var.sample_dies(rng, n_samples)
        lane = var.sample_lanes(rng, (n_samples, n_lanes))
        moments = self.path_moments(float(vdd),
                                    die.dvth[:, None] + lane.dvth)
        u = rng.uniform(1e-12, 1.0 - 1e-12, size=(n_samples, n_lanes))
        u_lane = u ** (1.0 / self.paths_per_lane)
        delays = cornish_fisher_quantile(moments, u_lane)
        return delays * (1.0 + lane.mult) * (1.0 + die.mult[:, None])

    def sample_chips(self, vdd, n_samples: int, rng: np.random.Generator,
                     spares: int = 0):
        """Sample chip delays (seconds).

        Each sample draws a die, then ``width + spares`` lanes (each with
        its own correlated draw and max-of-P-paths delay); the chip delay
        is the ``(spares+1)``-th largest lane delay (the ``spares``
        slowest lanes are replaced by spares at test time).
        """
        n_lanes = self._effective_lanes(spares)
        lanes = self.sample_lane_matrix(vdd, n_samples, rng, spares=spares)
        if spares == 0:
            return lanes.max(axis=1)
        return np.partition(lanes, n_lanes - 1 - spares,
                            axis=1)[:, n_lanes - 1 - spares]

    # -- chain statistics -------------------------------------------------------

    def chain_statistics(self, vdd, n_gates: int | None = None) -> DelayMoments:
        """Unconditional moments of an ``n_gates`` co-located chain.

        This models the paper's standalone 50-FO4 test chain (Fig. 1b):
        the chain sits inside one spatial-correlation region, so the lane-
        and die-level components are both fully correlated along it.
        Defaults to the engine's ``chain_length``.
        """
        if n_gates is None:
            n_gates = self.chain_length
        var = self.tech.variation
        sigma_corr = var.sigma_vth_chain_corr
        z, w = _grid(sigma_corr, 33)
        gate = gate_delay_moments(self.tech, float(vdd), z,
                                  n_points=self.quad_within)
        m = chain_moments(gate, n_gates)
        mean = np.atleast_1d(m.mean)
        varr = np.atleast_1d(m.var)
        third = np.atleast_1d(m.third)
        # Raw moments over the correlated threshold offset.
        m1 = float(mean @ w)
        m2 = float((varr + mean ** 2) @ w)
        m3 = float((third + 3.0 * mean * varr + mean ** 3) @ w)
        # Correlated multiplicative factor (1+M)(1+m_l): independent, so the
        # k-th raw moment picks up E[(1+M)^k] E[(1+m_l)^k].
        s2_die = var.sigma_mult_corr ** 2
        s2_lane = var.sigma_mult_lane ** 2
        m2 *= (1.0 + s2_die) * (1.0 + s2_lane)
        m3 *= (1.0 + 3.0 * s2_die) * (1.0 + 3.0 * s2_lane)
        mean_t = m1
        var_t = m2 - m1 ** 2
        third_t = m3 - 3.0 * m1 * m2 + 2.0 * m1 ** 3
        return DelayMoments(mean=np.float64(mean_t), var=np.float64(var_t),
                            third=np.float64(third_t))


# ---------------------------------------------------------------------------
# Functional conveniences
# ---------------------------------------------------------------------------


def sample_chip_delays(tech, vdd, *, n_samples: int = 10_000, width: int = 128,
                       paths_per_lane: int = 100, chain_length: int = 50,
                       spares: int = 0, rng=None, seed: int | None = 0):
    """One-shot chip-delay ensemble (see :class:`ChipDelayEngine`)."""
    engine = ChipDelayEngine(tech, width=width, paths_per_lane=paths_per_lane,
                             chain_length=chain_length)
    if rng is None:
        rng = np.random.default_rng(seed)
    return engine.sample_chips(vdd, n_samples, rng, spares=spares)


def chip_delay_quantile(tech, vdd, q: float = 0.99, *, width: int = 128,
                        paths_per_lane: int = 100, chain_length: int = 50,
                        spares: float = 0) -> float:
    """One-shot deterministic chip-delay quantile (seconds)."""
    engine = ChipDelayEngine(tech, width=width, paths_per_lane=paths_per_lane,
                             chain_length=chain_length)
    return engine.chip_quantile(vdd, q, spares=spares)


def chip_delay_cdf(tech, vdd, x, *, width: int = 128, paths_per_lane: int = 100,
                   chain_length: int = 50, spares: float = 0):
    """One-shot deterministic chip-delay CDF."""
    engine = ChipDelayEngine(tech, width=width, paths_per_lane=paths_per_lane,
                             chain_length=chain_length)
    return engine.chip_cdf(vdd, x, spares=spares)
