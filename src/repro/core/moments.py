"""Exact delay moments via Gauss-Hermite quadrature and Cornish-Fisher
quantiles.

Why this exists: a faithful per-gate Monte-Carlo of the paper's
architecture-level figures needs 10^4 chips x 128 lanes x 100 paths x 50
gates ~ 6.4e9 gate-delay samples per (node, voltage) point.  Instead we
exploit the structure of the problem:

1. Conditioned on the die-level draws (threshold offset ``D``,
   multiplicative factor ``M``), gate delays along a path are iid, so the
   path delay is a sum of 50 iid variables.  Its first three *cumulants*
   are 50x the gate cumulants, which we compute exactly (to quadrature
   accuracy) by integrating the analytic delay model over the within-die
   normal variation.
2. The path-delay distribution is then inverted with a third-order
   Cornish-Fisher expansion, giving a closed-form quantile function
   ``Q(u)``; its inverse gives the CDF.
3. Lane and chip delays are order statistics of iid path delays —
   handled in :mod:`repro.core.chip_delay`.

The full Monte-Carlo engine (:mod:`repro.core.montecarlo`) cross-validates
this pipeline in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np
from scipy.special import ndtr, ndtri

from repro.errors import ConfigurationError

__all__ = [
    "DelayMoments",
    "gate_delay_moments",
    "chain_moments",
    "cornish_fisher_quantile",
    "cornish_fisher_cdf",
    "hermite_nodes",
]

#: Cap on the |skewness| fed into Cornish-Fisher: beyond this the expansion
#: loses monotonicity in the far tail.  Path skew after 50-gate averaging is
#: well under 0.3 for every calibrated card, so the cap only guards abuse.
_MAX_SKEW = 1.0


@lru_cache(maxsize=32)
def hermite_nodes(n_points: int):
    """Probabilists' Gauss-Hermite nodes/weights for ``E[g(Z)]``, ``Z~N(0,1)``.

    Returns ``(nodes, weights)`` with ``sum(weights) == 1`` so that
    ``E[g(Z)] ~= sum_k w_k g(z_k)``.
    """
    if n_points < 2:
        raise ConfigurationError("quadrature needs at least 2 points")
    x, w = np.polynomial.hermite.hermgauss(n_points)
    nodes = x * np.sqrt(2.0)
    weights = w / np.sqrt(np.pi)
    # The arrays are shared through the lru_cache: a caller mutating them
    # would silently corrupt every later quadrature, so freeze them.
    nodes.setflags(write=False)
    weights.setflags(write=False)
    return nodes, weights


@dataclass(frozen=True)
class DelayMoments:
    """First three central moments of a delay distribution.

    ``mean`` and the central moments may be scalars or numpy arrays (one
    entry per die sample).  ``third`` is the third *central* moment
    ``E[(X-mu)^3]``, not the skewness.
    """

    mean: np.ndarray
    var: np.ndarray
    third: np.ndarray

    @property
    def std(self):
        return np.sqrt(self.var)

    @property
    def skewness(self):
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(self.var > 0, self.third / self.var ** 1.5, 0.0)

    @property
    def three_sigma_over_mu(self):
        """The paper's variation metric as a fraction."""
        return 3.0 * self.std / self.mean

    def scaled(self, factor):
        """Moments of ``factor * X`` (``factor`` broadcasts)."""
        factor = np.asarray(factor, dtype=float)
        return DelayMoments(
            mean=self.mean * factor,
            var=self.var * factor ** 2,
            third=self.third * factor ** 3,
        )


def gate_delay_moments(tech, vdd, die_dvth=0.0, n_points: int = 48) -> DelayMoments:
    """Central moments of a single FO4 gate delay, conditioned on the die.

    Integrates the technology's delay model over the *within-die* variation
    (threshold shift ``eps ~ N(0, sigma_vth_wid)`` and multiplicative noise
    ``m ~ N(0, sigma_mult_rand)``) with Gauss-Hermite quadrature.  The
    multiplicative component factors out analytically, so only a 1-D
    quadrature over ``eps`` is needed.

    Parameters
    ----------
    tech:
        A :class:`~repro.devices.technology.TechnologyNode`.
    vdd:
        Supply voltage (V); scalar or an array broadcastable against
        ``die_dvth`` (the batched kernel builder evaluates many supply
        points in one call).
    die_dvth:
        Die-level threshold offset(s); scalar or array.  The result
        broadcasts to ``broadcast_shapes(vdd.shape, die_dvth.shape)``.
    n_points:
        Quadrature order.
    """
    die_dvth = np.asarray(die_dvth, dtype=float)
    vdd = np.asarray(vdd, dtype=float)
    shape = np.broadcast_shapes(die_dvth.shape, vdd.shape)
    scalar_input = shape == ()

    z, w = hermite_nodes(n_points)
    sigma_w = tech.variation.sigma_vth_wid
    # (..., K) tensor of delays at each quadrature node.
    dvth = np.broadcast_to(die_dvth, shape)[..., None] + sigma_w * z
    if scalar_input:
        delay = tech.fo4_delay(float(vdd), dvth)
    else:
        delay = tech.fo4_delay(np.broadcast_to(vdd, shape)[..., None], dvth)

    # Raw moments over the threshold component.
    m1 = delay @ w
    m2 = (delay ** 2) @ w
    m3 = (delay ** 3) @ w

    # Fold in the independent multiplicative noise (1 + m), m ~ N(0, s):
    # E[(1+m)] = 1, E[(1+m)^2] = 1 + s^2, E[(1+m)^3] = 1 + 3 s^2.
    s2 = tech.variation.sigma_mult_rand ** 2
    m2 = m2 * (1.0 + s2)
    m3 = m3 * (1.0 + 3.0 * s2)

    mean = m1
    # Guard the m2 - m1^2 cancellation: with ablated (zero) variation the
    # true variance is 0 and floating-point noise can land epsilon-negative.
    var = np.maximum(m2 - m1 ** 2, (1e-12 * m1) ** 2)
    third = m3 - 3.0 * m1 * m2 + 2.0 * m1 ** 3
    return DelayMoments(mean=mean, var=var, third=third)


def chain_moments(gate: DelayMoments, n_gates: int) -> DelayMoments:
    """Moments of a chain of ``n_gates`` iid gates (cumulants are additive)."""
    if n_gates < 1:
        raise ConfigurationError(f"chain length must be >= 1, got {n_gates}")
    return DelayMoments(
        mean=gate.mean * n_gates,
        var=gate.var * n_gates,
        third=gate.third * n_gates,
    )


def _skew_coefficient(moments: DelayMoments):
    gamma = np.clip(moments.skewness, -_MAX_SKEW, _MAX_SKEW)
    return gamma


def cornish_fisher_quantile(moments: DelayMoments, u):
    """Quantile function of a distribution summarised by three cumulants.

    Third-order Cornish-Fisher:
    ``Q(u) = mu + sigma * (z + gamma (z^2 - 1) / 6)`` with
    ``z = Phi^{-1}(u)``.  ``moments`` fields and ``u`` broadcast together,
    so one call evaluates a whole (die-sample x lane) matrix.
    """
    u = np.asarray(u, dtype=float)
    if np.any((u <= 0.0) | (u >= 1.0)):
        raise ConfigurationError("quantile argument must lie strictly in (0, 1)")
    z = ndtri(u)
    gamma = _skew_coefficient(moments)
    return moments.mean + moments.std * (z + gamma * (z * z - 1.0) / 6.0)


def cornish_fisher_cdf(moments: DelayMoments, x):
    """CDF matching :func:`cornish_fisher_quantile` (exact inverse).

    Solves ``x = mu + sigma (z + gamma (z^2-1)/6)`` for ``z`` — a quadratic
    when ``gamma != 0`` — taking the monotone branch, then returns
    ``Phi(z)``.
    """
    x = np.asarray(x, dtype=float)
    gamma = np.asarray(_skew_coefficient(moments), dtype=float)
    std = np.asarray(moments.std, dtype=float)
    mean = np.asarray(moments.mean, dtype=float)

    # Normalised deviation y = (x - mu) / sigma = z + gamma (z^2 - 1)/6.
    with np.errstate(divide="ignore", invalid="ignore"):
        y = (x - mean) / std

    y, gamma = np.broadcast_arrays(y, gamma)
    z = np.array(y, dtype=float, copy=True)

    nonzero = np.abs(gamma) > 1e-12
    if np.any(nonzero):
        g = gamma[nonzero]
        yy = y[nonzero]
        a = g / 6.0
        # a z^2 + z - (yy + a) = 0 -> monotone branch, written in the
        # cancellation-free (citardauq) form so it stays exact as a -> 0.
        disc = 1.0 + 4.0 * a * (yy + a)
        # Below the parabola vertex the CDF saturates; clamp the
        # discriminant so those points map to the extreme quantile.
        disc = np.maximum(disc, 0.0)
        z[nonzero] = 2.0 * (yy + a) / (1.0 + np.sqrt(disc))
    return ndtr(z)
