"""Sensitivity of the paper's conclusions to its modelling assumptions.

The paper fixes three assumptions without sweeping them: the 99 %
sign-off quantile, 100 critical paths per lane ("50 critical + 50
near-critical"), and the 50-FO4 chain as the critical-path proxy.  Each
sweep here re-derives the headline outputs (performance drop, spare
count, voltage margin) under alternatives, showing which conclusions are
robust and which numbers move.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analyzer import VariationAnalyzer
from repro.devices.technology import get_technology
from repro.errors import ConfigurationError

__all__ = [
    "AssumptionSweep",
    "signoff_quantile_sweep",
    "paths_per_lane_sweep",
    "chain_length_sweep",
]


@dataclass(frozen=True)
class AssumptionSweep:
    """One row of an assumption sweep."""

    assumption: str
    value: float
    performance_drop: float
    spares: int | None          # None = saturated
    margin_mv: float | None     # None = infeasible

    def summary(self) -> str:
        spares = self.spares if self.spares is not None else ">max"
        margin = (f"{self.margin_mv:.1f} mV" if self.margin_mv is not None
                  else "infeasible")
        return (f"{self.assumption}={self.value:<8g} drop "
                f"{100 * self.performance_drop:5.2f} %  spares {spares}  "
                f"margin {margin}")


def _evaluate(analyzer: VariationAnalyzer, vdd: float, assumption: str,
              value: float) -> AssumptionSweep:
    from repro.mitigation.voltage_margin import solve_voltage_margin
    from repro.sparing.duplication import solve_spares
    dup = solve_spares(analyzer, vdd)
    mar = solve_voltage_margin(analyzer, vdd)
    return AssumptionSweep(
        assumption=assumption,
        value=value,
        performance_drop=analyzer.performance_drop(vdd),
        spares=dup.spares if dup.feasible else None,
        margin_mv=mar.margin_mv if mar.feasible else None,
    )


def signoff_quantile_sweep(node: str, vdd: float,
                           quantiles=(0.90, 0.99, 0.999)) -> list:
    """Re-derive the headline outputs at different sign-off quantiles.

    A stricter sign-off samples deeper into the tail on *both* the
    baseline and the NTV side, so the drop moves less than the raw
    quantile does — quantifying how arbitrary the paper's 99 % choice is.
    """
    tech = get_technology(node)
    rows = []
    for q in quantiles:
        if not 0.0 < q < 1.0:
            raise ConfigurationError(f"quantile {q} out of range")
        analyzer = VariationAnalyzer(tech, signoff_quantile=q)
        rows.append(_evaluate(analyzer, vdd, "signoff_q", q))
    return rows


def paths_per_lane_sweep(node: str, vdd: float,
                         counts=(50, 100, 200)) -> list:
    """Re-derive the outputs with different per-lane critical-path counts.

    The paper doubles its synthesis report's 50 critical paths to 100 to
    cover near-critical paths promoted by variation; this sweep shows the
    sensitivity of that choice.
    """
    tech = get_technology(node)
    rows = []
    for count in counts:
        if count < 1:
            raise ConfigurationError("paths_per_lane must be >= 1")
        analyzer = VariationAnalyzer(tech, paths_per_lane=int(count))
        rows.append(_evaluate(analyzer, vdd, "paths_per_lane", count))
    return rows


def chain_length_sweep(node: str, vdd: float,
                       lengths=(25, 50, 100)) -> list:
    """Re-derive the outputs with different critical-path proxy depths.

    Shorter chains average less within-path randomness (more variation
    per path); this checks how much of the architecture conclusion rides
    on the 50-FO4 choice.
    """
    tech = get_technology(node)
    rows = []
    for length in lengths:
        if length < 1:
            raise ConfigurationError("chain_length must be >= 1")
        analyzer = VariationAnalyzer(tech, chain_length=int(length))
        rows.append(_evaluate(analyzer, vdd, "chain_length", length))
    return rows
