"""Ablation and sensitivity analyses of the reproduction's design choices.

* :mod:`repro.analysis.decomposition` — which variation component (gate /
  lane / die, threshold / multiplicative) drives the near-threshold
  performance drop, and which of them each mitigation technique can
  actually fix.
* :mod:`repro.analysis.sensitivity` — robustness of the paper's
  conclusions to its modelling assumptions: the 99 % sign-off quantile,
  the 100-critical-paths-per-lane count, and the 50-FO4 critical-path
  proxy depth.
"""

from repro.analysis.decomposition import (
    ComponentContribution,
    decompose_performance_drop,
    mitigation_coverage,
)
from repro.analysis.sensitivity import (
    AssumptionSweep,
    signoff_quantile_sweep,
    paths_per_lane_sweep,
    chain_length_sweep,
)

__all__ = [
    "ComponentContribution",
    "decompose_performance_drop",
    "mitigation_coverage",
    "AssumptionSweep",
    "signoff_quantile_sweep",
    "paths_per_lane_sweep",
    "chain_length_sweep",
]
