"""Variance decomposition of the near-threshold performance drop.

Answers two questions the paper's mitigation story hinges on:

1. *Which variation component creates the drop?*  Each spatial scale is
   zeroed in turn and the Fig. 4 drop recomputed; the delta is that
   component's contribution.
2. *Which components can each technique fix?*  Structural duplication
   only removes lane-level outliers; voltage margining speeds up
   everything.  :func:`mitigation_coverage` quantifies this by applying a
   generous amount of each technique to ablated variation models.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.analyzer import VariationAnalyzer
from repro.errors import ConfigurationError

__all__ = [
    "ComponentContribution",
    "decompose_performance_drop",
    "mitigation_coverage",
]

#: The ablatable variation components: name -> fields to zero.
_COMPONENTS = {
    "gate-level": ("sigma_vth_wid", "sigma_mult_rand"),
    "lane-level": ("sigma_vth_lane", "sigma_mult_lane"),
    "die-level": ("sigma_vth_d2d", "sigma_mult_corr"),
    "threshold (all scales)": ("sigma_vth_wid", "sigma_vth_lane",
                               "sigma_vth_d2d"),
    "multiplicative (all scales)": ("sigma_mult_rand", "sigma_mult_lane",
                                    "sigma_mult_corr"),
}


@dataclass(frozen=True)
class ComponentContribution:
    """Effect of removing one variation component."""

    component: str
    full_drop: float          # Fig. 4 drop with all components
    drop_without: float       # drop with this component zeroed
    contribution: float       # full - without

    @property
    def share(self) -> float:
        """Fraction of the full drop attributable to this component."""
        return self.contribution / self.full_drop if self.full_drop else 0.0

    def summary(self) -> str:
        return (f"{self.component:<28s} drop {100 * self.drop_without:5.2f} % "
                f"without it -> contributes {100 * self.contribution:5.2f} pp "
                f"({100 * self.share:4.0f} %)")


def _ablated_analyzer(analyzer: VariationAnalyzer, fields) -> VariationAnalyzer:
    variation = replace(analyzer.tech.variation,
                        **{f: 0.0 for f in fields})
    return VariationAnalyzer(
        analyzer.tech.with_variation(variation),
        width=analyzer.width,
        paths_per_lane=analyzer.paths_per_lane,
        chain_length=analyzer.chain_length,
        signoff_quantile=analyzer.signoff_quantile)


def decompose_performance_drop(analyzer: VariationAnalyzer, vdd: float,
                               components=None) -> list:
    """Per-component contributions to the Fig. 4 performance drop.

    Contributions need not sum exactly to the full drop (quantiles are
    not additive), but their ordering and magnitudes identify the driver.
    """
    names = tuple(components) if components is not None else tuple(_COMPONENTS)
    for name in names:
        if name not in _COMPONENTS:
            raise ConfigurationError(
                f"unknown component {name!r}; choose from "
                f"{', '.join(_COMPONENTS)}")
    full = analyzer.performance_drop(vdd)
    results = []
    for name in names:
        ablated = _ablated_analyzer(analyzer, _COMPONENTS[name])
        without = ablated.performance_drop(vdd)
        results.append(ComponentContribution(
            component=name, full_drop=full, drop_without=without,
            contribution=full - without))
    return results


def mitigation_coverage(analyzer: VariationAnalyzer, vdd: float,
                        spares: int = 32, margin: float = 0.02) -> dict:
    """How much of the drop each technique removes, per variation scale.

    Returns ``{scale: {"duplication": removed_fraction, "margining":
    removed_fraction}}`` where each scale keeps *only* that component
    active (isolating what the technique can act on).  Demonstrates the
    structural fact behind Fig. 7: spares cannot fix die-level slowdown.
    """
    out = {}
    for scale in ("gate-level", "lane-level", "die-level"):
        keep = _COMPONENTS[scale]
        zero = tuple(f for fields in _COMPONENTS.values() for f in fields
                     if f not in keep)
        only = _ablated_analyzer(analyzer, tuple(set(zero)))
        base_drop = only.performance_drop(vdd)
        if base_drop <= 0:
            out[scale] = {"duplication": 0.0, "margining": 0.0,
                          "base_drop": base_drop}
            continue
        dup_drop = only.performance_drop(vdd, spares=spares)
        # Margining: run at vdd+margin but keep the vdd target (Fig. 6).
        target_fo4 = only.nominal_signoff_fo4()
        mar_fo4 = (only.chip_quantile(vdd + margin)
                   / only.fo4_unit(vdd))
        mar_drop = mar_fo4 / target_fo4 - 1.0
        out[scale] = {
            "base_drop": base_drop,
            "duplication": 1.0 - max(dup_drop, 0.0) / base_drop,
            "margining": min(1.0, 1.0 - mar_drop / base_drop),
        }
    return out
