"""Figure 4: performance drop of the 128-wide SIMD datapath in the
near-threshold region, four technology nodes.

The drop compares the 99 % chip delay in FO4 units at the near-threshold
voltage against the same metric at the node's nominal voltage — isolating
the variation-induced slowdown from the ~10x absolute one.
"""

from __future__ import annotations

import numpy as np

from repro.devices.paper_anchors import FIG4_PERF_DROP
from repro.devices.technology import available_technologies, get_technology
from repro.experiments.registry import ExperimentResult, experiment, get_analyzer
from repro.experiments.report import TextTable

VOLTAGES = np.round(np.arange(0.50, 0.751, 0.025), 3)


@experiment("fig4", "Performance drop vs Vdd, 128-wide SIMD, four nodes",
            "Figure 4")
def run(fast: bool = False) -> ExperimentResult:
    table = TextTable(
        "Performance drop (%) of 128-wide SIMD vs nominal voltage",
        ["Vdd (V)"] + list(available_technologies()))
    # One batched quantile solve per node covers its whole voltage column.
    data = {}
    for node in available_technologies():
        nominal = get_technology(node).nominal_vdd
        valid = [float(v) for v in VOLTAGES if v <= nominal + 1e-9]
        drops = get_analyzer(node).performance_drops(np.array(valid))
        data[node] = {v: 100 * float(d) for v, d in zip(valid, drops)}
    for vdd in VOLTAGES:
        row = [float(vdd)]
        for node in available_technologies():
            row.append(data[node].get(float(vdd)))
        table.add_row(*row)

    notes = []
    for node, anchors in FIG4_PERF_DROP.items():
        model = {v: round(data[node][v], 2) for v in anchors}
        notes.append(f"{node} paper anchors {anchors} -> model {model}")
    notes.append("drop grows as Vdd falls and as technology scales; "
                 "90nm stays small (simple mitigation suffices)")
    return ExperimentResult("fig4", "Near-threshold performance drop",
                            [table], notes, data)
