"""Ablation 4: why not just tolerate the errors? (Section 4 opening)

Quantifies the paper's argument against stall/replay error tolerance in
wide SIMD, and the temperature sign-off twist (inverse temperature
dependence) that near-threshold margining must additionally cover.
"""

from __future__ import annotations

from repro.devices.temperature import (
    delay_temperature_sensitivity,
    itd_crossover_voltage,
)
from repro.experiments.registry import ExperimentResult, experiment, get_analyzer
from repro.experiments.report import TextTable
from repro.mitigation.error_tolerance import ReplayModel, optimal_clock, simd_vs_scalar

VDD = 0.55


@experiment("ablation4", "Error tolerance vs prevention; ITD temperature "
                         "sign-off", "extension / Section 4 opening")
def run(fast: bool = False) -> ExperimentResult:
    analyzer = get_analyzer("90nm")

    # -- stall/replay argument ------------------------------------------------
    comparison = simd_vs_scalar(analyzer, VDD)
    table = TextTable(
        f"Stall/replay at the scalar pipeline's 99% clock "
        f"({1e9 * comparison['scalar_clock']:.2f} ns, 90nm @ {VDD} V)",
        ["machine", "error prob / cycle", "throughput derate",
         "clock slowdown for parity"])
    table.add_row("scalar (1 lane)", comparison["p_scalar"],
                  comparison["throughput_derate_scalar"], "-")
    table.add_row("128-wide SIMD", comparison["p_simd"],
                  comparison["throughput_derate_simd"],
                  f"{100 * comparison['clock_slowdown_for_parity']:.1f} %")

    model = ReplayModel(analyzer)
    razor = TextTable(
        "Throughput-optimal (Razor-style) overclocking points",
        ["machine", "optimal clock / safe clock", "error prob at optimum",
         "gain vs safe clock (%)"])
    data = {"amplification": comparison["amplification"]}
    for label, width in (("scalar (1 lane)", 1), ("128-wide SIMD", 128)):
        opt = optimal_clock(model, VDD, width=width)
        razor.add_row(label, opt["clock"] / opt["safe_clock"],
                      opt["error_probability"],
                      100 * opt["overclock_gain"])
        data[f"overclock_gain_w{width}"] = opt["overclock_gain"]

    # -- temperature sign-off --------------------------------------------------
    crossover = itd_crossover_voltage(analyzer.tech)
    temp = TextTable(
        "Delay-temperature sensitivity (90nm): d ln(delay)/dT (1/K)",
        ["Vdd (V)", "sensitivity", "governing corner"])
    for vdd in (0.5, 0.55, round(crossover, 3), 0.8, 1.0):
        s = delay_temperature_sensitivity(analyzer.tech, float(vdd))
        corner = "cold-slow" if s < 0 else "hot-slow"
        temp.add_row(float(vdd), s, corner)
    data["itd_crossover"] = crossover

    notes = [
        f"any-lane error rate amplifies {comparison['amplification']:.0f}x "
        "over the scalar pipeline at the same clock: one slow lane stalls "
        "all 128 — the paper's reason to *prevent* rather than tolerate",
        f"inverse temperature dependence flips the timing corner below "
        f"{crossover:.2f} V: near-threshold sign-off must use the cold-slow "
        "corner, unlike conventional design",
    ]
    return ExperimentResult("ablation4", "Error tolerance & temperature",
                            [table, razor, temp], notes, data)
