"""Table 3: combined duplication + margining design points for a
128-wide @ 600 mV system in 45 nm.

For each spare budget the residual supply margin is solved, and the total
power overhead (shuffle widening + supply scaling) is compared; the
paper's point is the interior optimum — a few spares plus a few mV beats
either pure technique.
"""

from __future__ import annotations

from repro.devices.paper_anchors import TABLE3
from repro.experiments.registry import ExperimentResult, experiment, get_analyzer
from repro.experiments.report import TextTable
from repro.mitigation.combined import enumerate_combinations, optimize_combination

VDD = 0.600
SPARE_BUDGETS = (0, 1, 2, 4, 8, 16, 26, 32)


@experiment("table3", "Combined duplication+margining design points "
                      "(45nm @ 600mV)", "Table 3")
def run(fast: bool = False) -> ExperimentResult:
    analyzer = get_analyzer("45nm")
    points = enumerate_combinations(analyzer, VDD, SPARE_BUDGETS)

    table = TextTable(
        "128-wide @ 600 mV, 45 nm: (spares, margin) trade-off",
        ["spares", "margin (mV)", "spare power (%)", "margin power (%)",
         "total power (%)", "feasible"])
    data = {"points": []}
    for point in points:
        table.add_row(point.spares, point.margin_mv,
                      100 * point.spare_power_overhead,
                      100 * point.margin_power_overhead,
                      100 * point.power_overhead, point.feasible)
        data["points"].append({
            "spares": point.spares,
            "margin_mv": point.margin_mv,
            "power": point.power_overhead,
            "feasible": point.feasible,
        })

    best = optimize_combination(analyzer, VDD)
    data["optimum"] = {"spares": best.spares, "margin_mv": best.margin_mv,
                       "power": best.power_overhead}

    paper = TextTable(
        "paper's Table 3 (for reference)",
        ["spares", "margin (mV)", "power ovhd (%)"])
    for spares, margin_mv, power_pct in TABLE3:
        paper.add_row(spares, margin_mv, power_pct)

    notes = [
        f"optimizer's minimum-power point: {best.summary()}",
        "the trade-off curve is unimodal: margin cost falls quickly with "
        "the first few spares, then shuffle widening dominates",
    ]
    return ExperimentResult("table3", "Combined-mitigation design points",
                            [table, paper], notes, data)
