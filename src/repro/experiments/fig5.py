"""Figure 5: delay distributions of duplicated systems (128-wide +
alpha spares) at 0.55 V, 90 nm.

Dropping the alpha slowest of 128+alpha lanes shifts the chip-delay
distribution left and tightens it; the spare count is chosen so the 99 %
FO4 point matches the 128-wide@1V baseline.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.registry import ExperimentResult, experiment, get_analyzer
from repro.experiments.report import TextTable
from repro.sparing.duplication import solve_spares

VDD = 0.55
SPARE_STEPS = (0, 1, 2, 4, 6, 8, 12, 16)


@experiment("fig5", "Duplicated-system delay distributions, 128+alpha "
                    "spares @ 0.55V (90nm)", "Figure 5")
def run(fast: bool = False) -> ExperimentResult:
    analyzer = get_analyzer("90nm")
    n = 2000 if fast else 10_000

    baseline = analyzer.chip_distribution(analyzer.nominal_vdd,
                                          n_samples=n, seed=21)
    target_fo4 = baseline.signoff_fo4

    table = TextTable(
        f"128-wide + alpha spares @ {VDD} V (99% point in FO4 units; "
        f"baseline 128-wide@{analyzer.nominal_vdd:g}V = {target_fo4:.2f})",
        ["spares", "mean (FO4)", "p99 (FO4)", "p99 det (FO4)",
         "3sigma/mu (%)", "meets baseline"])
    # All deterministic sign-off points of the spare sweep in one batch.
    det_fo4 = analyzer.chip_quantiles(
        VDD, spares=np.array(SPARE_STEPS, dtype=float)) / analyzer.fo4_unit(VDD)
    data = {"target_fo4": target_fo4, "spares": [], "p99_fo4": [],
            "p99_det_fo4": [float(d) for d in det_fo4],
            "samples_fo4": {}}
    for spares, det in zip(SPARE_STEPS, det_fo4):
        dist = analyzer.chip_distribution(VDD, spares=spares, n_samples=n,
                                          seed=22)
        fo4 = dist.in_fo4_units()
        p99 = dist.signoff_fo4
        table.add_row(spares, float(fo4.mean()), p99, float(det),
                      100 * dist.three_sigma_over_mu, bool(p99 <= target_fo4))
        data["spares"].append(spares)
        data["p99_fo4"].append(p99)
        data["samples_fo4"][spares] = fo4

    solution = solve_spares(analyzer, VDD)
    notes = [
        f"deterministic solver: {solution.summary()}",
        "extra lanes shift the distribution left and tighten it "
        "(order statistics of a larger pool)",
    ]
    data["solver_spares"] = solution.spares if solution.feasible else None
    return ExperimentResult("fig5", "Structural-duplication distributions",
                            [table], notes, data)
