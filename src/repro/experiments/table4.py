"""Table 4 (Appendix E): frequency margining — designed vs
variation-aware clock periods and the resulting performance drop.

Also demonstrates the memory-clock quantisation constraint the paper
raises: the SIMD period must be an integer multiple of the (full-voltage)
memory period, which rounds the achievable variation-aware clock up.
"""

from __future__ import annotations

from repro.devices.technology import available_technologies
from repro.experiments.registry import ExperimentResult, experiment, get_analyzer
from repro.experiments.report import TextTable
from repro.mitigation.frequency_margin import solve_frequency_margins
from repro.units import to_ns

VOLTAGES = (0.50, 0.55, 0.60, 0.65, 0.70)


@experiment("table4", "Frequency margining: Tclk vs Tva-clk, four nodes",
            "Table 4 / Appendix E")
def run(fast: bool = False) -> ExperimentResult:
    tables = []
    data = {}
    for node in available_technologies():
        analyzer = get_analyzer(node)
        # Memory runs at nominal voltage; its clock is the nominal-voltage
        # chip sign-off delay.
        memory_period = analyzer.chip_quantile(analyzer.nominal_vdd)
        table = TextTable(
            f"{node}: frequency margining (memory clock "
            f"{float(to_ns(memory_period)):.3f} ns)",
            ["Vdd (V)", "Tclk (ns)", "Tva-clk (ns)", "perf drop (%)",
             "aligned Tva (ns)", "aligned drop (%)"])
        data[node] = {}
        solutions = solve_frequency_margins(analyzer, VOLTAGES,
                                            memory_period=memory_period)
        for vdd, sol in zip(VOLTAGES, solutions):
            table.add_row(vdd, float(to_ns(sol.t_clk)),
                          float(to_ns(sol.t_va_clk)),
                          100 * sol.performance_drop,
                          float(to_ns(sol.t_va_clk_aligned)),
                          100 * sol.aligned_performance_drop)
            data[node][vdd] = {
                "t_clk_ns": float(to_ns(sol.t_clk)),
                "t_va_clk_ns": float(to_ns(sol.t_va_clk)),
                "drop": sol.performance_drop,
                "aligned_drop": sol.aligned_performance_drop,
            }
        tables.append(table)

    notes = [
        "the drop equals Fig. 4's performance drop by construction — "
        "frequency margining just accepts it as throughput loss",
        "at advanced nodes the drop approaches ~20 %, and memory-clock "
        "alignment rounds it up further: not a usable option there",
    ]
    return ExperimentResult("table4", "Frequency-margining clock periods",
                            tables, notes, data)
