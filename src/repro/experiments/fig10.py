"""Figure 10 (Appendix B): the Diet SODA processing element.

The paper's block diagram as data: the PE's module inventory with
voltage-domain assignments and the reconstructed area/power breakdown
that drives every overhead number in Tables 1-3, plus the physical lane
floorplan used by the spatial-correlation analyses.
"""

from __future__ import annotations

from repro.experiments.registry import ExperimentResult, experiment
from repro.experiments.report import TextTable
from repro.simd.diet_soda import DIET_SODA, VoltageDomain
from repro.simd.floorplan import LaneFloorplan


@experiment("fig10", "Diet SODA PE: modules, domains, area/power breakdown",
            "Figure 10 / Appendix B")
def run(fast: bool = False) -> ExperimentResult:
    pe = DIET_SODA
    table = TextTable(
        "Processing element inventory (reconstructed breakdown)",
        ["module", "voltage domain", "area (%)", "power (%)",
         "scales w/ width"])
    data = {"modules": {}}
    for module in pe.modules:
        table.add_row(module.name, module.domain.value,
                      100 * module.area_fraction,
                      100 * module.power_fraction,
                      module.scales_with_width)
        data["modules"][module.name] = {
            "domain": module.domain.value,
            "area": module.area_fraction,
            "power": module.power_fraction,
        }

    domains = TextTable(
        "Voltage-domain totals",
        ["domain", "power fraction (%)", "role"])
    domains.add_row(VoltageDomain.FULL.value,
                    100 * pe.domain_power_fraction(VoltageDomain.FULL),
                    "memories/AGUs/SSN (data retention)")
    domains.add_row(VoltageDomain.DUAL.value,
                    100 * pe.domain_power_fraction(VoltageDomain.DUAL),
                    "SIMD pipeline (drops to NTV)")

    floorplan = LaneFloorplan()
    width_mm, height_mm = floorplan.extent_mm
    data["dv_power_fraction"] = pe.dv_power_fraction
    data["area_per_spare"] = pe.area_per_spare
    data["floorplan_extent_mm"] = (width_mm, height_mm)

    notes = [
        f"one spare FU slice costs {100 * pe.area_per_spare:.2f} % of PE "
        "area (Table 1's area column)",
        f"the DV domain holds {100 * pe.dv_power_fraction:.0f} % of PE "
        "power (what a supply margin multiplies, Table 2's power column)",
        f"lane array floorplan: 4 rows x 32 lanes, "
        f"{width_mm:.1f} x {height_mm:.1f} mm — adjacent lanes sit well "
        "inside one spatial-correlation length (bursty faults)",
    ]
    return ExperimentResult("fig10", "Diet SODA PE inventory",
                            [table, domains], notes, data)
