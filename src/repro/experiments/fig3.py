"""Figure 3: delay distributions of a critical path, one SIMD lane and the
128-wide datapath (90 nm, FO4 units, 10,000 samples).

Shows the two compounding max-effects: path -> lane (max of 100 paths)
and lane -> chip (max of 128 lanes), plus the near-threshold rightward
drift of the 128-wide distributions.
"""

from __future__ import annotations

from repro.experiments.registry import ExperimentResult, experiment, get_analyzer
from repro.experiments.report import TextTable


@experiment("fig3", "Path / 1-wide / 128-wide delay distributions (90nm)",
            "Figure 3")
def run(fast: bool = False) -> ExperimentResult:
    analyzer = get_analyzer("90nm")
    n = 2000 if fast else 10_000

    distributions = [
        analyzer.path_distribution(1.0, n_samples=n, seed=11),
        analyzer.lane_distribution(1.0, n_samples=n, seed=12),
        analyzer.chip_distribution(1.0, n_samples=n, seed=13),
        analyzer.chip_distribution(0.6, n_samples=n, seed=14),
        analyzer.chip_distribution(0.55, n_samples=n, seed=15),
        analyzer.chip_distribution(0.5, n_samples=n, seed=16),
    ]

    table = TextTable(
        "Delay distributions in FO4 units (10,000 samples each)",
        ["distribution", "mean (FO4)", "p99 (FO4)", "3sigma/mu (%)"])
    data = {"labels": [], "mean_fo4": [], "p99_fo4": [], "samples_fo4": {}}
    for dist in distributions:
        fo4 = dist.in_fo4_units()
        table.add_row(dist.label, float(fo4.mean()), dist.signoff_fo4,
                      100 * dist.three_sigma_over_mu)
        data["labels"].append(dist.label)
        data["mean_fo4"].append(float(fo4.mean()))
        data["p99_fo4"].append(dist.signoff_fo4)
        data["samples_fo4"][dist.label] = fo4

    notes = [
        "1-wide sits right of the critical path (max of 100 paths); "
        "128-wide right of 1-wide (max of 128 lanes)",
        "near-threshold 128-wide curves drift further right because the "
        "per-path spread widens as Vdd falls",
    ]
    return ExperimentResult("fig3", "Architecture-level delay distributions",
                            [table], notes, data)
