"""Figure 6: voltage-margining delay distributions, 128-wide @ 600 mV,
45 nm.

Sweeps the supply in 5 mV steps above the 600 mV design point until the
99 % chip delay beats the scaled nominal-voltage target, and contrasts the
same recovery achieved with spare lanes at a fixed 600 mV supply.
"""

from __future__ import annotations

from repro.experiments.registry import ExperimentResult, experiment, get_analyzer
from repro.experiments.report import TextTable
from repro.mitigation.voltage_margin import solve_voltage_margin
from repro.units import to_ns

VDD = 0.600
MARGIN_STEPS_MV = (0, 5, 10, 15, 20)
SPARE_STEPS = (4, 8, 16, 32)


@experiment("fig6", "Voltage-margining distributions, 128-wide @ 600mV "
                    "(45nm)", "Figure 6")
def run(fast: bool = False) -> ExperimentResult:
    analyzer = get_analyzer("45nm")
    n = 2000 if fast else 10_000
    target_ns = float(to_ns(analyzer.target_delay(VDD)))

    table = TextTable(
        f"128-wide @ 600 mV, 45 nm (target delay {target_ns:.3f} ns)",
        ["configuration", "mean (ns)", "p99 (ns)", "meets target"])
    data = {"target_ns": target_ns, "margin_p99_ns": {}, "spare_p99_ns": {}}

    for mv in MARGIN_STEPS_MV:
        dist = analyzer.chip_distribution(VDD + mv * 1e-3, n_samples=n,
                                          seed=31,
                                          label=f"128-wide@{600 + mv}mV")
        p99 = float(to_ns(dist.signoff_delay))
        table.add_row(dist.label, float(to_ns(dist.mean)), p99,
                      bool(p99 <= target_ns))
        data["margin_p99_ns"][mv] = p99

    for spares in SPARE_STEPS:
        dist = analyzer.chip_distribution(VDD, spares=spares, n_samples=n,
                                          seed=32,
                                          label=f"128+{spares}-spares@600mV")
        p99 = float(to_ns(dist.signoff_delay))
        table.add_row(dist.label, float(to_ns(dist.mean)), p99,
                      bool(p99 <= target_ns))
        data["spare_p99_ns"][spares] = p99

    solution = solve_voltage_margin(analyzer, VDD)
    data["margin_mv"] = solution.margin_mv if solution.feasible else None
    notes = [
        f"deterministic margin solver: {solution.summary()}",
        "a few mV of supply buys the whole variation tail back because "
        "delay falls exponentially with Vdd near threshold",
    ]
    return ExperimentResult("fig6", "Voltage-margining distributions",
                            [table], notes, data)
