"""Figure 6: voltage-margining delay distributions, 128-wide @ 600 mV,
45 nm.

Sweeps the supply in 5 mV steps above the 600 mV design point until the
99 % chip delay beats the scaled nominal-voltage target, and contrasts the
same recovery achieved with spare lanes at a fixed 600 mV supply.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.registry import ExperimentResult, experiment, get_analyzer
from repro.experiments.report import TextTable
from repro.mitigation.voltage_margin import solve_voltage_margin
from repro.units import to_ns

VDD = 0.600
MARGIN_STEPS_MV = (0, 5, 10, 15, 20)
SPARE_STEPS = (4, 8, 16, 32)


@experiment("fig6", "Voltage-margining distributions, 128-wide @ 600mV "
                    "(45nm)", "Figure 6")
def run(fast: bool = False) -> ExperimentResult:
    analyzer = get_analyzer("45nm")
    n = 2000 if fast else 10_000
    target_ns = float(to_ns(analyzer.target_delay(VDD)))

    table = TextTable(
        f"128-wide @ 600 mV, 45 nm (target delay {target_ns:.3f} ns)",
        ["configuration", "mean (ns)", "p99 (ns)", "p99 det (ns)",
         "meets target"])
    data = {"target_ns": target_ns, "margin_p99_ns": {}, "spare_p99_ns": {},
            "margin_p99_det_ns": {}, "spare_p99_det_ns": {}}

    # Deterministic sign-off companions to the sampled rows, one batched
    # solve per sweep (the margin sweep and the spare sweep share the
    # 600 mV kernel through the engine's LRU).
    det_margin = analyzer.chip_quantiles(
        VDD + np.array(MARGIN_STEPS_MV, dtype=float) * 1e-3)
    det_spare = analyzer.chip_quantiles(
        VDD, spares=np.array(SPARE_STEPS, dtype=float))

    for mv, det in zip(MARGIN_STEPS_MV, det_margin):
        dist = analyzer.chip_distribution(VDD + mv * 1e-3, n_samples=n,
                                          seed=31,
                                          label=f"128-wide@{600 + mv}mV")
        p99 = float(to_ns(dist.signoff_delay))
        det_ns = float(to_ns(det))
        table.add_row(dist.label, float(to_ns(dist.mean)), p99, det_ns,
                      bool(p99 <= target_ns))
        data["margin_p99_ns"][mv] = p99
        data["margin_p99_det_ns"][mv] = det_ns

    for spares, det in zip(SPARE_STEPS, det_spare):
        dist = analyzer.chip_distribution(VDD, spares=spares, n_samples=n,
                                          seed=32,
                                          label=f"128+{spares}-spares@600mV")
        p99 = float(to_ns(dist.signoff_delay))
        det_ns = float(to_ns(det))
        table.add_row(dist.label, float(to_ns(dist.mean)), p99, det_ns,
                      bool(p99 <= target_ns))
        data["spare_p99_ns"][spares] = p99
        data["spare_p99_det_ns"][spares] = det_ns

    solution = solve_voltage_margin(analyzer, VDD)
    data["margin_mv"] = solution.margin_mv if solution.feasible else None
    notes = [
        f"deterministic margin solver: {solution.summary()}",
        "a few mV of supply buys the whole variation tail back because "
        "delay falls exponentially with Vdd near threshold",
    ]
    return ExperimentResult("fig6", "Voltage-margining distributions",
                            [table], notes, data)
