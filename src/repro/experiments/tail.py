"""High-sigma tail sign-off: importance sampling vs the analytic model.

Beyond-paper experiment: the paper signs off at the 99 % chip quantile,
where 10^4 plain Monte-Carlo samples suffice; real sign-off wants
99.99 %+ quantiles, where they do not.  This experiment estimates a deep
tail quantile of the *per-gate Monte-Carlo* chip delay with the
importance-sampling machinery (:mod:`repro.core.tailsampling`) at a few
thousand weighted samples, and cross-checks it against the analytic
order-statistics engine's deterministic quantile at a reduced
architecture — a tail-depth extension of the cross-validation study.
Also reports the importance-sampled failure probability at the analytic
threshold (self-consistency: it should recover ``1 - q``), and the
estimator diagnostics (ESS, weight-max-ratio, shift-search rounds,
found shift).

``--tail-q`` and ``--tail-samples`` override the target quantile and the
weighted sample count from the CLI (see :func:`configure`).
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.analyzer import VariationAnalyzer
from repro.devices.technology import available_technologies
from repro.errors import ConfigurationError
from repro.experiments.registry import ExperimentResult, experiment
from repro.experiments.report import TextTable

VDD = 0.55

#: Reduced architecture: deep-tail brute-force cross-checks and CI smoke
#: runs must stay tractable on one core (full paper scale is 640k gate
#: evaluations per chip; this is 19.2k).
WIDTH, PATHS_PER_LANE, CHAIN_LENGTH = 32, 20, 30

#: CLI-overridable run parameters (see :func:`configure`).
_CONFIG = {"q": 0.9999, "n_samples": 4096}


def configure(q: float | None = None, n_samples: int | None = None) -> None:
    """Override the experiment's target quantile / sample count.

    Called by the CLI for ``--tail-q`` / ``--tail-samples``; validation
    errors surface as :class:`ConfigurationError` (CLI exit code 2).
    """
    if q is not None:
        q = float(q)
        if not 0.0 < q < 1.0:
            raise ConfigurationError(
                f"--tail-q must be in (0, 1), got {q}")
        _CONFIG["q"] = q
    if n_samples is not None:
        n_samples = int(n_samples)
        if n_samples < 2:
            raise ConfigurationError(
                f"--tail-samples must be >= 2, got {n_samples}")
        _CONFIG["n_samples"] = n_samples


@lru_cache(maxsize=8)
def _tail_analyzer(node: str) -> VariationAnalyzer:
    """Per-node analyzer at the reduced architecture (not the registry's)."""
    return VariationAnalyzer(node, width=WIDTH,
                             paths_per_lane=PATHS_PER_LANE,
                             chain_length=CHAIN_LENGTH)


@experiment("tail", "High-sigma tail sign-off by importance sampling",
            "beyond-paper (ISLE-style IS; cross-validates Section 3)")
def run(fast: bool = False) -> ExperimentResult:
    q = _CONFIG["q"]
    n_samples = min(_CONFIG["n_samples"], 1024) if fast \
        else _CONFIG["n_samples"]
    n_pilot, max_rounds = (256, 3) if fast else (512, 5)
    nodes = list(available_technologies())

    table = TextTable(
        f"q={q:g} chip-delay tail @ {VDD:g} V "
        f"({WIDTH}x{PATHS_PER_LANE}x{CHAIN_LENGTH}, "
        f"{n_samples} weighted samples)",
        ["node", "IS tail (ns)", "analytic (ns)", "rel err (%)",
         "P(fail@analytic)", "ESS", "max w", "rounds", "shift (sigma)"])
    data: dict = {"q": q, "n_samples": n_samples, "vdd": VDD,
                  "nodes": {}}
    for node in nodes:
        analyzer = _tail_analyzer(node)
        est = analyzer.chip_tail_quantile(
            VDD, q, n_samples=n_samples, n_pilot=n_pilot,
            max_rounds=max_rounds)
        analytic = analyzer.chip_quantile(VDD, q=q)
        rel_err = est.value / analytic - 1.0
        # Self-consistency: the IS failure probability at the analytic
        # threshold should land near 1 - q (same proposal, no re-search).
        pfail = analyzer.chip_failure_probability(
            VDD, t_limit=analytic, n_samples=n_samples,
            proposal=est.proposal)
        table.add_row(node, est.value * 1e9, analytic * 1e9,
                      100.0 * rel_err, f"{pfail.value:.2e}", est.ess,
                      est.weight_max_ratio, est.shift_search_rounds,
                      est.proposal.d2d_shifts[0])
        data["nodes"][node] = {
            "is_value": est.value, "analytic": analytic,
            "rel_err": rel_err, "p_fail": pfail.value,
            "ess": est.ess, "weight_max_ratio": est.weight_max_ratio,
            "rounds": est.shift_search_rounds,
            "shift": est.proposal.d2d_shifts[0]}

    notes = [
        f"importance sampling resolves the {q:g} tail with {n_samples} "
        f"weighted samples; brute force would need "
        f"~{int(100 / (1 - q)) :,} chips for comparable tail resolution",
        "rel err compares the weighted MC estimate against the analytic "
        "order-statistics quantile (independent methods; per-gate MC is "
        "the reference the analytic model is validated against)",
        "P(fail@analytic) is the self-normalized failure probability at "
        f"the analytic threshold — expect ~{1 - q:g}",
    ]
    return ExperimentResult("tail", "High-sigma tail sign-off",
                            [table], notes, data)
