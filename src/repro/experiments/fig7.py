"""Figure 7: power overhead of structural duplication vs voltage
margining, four technology nodes.

The design guideline the paper draws: duplication wins in the
low-variation (high near-threshold voltage) corner, margining takes over
as variation grows — technology scaling moves the crossover up.
"""

from __future__ import annotations

import numpy as np

from repro.devices.technology import available_technologies
from repro.experiments.registry import ExperimentResult, experiment, get_analyzer
from repro.experiments.report import TextTable
from repro.mitigation.compare import compare_techniques, crossover_voltage

VOLTAGES = np.round(np.arange(0.50, 0.701, 0.05), 3)


@experiment("fig7", "Power overhead: duplication vs margining, four nodes",
            "Figure 7")
def run(fast: bool = False) -> ExperimentResult:
    tables = []
    data = {}
    for node in available_technologies():
        analyzer = get_analyzer(node)
        table = TextTable(
            f"{node}: power overhead (%) per technique",
            ["Vdd (V)", "dup. spares", "dup. power", "margin (mV)",
             "margin power", "winner"])
        node_rows = []
        for vdd in VOLTAGES:
            comparison = compare_techniques(analyzer, float(vdd))
            table.add_row(
                float(vdd),
                (comparison.duplication_spares
                 if comparison.duplication_feasible else ">128"),
                100 * comparison.duplication_power,
                comparison.margin_mv,
                100 * comparison.margining_power,
                comparison.winner)
            node_rows.append({
                "vdd": float(vdd),
                "dup_power": comparison.duplication_power,
                "dup_feasible": comparison.duplication_feasible,
                "margin_power": comparison.margining_power,
                "winner": comparison.winner,
            })
        tables.append(table)
        data[node] = {
            "rows": node_rows,
            "crossover": crossover_voltage(analyzer, VOLTAGES),
        }

    notes = ["crossover (highest Vdd where margining wins): " +
             ", ".join(f"{n}: {data[n]['crossover']}"
                       for n in available_technologies())]
    return ExperimentResult("fig7", "Technique power comparison",
                            tables, notes, data)
