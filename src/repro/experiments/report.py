"""Plain-text rendering of experiment artifacts.

The experiments print the same rows/series the paper's figures and tables
report; :class:`TextTable` keeps the output aligned and diff-friendly so
EXPERIMENTS.md can embed it verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["TextTable", "format_value"]


def format_value(value, precision: int = 2) -> str:
    """Human formatting for table cells (numbers, None, strings)."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        magnitude = abs(value)
        if magnitude != 0 and (magnitude >= 1e5 or magnitude < 1e-3):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


@dataclass
class TextTable:
    """A titled, column-aligned text table."""

    title: str
    headers: list
    rows: list = field(default_factory=list)
    precision: int = 2

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.headers):
            raise ConfigurationError(
                f"{self.title}: row has {len(cells)} cells, "
                f"expected {len(self.headers)}")
        self.rows.append([format_value(c, self.precision) for c in cells])

    def render(self) -> str:
        """Render the table as aligned monospaced text."""
        table = [list(map(str, self.headers))] + self.rows
        widths = [max(len(row[i]) for row in table)
                  for i in range(len(self.headers))]
        lines = [self.title, "-" * len(self.title)]
        header = "  ".join(h.ljust(w) for h, w in zip(table[0], widths))
        lines.append(header)
        lines.append("  ".join("=" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)
