"""Figure 1: delay distributions of a single inverter and a 50-FO4 chain.

90 nm GP, supply voltages 0.5-1.0 V, 1000 Monte-Carlo samples per point —
the paper's headline circuit-level result: single-gate variation explodes
at near-threshold voltages but averages out along a logic chain.
"""

from __future__ import annotations

import numpy as np

from repro.devices.paper_anchors import (
    FIG1_CHAIN50_3SIGMA,
    FIG1_SINGLE_3SIGMA,
)
from repro.experiments.registry import ExperimentResult, experiment, get_analyzer
from repro.experiments.report import TextTable
from repro.units import three_sigma_over_mu, to_ns

VOLTAGES = (1.0, 0.9, 0.8, 0.7, 0.6, 0.5)


@experiment("fig1", "Single-inverter vs 50-FO4-chain delay distributions "
                    "(90nm)", "Figure 1")
def run(fast: bool = False) -> ExperimentResult:
    analyzer = get_analyzer("90nm")
    n_samples = 300 if fast else 1000
    mc = analyzer.monte_carlo(seed=1)

    table = TextTable(
        "90nm GP, 1000-sample Monte-Carlo (3sigma/mu in %)",
        ["Vdd (V)", "single (model)", "single (paper)",
         "chain-50 (model)", "chain-50 (paper)", "chain mean (ns)"])
    data = {"vdd": [], "single": [], "chain": [], "chain_mean_ns": [],
            "histograms": {}}
    for vdd in VOLTAGES:
        single = mc.gate_delays(vdd, n_samples)
        chain = mc.chain_delays(vdd, 50, n_samples)
        s_pct = 100 * float(three_sigma_over_mu(single))
        c_pct = 100 * float(three_sigma_over_mu(chain))
        mean_ns = float(to_ns(chain.mean()))
        table.add_row(vdd, s_pct, FIG1_SINGLE_3SIGMA[vdd],
                      c_pct, FIG1_CHAIN50_3SIGMA[vdd], mean_ns)
        data["vdd"].append(vdd)
        data["single"].append(s_pct)
        data["chain"].append(c_pct)
        data["chain_mean_ns"].append(mean_ns)
        data["histograms"][vdd] = {
            "single": np.histogram(single, bins=30),
            "chain": np.histogram(chain, bins=30),
        }

    notes = [
        "paper anchors: chain delay 22.05 ns @ 0.5 V / 8.99 ns @ 0.6 V "
        f"(model: {data['chain_mean_ns'][-1]:.2f} / "
        f"{data['chain_mean_ns'][-2]:.2f} ns)",
        "uncorrelated within-die variation averages out along the chain; "
        "the residual floor is the spatially-correlated component",
    ]
    return ExperimentResult("fig1", "Delay distributions, 90nm GP",
                            [table], notes, data)
