"""Ablation experiments (extensions; DESIGN.md Section 6).

Three CLI-accessible studies beyond the paper's own artifacts:

* ``ablation1`` — variance decomposition of the Fig. 4 drop and the
  per-scale mitigation coverage (which components each technique fixes);
* ``ablation2`` — robustness sweeps over the paper's fixed assumptions
  (sign-off quantile, paths per lane, critical-path proxy depth);
* ``ablation3`` — adder-topology variation study (Fig. 11's
  depth-averaging argument on real structures) plus the corner-vs-
  statistical sign-off comparison.
"""

from __future__ import annotations

from repro.analysis import (
    chain_length_sweep,
    decompose_performance_drop,
    mitigation_coverage,
    paths_per_lane_sweep,
    signoff_quantile_sweep,
)
from repro.circuits.adders import adder_comparison
from repro.devices.corners import corner_vs_statistical
from repro.experiments.registry import ExperimentResult, experiment, get_analyzer
from repro.experiments.report import TextTable

VDD = 0.55


@experiment("ablation1", "Variance decomposition of the NTV drop (90nm)",
            "extension / DESIGN.md 6")
def run_decomposition(fast: bool = False) -> ExperimentResult:
    analyzer = get_analyzer("90nm")
    rows = decompose_performance_drop(analyzer, VDD)
    table = TextTable(
        f"Contribution of each variation scale to the drop @ {VDD} V "
        f"(full drop {100 * rows[0].full_drop:.2f} %)",
        ["component", "drop without (%)", "contribution (pp)", "share (%)"])
    data = {"components": {}}
    for r in rows:
        table.add_row(r.component, 100 * r.drop_without,
                      100 * r.contribution, 100 * r.share)
        data["components"][r.component] = r.contribution

    coverage = mitigation_coverage(analyzer, VDD)
    cov_table = TextTable(
        "Fraction of each scale's drop removed (32 spares vs +20 mV)",
        ["scale", "base drop (%)", "duplication removes",
         "margining removes"])
    for scale, result in coverage.items():
        cov_table.add_row(scale, 100 * result["base_drop"],
                          result["duplication"], result["margining"])
    data["coverage"] = coverage
    notes = [
        "the NTV excess is threshold-variation driven; voltage-flat "
        "components inflate the baseline equally and cancel",
        "duplication only removes lane-level slowness — the structural "
        "reason margining wins once die-level variation matters (Fig. 7)",
    ]
    return ExperimentResult("ablation1", "Variance decomposition",
                            [table, cov_table], notes, data)


@experiment("ablation2", "Robustness to the paper's modelling assumptions",
            "extension / DESIGN.md 6")
def run_assumptions(fast: bool = False) -> ExperimentResult:
    sweeps = {
        "sign-off quantile": signoff_quantile_sweep("90nm", VDD),
        "paths per lane": paths_per_lane_sweep("90nm", VDD),
        "chain length (proxy depth)": chain_length_sweep("90nm", VDD),
    }
    tables = []
    data = {}
    for name, rows in sweeps.items():
        table = TextTable(
            f"90nm @ {VDD} V vs {name}",
            ["value", "perf drop (%)", "spares", "margin (mV)"])
        data[name] = []
        for r in rows:
            table.add_row(r.value, 100 * r.performance_drop,
                          r.spares if r.spares is not None else ">max",
                          r.margin_mv)
            data[name].append({"value": r.value,
                               "drop": r.performance_drop,
                               "spares": r.spares,
                               "margin_mv": r.margin_mv})
        tables.append(table)
    notes = [
        "the 90nm conclusion (small drop, simple mitigation) holds across "
        "every swept assumption; absolute spare counts move by ~2x",
    ]
    return ExperimentResult("ablation2", "Assumption robustness",
                            tables, notes, data)


@experiment("ablation3", "Adder topologies + corner-vs-statistical signoff",
            "extension / DESIGN.md 6")
def run_structures(fast: bool = False) -> ExperimentResult:
    analyzer = get_analyzer("90nm")
    n = 200 if fast else 600
    adders = adder_comparison(analyzer.tech, vdd=0.5, width=32, n_samples=n,
                              seed=5)
    table = TextTable(
        "32-bit adder topologies @ 0.5 V (90nm Monte-Carlo)",
        ["topology", "logic depth", "cells", "mean (ns)", "3sigma/mu (%)"])
    for name, result in adders.items():
        table.add_row(name, result["depth"], result["cells"],
                      1e9 * result["mean"],
                      100 * result["three_sigma_over_mu"])

    corner = corner_vs_statistical(analyzer, VDD)
    corner_table = TextTable(
        f"SS-corner vs statistical 99% sign-off @ {VDD} V",
        ["method", "chip delay (ns)"])
    corner_table.add_row("3-sigma SS corner (no within-die)",
                         1e9 * corner["corner_delay"])
    corner_table.add_row("statistical 99% (this library)",
                         1e9 * corner["statistical_delay"])
    notes = [
        "deeper logic averages more within-die randomness: the ripple "
        "chain varies least, the dense prefix tree most (Fig. 11's "
        "argument on real structures)",
        f"fixed-corner sign-off covers only "
        f"{100 * corner['ratio']:.0f} % of the statistical 99% chip delay "
        "— corners miss the max-over-12,800-paths effect, motivating the "
        "paper's Monte-Carlo methodology",
    ]
    data = {"adders": adders, "corner_ratio": corner["ratio"]}
    return ExperimentResult("ablation3", "Structure studies",
                            [table, corner_table], notes, data)
