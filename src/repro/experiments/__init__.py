"""Paper-artifact regenerators: one module per figure/table.

Run from the command line::

    python -m repro.experiments list        # catalogue
    python -m repro.experiments fig4        # one artifact
    python -m repro.experiments all         # everything (slow)

or programmatically::

    from repro.experiments import run_experiment
    result = run_experiment("table1", fast=True)
    print(result.render())
"""

from repro.experiments.registry import (
    Experiment,
    ExperimentResult,
    list_experiments,
    run_experiment,
)

__all__ = [
    "Experiment",
    "ExperimentResult",
    "list_experiments",
    "run_experiment",
]
