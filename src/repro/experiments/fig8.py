"""Figure 8: 99 % chip delays of duplicated systems across small supply
margins (45 nm, 128-wide @ 600-620 mV).

The grid behind Table 3: each (margin, spares) cell's chip delay against
the 600 mV target shows which combinations meet timing.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.registry import ExperimentResult, experiment, get_analyzer
from repro.experiments.report import TextTable
from repro.units import to_ns

VDD = 0.600
MARGIN_STEPS_MV = (0, 5, 10, 15, 20)
SPARE_STEPS = (0, 1, 2, 4, 8, 16, 26, 32)


@experiment("fig8", "Chip delay vs spares at 600-620mV (45nm)", "Figure 8")
def run(fast: bool = False) -> ExperimentResult:
    analyzer = get_analyzer("45nm")
    target_ns = float(to_ns(analyzer.target_delay(VDD)))

    table = TextTable(
        f"99% chip delay (ns) vs (margin, spares); target {target_ns:.3f} ns",
        ["spares"] + [f"+{mv} mV" for mv in MARGIN_STEPS_MV])
    data = {"target_ns": target_ns, "grid": {}}
    # The full (spares x margin) grid is one broadcasted batch solve.
    grid = analyzer.chip_quantiles(
        VDD + np.array(MARGIN_STEPS_MV, dtype=float)[None, :] * 1e-3,
        spares=np.array(SPARE_STEPS, dtype=float)[:, None])
    for i, spares in enumerate(SPARE_STEPS):
        row = [spares]
        for j, mv in enumerate(MARGIN_STEPS_MV):
            p99 = float(to_ns(grid[i, j]))
            row.append(p99)
            data["grid"][(spares, mv)] = p99
        table.add_row(*row)

    feasible = sorted((s, mv) for (s, mv), d in data["grid"].items()
                      if d <= target_ns)
    notes = [
        "cells at or below the target are feasible design points; the "
        "paper reads off e.g. (2 spares, +10 mV) and (8 spares, +5 mV)",
        f"cheapest feasible cells (spares, mV): {feasible[:6]}",
    ]
    return ExperimentResult("fig8", "Combined mitigation delay grid",
                            [table], notes, data)
