"""Figure 9 (Appendix A): energy and delay vs supply voltage — the three
operating regions.

Reproduces the paper's Section 2 argument: scaling to near-threshold buys
~10x energy for ~10x delay; the energy minimum sits in sub-threshold, and
climbing from the minimum back to near-threshold costs ~2x energy for
50-100x performance.
"""

from __future__ import annotations

import numpy as np

from repro.energy.model import EnergyModel
from repro.energy.regions import minimum_energy_voltage, region_boundaries
from repro.experiments.registry import ExperimentResult, experiment, get_analyzer
from repro.experiments.report import TextTable


@experiment("fig9", "Energy/delay vs Vdd: the three operating regions "
                    "(90nm)", "Figure 9 / Appendix A")
def run(fast: bool = False) -> ExperimentResult:
    tech = get_analyzer("90nm").tech
    model = EnergyModel(tech)
    sub_near, near_super = region_boundaries(tech)
    v_min = minimum_energy_voltage(model)

    voltages = np.round(np.arange(0.20, 1.001, 0.05), 3)
    table = TextTable(
        "Normalised energy/delay vs Vdd (90nm; 1.0 = nominal energy)",
        ["Vdd (V)", "region", "switching E", "leakage E", "total E",
         "delay (xFO4@1V)"])
    data = {"vdd": [], "total": [], "delay": [], "region": []}
    for vdd in voltages:
        point = model.evaluate(float(vdd))
        table.add_row(point.vdd, point.region, point.switching_energy,
                      point.leakage_energy, point.total_energy, point.delay)
        data["vdd"].append(point.vdd)
        data["total"].append(point.total_energy)
        data["delay"].append(point.delay)
        data["region"].append(point.region)

    e_min = float(model.total_energy(v_min))
    ntv = 0.5
    notes = [
        f"region boundaries: sub/near at {sub_near:.3f} V, near/super at "
        f"{near_super:.3f} V",
        f"energy minimum at {v_min:.3f} V "
        f"({'sub-threshold' if v_min < sub_near else 'near-threshold'}), "
        f"E_min = {e_min:.3f}",
        f"NTV ({ntv} V): energy savings {model.energy_savings_at(ntv):.1f}x, "
        f"delay cost {model.performance_cost_at(ntv):.1f}x vs nominal",
        f"NTV energy vs minimum: {float(model.total_energy(ntv)) / e_min:.2f}x; "
        f"speedup vs minimum-energy point: "
        f"{float(model.relative_delay(v_min) / model.relative_delay(ntv)):.0f}x",
    ]
    data["v_min"] = v_min
    data["boundaries"] = (sub_near, near_super)
    return ExperimentResult("fig9", "Energy/delay operating regions",
                            [table], notes, data)
