"""Table 2: required voltage margins and power overheads, four nodes x
five near-threshold voltages.

The margin is the smallest supply increase restoring the
nominal-voltage FO4 sign-off; power overhead charges the squared supply
ratio to the dual-voltage domain (43 % of PE power).
"""

from __future__ import annotations

import numpy as np

from repro.devices.paper_anchors import TABLE2
from repro.devices.technology import available_technologies
from repro.experiments.registry import ExperimentResult, experiment, get_analyzer
from repro.experiments.report import TextTable
from repro.mitigation.voltage_margin import solve_voltage_margin

VOLTAGES = (0.50, 0.55, 0.60, 0.65, 0.70)


@experiment("table2", "Voltage margins + overheads, four nodes", "Table 2")
def run(fast: bool = False) -> ExperimentResult:
    tables = []
    data = {}
    for node in available_technologies():
        analyzer = get_analyzer(node)
        # Pre-warm the margin-search bracket endpoints (+0 and +200 mV)
        # across the voltage column in one batched solve.
        analyzer.chip_quantiles(np.concatenate(
            [np.array(VOLTAGES), np.array(VOLTAGES) + 0.2]))
        table = TextTable(
            f"{node}: voltage margining",
            ["Vdd (V)", "margin (mV)", "power ovhd (%)",
             "paper margin (mV)", "paper power (%)"])
        data[node] = {}
        for vdd in VOLTAGES:
            solution = solve_voltage_margin(analyzer, vdd)
            paper = TABLE2[node][vdd]
            table.add_row(vdd, solution.margin_mv,
                          100 * solution.power_overhead,
                          paper.margin_mv, paper.power_pct)
            data[node][vdd] = {
                "margin_mv": solution.margin_mv,
                "feasible": solution.feasible,
                "power": solution.power_overhead,
            }
        tables.append(table)

    notes = [
        "margins shrink as Vdd falls within a node (steeper delay-voltage "
        "slope) but grow with technology scaling (more variation to buy "
        "back)",
    ]
    return ExperimentResult("table2", "Voltage-margin sizing",
                            tables, notes, data)
