"""CLI for the experiment registry (``python -m repro.experiments``)."""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import list_experiments, run_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures and tables.")
    parser.add_argument("target",
                        help="experiment id (fig1..fig12, table1..table4), "
                             "'list', or 'all'")
    parser.add_argument("--fast", action="store_true",
                        help="reduced sample counts (quick look)")
    args = parser.parse_args(argv)

    if args.target == "list":
        for exp in list_experiments():
            print(f"{exp.experiment_id:<8s} {exp.title}  [{exp.paper_ref}]")
        return 0

    targets = ([e.experiment_id for e in list_experiments()]
               if args.target == "all" else [args.target])
    for target in targets:
        start = time.perf_counter()
        result = run_experiment(target, fast=args.fast)
        elapsed = time.perf_counter() - start
        print(result.render())
        print(f"\n[{target} completed in {elapsed:.1f} s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
