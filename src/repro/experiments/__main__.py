"""CLI for the experiment registry (``python -m repro.experiments``).

Supports the parallel runtime and observability layers:

* ``--jobs N`` — for a single experiment, sampling shards and batched
  quantile solves fan out across ``N`` worker processes; for ``all``,
  whole experiments are dispatched across the pool so independent
  artifacts regenerate concurrently.
* ``--profile`` — print per-stage wall-time/sample counters plus the
  metrics registry (cache hits/misses, kernel-LRU economics, solver
  fallbacks) after the run.
* ``--trace FILE`` — write a Chrome trace-event JSON timeline of the
  run's spans, including spans executed inside pool workers; open it at
  https://ui.perfetto.dev.
* ``--metrics FILE`` — write a run manifest (root seed, card
  fingerprints, versions, cache state before/after, per-stage stats,
  metrics snapshot, fault/recovery ledger) for bit-reproducibility
  provenance.

Resilience controls: ``--shard-timeout SECONDS`` and ``--max-retries N``
tune the sampler's fault-tolerant dispatcher, and ``--inject-faults
SPEC`` runs the deterministic fault lab (e.g. ``worker_crash:1`` — see
:mod:`repro.resilience.faultlab` for the grammar).
"""

from __future__ import annotations

import argparse
import sys
import time
from concurrent.futures import ProcessPoolExecutor

from repro.core.backends import BACKENDS, backend_manifest
from repro.errors import ConfigurationError, ShardExecutionError
from repro.experiments.registry import list_experiments, run_experiment
from repro.obs.manifest import build_manifest, cache_file_state, write_manifest
from repro.obs.trace import write_chrome_trace
from repro.resilience import RetryPolicy, parse_faults
from repro.runtime import build_runtime

#: The registry's default sampling root seed (experiments are seeded,
#: not randomised); recorded in the run manifest.
ROOT_SEED = 0


def _run_remote(payload: tuple) -> tuple:
    """Run one experiment inside a pool worker; returns rendered text.

    The worker builds a serial runtime mirroring the parent's
    ``--profile``/``--trace``/``--metrics`` flags, so collection happens
    remotely only when the parent will actually consume it — a
    non-profiled parallel ``all`` run skips it entirely (the experiment
    runs with no active runtime at all).  Stage counters, span batches
    and metric snapshots come back for the parent to merge.
    """
    experiment_id, fast, obs_ctx = payload
    profile = bool(obs_ctx.get("profile"))
    trace = bool(obs_ctx.get("trace"))
    metrics = bool(obs_ctx.get("metrics"))
    start = time.perf_counter()
    if not (profile or trace or metrics):
        result = run_experiment(experiment_id, fast=fast)
        elapsed = time.perf_counter() - start
        return experiment_id, result.render(), elapsed, {}, {}
    runtime = build_runtime(jobs=1, profile=profile, trace=trace,
                            metrics=metrics)
    if trace:
        # Continue the parent's trace: same trace id, parented under the
        # dispatching CLI's root span.
        runtime.obs.tracer.trace_id = obs_ctx["trace_id"]
        runtime.obs.tracer.base_parent = obs_ctx.get("parent")
    result = run_experiment(experiment_id, fast=fast, runtime=runtime)
    elapsed = time.perf_counter() - start
    return (experiment_id, result.render(), elapsed,
            runtime.profiler.as_dict(), runtime.obs.export())


def _run_all_parallel(targets: list, fast: bool, runtime) -> None:
    """Regenerate every experiment concurrently, printing in catalogue order."""
    obs = runtime.obs
    obs_ctx = {
        "profile": runtime.profile,
        "trace": obs.tracer.enabled,
        "trace_id": obs.tracer.trace_id,
        "parent": obs.tracer.current_span(),
        "metrics": obs.metrics.enabled,
    }
    with ProcessPoolExecutor(max_workers=runtime.jobs) as pool:
        for experiment_id, rendered, elapsed, profile, obs_snap in pool.map(
                _run_remote, [(t, fast, obs_ctx) for t in targets]):
            runtime.profiler.merge(profile)
            obs.merge_export(obs_snap)
            print(rendered)
            print(f"\n[{experiment_id} completed in {elapsed:.1f} s]\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures and tables.")
    parser.add_argument("target",
                        help="experiment id (fig1..fig12, table1..table4), "
                             "'list', 'all', or 'serve' (long-lived "
                             "sign-off query server)")
    parser.add_argument("--fast", action="store_true",
                        help="reduced sample counts (quick look)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for sampling shards and "
                             "quantile solves (and, with 'all', whole "
                             "experiments); default 1")
    parser.add_argument("--profile", action="store_true",
                        help="print per-stage wall-time/sample counters "
                             "and the metrics registry")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="write a Chrome trace-event JSON timeline "
                             "(open in Perfetto: https://ui.perfetto.dev)")
    parser.add_argument("--metrics", metavar="FILE", default=None,
                        help="write a JSON run manifest (seed, card "
                             "fingerprints, cache state, stage stats, "
                             "metrics snapshot, fault ledger)")
    parser.add_argument("--shard-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="hung-worker progress deadline: if no shard "
                             "completes for this long the pool is "
                             "re-spawned and the work reassigned "
                             "(default 300)")
    parser.add_argument("--max-retries", type=int, default=None, metavar="N",
                        help="retries per failed shard before the run "
                             "aborts with a ShardExecutionError "
                             "(default 2)")
    parser.add_argument("--inject-faults", metavar="SPEC", default=None,
                        help="deterministic fault injection, e.g. "
                             "'worker_crash:1,cache_corrupt:0' "
                             "(KIND:TARGET[:COUNT], comma-separated)")
    serve_group = parser.add_argument_group(
        "serve", "options for the 'serve' target "
                 "(python -m repro.experiments serve --port 8437)")
    serve_group.add_argument("--host", default="127.0.0.1",
                             help="bind address (default 127.0.0.1)")
    serve_group.add_argument("--port", type=int, default=8437,
                             help="bind port; 0 picks a free port and "
                                  "announces it on stdout (default 8437)")
    serve_group.add_argument("--max-batch", type=int, default=32, metavar="N",
                             help="flush a coalescing bucket at N points "
                                  "(default 32)")
    serve_group.add_argument("--batch-window-ms", type=float, default=2.0,
                             metavar="MS",
                             help="max time a query waits to coalesce with "
                                  "others before its batch is dispatched "
                                  "(default 2.0)")
    serve_group.add_argument("--max-queue", type=int, default=1024,
                             metavar="N",
                             help="pending-point bound before requests are "
                                  "rejected with HTTP 429 (default 1024)")
    serve_group.add_argument("--deadline-ms", type=float, default=None,
                             metavar="MS",
                             help="per-request deadline (HTTP 408 on "
                                  "expiry); defaults to the shard timeout")
    serve_group.add_argument("--window-s", type=float, default=60.0,
                             metavar="S",
                             help="rolling window behind the live gauges "
                                  "(p50/p99/QPS/error rate; default 60)")
    serve_group.add_argument("--slo-availability", type=float, default=0.999,
                             metavar="FRAC",
                             help="availability SLO target in (0, 1) for "
                                  "the burn-rate gauges (default 0.999)")
    serve_group.add_argument("--slo-latency-ms", type=float, default=250.0,
                             metavar="MS",
                             help="latency SLO target for the burn-rate "
                                  "gauges (default 250)")
    serve_group.add_argument("--flight-capacity", type=int, default=512,
                             metavar="N",
                             help="flight-recorder ring size; 0 disables "
                                  "(default 512)")
    serve_group.add_argument("--no-shed", action="store_true",
                             help="disable adaptive admission control "
                                  "(hard max-queue 429s only)")
    serve_group.add_argument("--degraded-ratio", type=float, default=0.75,
                             metavar="R",
                             help="queue saturation beyond which the "
                                  "server answers cache-hit-only, in "
                                  "(0, 1] (default 0.75)")
    serve_group.add_argument("--drain-timeout-s", type=float, default=30.0,
                             metavar="S",
                             help="SIGTERM drain budget for in-flight "
                                  "solves (default 30)")
    parser.add_argument("--tail-q", type=float, default=None, metavar="Q",
                        help="target quantile for the 'tail' experiment, "
                             "in (0, 1) (default 0.9999)")
    parser.add_argument("--tail-samples", type=int, default=None,
                        metavar="N",
                        help="weighted sample count for the 'tail' "
                             "experiment (>= 2; default 4096)")
    parser.add_argument("--mc-precision", choices=("float64", "float32"),
                        default="float64",
                        help="Monte-Carlo kernel dtype policy: float64 "
                             "(default, bit-exact reference) or float32 "
                             "(~2x bandwidth for validation sweeps)")
    parser.add_argument("--backend", choices=BACKENDS, default="numpy",
                        help="Monte-Carlo kernel execution backend: numpy "
                             "(default, serial), threaded (blocks across a "
                             "thread pool, bit-identical), numba or cupy "
                             "(optional accelerators; fall back to numpy "
                             "with a warning when not installed)")
    parser.add_argument("--block-elems", type=int, default=None, metavar="N",
                        help="kernel internal block budget in elements "
                             "(>= 1; default 1e6) — the tuning knob for "
                             "how much work each backend block carries")
    args = parser.parse_args(argv)

    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2

    if args.target == "list":
        for exp in list_experiments():
            print(f"{exp.experiment_id:<8s} {exp.title}  [{exp.paper_ref}]")
        return 0

    try:
        if args.tail_q is not None or args.tail_samples is not None:
            from repro.experiments import tail as tail_experiment

            tail_experiment.configure(q=args.tail_q,
                                      n_samples=args.tail_samples)
        retry_kwargs = {}
        if args.shard_timeout is not None:
            retry_kwargs["shard_timeout_s"] = args.shard_timeout
        if args.max_retries is not None:
            retry_kwargs["max_retries"] = args.max_retries
        retry = RetryPolicy(**retry_kwargs) if retry_kwargs else None
        faults = parse_faults(args.inject_faults)
        runtime = build_runtime(jobs=args.jobs, profile=args.profile,
                                trace=bool(args.trace),
                                metrics=bool(args.metrics),
                                retry=retry, faults=faults,
                                precision=args.mc_precision,
                                backend=args.backend,
                                block_elems=args.block_elems)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cache_before = cache_file_state() if args.metrics else None
    flight_snapshot = None
    run_start = time.perf_counter()
    try:
        targets = ([e.experiment_id for e in list_experiments()]
                   if args.target == "all" else [args.target])
        with runtime.obs.tracer.span("cli.run", target=args.target,
                                     jobs=args.jobs, fast=args.fast):
            if args.target == "serve":
                from repro.serve import ServeConfig, run_server

                config = ServeConfig(
                    host=args.host, port=args.port,
                    max_batch=args.max_batch,
                    batch_window_ms=args.batch_window_ms,
                    max_queue=args.max_queue,
                    deadline_ms=args.deadline_ms,
                    backend=args.backend,
                    block_elems=args.block_elems,
                    window_s=args.window_s,
                    slo_availability=args.slo_availability,
                    slo_latency_ms=args.slo_latency_ms,
                    flight_capacity=args.flight_capacity,
                    shed=not args.no_shed,
                    degraded_ratio=args.degraded_ratio,
                    drain_timeout_s=args.drain_timeout_s)
                summary = run_server(config, runtime)
                flight_snapshot = summary.get("flight")
                print(f"[serve] handled {summary['requests']} requests, "
                      f"coalesce ratio {summary['coalesce_ratio']:.2f}")
            elif args.target == "all" and runtime.jobs > 1:
                _run_all_parallel(targets, args.fast, runtime)
            else:
                for target in targets:
                    start = time.perf_counter()
                    result = run_experiment(target, fast=args.fast,
                                            runtime=runtime)
                    elapsed = time.perf_counter() - start
                    print(result.render())
                    print(f"\n[{target} completed in {elapsed:.1f} s]\n")
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ShardExecutionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        runtime.close()
    elapsed_wall_s = time.perf_counter() - run_start

    if args.profile:
        print(runtime.profiler.render())
        if len(runtime.obs.metrics):
            print()
            print(runtime.obs.metrics.render())
        if len(runtime.ledger):
            print()
            print(runtime.ledger.render())
    if args.trace:
        write_chrome_trace(args.trace, runtime.obs.tracer)
        print(f"[trace written to {args.trace} — open in "
              f"https://ui.perfetto.dev]", file=sys.stderr)
    if args.metrics:
        manifest = build_manifest(
            targets=targets, fast=args.fast, jobs=runtime.jobs,
            root_seed=ROOT_SEED, profiler=runtime.profiler,
            metrics=runtime.obs.metrics, cache_before=cache_before,
            cache_after=cache_file_state(), elapsed_wall_s=elapsed_wall_s,
            trace_file=args.trace, resilience=runtime.ledger.as_dict(),
            faults=args.inject_faults,
            backends=backend_manifest(args.backend),
            flight=flight_snapshot)
        write_manifest(args.metrics, manifest)
        print(f"[run manifest written to {args.metrics}]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
