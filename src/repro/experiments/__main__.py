"""CLI for the experiment registry (``python -m repro.experiments``).

Supports the parallel runtime layer:

* ``--jobs N`` — for a single experiment, sampling shards fan out across
  ``N`` worker processes; for ``all``, whole experiments are dispatched
  across the pool so independent artifacts regenerate concurrently.
* ``--profile`` — print per-stage wall-time/sample counters (collected on
  both sides of the process boundary) after the run.
"""

from __future__ import annotations

import argparse
import sys
import time
from concurrent.futures import ProcessPoolExecutor

from repro.errors import ConfigurationError
from repro.experiments.registry import list_experiments, run_experiment
from repro.runtime import build_runtime


def _run_remote(payload: tuple) -> tuple:
    """Run one experiment inside a pool worker; returns rendered text.

    The worker activates its own serial runtime so stage counters are
    still collected and can be merged into the parent's profiler.
    """
    experiment_id, fast = payload
    runtime = build_runtime(jobs=1, profile=True)
    start = time.perf_counter()
    result = run_experiment(experiment_id, fast=fast, runtime=runtime)
    elapsed = time.perf_counter() - start
    return experiment_id, result.render(), elapsed, runtime.profiler.as_dict()


def _run_all_parallel(targets: list, fast: bool, runtime) -> None:
    """Regenerate every experiment concurrently, printing in catalogue order."""
    with ProcessPoolExecutor(max_workers=runtime.jobs) as pool:
        for experiment_id, rendered, elapsed, profile in pool.map(
                _run_remote, [(t, fast) for t in targets]):
            runtime.profiler.merge(profile)
            print(rendered)
            print(f"\n[{experiment_id} completed in {elapsed:.1f} s]\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures and tables.")
    parser.add_argument("target",
                        help="experiment id (fig1..fig12, table1..table4), "
                             "'list', or 'all'")
    parser.add_argument("--fast", action="store_true",
                        help="reduced sample counts (quick look)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for sampling shards (and, "
                             "with 'all', whole experiments); default 1")
    parser.add_argument("--profile", action="store_true",
                        help="print per-stage wall-time/sample counters")
    args = parser.parse_args(argv)

    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2

    if args.target == "list":
        for exp in list_experiments():
            print(f"{exp.experiment_id:<8s} {exp.title}  [{exp.paper_ref}]")
        return 0

    runtime = build_runtime(jobs=args.jobs, profile=args.profile)
    try:
        targets = ([e.experiment_id for e in list_experiments()]
                   if args.target == "all" else [args.target])
        if args.target == "all" and runtime.jobs > 1:
            _run_all_parallel(targets, args.fast, runtime)
        else:
            for target in targets:
                start = time.perf_counter()
                result = run_experiment(target, fast=args.fast,
                                        runtime=runtime)
                elapsed = time.perf_counter() - start
                print(result.render())
                print(f"\n[{target} completed in {elapsed:.1f} s]\n")
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        runtime.close()

    if args.profile:
        print(runtime.profiler.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
