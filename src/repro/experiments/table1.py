"""Table 1: required spare counts and area/power overheads, four nodes x
five near-threshold voltages.

Structural duplication sized so the 99 % FO4 chip delay at the
near-threshold voltage matches the nominal-voltage baseline.  Saturated
cells (">128") mark voltages where lane redundancy cannot recover the
(die-wide) correlated slowdown.
"""

from __future__ import annotations

import numpy as np

from repro.devices.paper_anchors import TABLE1
from repro.devices.technology import available_technologies
from repro.experiments.registry import ExperimentResult, experiment, get_analyzer
from repro.experiments.report import TextTable
from repro.sparing.duplication import solve_spares

VOLTAGES = (0.50, 0.55, 0.60, 0.65, 0.70)


@experiment("table1", "Spare counts + overheads, four nodes", "Table 1")
def run(fast: bool = False) -> ExperimentResult:
    tables = []
    data = {}
    for node in available_technologies():
        analyzer = get_analyzer(node)
        # Pre-warm the binary-search endpoints (0 and 128 spares) for the
        # whole voltage column in one batched solve; the per-voltage
        # searches below then start from cache hits.
        analyzer.chip_quantiles(np.array(VOLTAGES),
                                spares=np.array([[0.0], [128.0]]))
        table = TextTable(
            f"{node}: structural duplication",
            ["Vdd (V)", "spares", "area ovhd (%)", "power ovhd (%)",
             "paper spares"])
        data[node] = {}
        for vdd in VOLTAGES:
            solution = solve_spares(analyzer, vdd)
            paper = TABLE1[node][vdd]
            paper_txt = (f">{128}" if paper.saturated else
                         f"{paper.spares}{'~' if paper.inferred else ''}")
            table.add_row(
                vdd,
                solution.spares if solution.feasible else ">128",
                100 * solution.area_overhead,
                100 * solution.power_overhead,
                paper_txt)
            data[node][vdd] = {
                "spares": solution.spares if solution.feasible else None,
                "feasible": solution.feasible,
                "area": solution.area_overhead,
                "power": solution.power_overhead,
            }
        tables.append(table)

    notes = [
        "paper spare counts marked '~' are reconstructed from the power "
        "column (the PDF text extraction dropped them)",
        "spare demand grows exponentially as Vdd falls; ~0.5 V cells "
        "saturate because die-wide slowdown is not spareable",
    ]
    return ExperimentResult("table1", "Structural duplication sizing",
                            tables, notes, data)
