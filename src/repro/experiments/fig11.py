"""Figure 11 (Appendix C): chain-length sweep of delay variation at
0.55 V, four technology nodes.

Shows diminishing returns of chain averaging: the reduction rate
``|d(3sigma/mu)/dN|`` shrinks with N, so longer logic chains alone cannot
solve the timing-variation problem (the correlated floor remains).
"""

from __future__ import annotations

from repro.devices.technology import available_technologies
from repro.experiments.registry import ExperimentResult, experiment, get_analyzer
from repro.experiments.report import TextTable

VDD = 0.55
LENGTHS = (1, 2, 5, 10, 20, 50, 100, 200)


@experiment("fig11", "Chain-length sweep of 3sigma/mu @ 0.55V, four nodes",
            "Figure 11 / Appendix C")
def run(fast: bool = False) -> ExperimentResult:
    table = TextTable(
        "3sigma/mu (%) at 0.55 V vs FO4 chain length",
        ["N"] + list(available_technologies()))
    data = {node: {} for node in available_technologies()}
    for n_gates in LENGTHS:
        row = [n_gates]
        for node in available_technologies():
            pct = 100 * get_analyzer(node).chain_variation(VDD, n_gates)
            row.append(pct)
            data[node][n_gates] = pct
        table.add_row(*row)

    # Reduction rate per added gate, showing the diminishing returns.
    rate = TextTable(
        "averaging rate |delta(3sigma/mu)/deltaN| (pp per gate)",
        ["interval"] + list(available_technologies()))
    for a, b in zip(LENGTHS[:-1], LENGTHS[1:]):
        row = [f"{a}->{b}"]
        for node in available_technologies():
            row.append(abs(data[node][b] - data[node][a]) / (b - a))
        rate.add_row(*row)

    notes = [
        "variation falls steeply for short chains, then saturates at the "
        "correlated floor: very long chains do not remove the problem",
    ]
    return ExperimentResult("fig11", "Chain-length averaging study",
                            [table, rate], notes, data)
