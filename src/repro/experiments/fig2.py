"""Figure 2: 50-FO4-chain delay variation (3sigma/mu) vs supply voltage,
four technology nodes.

Each PTM HP card is swept only up to its nominal voltage (0.9 V for
32 nm, 0.8 V for 22 nm), matching the paper.  The analytic moment engine
replaces the 1000-sample Monte-Carlo (the test suite verifies they
agree); ``fast`` has no effect because the sweep is already cheap.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import VariationSweep
from repro.devices.paper_anchors import FIG2_POINTS
from repro.devices.technology import available_technologies, get_technology
from repro.experiments.registry import ExperimentResult, experiment, get_analyzer
from repro.experiments.report import TextTable

VOLTAGES = np.round(np.arange(0.50, 1.001, 0.05), 3)


@experiment("fig2", "Chain-of-50 3sigma/mu vs Vdd, four nodes", "Figure 2")
def run(fast: bool = False) -> ExperimentResult:
    table = TextTable(
        "Delay variation (3sigma/mu, %) of a 50-FO4 chain vs Vdd",
        ["Vdd (V)"] + list(available_technologies()))
    sweeps = {}
    for node in available_technologies():
        analyzer = get_analyzer(node)
        voltages = [v for v in VOLTAGES
                    if v <= get_technology(node).nominal_vdd + 1e-9]
        values = [100 * analyzer.chain_variation(v) for v in voltages]
        sweeps[node] = VariationSweep(
            x=np.asarray(voltages), values=np.asarray(values),
            x_label="Vdd (V)", value_label="3sigma/mu (%)",
            series_label=node)

    for vdd in VOLTAGES:
        row = [float(vdd)]
        for node in available_technologies():
            sweep = sweeps[node]
            row.append(float(sweep.value_at(vdd))
                       if vdd <= sweep.x.max() + 1e-9 else None)
        table.add_row(*row)

    ratio = sweeps["22nm"].value_at(0.55) / sweeps["90nm"].value_at(0.55)
    notes = [
        f"22nm anchors (paper): {FIG2_POINTS['22nm']}; model "
        f"{{0.8: {sweeps['22nm'].value_at(0.8):.1f}, "
        f"0.5: {sweeps['22nm'].value_at(0.5):.1f}}}",
        f"22nm/90nm variation ratio @ 0.55 V: model {ratio:.2f}x "
        f"(paper: {FIG2_POINTS['ratio_22_over_90_at_055']}x)",
    ]
    data = {node: {"vdd": sweeps[node].x.tolist(),
                   "pct": sweeps[node].values.tolist()}
            for node in sweeps}
    data["ratio_22_over_90_at_055"] = float(ratio)
    return ExperimentResult("fig2", "Chain variation vs Vdd, four nodes",
                            [table], notes, data)
