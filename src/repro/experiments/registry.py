"""Experiment registry: one entry per paper figure/table.

Each experiment module registers a runner via :func:`experiment`; the CLI
(``python -m repro.experiments``) and the benchmark harness dispatch
through :func:`run_experiment`.  Runners accept ``fast=True`` to trade
sample counts for speed (used by the test suite and CI-style runs) and
return an :class:`ExperimentResult` whose ``data`` dict exposes the raw
numbers for programmatic checks.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from functools import lru_cache

from repro.core.analyzer import VariationAnalyzer
from repro.errors import ConfigurationError
from repro.obs.api import span as _obs_span
from repro.runtime.context import activate_runtime

__all__ = [
    "Experiment",
    "ExperimentResult",
    "experiment",
    "run_experiment",
    "list_experiments",
    "get_analyzer",
]

_REGISTRY: dict = {}

#: Modules that self-register experiments on import.
_EXPERIMENT_MODULES = (
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
    "fig9", "fig10", "fig11", "fig12",
    "table1", "table2", "table3", "table4",
    "ablations", "ablation4", "tail",
)


@dataclass(frozen=True)
class ExperimentResult:
    """Output of one experiment run."""

    experiment_id: str
    title: str
    tables: list
    notes: list = field(default_factory=list)
    data: dict = field(default_factory=dict)

    def render(self) -> str:
        """The full text report."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        for table in self.tables:
            parts.append(table.render())
        if self.notes:
            parts.append("notes:")
            parts.extend(f"  * {note}" for note in self.notes)
        return "\n\n".join(parts)


@dataclass(frozen=True)
class Experiment:
    """A registered paper-artifact regenerator."""

    experiment_id: str
    title: str
    paper_ref: str
    runner: object

    def run(self, fast: bool = False) -> ExperimentResult:
        return self.runner(fast=fast)


def experiment(experiment_id: str, title: str, paper_ref: str):
    """Decorator registering a runner under ``experiment_id``."""
    def wrap(func):
        if experiment_id in _REGISTRY:
            raise ConfigurationError(
                f"experiment {experiment_id!r} registered twice")
        _REGISTRY[experiment_id] = Experiment(
            experiment_id=experiment_id, title=title,
            paper_ref=paper_ref, runner=func)
        return func
    return wrap


def _load_all() -> None:
    for module in _EXPERIMENT_MODULES:
        importlib.import_module(f"repro.experiments.{module}")


def list_experiments() -> list:
    """All registered experiments: figures, tables, then ablations."""
    _load_all()
    def key(e):
        eid = e.experiment_id
        if eid.startswith("fig"):
            kind = 0
        elif eid.startswith("table"):
            kind = 1
        else:
            kind = 2
        digits = "".join(ch for ch in eid if ch.isdigit())
        return (kind, int(digits) if digits else 0, eid)
    return sorted(_REGISTRY.values(), key=key)


def run_experiment(experiment_id: str, fast: bool = False,
                   runtime=None) -> ExperimentResult:
    """Run one experiment by id (e.g. ``"fig4"``, ``"table1"``).

    Passing a :class:`~repro.runtime.context.ReproRuntime` activates it
    for the duration of the run: the analyzer layer shards its ensemble
    sampling across the runtime's worker pool and records per-stage
    wall-time/sample counters on its profiler.
    """
    _load_all()
    try:
        exp = _REGISTRY[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; run "
            f"`python -m repro.experiments list` for the catalogue") from None
    if runtime is None:
        return exp.run(fast=fast)
    # The span resolves against the runtime's obs context, which
    # activate_runtime has made current by the time it is entered.
    with activate_runtime(runtime), \
            runtime.profiler.stage(f"experiment.{experiment_id}"), \
            _obs_span(f"experiment.{experiment_id}", fast=bool(fast)):
        return exp.run(fast=fast)


@lru_cache(maxsize=8)
def get_analyzer(node: str) -> VariationAnalyzer:
    """Shared per-node analyzer so experiments reuse cached quadratures."""
    return VariationAnalyzer(node)
