"""Figure 12 / Appendix D: global (XRAM) vs local (clustered) spare
placement.

Quantifies the paper's argument with repair yields under the calibrated
delay statistics, and demonstrates the XRAM bypass configuration on the
paper's 8+2-spares example with a bursty two-lane fault.
"""

from __future__ import annotations

from repro.experiments.registry import ExperimentResult, experiment, get_analyzer
from repro.experiments.report import TextTable
from repro.simd.xram import XRAMCrossbar
from repro.sparing.placement import compare_placements

VDD = 0.55
SPARES = 32
CLUSTER_SIZES = (4, 8, 16, 32)


@experiment("fig12", "Global vs local spare placement (XRAM bypass)",
            "Figure 12 / Appendix D")
def run(fast: bool = False) -> ExperimentResult:
    analyzer = get_analyzer("90nm")
    n_chips = 1000 if fast else 6000

    results = compare_placements(analyzer, VDD, spares=SPARES,
                                 cluster_sizes=CLUSTER_SIZES,
                                 n_chips=n_chips, seed=7)
    table = TextTable(
        f"Repair yield, 128-wide + {SPARES} spares @ {VDD} V (90nm)",
        ["policy", "cluster", "yield (%)", "mean faults/chip"])
    data = {"policies": []}
    for res in results:
        table.add_row(res.policy,
                      res.cluster_size if res.cluster_size else "-",
                      100 * res.repair_probability, res.mean_faulty_lanes)
        data["policies"].append({
            "policy": res.policy,
            "cluster_size": res.cluster_size,
            "yield": res.repair_probability,
        })

    # The paper's Fig. 12(c) example: 10 FUs (8 + 2 spares), FU-2 and FU-3
    # faulty (a burst local sparing with 1-of-4 clusters cannot repair).
    xram = XRAMCrossbar(10, 8)
    mapping = xram.bypass_configuration([2, 3])
    demo = TextTable(
        "XRAM bypass demo: 8 lanes on 10 FUs, burst fault on FU-2/FU-3",
        ["logical lane", "physical FU"])
    for lane, fu in enumerate(mapping):
        demo.add_row(lane, int(fu))
    data["demo_mapping"] = mapping.tolist()

    notes = [
        "global sparing absorbs any fault pattern up to the spare count; "
        "local sparing fails whenever one cluster collects more faults "
        "than its own spares (bursty failures)",
        "the XRAM stores the bypass as crosspoint configuration bits, so "
        "global repair needs no extra routing layer",
    ]
    return ExperimentResult("fig12", "Spare placement study",
                            [table, demo], notes, data)
