"""Structural SIMD datapath: a set of lanes plus repair bookkeeping.

Bridges the statistical engines (which produce per-lane delay matrices)
and the repair flow (which needs lane identity, cluster structure and an
XRAM bypass configuration).  Used by the spare-placement experiment
(paper Appendix D / Fig. 12) and the lane-repair example.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, RoutingError
from repro.simd.lane import LaneState, SIMDLane
from repro.simd.xram import XRAMCrossbar

__all__ = ["SIMDDatapath"]


class SIMDDatapath:
    """A ``width``-wide SIMD datapath with optional spare lanes.

    Parameters
    ----------
    width:
        Logical SIMD width the workload requires.
    spares:
        Number of spare lanes appended after the primary lanes.
    cluster_size:
        If given, lanes (including spares) are grouped into contiguous
        clusters for *local* sparing: spares are distributed one per
        ``cluster_size`` primaries and may only substitute within their
        cluster.  ``None`` selects *global* sparing through the XRAM.
    """

    def __init__(self, width: int, spares: int = 0,
                 cluster_size: int | None = None) -> None:
        if width < 1:
            raise ConfigurationError("width must be >= 1")
        if spares < 0:
            raise ConfigurationError("spares must be >= 0")
        if cluster_size is not None:
            if cluster_size < 1:
                raise ConfigurationError("cluster_size must be >= 1")
            if width % cluster_size:
                raise ConfigurationError(
                    f"width {width} not divisible by cluster_size {cluster_size}")
            n_clusters = width // cluster_size
            if spares % n_clusters:
                raise ConfigurationError(
                    f"{spares} spares cannot be spread evenly over "
                    f"{n_clusters} clusters")
        self.width = int(width)
        self.spares = int(spares)
        self.cluster_size = cluster_size
        self.lanes = self._build_lanes()
        self.xram = XRAMCrossbar(self.n_lanes, self.width)

    # -- construction -------------------------------------------------------

    def _build_lanes(self) -> list:
        lanes = []
        if self.cluster_size is None:
            for i in range(self.width):
                lanes.append(SIMDLane(index=i))
            for i in range(self.spares):
                lanes.append(SIMDLane(index=self.width + i, is_spare=True))
        else:
            n_clusters = self.width // self.cluster_size
            spares_per_cluster = self.spares // n_clusters
            idx = 0
            for c in range(n_clusters):
                for _ in range(self.cluster_size):
                    lanes.append(SIMDLane(index=idx, cluster=c))
                    idx += 1
                for _ in range(spares_per_cluster):
                    lanes.append(SIMDLane(index=idx, cluster=c, is_spare=True))
                    idx += 1
        return lanes

    @property
    def n_lanes(self) -> int:
        """Total physical lanes (primaries + spares)."""
        return self.width + self.spares

    @property
    def is_local_sparing(self) -> bool:
        return self.cluster_size is not None

    # -- test & repair -------------------------------------------------------

    def load_delays(self, delays) -> None:
        """Attach measured lane delays (seconds), one per physical lane."""
        delays = np.asarray(delays, dtype=float)
        if delays.shape != (self.n_lanes,):
            raise ConfigurationError(
                f"expected {self.n_lanes} delays, got shape {delays.shape}")
        for lane, d in zip(self.lanes, delays):
            lane.delay = float(d)
            lane.state = LaneState.HEALTHY

    def test(self, clock_period: float) -> list:
        """Screen every lane against ``clock_period``; returns faulty lanes."""
        faulty = []
        for lane in self.lanes:
            if lane.apply_test(clock_period) is LaneState.FAULTY:
                faulty.append(lane)
        return faulty

    def repairable(self) -> bool:
        """Can the tested datapath still provide ``width`` healthy lanes?

        Global sparing: total healthy lanes >= width.  Local sparing:
        additionally, no cluster may have more faults than its own spares
        (the paper's Appendix D failure mode for bursty faults).
        """
        healthy_total = sum(lane.usable for lane in self.lanes)
        if healthy_total < self.width:
            return False
        if not self.is_local_sparing:
            return True
        for c in self._cluster_ids():
            members = [l for l in self.lanes if l.cluster == c]
            healthy = sum(l.usable for l in members)
            if healthy < self.cluster_size:
                return False
        return True

    def repair(self) -> np.ndarray:
        """Produce the XRAM bypass mapping for the tested datapath.

        Returns the logical-lane -> physical-lane mapping and stores it as
        the crossbar's active configuration.  Raises
        :class:`~repro.errors.RoutingError` if irreparable.
        """
        if not self.repairable():
            raise RoutingError("datapath is not repairable with its spares")
        if self.is_local_sparing:
            mapping = []
            for c in self._cluster_ids():
                members = [l for l in self.lanes if l.cluster == c]
                healthy = [l.index for l in members if l.usable]
                mapping.extend(healthy[: self.cluster_size])
            mapping = np.asarray(mapping, dtype=int)
            self.xram.store_configuration("bypass", mapping)
            self.xram.select("bypass")
        else:
            faulty = [l.index for l in self.lanes if not l.usable]
            mapping = self.xram.bypass_configuration(faulty)
        # Power-gate healthy lanes that ended up unused.
        used = set(int(i) for i in mapping)
        for lane in self.lanes:
            if lane.usable and lane.index not in used:
                lane.state = LaneState.POWER_GATED
        return mapping

    def effective_delay(self) -> float:
        """Chip delay after repair: slowest lane actually in use (seconds)."""
        mapping = self.xram.active_mapping
        delays = []
        for i in mapping:
            lane = self.lanes[int(i)]
            if lane.delay is None:
                raise ConfigurationError("lanes have no measured delays")
            delays.append(lane.delay)
        return float(max(delays))

    # -- helpers ----------------------------------------------------------------

    def _cluster_ids(self):
        return sorted({l.cluster for l in self.lanes if l.cluster is not None})

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = (f"local/{self.cluster_size}" if self.is_local_sparing else "global")
        return (f"SIMDDatapath(width={self.width}, spares={self.spares}, "
                f"placement={kind})")
