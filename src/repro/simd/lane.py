"""Structural SIMD lane model.

A lane is one 16-bit slice of the SIMD datapath: functional unit, register
file slice and its share of the adder tree — the unit of replacement for
structural duplication.  The delay *statistics* of a lane live in
:mod:`repro.core`; this module models lane *identity*: position, cluster
membership, spare status and the test-time fault state the repair flow
consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["LaneState", "SIMDLane"]


class LaneState(enum.Enum):
    """Test-time classification of a lane."""

    HEALTHY = "healthy"
    FAULTY = "faulty"          # fails timing at the target clock
    POWER_GATED = "power-gated"  # healthy spare left unused


@dataclass
class SIMDLane:
    """One SIMD lane.

    Parameters
    ----------
    index:
        Physical position in the datapath (0-based).
    is_spare:
        True for lanes added by structural duplication.
    cluster:
        Cluster id for local-sparing placement; ``None`` under global
        sparing.
    delay:
        Measured lane delay in seconds (slowest of its critical paths),
        set by test; ``None`` before test.
    """

    index: int
    is_spare: bool = False
    cluster: int | None = None
    delay: float | None = None
    state: LaneState = LaneState.HEALTHY

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ConfigurationError("lane index must be >= 0")
        if self.delay is not None and self.delay <= 0:
            raise ConfigurationError("lane delay must be positive")

    def apply_test(self, clock_period: float) -> LaneState:
        """Classify the lane against a clock period (test-time screening)."""
        if self.delay is None:
            raise ConfigurationError(
                f"lane {self.index} has no measured delay to test")
        if clock_period <= 0:
            raise ConfigurationError("clock period must be positive")
        self.state = (LaneState.HEALTHY if self.delay <= clock_period
                      else LaneState.FAULTY)
        return self.state

    @property
    def usable(self) -> bool:
        """True if the lane can carry computation at the tested clock."""
        return self.state is LaneState.HEALTHY
