"""DLP workload models for the SIMD datapath.

The paper's premise (Section 1/2) is that hand-held signal-processing
workloads have enough data-level parallelism to trade near-threshold
slowdown for SIMD width.  This module provides cycle-accurate-ish models
of the kernels Diet SODA targets — FIR filtering, FFT, 2-D convolution
and colour-space conversion — mapped onto a ``width``-wide SIMD machine:

* each kernel is a sequence of :class:`Phase` objects with a vector
  element-operation count, its natural parallelism, scalar (serial)
  bookkeeping operations and shuffle traffic through the SSN;
* :class:`SIMDMachine` binds a width and an operating voltage to a
  variation-aware clock period (the 99 % chip delay of the calibrated
  statistics — slow silicon must still meet the clock);
* :func:`execute` folds the two into cycles, runtime, lane utilisation
  and a normalised energy estimate.

This is the substrate behind the iso-throughput studies: how much SIMD
width buys back the ~10x near-threshold slowdown for a *real* kernel
(including its Amdahl scalar fraction), not just for ideal vector code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.energy.model import EnergyModel
from repro.errors import ConfigurationError

__all__ = [
    "Phase",
    "Workload",
    "SIMDMachine",
    "ExecutionReport",
    "execute",
    "fir_filter",
    "fft",
    "conv2d",
    "color_space_conversion",
    "KERNELS",
]


@dataclass(frozen=True)
class Phase:
    """One phase of a kernel.

    Parameters
    ----------
    name:
        Phase label (e.g. ``"fft-stage-3"``).
    vector_ops:
        Total element operations in the phase.
    parallelism:
        Independent elements available per step (the phase's natural DLP
        width); the machine can exploit at most ``min(width, parallelism)``
        lanes.
    scalar_ops:
        Serial operations (address bookkeeping, loop control) that run on
        the scalar pipeline, one per cycle.
    shuffle_ops:
        Vector permutations routed through the SSN (one cycle per shuffle
        of up to ``width`` elements).
    """

    name: str
    vector_ops: int
    parallelism: int
    scalar_ops: int = 0
    shuffle_ops: int = 0

    def __post_init__(self) -> None:
        if self.vector_ops < 0 or self.scalar_ops < 0 or self.shuffle_ops < 0:
            raise ConfigurationError(f"{self.name}: negative op counts")
        if self.vector_ops and self.parallelism < 1:
            raise ConfigurationError(f"{self.name}: parallelism must be >= 1")


@dataclass(frozen=True)
class Workload:
    """A named sequence of phases."""

    name: str
    phases: tuple

    def __post_init__(self) -> None:
        if not self.phases:
            raise ConfigurationError(f"{self.name}: no phases")

    @property
    def total_vector_ops(self) -> int:
        return sum(p.vector_ops for p in self.phases)

    @property
    def total_scalar_ops(self) -> int:
        return sum(p.scalar_ops for p in self.phases)

    @property
    def scalar_fraction(self) -> float:
        """Amdahl serial share of the total operation count."""
        total = self.total_vector_ops + self.total_scalar_ops
        return self.total_scalar_ops / total if total else 0.0


# ---------------------------------------------------------------------------
# Kernel generators (Diet SODA's camera/DSP domain)
# ---------------------------------------------------------------------------


def fir_filter(n_samples: int = 1024, n_taps: int = 16) -> Workload:
    """Direct-form FIR filter: ``n_samples x n_taps`` MACs.

    Samples are independent -> parallelism = n_samples; per-tap loop
    control is scalar.
    """
    if n_samples < 1 or n_taps < 1:
        raise ConfigurationError("n_samples and n_taps must be >= 1")
    phases = (Phase("fir-mac", vector_ops=n_samples * n_taps,
                    parallelism=n_samples, scalar_ops=n_taps,
                    shuffle_ops=n_taps),)
    return Workload(f"fir-{n_samples}x{n_taps}", phases)


def fft(n_points: int = 1024) -> Workload:
    """Radix-2 FFT: log2(n) stages of n/2 butterflies.

    Each butterfly is ~10 element ops (complex mul + add/sub); every
    stage ends with a data shuffle across the SSN (the XRAM's headline
    use case).  Butterflies within a stage are independent; stages are
    serial.
    """
    if n_points < 2 or n_points & (n_points - 1):
        raise ConfigurationError("n_points must be a power of two >= 2")
    stages = int(math.log2(n_points))
    phases = []
    for s in range(stages):
        butterflies = n_points // 2
        phases.append(Phase(
            f"fft-stage-{s}",
            vector_ops=10 * butterflies,
            parallelism=butterflies,
            scalar_ops=4,
            shuffle_ops=math.ceil(n_points / 128),
        ))
    return Workload(f"fft-{n_points}", tuple(phases))


def conv2d(height: int = 64, width: int = 64, kernel: int = 3) -> Workload:
    """2-D convolution (camera pipeline): one MAC per pixel per tap.

    Output pixels are independent; each kernel row needs a shifted view
    of the image (a shuffle per row of taps).
    """
    if height < 1 or width < 1 or kernel < 1:
        raise ConfigurationError("dimensions must be >= 1")
    pixels = height * width
    phases = (Phase(
        "conv2d-mac",
        vector_ops=pixels * kernel * kernel,
        parallelism=pixels,
        scalar_ops=kernel * kernel,
        shuffle_ops=kernel * kernel,
    ),)
    return Workload(f"conv2d-{height}x{width}k{kernel}", phases)


def color_space_conversion(n_pixels: int = 4096) -> Workload:
    """RGB->YCbCr conversion: 3x3 matrix per pixel (9 MACs + 3 adds)."""
    if n_pixels < 1:
        raise ConfigurationError("n_pixels must be >= 1")
    phases = (Phase("csc", vector_ops=12 * n_pixels, parallelism=n_pixels,
                    scalar_ops=2),)
    return Workload(f"csc-{n_pixels}", phases)


#: Kernel registry used by examples and experiments.
KERNELS = {
    "fir": fir_filter,
    "fft": fft,
    "conv2d": conv2d,
    "csc": color_space_conversion,
}


# ---------------------------------------------------------------------------
# Machine model and execution
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SIMDMachine:
    """A SIMD machine operating point.

    Parameters
    ----------
    analyzer:
        A :class:`~repro.core.analyzer.VariationAnalyzer` (technology and
        architecture statistics).
    vdd:
        Operating voltage (V).
    width:
        Vector lanes available to the workload.
    variation_aware:
        If True (default) the clock period is the 99 % chip delay at
        ``vdd`` (silicon must meet the clock across variation); if False
        the variation-free target delay is used (ideal clock, for
        what-if comparisons).
    """

    analyzer: object
    vdd: float
    width: int = 128
    variation_aware: bool = True

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ConfigurationError("width must be >= 1")

    @property
    def clock_period(self) -> float:
        """Cycle time in seconds."""
        if self.variation_aware:
            return self.analyzer.chip_quantile(self.vdd)
        return self.analyzer.target_delay(self.vdd)

    @property
    def frequency(self) -> float:
        return 1.0 / self.clock_period


@dataclass(frozen=True)
class ExecutionReport:
    """Result of running a workload on a machine."""

    workload: str
    width: int
    vdd: float
    cycles: int
    runtime: float                 # seconds
    vector_cycles: int
    scalar_cycles: int
    shuffle_cycles: int
    lane_utilization: float        # useful lane-cycles / (cycles * width)
    energy: float                  # normalised units (1 = one op at Vnom)

    @property
    def throughput(self) -> float:
        """Element operations per second."""
        return (self.vector_cycles * self.width * self.lane_utilization
                / max(self.runtime, 1e-30)) if self.runtime else 0.0

    def summary(self) -> str:
        return (f"{self.workload:<18s} W={self.width:<4d} "
                f"@{1e3 * self.vdd:.0f}mV: {self.cycles:>9d} cycles, "
                f"{1e6 * self.runtime:9.2f} us, util "
                f"{100 * self.lane_utilization:5.1f} %, energy "
                f"{self.energy:10.1f}")


def execute(workload: Workload, machine: SIMDMachine,
            energy_model: EnergyModel | None = None) -> ExecutionReport:
    """Run a workload on a machine operating point.

    Cycle model: each phase issues ``ceil(vector_ops / usable_lanes)``
    vector cycles with ``usable_lanes = min(width, parallelism)``, plus
    its scalar cycles (serial) and shuffle cycles (one SSN pass each).
    Energy: per-op energy at ``vdd`` (from the energy model) for every
    vector/scalar op, plus one idle-lane leakage share for unused lanes.
    """
    if energy_model is None:
        energy_model = EnergyModel(machine.analyzer.tech)

    vector_cycles = 0
    scalar_cycles = 0
    shuffle_cycles = 0
    useful_lane_cycles = 0
    for phase in workload.phases:
        if phase.vector_ops:
            usable = min(machine.width, phase.parallelism)
            cycles = math.ceil(phase.vector_ops / usable)
            vector_cycles += cycles
            useful_lane_cycles += phase.vector_ops
        scalar_cycles += phase.scalar_ops
        shuffle_cycles += phase.shuffle_ops

    cycles = vector_cycles + scalar_cycles + shuffle_cycles
    runtime = cycles * machine.clock_period
    lane_util = (useful_lane_cycles / (cycles * machine.width)
                 if cycles else 0.0)

    # Energy: active ops at the per-op energy of this voltage, idle lanes
    # burn the leakage share of the per-op energy.
    e_op = float(energy_model.total_energy(machine.vdd))
    e_leak = float(energy_model.leakage_energy(machine.vdd))
    active_ops = workload.total_vector_ops + workload.total_scalar_ops
    idle_lane_cycles = cycles * machine.width - useful_lane_cycles
    energy = e_op * active_ops + e_leak * max(idle_lane_cycles, 0)

    return ExecutionReport(
        workload=workload.name,
        width=machine.width,
        vdd=machine.vdd,
        cycles=cycles,
        runtime=runtime,
        vector_cycles=vector_cycles,
        scalar_cycles=scalar_cycles,
        shuffle_cycles=shuffle_cycles,
        lane_utilization=lane_util,
        energy=energy,
    )
